/**
 * @file
 * The conservative lockstep driver over a set of engines sharing one
 * timeline, extracted from the sharded machine so the batched machine
 * (machine/batch.hh) can drive K lanes' shared engines through the
 * same loop.
 *
 * Each engine is advanced by one lane thread; a spin barrier
 * synchronizes three times per step: after lane 0 publishes the
 * decision (step / quiescence-skip / done), after phase A (events +
 * component ticks) completes fabric-wide, and after rotation
 * completes fabric-wide. Latched channels give one network cycle of
 * conservative lookahead, which is what makes phase A safe to run
 * concurrently across engines (see docs/SHARDING.md).
 *
 * Serial work that must observe whole-fabric state mid-tick (the
 * metrics sampler) hooks in through LockstepSerial: lane 0 invokes it
 * between the phase-A barrier and its own rotation, the same point in
 * the cycle where an engine-registered sampler fires sequentially.
 */

#ifndef LOCSIM_SIM_LOCKSTEP_HH_
#define LOCSIM_SIM_LOCKSTEP_HH_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "obs/profiler.hh"
#include "sim/barrier.hh"
#include "sim/engine.hh"
#include "sim/types.hh"

namespace locsim {
namespace sim {

/**
 * Serial-point hook for runLockstep(). All three methods run on lane
 * 0 only, while every other lane is either parked at a barrier
 * (serialDue) or rotating channels the hook must not read
 * (serialTick), so implementations may touch whole-fabric state but
 * must not touch channels.
 */
class LockstepSerial
{
  public:
    /** Any serial work due at @p now? (Read at decision time.) */
    virtual bool serialDue(Tick now) const = 0;

    /** Perform the serial work due at @p now (between the phases). */
    virtual void serialTick(Tick now) = 0;

    /** Credit serial work elided by a quiescence jump to @p target. */
    virtual void serialSkip(Tick target) = 0;

  protected:
    ~LockstepSerial() = default;
};

/**
 * Advance @p engines together by @p ticks shared-timeline ticks.
 *
 * Mirrors Engine::run()'s loop on the shared timeline: try a
 * quiescence jump (activity mode, every engine idle, next wakeups
 * strictly in the future), else step one tick in barrier-separated
 * phases. Emission of per-engine "run" trace spans is left to the
 * caller (snapshot skippedTicks() before, emitRunSpan() after).
 *
 * @param pool runner::ThreadPool (templated to keep sim independent
 *        of runner); must have at least engines.size()-1 workers.
 * @param reference step every tick (the Reference-mode oracle).
 * @param serial optional serial-point hook; may be null.
 * @param profiler optional phase profiler; when set, each lane
 *        records Phase::BarrierWait on its shard's slot around every
 *        barrier arrival — the per-shard barrier-wait share is the
 *        run manifest's imbalance signal.
 */
template <typename Pool>
void
runLockstep(const std::vector<Engine *> &engines, Pool &pool,
            Tick ticks, bool reference, LockstepSerial *serial,
            obs::Profiler *profiler = nullptr)
{
    const int shards = static_cast<int>(engines.size());
    const Tick start = engines.front()->now();
    const Tick end = start + ticks;

    // One control word, written by lane 0 while every other lane
    // waits at the decision barrier, read by all lanes after it.
    struct Control
    {
        enum class Op { Step, Skip, Done };
        Op op = Op::Step;
        Tick now = 0;
        Tick target = 0;
        bool sample = false;
    };
    Control ctl;
    SpinBarrier barrier(shards);

    // Choose the next move on the shared timeline. Runs only while
    // the other lanes are parked at the decision barrier, so it may
    // read every engine freely.
    auto decide = [&] {
        const Tick now = engines.front()->now();
        ctl.now = now;
        if (now >= end) {
            ctl.op = Control::Op::Done;
            return;
        }
        ctl.sample = serial != nullptr && serial->serialDue(now);
        ctl.op = Control::Op::Step;
        if (reference)
            return;
        for (Engine *engine : engines) {
            if (!engine->allIdle())
                return;
        }
        Tick target = end;
        for (Engine *engine : engines) {
            const Tick next_event = engine->nextEventTick();
            if (next_event == kTickNever)
                continue;
            if (next_event <= now)
                return;
            target = std::min(target, next_event);
        }
        if (target <= now)
            return;
        ctl.op = Control::Op::Skip;
        ctl.target = target;
    };

    auto lane = [&](int s) {
        Engine &engine = *engines[static_cast<std::size_t>(s)];
        obs::PhaseSlot *slot =
            profiler != nullptr ? &profiler->slot(s, 0) : nullptr;
        for (;;) {
            if (s == 0)
                decide();
            {
                obs::ScopedPhase wait(slot, obs::Phase::BarrierWait);
                barrier.arrive(); // decision published
            }
            if (ctl.op == Control::Op::Done)
                break;
            if (ctl.op == Control::Op::Skip) {
                engine.jumpIdleTo(ctl.target);
                if (s == 0 && serial != nullptr)
                    serial->serialSkip(ctl.target);
                obs::ScopedPhase wait(slot, obs::Phase::BarrierWait);
                barrier.arrive(); // all shards at ctl.target
                continue;
            }
            engine.beginTick();
            {
                obs::ScopedPhase wait(slot, obs::Phase::BarrierWait);
                barrier.arrive(); // phase A complete fabric-wide
            }
            if (s == 0 && ctl.sample) {
                // Serial work between the phases: every component has
                // run this tick, no channel has rotated yet — the same
                // point in the cycle where an engine-registered
                // sampler fires sequentially (it is always the last
                // Clocked added). Concurrent finishTick() on other
                // lanes only rotates channels, which the hook may not
                // read.
                serial->serialTick(ctl.now);
            }
            engine.finishTick();
            {
                obs::ScopedPhase wait(slot, obs::Phase::BarrierWait);
                barrier.arrive(); // rotation complete fabric-wide
            }
        }
    };

    pool.parallelRegion(shards, lane);
}

} // namespace sim
} // namespace locsim

#endif // LOCSIM_SIM_LOCKSTEP_HH_
