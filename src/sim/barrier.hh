/**
 * @file
 * A sense-reversing spin barrier for lockstep simulation shards.
 *
 * The sharded driver synchronizes its shard lanes several times per
 * simulated network cycle; at that frequency (tens of nanoseconds of
 * useful work between synchronization points) a futex-based barrier
 * would spend more time parking and waking threads than simulating.
 * Spinning keeps each lane on its core, and the sense flip lets the
 * same object be reused for every window without resetting.
 */

#ifndef LOCSIM_SIM_BARRIER_HH_
#define LOCSIM_SIM_BARRIER_HH_

#include <atomic>
#include <cstdint>
#include <thread>

namespace locsim {
namespace sim {

/**
 * Reusable barrier for a fixed set of @p parties spinning threads.
 *
 * arrive() provides acquire-release ordering across the barrier:
 * everything written by any lane before it arrives is visible to
 * every lane after it is released. That ordering is what makes the
 * sharded fabric's cross-shard mailboxes and remote wake words safe
 * without further synchronization.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(int parties) : parties_(parties) {}

    SpinBarrier(const SpinBarrier &) = delete;
    SpinBarrier &operator=(const SpinBarrier &) = delete;

    /** Block (spinning) until all parties have arrived. */
    void
    arrive()
    {
        const bool sense = !sense_.load(std::memory_order_relaxed);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            // Last arrival: reset the count and release the others.
            arrived_.store(0, std::memory_order_relaxed);
            sense_.store(sense, std::memory_order_release);
        } else {
            // Busy-wait: with a core per lane the others re-arrive
            // within microseconds. Past the spin bound, assume the
            // machine is oversubscribed (fewer cores than lanes) and
            // yield so the remaining lanes can be scheduled at all.
            int spins = 0;
            while (sense_.load(std::memory_order_acquire) != sense) {
                if (++spins >= kSpinLimit) {
                    std::this_thread::yield();
                    spins = 0;
                }
            }
        }
    }

  private:
    static constexpr int kSpinLimit = 4096;

    const int parties_;
    std::atomic<int> arrived_{0};
    std::atomic<bool> sense_{false};
};

} // namespace sim
} // namespace locsim

#endif // LOCSIM_SIM_BARRIER_HH_
