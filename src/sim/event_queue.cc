/**
 * @file
 * EventQueue implementation.
 */

#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace locsim {
namespace sim {

void
EventQueue::schedule(Tick when, Callback fn)
{
    LOCSIM_ASSERT(fn, "scheduling a null callback");
    heap_.push_back(Event{when, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Tick
EventQueue::nextTick() const
{
    return heap_.empty() ? kTickNever : heap_.front().when;
}

std::size_t
EventQueue::runUntil(Tick now)
{
    std::size_t executed = 0;
    while (!heap_.empty() && heap_.front().when <= now) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        // Move out before invoking so the callback can schedule new
        // events (the vector may grow/reallocate under it).
        Event event = std::move(heap_.back());
        heap_.pop_back();
        event.fn();
        ++executed;
    }
    return executed;
}

void
EventQueue::clear()
{
    heap_.clear();
}

} // namespace sim
} // namespace locsim
