/**
 * @file
 * EventQueue implementation.
 */

#include "sim/event_queue.hh"

#include <utility>

#include "util/logging.hh"

namespace locsim {
namespace sim {

void
EventQueue::schedule(Tick when, Callback fn)
{
    LOCSIM_ASSERT(fn, "scheduling a null callback");
    heap_.push(Event{when, next_seq_++, std::move(fn)});
}

Tick
EventQueue::nextTick() const
{
    return heap_.empty() ? kTickNever : heap_.top().when;
}

std::size_t
EventQueue::runUntil(Tick now)
{
    std::size_t executed = 0;
    while (!heap_.empty() && heap_.top().when <= now) {
        // Copy out before pop so the callback can schedule new events.
        Event event = heap_.top();
        heap_.pop();
        event.fn();
        ++executed;
    }
    return executed;
}

void
EventQueue::clear()
{
    heap_ = {};
}

} // namespace sim
} // namespace locsim
