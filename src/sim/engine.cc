/**
 * @file
 * Engine implementation.
 */

#include "sim/engine.hh"

#include <algorithm>

#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "sim/channel.hh"
#include "util/logging.hh"

namespace locsim {
namespace sim {

void
Engine::addClocked(Clocked *component, Tick period, Tick offset)
{
    LOCSIM_ASSERT(component != nullptr, "null clocked component");
    LOCSIM_ASSERT(period >= 1, "clock period must be >= 1");
    LOCSIM_ASSERT(offset < period, "clock offset must be < period");
    // First due tick >= now_ with next_due == offset (mod period).
    Tick next_due = offset;
    if (now_ > offset) {
        next_due =
            offset + ((now_ - offset + period - 1) / period) * period;
    }
    clocked_.push_back({component, period, offset, next_due});
}

void
Engine::addChannel(Rotatable *channel)
{
    LOCSIM_ASSERT(channel != nullptr, "null channel");
    channels_.push_back(channel);
    channel->bindDirtyList(&dirty_channels_);
    // A channel can be registered with values already staged (or be
    // re-registered after manual use); make sure it rotates this tick.
    if (channel->dirty())
        dirty_channels_.push_back(channel);
}

void
Engine::beginTick()
{
    // Inclusive of the component ticks dispatched below: RouterScan /
    // Coherence scopes recorded by components nest inside this one.
    obs::ScopedPhase profile(profile_slot_,
                             obs::Phase::EngineDispatch);

    // Fire any events due at the current time before components tick,
    // so event effects are visible within this cycle.
    events_.runUntil(now_);

    if (mode_ == StepMode::Reference) {
        for (auto &entry : clocked_) {
            if ((now_ + entry.period - entry.offset) % entry.period ==
                0) {
                entry.component->tick(now_);
                entry.next_due = now_ + entry.period;
            }
        }
    } else {
        for (auto &entry : clocked_) {
            if (now_ == entry.next_due) {
                entry.component->tick(now_);
                entry.next_due += entry.period;
            }
        }
    }
}

void
Engine::finishTick()
{
    obs::ScopedPhase profile(profile_slot_, obs::Phase::LinkRotation);

    if (mode_ == StepMode::Reference) {
        // Dumb stepping: rotate every channel, every tick. Clean
        // channels are invariant under rotate(), so this differs from
        // the dirty-list path only in wasted work.
        for (Rotatable *channel : channels_)
            channel->rotate();
    } else {
        // Only channels pushed this cycle need rotating. rotate() may
        // not push into other channels, so the list is stable here.
        for (Rotatable *channel : dirty_channels_)
            channel->rotate();
    }
    dirty_channels_.clear();
    ++now_;
}

bool
Engine::allIdle() const
{
    // Values staged outside a tick (e.g. a test pushing a channel by
    // hand before run()) must rotate on schedule, not after a skip.
    if (!dirty_channels_.empty())
        return false;
    for (const auto &entry : clocked_) {
        if (entry.component->busy())
            return false;
    }
    return true;
}

void
Engine::jumpIdleTo(Tick target)
{
    obs::ScopedPhase profile(profile_slot_, obs::Phase::Quiescence);

    LOCSIM_ASSERT(target > now_, "jumpIdleTo must move time forward");
    for (auto &entry : clocked_) {
        if (entry.next_due < target) {
            const Tick skipped =
                (target - entry.next_due + entry.period - 1) /
                entry.period;
            entry.component->skipIdle(skipped);
            entry.next_due += skipped * entry.period;
        }
    }
    skipped_ticks_ += target - now_;
    if (tracer_ != nullptr) {
        tracer_->complete(trace_track_, now_, target - now_,
                          "fast_forward", obs::Category::Engine);
    }
    now_ = target;
}

void
Engine::tryFastForward(Tick end)
{
    if (!allIdle())
        return;

    // Everyone is idle: nothing can happen until the next scheduled
    // event wakes a component (or the run window closes).
    Tick target = end;
    const Tick next_event = events_.nextTick();
    if (next_event != kTickNever) {
        if (next_event <= now_)
            return; // due immediately; step normally
        target = std::min(end, next_event);
    }
    if (target <= now_)
        return;

    jumpIdleTo(target);
}

void
Engine::traceRun(Tick start, Tick skipped_before)
{
    if (tracer_ == nullptr || now_ == start)
        return;
    tracer_->complete(
        trace_track_, start, now_ - start, "run",
        obs::Category::Engine,
        std::move(obs::Args().add("skipped_ticks",
                                  skipped_ticks_ - skipped_before))
            .str());
}

void
Engine::restoreTime(Tick now, Tick skipped)
{
    LOCSIM_ASSERT(dirty_channels_.empty(),
                  "restoreTime with staged channel values");
    LOCSIM_ASSERT(events_.empty(),
                  "restoreTime with events pending; restore time "
                  "before components re-arm their wakeups");
    now_ = now;
    skipped_ticks_ = skipped;
    for (auto &entry : clocked_) {
        Tick next_due = entry.offset;
        if (now_ > entry.offset) {
            next_due = entry.offset +
                       ((now_ - entry.offset + entry.period - 1) /
                        entry.period) *
                           entry.period;
        }
        entry.next_due = next_due;
    }
}

void
Engine::run(Tick ticks)
{
    const Tick start = now_;
    const Tick skipped_before = skipped_ticks_;
    const Tick end = now_ + ticks;
    while (now_ < end) {
        if (mode_ == StepMode::Activity) {
            tryFastForward(end);
            if (now_ >= end)
                break;
        }
        stepOneTick();
    }
    traceRun(start, skipped_before);
}

bool
Engine::runUntil(const std::function<bool()> &done, Tick max_ticks)
{
    const Tick start = now_;
    const Tick skipped_before = skipped_ticks_;
    const Tick end = now_ + max_ticks;
    while (now_ < end) {
        if (done()) {
            traceRun(start, skipped_before);
            return true;
        }
        if (mode_ == StepMode::Activity) {
            tryFastForward(end);
            if (now_ >= end)
                break;
        }
        stepOneTick();
    }
    traceRun(start, skipped_before);
    return done();
}

} // namespace sim
} // namespace locsim
