/**
 * @file
 * Engine implementation.
 */

#include "sim/engine.hh"

#include "sim/channel.hh"
#include "util/logging.hh"

namespace locsim {
namespace sim {

void
Engine::addClocked(Clocked *component, Tick period, Tick offset)
{
    LOCSIM_ASSERT(component != nullptr, "null clocked component");
    LOCSIM_ASSERT(period >= 1, "clock period must be >= 1");
    LOCSIM_ASSERT(offset < period, "clock offset must be < period");
    clocked_.push_back({component, period, offset});
}

void
Engine::addChannel(Rotatable *channel)
{
    LOCSIM_ASSERT(channel != nullptr, "null channel");
    channels_.push_back(channel);
}

void
Engine::stepOneTick()
{
    // Fire any events due at the current time before components tick,
    // so event effects are visible within this cycle.
    events_.runUntil(now_);

    for (const auto &entry : clocked_) {
        if ((now_ + entry.period - entry.offset) % entry.period == 0)
            entry.component->tick(now_);
    }
    for (Rotatable *channel : channels_)
        channel->rotate();
    ++now_;
}

void
Engine::run(Tick ticks)
{
    const Tick end = now_ + ticks;
    while (now_ < end)
        stepOneTick();
}

bool
Engine::runUntil(const std::function<bool()> &done, Tick max_ticks)
{
    const Tick end = now_ + max_ticks;
    while (now_ < end) {
        if (done())
            return true;
        stepOneTick();
    }
    return done();
}

} // namespace sim
} // namespace locsim
