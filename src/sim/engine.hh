/**
 * @file
 * The cycle-driven simulation engine.
 *
 * The engine advances a global tick counter; clocked components
 * register with a clock period (in ticks) and phase offset and have
 * their tick() method invoked on matching ticks. All inter-component
 * communication flows through Channel objects registered with the
 * engine, which rotates them at the end of every tick so that values
 * pushed in cycle t are visible in cycle t+1.
 *
 * In the Alewife-like machine, network switches run at period 1 and
 * processors/controllers at period `ratio` (default 2), mirroring the
 * paper's "network switches are clocked twice as fast as processors".
 */

#ifndef LOCSIM_SIM_ENGINE_HH_
#define LOCSIM_SIM_ENGINE_HH_

#include <functional>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace locsim {
namespace sim {

class Rotatable;

/** Interface for components driven by the engine's clock. */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Advance one cycle of this component's clock. */
    virtual void tick(Tick now) = 0;
};

/**
 * Drives a set of Clocked components and latched channels.
 *
 * Not copyable; registered components and channels must outlive the
 * engine or be removed before destruction (the engine does not own
 * them).
 */
class Engine
{
  public:
    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Register a clocked component.
     *
     * @param component the component; not owned.
     * @param period clock period in ticks (>= 1).
     * @param offset phase offset in ticks (< period).
     */
    void addClocked(Clocked *component, Tick period = 1,
                    Tick offset = 0);

    /** Register a channel to be rotated at the end of every tick. */
    void addChannel(Rotatable *channel);

    /** Current simulation time. */
    Tick now() const { return now_; }

    /** Event queue sharing this engine's timeline. */
    EventQueue &events() { return events_; }

    /** Advance the simulation by @p ticks cycles. */
    void run(Tick ticks);

    /**
     * Advance until @p done returns true (checked once per tick,
     * before that tick executes) or @p max_ticks elapse.
     *
     * @return true if the predicate fired, false on timeout.
     */
    bool runUntil(const std::function<bool()> &done, Tick max_ticks);

  private:
    void stepOneTick();

    struct ClockedEntry
    {
        Clocked *component;
        Tick period;
        Tick offset;
    };

    Tick now_ = 0;
    std::vector<ClockedEntry> clocked_;
    std::vector<Rotatable *> channels_;
    EventQueue events_;
};

} // namespace sim
} // namespace locsim

#endif // LOCSIM_SIM_ENGINE_HH_
