/**
 * @file
 * The cycle-driven simulation engine.
 *
 * The engine advances a global tick counter; clocked components
 * register with a clock period (in ticks) and phase offset and have
 * their tick() method invoked on matching ticks. All inter-component
 * communication flows through Channel objects registered with the
 * engine, which rotates them at the end of the tick they were pushed
 * in so that values pushed in cycle t are visible in cycle t+1.
 *
 * In the Alewife-like machine, network switches run at period 1 and
 * processors/controllers at period `ratio` (default 2), mirroring the
 * paper's "network switches are clocked twice as fast as processors".
 *
 * Activity tracking (StepMode::Activity, the default):
 *  - each clocked entry carries a precomputed next-due tick, so firing
 *    a component is a single compare instead of a per-entry modulo;
 *  - only channels pushed this cycle are rotated (see Rotatable's
 *    dirty list); a clean channel is invariant under rotation;
 *  - when every component reports idle via Clocked::busy(), the engine
 *    fast-forwards time to the next event-queue wakeup (or the end of
 *    the run), crediting skipped cycles via Clocked::skipIdle() so
 *    time-based statistics (e.g. processor idle cycles) stay exact.
 *
 * StepMode::Reference disables all three optimizations (modulo scan,
 * rotate every channel, never skip) and is kept as the oracle for the
 * equivalence tests: both modes must produce tick-for-tick identical
 * simulation results.
 */

#ifndef LOCSIM_SIM_ENGINE_HH_
#define LOCSIM_SIM_ENGINE_HH_

#include <functional>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace locsim {

namespace obs {
class PhaseSlot;
class Tracer;
}

namespace sim {

class Rotatable;

/** Interface for components driven by the engine's clock. */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Advance one cycle of this component's clock. */
    virtual void tick(Tick now) = 0;

    /**
     * Activity report: true if this component has (or may have) work
     * to do on its upcoming ticks. The engine only skips ticks while
     * every registered component reports idle, so a conservative
     * "always busy" default is safe for components that do not
     * implement the protocol.
     */
    virtual bool busy() const { return true; }

    /**
     * Credit @p ticks skipped component ticks. Called instead of
     * tick() when the engine fast-forwards over a globally quiescent
     * stretch; implementations must account exactly what an idle
     * tick() would have (e.g. idle-cycle counters) and nothing else.
     */
    virtual void skipIdle(Tick ticks) { (void)ticks; }
};

/**
 * Drives a set of Clocked components and latched channels.
 *
 * Not copyable; registered components and channels must outlive the
 * engine or be removed before destruction (the engine does not own
 * them).
 */
class Engine
{
  public:
    /** Stepping strategy; see the file comment. */
    enum class StepMode {
        Activity,  //!< next-due scheduling, dirty rotation, skipping
        Reference, //!< poll everything every tick (equivalence oracle)
    };

    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Register a clocked component.
     *
     * @param component the component; not owned.
     * @param period clock period in ticks (>= 1).
     * @param offset phase offset in ticks (< period).
     */
    void addClocked(Clocked *component, Tick period = 1,
                    Tick offset = 0);

    /** Register a channel to be rotated when pushed. */
    void addChannel(Rotatable *channel);

    /** Select the stepping strategy (results are identical in both). */
    void setStepMode(StepMode mode) { mode_ = mode; }
    StepMode stepMode() const { return mode_; }

    /** Current simulation time. */
    Tick now() const { return now_; }

    /** Event queue sharing this engine's timeline. */
    EventQueue &events() { return events_; }

    /** Advance the simulation by @p ticks cycles. */
    void run(Tick ticks);

    /**
     * Advance until @p done returns true (checked once per tick,
     * before that tick executes) or @p max_ticks elapse.
     *
     * Note: while the machine is globally quiescent the engine only
     * re-evaluates the predicate at event-queue wakeups; a predicate
     * that depends on nothing but now() may therefore be observed
     * later (never earlier) than in Reference mode. Predicates over
     * component state are unaffected: that state cannot change while
     * every component is idle.
     *
     * @return true if the predicate fired, false on timeout.
     */
    bool runUntil(const std::function<bool()> &done, Tick max_ticks);

    /** Ticks elided by quiescence fast-forwarding (diagnostics). */
    Tick skippedTicks() const { return skipped_ticks_; }

    /**
     * @name Lockstep stepping (sharded driver interface)
     *
     * The sharded machine driver advances K engines over one shared
     * timeline by splitting a tick into its two phases: beginTick()
     * fires events and due clocked components at now(); finishTick()
     * rotates the channels pushed this cycle and advances now(). The
     * split is safe to run concurrently across engines because latched
     * channels make intra-cycle tick order irrelevant, and rotation
     * only touches channels owned by (registered with) this engine.
     * run() is exactly a loop of beginTick()+finishTick() with
     * tryFastForward() between iterations.
     */
    ///@{
    /** Phase A: run due events, then tick due clocked components. */
    void beginTick();

    /** Phase B: rotate dirty channels (all in Reference), ++now(). */
    void finishTick();

    /**
     * True when nothing can happen before the next event-queue wakeup:
     * no staged channel values and every component reports idle.
     */
    bool allIdle() const;

    /** Next event-queue wakeup (kTickNever when empty). */
    Tick nextEventTick() const { return events_.nextTick(); }

    /**
     * Jump now() to @p target (> now()), crediting skipped component
     * ticks via skipIdle(). Caller must have established allIdle().
     */
    void jumpIdleTo(Tick target);

    /**
     * Emit the "run" trace span run() would have produced for the
     * window [@p start, now()). The sharded driver bypasses run(), so
     * it closes each shard's window explicitly.
     */
    void
    emitRunSpan(Tick start, Tick skipped_before)
    {
        traceRun(start, skipped_before);
    }
    ///@}

    /**
     * Restore the timeline from a checkpoint: set now()/skippedTicks()
     * and recompute every registered component's next-due tick exactly
     * as if the components had been registered at this time (same
     * formula as addClocked). Preconditions: no staged channel values
     * and an empty event queue — callers re-schedule wakeups from
     * their own serialized state afterwards.
     */
    void restoreTime(Tick now, Tick skipped);

    /**
     * Attach a structured tracer (nullptr to detach; not owned). The
     * engine emits a "run" span per run()/runUntil() call and a
     * "fast_forward" span per quiescence skip on @p track.
     */
    void
    setTracer(obs::Tracer *tracer, int track)
    {
        tracer_ = tracer;
        trace_track_ = track;
    }

    /**
     * Attach a phase-profiler slot (nullptr to detach; not owned).
     * beginTick() records Phase::EngineDispatch (inclusive of the
     * component ticks it dispatches), finishTick() LinkRotation, and
     * jumpIdleTo() Quiescence. With a null slot each scope costs one
     * predictable branch — the same discipline as the tracer.
     */
    void setProfiler(obs::PhaseSlot *slot) { profile_slot_ = slot; }

  private:
    void stepOneTick()
    {
        beginTick();
        finishTick();
    }

    /** Trace one completed run window (no-op without a tracer). */
    void traceRun(Tick start, Tick skipped_before);

    /**
     * If every component is idle, jump now_ to the next event-queue
     * wakeup (capped at @p end), crediting skipped component ticks.
     */
    void tryFastForward(Tick end);

    struct ClockedEntry
    {
        Clocked *component;
        Tick period;
        Tick offset;
        Tick next_due;
    };

    Tick now_ = 0;
    StepMode mode_ = StepMode::Activity;
    std::vector<ClockedEntry> clocked_;
    std::vector<Rotatable *> channels_;
    std::vector<Rotatable *> dirty_channels_;
    EventQueue events_;
    Tick skipped_ticks_ = 0;
    obs::Tracer *tracer_ = nullptr;
    int trace_track_ = 0;
    obs::PhaseSlot *profile_slot_ = nullptr;
};

} // namespace sim
} // namespace locsim

#endif // LOCSIM_SIM_ENGINE_HH_
