/**
 * @file
 * A small discrete-event queue usable alongside (or instead of) the
 * cycle-driven engine. Components that sleep for long, data-dependent
 * intervals (e.g. a processor stalled on a memory transaction) can
 * schedule wakeups instead of being polled every cycle.
 */

#ifndef LOCSIM_SIM_EVENT_QUEUE_HH_
#define LOCSIM_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace locsim {
namespace sim {

/**
 * A priority queue of (tick, sequence, callback) events.
 *
 * Events scheduled for the same tick fire in scheduling order, which
 * keeps runs deterministic.
 *
 * Implemented as a binary heap over a plain vector (std::push_heap /
 * std::pop_heap) rather than std::priority_queue: top() on the
 * adapter is const, which would force copying each std::function
 * callback on pop. The vector heap lets runUntil() move callbacks
 * out before invoking them.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p fn to run at absolute time @p when. */
    void schedule(Tick when, Callback fn);

    /** True if no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event (kTickNever if empty). */
    Tick nextTick() const;

    /**
     * Run all events scheduled at ticks <= @p now, in time order.
     * Events may schedule further events (including at @p now).
     *
     * @return number of events executed.
     */
    std::size_t runUntil(Tick now);

    /** Drop all pending events. */
    void clear();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;
    };

    /** Heap order: the earliest (when, seq) is the "largest". */
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::vector<Event> heap_;
    std::uint64_t next_seq_ = 0;
};

} // namespace sim
} // namespace locsim

#endif // LOCSIM_SIM_EVENT_QUEUE_HH_
