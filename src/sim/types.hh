/**
 * @file
 * Fundamental simulation types shared by all simulator modules.
 */

#ifndef LOCSIM_SIM_TYPES_HH_
#define LOCSIM_SIM_TYPES_HH_

#include <cstdint>

namespace locsim {
namespace sim {

/**
 * Simulation time. One tick is one cycle of the fastest clock in the
 * machine (the network clock in the default Alewife-like
 * configuration, which clocks switches twice as fast as processors).
 */
using Tick = std::uint64_t;

/** Sentinel for "no tick" / unscheduled. */
inline constexpr Tick kTickNever = ~Tick{0};

/** Identifies a processing node (0 .. N-1). */
using NodeId = std::uint32_t;

/** Sentinel node id. */
inline constexpr NodeId kNodeNone = ~NodeId{0};

} // namespace sim
} // namespace locsim

#endif // LOCSIM_SIM_TYPES_HH_
