/**
 * @file
 * Latched FIFO channels for cycle-driven simulation.
 *
 * All communication between clocked components goes through Channel
 * objects. A value pushed during cycle t becomes visible to the
 * consumer no earlier than cycle t+1 (the engine rotates the channel
 * at the end of the tick in which it was pushed). This gives clean
 * two-phase semantics: the order in which components are ticked within
 * a cycle cannot affect simulation results.
 *
 * Rotation is activity-tracked: a channel marks itself dirty on the
 * first push of a cycle and (when bound to an engine) appends itself
 * to the engine's dirty list, so the engine only rotates channels
 * that actually staged values this cycle. A channel with an empty
 * staging queue is invariant under rotate(), so skipping clean
 * channels is exactly equivalent to the rotate-everything reference
 * behaviour.
 */

#ifndef LOCSIM_SIM_CHANNEL_HH_
#define LOCSIM_SIM_CHANNEL_HH_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "util/logging.hh"

namespace locsim {
namespace sim {

/**
 * Type-erased interface the engine uses to rotate channels.
 *
 * Holds the per-cycle dirty flag and the (engine-owned) dirty list a
 * channel enrols itself in on the first push of a cycle. Channels not
 * bound to an engine (unit tests driving rotate() by hand) simply
 * keep the flag local.
 */
class Rotatable
{
  public:
    virtual ~Rotatable() = default;

    /** Move this cycle's pushes into the visible queue. */
    virtual void rotate() = 0;

    /**
     * Bind this channel to an engine's dirty list. Called by
     * Engine::addChannel; the list must outlive the channel's use.
     */
    void bindDirtyList(std::vector<Rotatable *> *list)
    {
        dirty_list_ = list;
    }

    /** True if values were staged since the last rotate(). */
    bool dirty() const { return dirty_; }

    /**
     * Bind a consumer-side wake word: every push ORs @p bit into
     * @p mask. A consumer with many input channels can latch the mask
     * once per cycle and visit only the channels that staged values,
     * instead of polling every channel for emptiness. The mask must
     * outlive the channel's use.
     */
    void
    bindWake(std::uint32_t *mask, std::uint32_t bit)
    {
        wake_mask_ = mask;
        wake_bit_ = bit;
        remote_wake_ = nullptr;
    }

    /**
     * Bind a *cross-shard* consumer wake word instead of a plain one.
     * The producer and consumer live on different shard engines, so
     * the wake must not be delivered at push time (the consumer may
     * latch its wake words concurrently in the same tick phase).
     * Instead rotate() — which runs in the barrier-separated rotation
     * phase — ORs @p bit into the atomic @p mask; the consumer drains
     * it at the start of the next tick, exactly when a same-shard wake
     * would become observable. Replaces any bindWake() binding.
     */
    void
    bindRemoteWake(std::atomic<std::uint32_t> *mask, std::uint32_t bit)
    {
        remote_wake_ = mask;
        wake_mask_ = nullptr;
        wake_bit_ = bit;
    }

  protected:
    /** Called by push implementations to flag the bound wake word. */
    void
    notifyWake()
    {
        if (wake_mask_ != nullptr)
            *wake_mask_ |= wake_bit_;
    }

    /**
     * Called by rotate() implementations *before* clearing dirty_:
     * delivers the deferred cross-shard wake when values latched.
     */
    void
    notifyRemoteWake()
    {
        if (remote_wake_ != nullptr && dirty_) {
            remote_wake_->fetch_or(wake_bit_,
                                   std::memory_order_relaxed);
        }
    }
    /** Record a push; enrols in the engine's dirty list once per cycle. */
    void
    markDirty()
    {
        if (dirty_)
            return;
        dirty_ = true;
        if (dirty_list_ != nullptr)
            dirty_list_->push_back(this);
    }

    /** Cleared by rotate() implementations. */
    bool dirty_ = false;

  private:
    std::vector<Rotatable *> *dirty_list_ = nullptr;
    std::uint32_t *wake_mask_ = nullptr;
    std::atomic<std::uint32_t> *remote_wake_ = nullptr;
    std::uint32_t wake_bit_ = 0;
};

/**
 * A bounded FIFO with one cycle of latching delay.
 *
 * Capacity limits the total occupancy (visible + in-flight). Producers
 * must check canPush() before pushing; consumers check empty() before
 * popping. This models a buffered physical channel: capacity
 * corresponds to buffer slots on the receiving side.
 */
template <typename T>
class Channel : public Rotatable
{
  public:
    /** @param capacity maximum occupancy; 0 means unbounded. */
    explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

    /** True if a push this cycle would not exceed capacity. */
    bool
    canPush() const
    {
        return capacity_ == 0 || size() < capacity_;
    }

    /** Enqueue a value; becomes visible after the next rotate(). */
    void
    push(T value)
    {
        LOCSIM_ASSERT(canPush(), "push on full channel");
        staged_.push_back(std::move(value));
        markDirty();
        notifyWake();
    }

    /** True if no value is currently visible to the consumer. */
    bool empty() const { return visible_.empty(); }

    /** Peek the oldest visible value. */
    const T &
    front() const
    {
        LOCSIM_ASSERT(!empty(), "front() on empty channel");
        return visible_.front();
    }

    /** Dequeue the oldest visible value. */
    T
    pop()
    {
        LOCSIM_ASSERT(!empty(), "pop() on empty channel");
        T value = std::move(visible_.front());
        visible_.pop_front();
        return value;
    }

    /** Total occupancy: visible plus staged. */
    std::size_t size() const { return visible_.size() + staged_.size(); }

    /** Number of values currently visible to the consumer. */
    std::size_t visibleSize() const { return visible_.size(); }

    std::size_t capacity() const { return capacity_; }

    void
    rotate() override
    {
        notifyRemoteWake();
        dirty_ = false;
        // Invariant: rotation drains the staging queue completely, so
        // when the visible queue is empty the whole staged contents
        // become the visible contents — an O(1) deque swap instead of
        // an element-by-element move.
        if (visible_.empty()) {
            visible_.swap(staged_);
            return;
        }
        while (!staged_.empty()) {
            visible_.push_back(std::move(staged_.front()));
            staged_.pop_front();
        }
    }

    /** Discard all contents (for reuse between runs). */
    void
    clear()
    {
        visible_.clear();
        staged_.clear();
        dirty_ = false;
    }

  private:
    std::size_t capacity_;
    std::deque<T> visible_;
    std::deque<T> staged_;
};

} // namespace sim
} // namespace locsim

#endif // LOCSIM_SIM_CHANNEL_HH_
