/**
 * @file
 * Latched FIFO channels for cycle-driven simulation.
 *
 * All communication between clocked components goes through Channel
 * objects. A value pushed during cycle t becomes visible to the
 * consumer no earlier than cycle t+1 (the engine rotates every channel
 * at the end of each tick). This gives clean two-phase semantics: the
 * order in which components are ticked within a cycle cannot affect
 * simulation results.
 */

#ifndef LOCSIM_SIM_CHANNEL_HH_
#define LOCSIM_SIM_CHANNEL_HH_

#include <cstddef>
#include <deque>

#include "util/logging.hh"

namespace locsim {
namespace sim {

/** Type-erased interface the engine uses to rotate channels. */
class Rotatable
{
  public:
    virtual ~Rotatable() = default;

    /** Move this cycle's pushes into the visible queue. */
    virtual void rotate() = 0;
};

/**
 * A bounded FIFO with one cycle of latching delay.
 *
 * Capacity limits the total occupancy (visible + in-flight). Producers
 * must check canPush() before pushing; consumers check empty() before
 * popping. This models a buffered physical channel: capacity
 * corresponds to buffer slots on the receiving side.
 */
template <typename T>
class Channel : public Rotatable
{
  public:
    /** @param capacity maximum occupancy; 0 means unbounded. */
    explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

    /** True if a push this cycle would not exceed capacity. */
    bool
    canPush() const
    {
        return capacity_ == 0 || size() < capacity_;
    }

    /** Enqueue a value; becomes visible after the next rotate(). */
    void
    push(T value)
    {
        LOCSIM_ASSERT(canPush(), "push on full channel");
        staged_.push_back(std::move(value));
    }

    /** True if no value is currently visible to the consumer. */
    bool empty() const { return visible_.empty(); }

    /** Peek the oldest visible value. */
    const T &
    front() const
    {
        LOCSIM_ASSERT(!empty(), "front() on empty channel");
        return visible_.front();
    }

    /** Dequeue the oldest visible value. */
    T
    pop()
    {
        LOCSIM_ASSERT(!empty(), "pop() on empty channel");
        T value = std::move(visible_.front());
        visible_.pop_front();
        return value;
    }

    /** Total occupancy: visible plus staged. */
    std::size_t size() const { return visible_.size() + staged_.size(); }

    /** Number of values currently visible to the consumer. */
    std::size_t visibleSize() const { return visible_.size(); }

    std::size_t capacity() const { return capacity_; }

    void
    rotate() override
    {
        while (!staged_.empty()) {
            visible_.push_back(std::move(staged_.front()));
            staged_.pop_front();
        }
    }

    /** Discard all contents (for reuse between runs). */
    void
    clear()
    {
        visible_.clear();
        staged_.clear();
    }

  private:
    std::size_t capacity_;
    std::deque<T> visible_;
    std::deque<T> staged_;
};

} // namespace sim
} // namespace locsim

#endif // LOCSIM_SIM_CHANNEL_HH_
