/**
 * @file
 * RunReport implementation: a small streaming JSON emitter (no
 * library dependency; ASCII-only output the minimal validator in
 * tests/json_checker.hh accepts) plus the host/profile sections.
 */

#include "obs/report.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/build_info.hh"
#include "obs/profiler.hh"
#include "util/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace locsim {
namespace obs {

namespace {

/** Escape a string for a JSON literal (ASCII-only output). */
std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size() + 2);
    for (const char c : in) {
        const auto u = static_cast<unsigned char>(c);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (u < 0x20 || u >= 0x80) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
jsonString(const std::string &in)
{
    return "\"" + jsonEscape(in) + "\"";
}

/** Render a double compactly; JSON has no inf/nan, clamp to 0. */
std::string
jsonNumber(double value)
{
    if (!(value == value) || value > 1e308 || value < -1e308)
        return "0";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

std::string
hostName()
{
#if defined(__unix__) || defined(__APPLE__)
    char buf[256] = {0};
    if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0')
        return buf;
#endif
    return "unknown";
}

const char *
hostOs()
{
#if defined(__linux__)
    return "linux";
#elif defined(__APPLE__)
    return "darwin";
#elif defined(_WIN32)
    return "windows";
#else
    return "unknown";
#endif
}

const char *
hostArch()
{
#if defined(__x86_64__) || defined(_M_X64)
    return "x86_64";
#elif defined(__aarch64__)
    return "aarch64";
#elif defined(__arm__)
    return "arm";
#else
    return "unknown";
#endif
}

void
writePhases(std::ostream &os, const PhaseTotals &totals,
            const char *indent)
{
    os << "{";
    bool first = true;
    for (int p = 0; p < kPhaseCount; ++p) {
        const auto i = static_cast<std::size_t>(p);
        if (totals.count[i] == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\n" << indent << "  "
           << jsonString(phaseName(static_cast<Phase>(p)))
           << ": {\"ns\": " << totals.ns[i]
           << ", \"count\": " << totals.count[i] << "}";
    }
    if (!first)
        os << "\n" << indent;
    os << "}";
}

/** max/mean of per-entry totals (1.0 for empty or all-zero). */
double
maxOverMean(const std::vector<std::uint64_t> &totals)
{
    std::uint64_t max = 0, sum = 0;
    for (const std::uint64_t v : totals) {
        sum += v;
        if (v > max)
            max = v;
    }
    if (totals.empty() || sum == 0)
        return 1.0;
    const double mean = static_cast<double>(sum) /
                        static_cast<double>(totals.size());
    return static_cast<double>(max) / mean;
}

} // namespace

RunReport::RunReport(std::string tool) : tool_(std::move(tool)) {}

void
RunReport::setArgv(int argc, const char *const *argv)
{
    argv_.assign(argv, argv + argc);
}

void
RunReport::setArgv(std::vector<std::string> argv)
{
    argv_ = std::move(argv);
}

void
RunReport::addConfig(const std::string &name, const std::string &value)
{
    config_.push_back({name, jsonString(value)});
}

void
RunReport::addConfig(const std::string &name, const char *value)
{
    addConfig(name, std::string(value));
}

void
RunReport::addConfig(const std::string &name, long long value)
{
    config_.push_back({name, std::to_string(value)});
}

void
RunReport::addConfig(const std::string &name, std::uint64_t value)
{
    config_.push_back({name, std::to_string(value)});
}

void
RunReport::addConfig(const std::string &name, bool value)
{
    config_.push_back({name, value ? "true" : "false"});
}

void
RunReport::addConfig(const std::string &name, double value)
{
    config_.push_back({name, jsonNumber(value)});
}

void
RunReport::addSimulation(const std::string &label,
                         const std::string &sim_key)
{
    simulations_.emplace_back(label, sim_key);
}

void
RunReport::setCounters(
    std::vector<std::pair<std::string, std::uint64_t>> counters)
{
    counters_ = std::move(counters);
}

void
RunReport::setProfile(const Profiler *profiler, double wall_seconds)
{
    profiler_ = profiler;
    wall_seconds_ = wall_seconds;
}

void
RunReport::write(std::ostream &os) const
{
    os << "{\n";
    os << "  \"schema\": \"locsim-run-report-v1\",\n";
    os << "  \"tool\": " << jsonString(tool_) << ",\n";

    os << "  \"argv\": [";
    for (std::size_t i = 0; i < argv_.size(); ++i)
        os << (i > 0 ? ", " : "") << jsonString(argv_[i]);
    os << "],\n";

    os << "  \"build\": {\n"
       << "    \"git_sha\": " << jsonString(buildGitSha()) << ",\n"
       << "    \"compiler\": " << jsonString(buildCompiler()) << ",\n"
       << "    \"flags\": " << jsonString(buildFlags()) << ",\n"
       << "    \"build_type\": " << jsonString(buildType()) << ",\n"
       << "    \"assertions\": "
       << (buildAssertionsEnabled() ? "true" : "false") << "\n"
       << "  },\n";

    os << "  \"host\": {\n"
       << "    \"hostname\": " << jsonString(hostName()) << ",\n"
       << "    \"cores\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "    \"os\": " << jsonString(hostOs()) << ",\n"
       << "    \"arch\": " << jsonString(hostArch()) << "\n"
       << "  },\n";

    os << "  \"config\": {";
    for (std::size_t i = 0; i < config_.size(); ++i) {
        os << (i > 0 ? "," : "") << "\n    "
           << jsonString(config_[i].name) << ": "
           << config_[i].rendered;
    }
    os << (config_.empty() ? "" : "\n  ") << "},\n";

    os << "  \"simulations\": [";
    for (std::size_t i = 0; i < simulations_.size(); ++i) {
        os << (i > 0 ? "," : "") << "\n    {\"label\": "
           << jsonString(simulations_[i].first)
           << ", \"sim_key\": " << jsonString(simulations_[i].second)
           << "}";
    }
    os << (simulations_.empty() ? "" : "\n  ") << "],\n";

    os << "  \"counters\": {";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        os << (i > 0 ? "," : "") << "\n    "
           << jsonString(counters_[i].first) << ": "
           << counters_[i].second;
    }
    os << (counters_.empty() ? "" : "\n  ") << "},\n";

    // Everything below is wall-clock-derived and therefore
    // nondeterministic across reruns; nothing nondeterministic may be
    // emitted outside this object (see the file comment).
    os << "  \"profile\": {\n"
       << "    \"enabled\": "
       << (profiler_ != nullptr ? "true" : "false") << ",\n"
       << "    \"wall_seconds\": " << jsonNumber(wall_seconds_);
    if (profiler_ != nullptr) {
        os << ",\n    \"phases\": ";
        writePhases(os, profiler_->totals(), "    ");

        std::vector<std::uint64_t> shard_ns;
        os << ",\n    \"shards\": [";
        for (int s = 0; s < profiler_->shards(); ++s) {
            const PhaseTotals t = profiler_->shardTotals(s);
            const std::uint64_t total = t.totalNs();
            const std::uint64_t barrier = t.ns[static_cast<std::size_t>(
                Phase::BarrierWait)];
            shard_ns.push_back(total);
            const double share =
                total > 0 ? static_cast<double>(barrier) /
                                static_cast<double>(total)
                          : 0.0;
            os << (s > 0 ? "," : "") << "\n      {\"shard\": " << s
               << ", \"total_ns\": " << total
               << ", \"barrier_wait_ns\": " << barrier
               << ", \"barrier_wait_share\": " << jsonNumber(share)
               << "}";
        }
        os << "\n    ],\n";

        std::vector<std::uint64_t> lane_ns;
        os << "    \"lanes\": [";
        for (int l = 0; l < profiler_->lanes(); ++l) {
            const PhaseTotals t = profiler_->laneTotals(l);
            lane_ns.push_back(t.totalNs());
            os << (l > 0 ? "," : "") << "\n      {\"lane\": " << l
               << ", \"total_ns\": " << t.totalNs()
               << ", \"phases\": ";
            writePhases(os, t, "      ");
            os << "}";
        }
        os << "\n    ],\n";

        os << "    \"imbalance\": {\"shard_max_over_mean\": "
           << jsonNumber(maxOverMean(shard_ns))
           << ", \"lane_max_over_mean\": "
           << jsonNumber(maxOverMean(lane_ns)) << "}";
    }
    os << "\n  }\n";
    os << "}\n";
}

void
RunReport::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        LOCSIM_FATAL("cannot open --run-report file '", path, "'");
    write(os);
    if (!os)
        LOCSIM_FATAL("error writing --run-report file '", path, "'");
}

void
writeProfileTable(std::ostream &os, const Profiler &profiler,
                  const std::string &title)
{
    const PhaseTotals grid = profiler.totals();
    const std::uint64_t grid_ns = grid.totalNs();
    os << "\n=== profile: " << title << " ===\n";
    if (grid_ns == 0) {
        os << "(no phases recorded)\n";
        return;
    }
    if (profiler.shards() > 1) {
        os << "per-shard barrier-wait share:\n";
        for (int s = 0; s < profiler.shards(); ++s) {
            const PhaseTotals t = profiler.shardTotals(s);
            const std::uint64_t total = t.totalNs();
            const std::uint64_t barrier =
                t.ns[static_cast<std::size_t>(Phase::BarrierWait)];
            char line[128];
            std::snprintf(line, sizeof(line),
                          "  shard %2d: %10.3f ms total, "
                          "barrier %6.2f%%\n",
                          s,
                          static_cast<double>(total) / 1e6,
                          total > 0
                              ? 100.0 * static_cast<double>(barrier) /
                                    static_cast<double>(total)
                              : 0.0);
            os << line;
        }
    }
    os << "per-lane phase shares (of the lane's total):\n";
    for (int l = 0; l < profiler.lanes(); ++l) {
        const PhaseTotals t = profiler.laneTotals(l);
        const std::uint64_t total = t.totalNs();
        char head[96];
        std::snprintf(head, sizeof(head),
                      "  lane %2d: %10.3f ms\n", l,
                      static_cast<double>(total) / 1e6);
        os << head;
        if (total == 0)
            continue;
        for (int p = 0; p < kPhaseCount; ++p) {
            const auto i = static_cast<std::size_t>(p);
            if (t.count[i] == 0)
                continue;
            char line[128];
            std::snprintf(
                line, sizeof(line),
                "    %-18s %10.3f ms  %6.2f%%  (%llu scopes)\n",
                phaseName(static_cast<Phase>(p)),
                static_cast<double>(t.ns[i]) / 1e6,
                100.0 * static_cast<double>(t.ns[i]) /
                    static_cast<double>(total),
                static_cast<unsigned long long>(t.count[i]));
            os << line;
        }
    }
}

} // namespace obs
} // namespace locsim
