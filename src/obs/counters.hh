/**
 * @file
 * Process-wide counter registry: one named, dumpable interface over
 * the counters that previously lived as ad-hoc fields scattered
 * across layers (simulation-cache hits/misses/dedup, engine skipped
 * ticks, router allocation stalls, cross-shard remote wakes, ...).
 *
 * Producers either accumulate deltas (`add`, e.g. every Machine adds
 * its fabric's totals at destruction so a sweep's counters sum over
 * all of its simulations) or publish an authoritative value (`set`,
 * e.g. the harness mirroring the sim cache's lifetime stats at
 * report time). Consumers take a sorted snapshot — the run manifest's
 * "counters" section is exactly `process().snapshot()`.
 *
 * The registry is deliberately off the simulation hot path: it is
 * touched at machine construction/destruction and report time only,
 * behind a mutex. Counter values are execution diagnostics, not
 * simulated results — they may legitimately vary with --shards /
 * --batch (e.g. remote wakes only exist when shards > 1) but are
 * deterministic for a fixed command line.
 */

#ifndef LOCSIM_OBS_COUNTERS_HH_
#define LOCSIM_OBS_COUNTERS_HH_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace locsim {
namespace obs {

/** Named monotonic counters, keyed by dotted lower-snake names. */
class CounterRegistry
{
  public:
    /** The process-wide registry. */
    static CounterRegistry &process();

    CounterRegistry() = default;
    CounterRegistry(const CounterRegistry &) = delete;
    CounterRegistry &operator=(const CounterRegistry &) = delete;

    /** Accumulate @p delta onto @p name (creating it at 0). */
    void add(const std::string &name, std::uint64_t delta);

    /** Overwrite @p name with @p value (creating it). */
    void set(const std::string &name, std::uint64_t value);

    /** All counters, sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>>
    snapshot() const;

    /** Drop every counter (tests; a fresh-run baseline). */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace obs
} // namespace locsim

#endif // LOCSIM_OBS_COUNTERS_HH_
