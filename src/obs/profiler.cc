/**
 * @file
 * Phase-name table for the host-side profiler.
 */

#include "obs/profiler.hh"

namespace locsim {
namespace obs {

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::EngineDispatch:
        return "engine_dispatch";
      case Phase::RouterScan:
        return "router_scan";
      case Phase::RouterKernel:
        return "router_kernel";
      case Phase::LinkRotation:
        return "link_rotation";
      case Phase::Coherence:
        return "coherence";
      case Phase::BarrierWait:
        return "barrier_wait";
      case Phase::Quiescence:
        return "quiescence";
      case Phase::CheckpointSave:
        return "checkpoint_save";
      case Phase::CheckpointRestore:
        return "checkpoint_restore";
      case Phase::CacheProbe:
        return "cache_probe";
      case Phase::CacheStore:
        return "cache_store";
    }
    return "unknown";
}

} // namespace obs
} // namespace locsim
