/**
 * @file
 * MetricsSampler implementation.
 */

#include "obs/sampler.hh"

#include <ostream>

#include "util/logging.hh"

namespace locsim {
namespace obs {

MetricsSampler::MetricsSampler(sim::Tick period, double hist_range)
    : period_(period), hist_range_(hist_range)
{
    LOCSIM_ASSERT(period >= 1, "sample period must be >= 1 tick");
}

void
MetricsSampler::addGauge(std::string name, Probe fn)
{
    probes_.emplace_back(std::move(name), Kind::Gauge, std::move(fn),
                         hist_range_);
}

void
MetricsSampler::addRate(std::string name, Probe fn, double scale)
{
    ProbeEntry entry(std::move(name), Kind::Rate, std::move(fn),
                     hist_range_);
    entry.scale = scale;
    entry.prev = entry.fn();
    probes_.push_back(std::move(entry));
}

void
MetricsSampler::addMean(std::string name, Probe sum_fn, Probe count_fn)
{
    ProbeEntry entry(std::move(name), Kind::Mean, std::move(sum_fn),
                     hist_range_);
    entry.count_fn = std::move(count_fn);
    entry.prev = entry.fn();
    entry.prev_count = entry.count_fn();
    probes_.push_back(std::move(entry));
}

void
MetricsSampler::attachTracer(Tracer *tracer)
{
    tracer_ = tracer;
    if (tracer_ == nullptr)
        return;
    for (auto &probe : probes_) {
        if (probe.counter_track < 0)
            probe.counter_track =
                tracer_->newTrack("sampler." + probe.name);
        probe.counter_name = tracer_->intern(probe.name);
    }
}

void
MetricsSampler::sample(sim::Tick when)
{
    times_.push_back(when);
    for (auto &probe : probes_) {
        double value = 0.0;
        switch (probe.kind) {
          case Kind::Gauge:
            value = probe.fn();
            break;
          case Kind::Rate: {
            const double now_value = probe.fn();
            value = probe.scale * (now_value - probe.prev) /
                    static_cast<double>(period_);
            probe.prev = now_value;
            break;
          }
          case Kind::Mean: {
            const double now_sum = probe.fn();
            const double now_count = probe.count_fn();
            const double dc = now_count - probe.prev_count;
            value = dc > 0.0 ? (now_sum - probe.prev) / dc : 0.0;
            probe.prev = now_sum;
            probe.prev_count = now_count;
            break;
          }
        }
        probe.series.push_back(value);
        probe.summary.update(when, value);
        probe.hist.add(value);
        if (tracer_ != nullptr) {
            tracer_->counter(probe.counter_track, when,
                             probe.counter_name, value);
        }
    }
}

void
MetricsSampler::tick(sim::Tick now)
{
    LOCSIM_ASSERT(now == next_sample_,
                  "sampler ticked off its own schedule: tick ", now,
                  " expected ", next_sample_,
                  " (register with period()==", period_,
                  " and offset 0)");
    sample(now);
    next_sample_ = now + period_;
}

void
MetricsSampler::skipIdle(sim::Tick ticks)
{
    // The engine skipped `ticks` of our sample points while the whole
    // machine was quiescent. Component state is frozen over the
    // stretch, so sampling the probes now yields exactly the values a
    // Reference-mode tick at each skipped point would have seen; only
    // the timestamps need reconstructing.
    for (sim::Tick i = 0; i < ticks; ++i) {
        sample(next_sample_);
        next_sample_ += period_;
    }
}

const std::string &
MetricsSampler::probeName(std::size_t i) const
{
    LOCSIM_ASSERT(i < probes_.size(), "probe index out of range");
    return probes_[i].name;
}

const std::vector<double> &
MetricsSampler::series(std::size_t i) const
{
    LOCSIM_ASSERT(i < probes_.size(), "probe index out of range");
    return probes_[i].series;
}

const stats::TimeWeighted &
MetricsSampler::summary(std::size_t i) const
{
    LOCSIM_ASSERT(i < probes_.size(), "probe index out of range");
    return probes_[i].summary;
}

const stats::Histogram &
MetricsSampler::histogram(std::size_t i) const
{
    LOCSIM_ASSERT(i < probes_.size(), "probe index out of range");
    return probes_[i].hist;
}

void
MetricsSampler::clearSamples()
{
    times_.clear();
    for (auto &probe : probes_) {
        probe.series.clear();
        probe.summary.reset();
        probe.hist.reset();
        if (probe.kind == Kind::Rate || probe.kind == Kind::Mean)
            probe.prev = probe.fn();
        if (probe.kind == Kind::Mean)
            probe.prev_count = probe.count_fn();
    }
}

void
MetricsSampler::writeCsv(std::ostream &os) const
{
    os << "time";
    for (const auto &probe : probes_)
        os << ',' << probe.name;
    os << '\n';
    for (std::size_t row = 0; row < times_.size(); ++row) {
        os << times_[row];
        for (const auto &probe : probes_)
            os << ',' << probe.series[row];
        os << '\n';
    }
}

void
MetricsSampler::writeJson(std::ostream &os) const
{
    os << "{\"period\":" << period_ << ",\"time\":[";
    for (std::size_t i = 0; i < times_.size(); ++i)
        os << (i ? "," : "") << times_[i];
    os << "],\"series\":{";
    for (std::size_t p = 0; p < probes_.size(); ++p) {
        std::string name;
        appendJsonEscaped(name, probes_[p].name.c_str());
        os << (p ? "," : "") << '"' << name << "\":[";
        const auto &series = probes_[p].series;
        for (std::size_t i = 0; i < series.size(); ++i)
            os << (i ? "," : "") << series[i];
        os << ']';
    }
    os << "}}\n";
}

} // namespace obs
} // namespace locsim
