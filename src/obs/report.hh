/**
 * @file
 * Per-run JSON manifest ("run report"): the machine-readable artifact
 * every harness can emit via --run-report PATH, recording what ran
 * (tool, argv, config, per-simulation cache keys), on what (build
 * provenance, host), what it counted (the process counter registry,
 * cache stats via counters), and where host time went (the phase
 * profiler's per-shard / per-lane breakdown).
 *
 * Schema "locsim-run-report-v1". Layout contract: every field that
 * can differ between two identical invocations (wall-clock times,
 * phase nanoseconds) lives under the top-level "profile" object, so
 * "manifest minus the profile subtree" is byte-deterministic for a
 * fixed command line — the property tests/profiler_test.cc pins and
 * the future sweep service will rely on for artifact dedup.
 */

#ifndef LOCSIM_OBS_REPORT_HH_
#define LOCSIM_OBS_REPORT_HH_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace locsim {
namespace obs {

class Profiler;

/** Builder for one run manifest. */
class RunReport
{
  public:
    explicit RunReport(std::string tool);

    /** Record the invocation's argv (argv[0] included). */
    void setArgv(int argc, const char *const *argv);
    void setArgv(std::vector<std::string> argv);

    /** @name Config section (insertion order preserved). */
    ///@{
    void addConfig(const std::string &name, const std::string &value);
    void addConfig(const std::string &name, const char *value);
    void addConfig(const std::string &name, long long value);
    void addConfig(const std::string &name, std::uint64_t value);
    void addConfig(const std::string &name, bool value);
    void addConfig(const std::string &name, double value);
    ///@}

    /** One simulated point: display label + content-address key
     *  (empty when no cache key was derived). */
    void addSimulation(const std::string &label,
                       const std::string &sim_key);

    /** The counters section (typically CounterRegistry snapshot). */
    void setCounters(
        std::vector<std::pair<std::string, std::uint64_t>> counters);

    /**
     * Attach the profile section: the profiler's totals (null =
     * profiling disabled; the section is still emitted with
     * "enabled": false) and the run's wall-clock seconds. The
     * profiler is read at write() time, not here.
     */
    void setProfile(const Profiler *profiler, double wall_seconds);

    /** Emit the manifest. */
    void write(std::ostream &os) const;

    /** write() to @p path; fatal when the file cannot be opened. */
    void writeFile(const std::string &path) const;

  private:
    struct ConfigEntry
    {
        std::string name;
        std::string rendered; //!< pre-rendered JSON value
    };

    std::string tool_;
    std::vector<std::string> argv_;
    std::vector<ConfigEntry> config_;
    std::vector<std::pair<std::string, std::string>> simulations_;
    std::vector<std::pair<std::string, std::uint64_t>> counters_;
    const Profiler *profiler_ = nullptr;
    double wall_seconds_ = 0.0;
};

/**
 * Human-readable per-lane phase breakdown of @p profiler (the
 * micro_perf --profile stdout table): one row per (lane, phase) with
 * time share, preceded by a per-shard barrier-wait summary when the
 * grid has more than one shard.
 */
void writeProfileTable(std::ostream &os, const Profiler &profiler,
                       const std::string &title);

} // namespace obs
} // namespace locsim

#endif // LOCSIM_OBS_REPORT_HH_
