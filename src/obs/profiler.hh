/**
 * @file
 * Host-side phase profiler: low-overhead wall-clock attribution of
 * the simulator's own hot loop.
 *
 * The tracer and sampler (trace.hh, sampler.hh) observe *simulated*
 * time; the profiler observes where *host* cycles go — router scans,
 * link rotation, coherence processing, engine event dispatch, barrier
 * waits, quiescence fast-forwards, checkpoint I/O, and cache probes —
 * aggregated on a (shard, batch lane) grid so shard imbalance and
 * lane cost become first-class numbers.
 *
 * Discipline mirrors the tracer's null-sink contract: every
 * instrumentation point holds a `PhaseSlot *` that is null when
 * profiling is off, and a ScopedPhase over a null slot is exactly one
 * predictable branch on entry and one on exit — no clock read, no
 * store. With profiling on, a scope is two steady_clock reads and two
 * relaxed atomic adds; nothing allocates after construction, so the
 * zero-allocation steady-state gates hold with profiling enabled.
 *
 * Phases nest: EngineDispatch spans a whole engine phase A, which
 * includes the RouterScan and Coherence ticks it dispatches, so
 * child-phase time is also counted inside the parent (exclusive time
 * is derivable by subtraction; tests/profiler_test.cc pins the
 * children <= parent invariant). Attribution convention: phases the
 * whole shard shares (dispatch, rotation, quiescence, barrier) land
 * on lane 0 of their shard; per-component phases (router scan,
 * coherence) carry their machine's lane; checkpoint and cache phases
 * land on the host slot (0, 0) unless the caller knows better.
 */

#ifndef LOCSIM_OBS_PROFILER_HH_
#define LOCSIM_OBS_PROFILER_HH_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace locsim {
namespace obs {

/** The fixed set of instrumented host-side phases. */
enum class Phase : int {
    EngineDispatch = 0, //!< engine phase A: events + clocked scan
    RouterScan,         //!< network tickShard (latch/eject/inject/route)
    RouterKernel,       //!< lane-vector latch/busy kernel inside tickShard
    LinkRotation,       //!< engine phase B: dirty-channel rotation
    Coherence,          //!< cache-controller protocol processing
    BarrierWait,        //!< lockstep barrier arrivals
    Quiescence,         //!< fast-forward jumps over idle stretches
    CheckpointSave,     //!< Machine::saveCheckpoint
    CheckpointRestore,  //!< Machine::restoreCheckpoint (and batch)
    CacheProbe,         //!< sim-cache key lookup / payload read
    CacheStore,         //!< sim-cache payload write
};

inline constexpr int kPhaseCount = 11;

/** Stable lower-snake name for manifests and tables. */
const char *phaseName(Phase phase);

/** A snapshot of one slot's (or an aggregate's) per-phase totals. */
struct PhaseTotals
{
    std::array<std::uint64_t, kPhaseCount> ns{};
    std::array<std::uint64_t, kPhaseCount> count{};

    std::uint64_t
    totalNs() const
    {
        std::uint64_t sum = 0;
        for (const std::uint64_t v : ns)
            sum += v;
        return sum;
    }

    void
    merge(const PhaseTotals &other)
    {
        for (int p = 0; p < kPhaseCount; ++p) {
            ns[static_cast<std::size_t>(p)] +=
                other.ns[static_cast<std::size_t>(p)];
            count[static_cast<std::size_t>(p)] +=
                other.count[static_cast<std::size_t>(p)];
        }
    }
};

/**
 * One accumulation cell. Counters are relaxed atomics so concurrent
 * recorders (sweep machines sharing one profiler, lockstep lanes) can
 * share a slot without synchronization; totals are only read at
 * serial points (report time).
 */
class PhaseSlot
{
  public:
    void
    record(Phase phase, std::uint64_t elapsed_ns)
    {
        const auto p = static_cast<std::size_t>(phase);
        ns_[p].fetch_add(elapsed_ns, std::memory_order_relaxed);
        count_[p].fetch_add(1, std::memory_order_relaxed);
    }

    PhaseTotals
    totals() const
    {
        PhaseTotals out;
        for (std::size_t p = 0; p < kPhaseCount; ++p) {
            out.ns[p] = ns_[p].load(std::memory_order_relaxed);
            out.count[p] = count_[p].load(std::memory_order_relaxed);
        }
        return out;
    }

  private:
    std::array<std::atomic<std::uint64_t>, kPhaseCount> ns_{};
    std::array<std::atomic<std::uint64_t>, kPhaseCount> count_{};
};

/**
 * The (shard, lane) slot grid for one run. Sized up front from the
 * harness's best guess; slot() clamps its indices, so a wrong guess
 * (LOCSIM_SHARDS overriding --shards, odd radixes) degrades to
 * coarser attribution instead of out-of-bounds access.
 */
class Profiler
{
  public:
    Profiler(int shards, int lanes)
        : shards_(shards < 1 ? 1 : shards),
          lanes_(lanes < 1 ? 1 : lanes),
          slots_(std::make_unique<PhaseSlot[]>(
              static_cast<std::size_t>(shards_) *
              static_cast<std::size_t>(lanes_)))
    {
    }

    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    int shards() const { return shards_; }
    int lanes() const { return lanes_; }

    /** The cell for (shard, lane); indices clamp into the grid. */
    PhaseSlot &
    slot(int shard, int lane)
    {
        const int s = shard < 0 ? 0
                      : shard >= shards_ ? shards_ - 1
                                         : shard;
        const int l = lane < 0 ? 0 : lane >= lanes_ ? lanes_ - 1 : lane;
        return slots_[static_cast<std::size_t>(s) *
                          static_cast<std::size_t>(lanes_) +
                      static_cast<std::size_t>(l)];
    }

    /** Process-level phases (cache probes, host work): cell (0, 0). */
    PhaseSlot &hostSlot() { return slot(0, 0); }

    /** Whole-grid aggregate. */
    PhaseTotals
    totals() const
    {
        PhaseTotals out;
        const std::size_t n = static_cast<std::size_t>(shards_) *
                              static_cast<std::size_t>(lanes_);
        for (std::size_t i = 0; i < n; ++i)
            out.merge(slots_[i].totals());
        return out;
    }

    /** Aggregate over one shard's lanes. */
    PhaseTotals
    shardTotals(int shard) const
    {
        PhaseTotals out;
        const std::size_t base = static_cast<std::size_t>(shard) *
                                 static_cast<std::size_t>(lanes_);
        for (int l = 0; l < lanes_; ++l)
            out.merge(slots_[base + static_cast<std::size_t>(l)]
                          .totals());
        return out;
    }

    /** Aggregate over one lane's shards. */
    PhaseTotals
    laneTotals(int lane) const
    {
        PhaseTotals out;
        for (int s = 0; s < shards_; ++s)
            out.merge(slots_[static_cast<std::size_t>(s) *
                                 static_cast<std::size_t>(lanes_) +
                             static_cast<std::size_t>(lane)]
                          .totals());
        return out;
    }

  private:
    int shards_;
    int lanes_;
    std::unique_ptr<PhaseSlot[]> slots_;
};

/**
 * RAII timer for one phase. A null @p slot (profiling off) costs one
 * predictable branch on entry and one on exit — the same null-sink
 * contract every tracer call site follows.
 */
class ScopedPhase
{
  public:
    ScopedPhase(PhaseSlot *slot, Phase phase)
        : slot_(slot), phase_(phase)
    {
        if (slot_ != nullptr)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedPhase()
    {
        if (slot_ != nullptr) {
            const auto elapsed =
                std::chrono::steady_clock::now() - start_;
            slot_->record(
                phase_,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(elapsed)
                        .count()));
        }
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    PhaseSlot *slot_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace obs
} // namespace locsim

#endif // LOCSIM_OBS_PROFILER_HH_
