/**
 * @file
 * Tracer implementation and Chrome trace_event JSON serialization.
 */

#include "obs/trace.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace locsim {
namespace obs {

const char *
categoryName(Category cat)
{
    switch (cat) {
      case Category::Engine:
        return "engine";
      case Category::Net:
        return "net";
      case Category::Coher:
        return "coher";
      case Category::Proc:
        return "proc";
      case Category::Sampler:
        return "sampler";
    }
    return "unknown";
}

Args &
Args::add(const char *key, std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    if (!body_.empty())
        body_.push_back(',');
    body_.push_back('"');
    body_.append(key);
    body_.append("\":");
    body_.append(buf);
    return *this;
}

Args &
Args::add(const char *key, std::int64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    if (!body_.empty())
        body_.push_back(',');
    body_.push_back('"');
    body_.append(key);
    body_.append("\":");
    body_.append(buf);
    return *this;
}

Args &
Args::add(const char *key, double value)
{
    char buf[48];
    // %g never emits the JSON-invalid bare "nan"/"inf" for the finite
    // statistics we trace; keep it short and round-trippable enough.
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    if (!body_.empty())
        body_.push_back(',');
    body_.push_back('"');
    body_.append(key);
    body_.append("\":");
    body_.append(buf);
    return *this;
}

Args &
Args::add(const char *key, const char *value)
{
    if (!body_.empty())
        body_.push_back(',');
    body_.push_back('"');
    body_.append(key);
    body_.append("\":\"");
    appendJsonEscaped(body_, value);
    body_.push_back('"');
    return *this;
}

void
appendJsonEscaped(std::string &out, const char *s)
{
    for (; *s != '\0'; ++s) {
        const char c = *s;
        switch (c) {
          case '"':
            out.append("\\\"");
            break;
          case '\\':
            out.append("\\\\");
            break;
          case '\n':
            out.append("\\n");
            break;
          case '\t':
            out.append("\\t");
            break;
          case '\r':
            out.append("\\r");
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out.append(buf);
            } else {
                out.push_back(c);
            }
        }
    }
}

Tracer::Tracer(const TraceConfig &config) : config_(config)
{
}

int
Tracer::newTrack(std::string name)
{
    tracks_.push_back(std::move(name));
    return static_cast<int>(tracks_.size() - 1);
}

const char *
Tracer::intern(const std::string &name)
{
    for (const std::string &existing : interned_) {
        if (existing == name)
            return existing.c_str();
    }
    interned_.push_back(name);
    return interned_.back().c_str();
}

void
Tracer::counter(int track, sim::Tick ts, const char *name,
                double value)
{
    record({ts, 0, 0, track, 'C', Category::Sampler, name,
            std::move(Args().add("value", value)).str()});
}

void
Tracer::record(Event event)
{
    if (config_.max_events != 0 &&
        events_.size() >= config_.max_events) {
        ++dropped_;
        return;
    }
    LOCSIM_ASSERT(event.track >= 0 &&
                      static_cast<std::size_t>(event.track) <
                          tracks_.size(),
                  "trace event on unallocated track ", event.track);
    events_.push_back(std::move(event));
}

namespace {

void
writeEventJson(std::ostream &os, const Event &e, int pid, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"name\":\"" << e.name << "\",\"cat\":\""
       << categoryName(e.cat) << "\",\"ph\":\"" << e.phase
       << "\",\"ts\":" << e.ts << ",\"pid\":" << pid
       << ",\"tid\":" << e.track;
    if (e.phase == 'X')
        os << ",\"dur\":" << e.dur;
    if (e.phase == 'b' || e.phase == 'e') {
        // Async spans match on (cat, id); scope the id to this shard.
        os << ",\"id\":" << e.id;
    }
    if (e.phase == 'C' || e.phase == 'b' || !e.args.empty())
        os << ",\"args\":{" << e.args << "}";
    os << "}";
}

void
writeMetadata(std::ostream &os, int pid, const char *kind,
              int tid, const std::string &name, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    std::string escaped;
    appendJsonEscaped(escaped, name.c_str());
    os << "{\"name\":\"" << kind << "\",\"ph\":\"M\",\"pid\":" << pid;
    if (tid >= 0)
        os << ",\"tid\":" << tid;
    os << ",\"args\":{\"name\":\"" << escaped << "\"}}";
}

} // namespace

void
Tracer::writeShard(std::ostream &os, int pid, bool &first) const
{
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        writeMetadata(os, pid, "thread_name", static_cast<int>(t),
                      tracks_[t], first);
    }
    for (const Event &e : events_)
        writeEventJson(os, e, pid, first);
}

void
Tracer::write(std::ostream &os) const
{
    writeMergedTrace(os, {this}, {"locsim"});
}

void
writeMergedTrace(std::ostream &os,
                 const std::vector<const Tracer *> &shards,
                 const std::vector<std::string> &shard_names)
{
    LOCSIM_ASSERT(shards.size() == shard_names.size(),
                  "one name per trace shard required");
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const int pid = static_cast<int>(i);
        writeMetadata(os, pid, "process_name", -1, shard_names[i],
                      first);
        shards[i]->writeShard(os, pid, first);
    }
    os << "\n]}\n";
}

} // namespace obs
} // namespace locsim
