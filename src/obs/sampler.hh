/**
 * @file
 * Periodic metrics sampling.
 *
 * A MetricsSampler is a low-rate sim::Clocked component that snapshots
 * a set of registered probes every `period` ticks into time-series,
 * for plotting model-vs-simulation divergence over time (channel
 * utilization rho, injection rate r_m, observed T_m, VC occupancy).
 *
 * Probes come in three kinds:
 *  - Gauge: record the probe's current value (e.g. buffered flits);
 *  - Rate:  record scale * d(value)/dt over the sample window (e.g.
 *           rho from a cumulative flit-hop counter);
 *  - Mean:  record d(sum)/d(count) over the window from a pair of
 *           cumulative sources (e.g. windowed mean message latency) —
 *           0 when the window saw no samples.
 *
 * Each probe also feeds a stats::TimeWeighted summary (its run-long
 * time-weighted mean) and a stats::Histogram of sampled values, so
 * summaries are available without post-processing the series.
 *
 * The sampler never keeps the engine awake: busy() is false, and
 * skipIdle() synthesizes the samples a quiescent stretch would have
 * produced (every probe reads component state, which by definition
 * cannot change while all components are idle, so the synthesized
 * samples are exactly what Reference-mode stepping records at the
 * same ticks).
 *
 * Series dump as CSV (one row per sample time) or JSON (columnar).
 */

#ifndef LOCSIM_OBS_SAMPLER_HH_
#define LOCSIM_OBS_SAMPLER_HH_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "sim/engine.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace locsim {
namespace obs {

/** Periodic snapshotting of registered metric probes. */
class MetricsSampler : public sim::Clocked
{
  public:
    using Probe = std::function<double()>;

    /**
     * @param period sample cadence in engine ticks (>= 1). Register
     *        with the engine at exactly this period and offset 0.
     * @param hist_range upper bound of each probe's value histogram
     *        ([0, hist_range) in 64 buckets).
     */
    explicit MetricsSampler(sim::Tick period,
                            double hist_range = 1024.0);

    /** Record @p fn() at every sample point. */
    void addGauge(std::string name, Probe fn);

    /**
     * Record scale * (fn() - previous fn()) / period. @p fn must be
     * cumulative (monotone); the first window is measured from the
     * value at registration time.
     */
    void addRate(std::string name, Probe fn, double scale = 1.0);

    /** Record d(sum)/d(count) per window; 0 for empty windows. */
    void addMean(std::string name, Probe sum_fn, Probe count_fn);

    /**
     * Also emit every sample as a counter event on @p tracer (one
     * counter track per probe is created on first use).
     */
    void attachTracer(Tracer *tracer);

    void tick(sim::Tick now) override;
    bool busy() const override { return false; }
    void skipIdle(sim::Tick ticks) override;

    sim::Tick period() const { return period_; }

    /** Sample timestamps (ticks). */
    const std::vector<sim::Tick> &times() const { return times_; }

    std::size_t probeCount() const { return probes_.size(); }
    const std::string &probeName(std::size_t i) const;

    /** Series for probe @p i, one value per entry of times(). */
    const std::vector<double> &series(std::size_t i) const;

    /** Run-long time-weighted mean of probe @p i's signal. */
    const stats::TimeWeighted &summary(std::size_t i) const;

    /** Distribution of probe @p i's sampled values. */
    const stats::Histogram &histogram(std::size_t i) const;

    /**
     * Drop recorded samples and restart the rate/mean windows from
     * the sources' current values (e.g. after warmup). Sample cadence
     * is unaffected.
     */
    void clearSamples();

    /** CSV dump: header "time,<probe>,...", one row per sample. */
    void writeCsv(std::ostream &os) const;

    /** Columnar JSON dump: {"period":..,"time":[..],"series":{..}}. */
    void writeJson(std::ostream &os) const;

  private:
    enum class Kind : std::uint8_t { Gauge, Rate, Mean };

    struct ProbeEntry
    {
        ProbeEntry(std::string name, Kind kind, Probe fn,
                   double hist_range)
            : name(std::move(name)), kind(kind), fn(std::move(fn)),
              hist(0.0, hist_range, 64)
        {
        }

        std::string name;
        Kind kind;
        Probe fn;
        Probe count_fn;       //!< Mean only
        double scale = 1.0;   //!< Rate only
        double prev = 0.0;    //!< previous cumulative value
        double prev_count = 0.0;
        std::vector<double> series;
        stats::TimeWeighted summary;
        stats::Histogram hist;
        int counter_track = -1;
        /** Tracer-interned copy of `name` (counter event names must
            outlive this sampler; see Tracer::intern). */
        const char *counter_name = "";
    };

    /** Take one sample stamped at @p when. */
    void sample(sim::Tick when);

    sim::Tick period_;
    double hist_range_;
    /** Mirror of the engine's next_due for this component. */
    sim::Tick next_sample_ = 0;
    std::vector<ProbeEntry> probes_;
    std::vector<sim::Tick> times_;
    Tracer *tracer_ = nullptr;
};

} // namespace obs
} // namespace locsim

#endif // LOCSIM_OBS_SAMPLER_HH_
