/**
 * @file
 * CounterRegistry implementation.
 */

#include "obs/counters.hh"

namespace locsim {
namespace obs {

CounterRegistry &
CounterRegistry::process()
{
    static CounterRegistry registry;
    return registry;
}

void
CounterRegistry::add(const std::string &name, std::uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void
CounterRegistry::set(const std::string &name, std::uint64_t value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] = value;
}

std::vector<std::pair<std::string, std::uint64_t>>
CounterRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {counters_.begin(), counters_.end()};
}

void
CounterRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
}

} // namespace obs
} // namespace locsim
