/**
 * @file
 * Structured event tracing for the whole simulator.
 *
 * A Tracer collects compact timestamped events from every simulated
 * layer — network flit/credit movement and message lifetimes, router
 * allocation stalls, cache-controller protocol transitions, processor
 * context switches, and engine fast-forward spans — onto named tracks
 * and serializes them in the Chrome trace_event JSON format, loadable
 * in Perfetto (ui.perfetto.dev) or chrome://tracing.
 *
 * Null-sink fast path: components hold a `Tracer *` that is null when
 * tracing is off, so the disabled cost is one predictable branch per
 * call site (argument formatting happens inside the branch). Tracing
 * is therefore compiled in unconditionally.
 *
 * One Tracer records one shard (one machine / one runner job).
 * writeMergedTrace() combines shards from a parallel sweep into a
 * single trace deterministically: shard order is the caller's
 * submission order and each shard becomes one trace "process".
 *
 * Time mapping: one simulation tick is rendered as one microsecond
 * ("ts"/"dur" are in us in the trace_event format), so Perfetto's
 * time axis reads directly in network cycles.
 */

#ifndef LOCSIM_OBS_TRACE_HH_
#define LOCSIM_OBS_TRACE_HH_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace locsim {
namespace obs {

/** Event source layer; becomes the trace_event "cat" field. */
enum class Category : std::uint8_t {
    Engine,  //!< simulation engine (run windows, fast-forward spans)
    Net,     //!< network fabric (messages, flits, stalls)
    Coher,   //!< cache-controller protocol transitions
    Proc,    //!< processor context switches
    Sampler, //!< periodic metrics counters
};

/** Stable category name used in the serialized trace. */
const char *categoryName(Category cat);

/** How much network detail to record. */
enum class TraceDetail : std::uint8_t {
    /** Message lifetimes and protocol/processor/engine events only. */
    Message,
    /** Additionally every flit forward and router allocation stall. */
    Flit,
};

/** Knobs for one trace shard. */
struct TraceConfig
{
    /** Master switch; when false no Tracer is created at all. */
    bool enabled = false;
    TraceDetail detail = TraceDetail::Message;
    /**
     * Retained-event cap per shard; once reached, further events are
     * counted in dropped() but not stored (bounded memory on long
     * runs). 0 means unlimited.
     */
    std::size_t max_events = 1u << 20;
};

/**
 * One recorded event. `name` must point at a string literal (or other
 * storage outliving the tracer); every call site traces fixed event
 * names, so this keeps the hot path allocation-free apart from args.
 */
struct Event
{
    sim::Tick ts = 0;
    sim::Tick dur = 0;       //!< Complete events only
    std::uint64_t id = 0;    //!< Async events only
    std::int32_t track = 0;
    char phase = 'i';        //!< trace_event "ph": i, X, b, e, C
    Category cat = Category::Engine;
    const char *name = "";
    /** Pre-rendered JSON object body for "args" (may be empty). */
    std::string args;
};

/**
 * Tiny builder for the "args" payload: renders a flat JSON object
 * body ("\"k\":v,...") without pulling in a JSON library.
 */
class Args
{
  public:
    Args &add(const char *key, std::uint64_t value);
    Args &add(const char *key, std::int64_t value);
    Args &add(const char *key, int value)
    {
        return add(key, static_cast<std::int64_t>(value));
    }
    Args &add(const char *key, unsigned value)
    {
        return add(key, static_cast<std::uint64_t>(value));
    }
    Args &add(const char *key, double value);
    /** String values are JSON-escaped. */
    Args &add(const char *key, const char *value);

    std::string str() && { return std::move(body_); }

  private:
    std::string body_;
};

/** Append @p s to @p out with JSON string escaping (no quotes). */
void appendJsonEscaped(std::string &out, const char *s);

/** One shard of trace events plus its track names. */
class Tracer
{
  public:
    explicit Tracer(const TraceConfig &config = {});

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    const TraceConfig &config() const { return config_; }

    /** Record flit-level detail? Call sites gate chatty events on this. */
    bool flitDetail() const
    {
        return config_.detail == TraceDetail::Flit;
    }

    /**
     * Allocate a track (a Perfetto "thread") with a stable name, e.g.
     * "net.12" or "engine". Returns the track id for event calls.
     */
    int newTrack(std::string name);

    /**
     * Copy @p name into tracer-owned storage and return a pointer that
     * stays valid for the tracer's lifetime. Use for Event names that
     * are not string literals (e.g. sampler probe names, whose owner
     * may be destroyed before the trace is written).
     */
    const char *intern(const std::string &name);

    /** Instant event (ph "i"). */
    void
    instant(int track, sim::Tick ts, const char *name, Category cat,
            std::string args = {})
    {
        record({ts, 0, 0, track, 'i', cat, name, std::move(args)});
    }

    /** Complete event (ph "X") spanning [ts, ts + dur). */
    void
    complete(int track, sim::Tick ts, sim::Tick dur, const char *name,
             Category cat, std::string args = {})
    {
        record({ts, dur, 0, track, 'X', cat, name, std::move(args)});
    }

    /** Async span begin (ph "b"); pair with asyncEnd via @p id. */
    void
    asyncBegin(int track, sim::Tick ts, std::uint64_t id,
               const char *name, Category cat, std::string args = {})
    {
        record({ts, 0, id, track, 'b', cat, name, std::move(args)});
    }

    /** Async span end (ph "e"). */
    void
    asyncEnd(int track, sim::Tick ts, std::uint64_t id,
             const char *name, Category cat, std::string args = {})
    {
        record({ts, 0, id, track, 'e', cat, name, std::move(args)});
    }

    /** Counter sample (ph "C"); renders as a time-series track. */
    void counter(int track, sim::Tick ts, const char *name,
                 double value);

    const std::vector<Event> &events() const { return events_; }
    const std::vector<std::string> &trackNames() const
    {
        return tracks_;
    }

    /** Events discarded after max_events was reached. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Serialize this shard as a self-contained trace
     * ({"traceEvents":[...]}) with pid 0.
     */
    void write(std::ostream &os) const;

  private:
    friend void writeMergedTrace(
        std::ostream &os, const std::vector<const Tracer *> &shards,
        const std::vector<std::string> &shard_names);

    void record(Event event);

    /** Emit this shard's events as pid @p pid (no envelope). */
    void writeShard(std::ostream &os, int pid, bool &first) const;

    TraceConfig config_;
    std::vector<Event> events_;
    std::vector<std::string> tracks_;
    /** intern() storage; deque so element addresses never move. */
    std::deque<std::string> interned_;
    std::uint64_t dropped_ = 0;
};

/**
 * Merge shards into one trace: shard i becomes pid i, named
 * @p shard_names[i]. Output is a deterministic function of the shard
 * list (no timestamps or ids are rewritten), so a parallel sweep that
 * collects shards in submission order produces identical traces for
 * any worker-thread count.
 */
void writeMergedTrace(std::ostream &os,
                      const std::vector<const Tracer *> &shards,
                      const std::vector<std::string> &shard_names);

} // namespace obs
} // namespace locsim

#endif // LOCSIM_OBS_TRACE_HH_
