/**
 * @file
 * Build provenance for run manifests and --build-info: the git
 * revision the build was configured from, the compiler, the flags,
 * and the feature macros that change behavior. Values are baked in
 * at CMake configure time (build_info.cc.in -> build_info.cc in the
 * build tree), so a source tree without git reports "unknown" and a
 * SHA can be one configure stale after a commit — provenance for
 * humans and CI artifacts, not a cryptographic identity.
 */

#ifndef LOCSIM_OBS_BUILD_INFO_HH_
#define LOCSIM_OBS_BUILD_INFO_HH_

#include <iosfwd>

namespace locsim {
namespace obs {

/** Abbreviated git revision at configure time ("unknown" without). */
const char *buildGitSha();

/** Compiler id and version (e.g. "GNU 13.2.0"). */
const char *buildCompiler();

/** Base CXX flags plus the active build type's flags. */
const char *buildFlags();

/** CMAKE_BUILD_TYPE (e.g. "Release"). */
const char *buildType();

/** True when LOCSIM_ASSERT is live (NDEBUG not defined). */
bool buildAssertionsEnabled();

/**
 * Print the provenance block (one "key: value" line each) — the
 * --build-info output, mirroring the manifest's "build" object.
 */
void printBuildInfo(std::ostream &os);

} // namespace obs
} // namespace locsim

#endif // LOCSIM_OBS_BUILD_INFO_HH_
