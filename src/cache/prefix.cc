/**
 * @file
 * PrefixPlanner implementation.
 *
 * The load-bearing invariant: every machine this file hands out is at
 * the same state, bit for bit, as a fresh machine advanced straight to
 * the warmup clock. Restores are followed by nothing — the checkpoint
 * IS the state — and production paths only ever compose restore +
 * advance, which tests/checkpoint_test.cc proves equivalent to a
 * straight advance.
 */

#include "cache/prefix.hh"

#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "cache/key.hh"

namespace locsim {
namespace cache {

namespace {

/** Build the machine a prefix image describes (no tracer/sampler:
 *  checkpoints require an unobserved machine; observers attach to the
 *  suffix run only, and sampled runs bypass the cache entirely). */
std::unique_ptr<machine::Machine>
freshMachine(const machine::MachineConfig &config,
             const workload::Mapping &mapping)
{
    machine::MachineConfig ckpt_config = config;
    ckpt_config.trace.enabled = false;
    ckpt_config.sample_period = 0;
    return std::make_unique<machine::Machine>(ckpt_config, mapping);
}

} // namespace

PrefixPlanner::PrefixPlanner(SimCache &store,
                             const PrefixOptions &options)
    : store_(store), options_(options)
{
}

std::vector<std::uint64_t>
PrefixPlanner::rungClocks(std::uint64_t warmup) const
{
    std::vector<std::uint64_t> clocks;
    const std::uint64_t stride = options_.rung_stride;
    if (stride == 0)
        return clocks;
    for (std::uint64_t clock = (warmup - 1) / stride * stride;
         clock > 0; clock -= stride)
        clocks.push_back(clock);
    return clocks;
}

std::unique_ptr<machine::Machine>
PrefixPlanner::produce(const machine::MachineConfig &config,
                       const workload::Mapping &mapping,
                       std::uint64_t warmup) const
{
    auto machine = freshMachine(config, mapping);
    std::uint64_t clock = 0;

    // Start from the longest stored rung below the warmup, if any.
    // A corrupt rung is dropped and the next-longest tried; clock 0
    // (a fresh machine) is always available.
    for (std::uint64_t rung : rungClocks(warmup)) {
        const std::string rung_key = prefixKey(config, mapping, rung);
        auto image = store_.lookupCheckpoint(rung_key);
        if (!image)
            continue;
        try {
            machine->restoreCheckpoint(*image);
            store_.getOrRunCheckpoint(rung_key,
                                      [&] { return *image; });
            clock = rung;
            break;
        } catch (const std::exception &) {
            store_.removeCheckpoint(rung_key);
            machine = freshMachine(config, mapping);
        }
    }

    // Advance rung to rung, materializing each image we pass so the
    // next near-miss warmup starts higher on the ladder.
    if (options_.rung_stride != 0) {
        const std::uint64_t stride = options_.rung_stride;
        for (std::uint64_t next = clock + stride; next < warmup;
             next += stride) {
            machine->advance(next - clock);
            clock = next;
            store_.getOrRunCheckpoint(
                prefixKey(config, mapping, clock),
                [&] { return machine->saveCheckpoint(); });
        }
    }
    if (warmup > clock)
        machine->advance(warmup - clock);
    return machine;
}

std::unique_ptr<machine::Machine>
PrefixPlanner::warmMachine(const machine::MachineConfig &config,
                           const workload::Mapping &mapping,
                           std::uint64_t warmup) const
{
    const std::string key = prefixKey(config, mapping, warmup);

    // Producer-reuse: when this caller wins the singleflight, it keeps
    // the machine it warmed and skips its own restore round trip;
    // every other caller (and every later process) restores from the
    // stored image.
    std::unique_ptr<machine::Machine> produced;
    auto image = store_.getOrRunCheckpoint(key, [&] {
        produced = produce(config, mapping, warmup);
        return produced->saveCheckpoint();
    });
    if (produced)
        return produced;

    auto machine = freshMachine(config, mapping);
    try {
        machine->restoreCheckpoint(image);
        return machine;
    } catch (const std::exception &) {
        // Corrupt stored image (truncated file, stale format): drop
        // it and recompute. The recompute stores a good image.
    }
    store_.removeCheckpoint(key);
    produced.reset();
    store_.getOrRunCheckpoint(key, [&] {
        produced = produce(config, mapping, warmup);
        return produced->saveCheckpoint();
    });
    if (produced)
        return produced;
    // Another thread re-produced it first; restore from its bytes.
    auto retried = store_.lookupCheckpoint(key);
    if (!retried)
        throw std::runtime_error(
            "prefix image vanished during corruption recovery: " +
            key);
    machine = freshMachine(config, mapping);
    machine->restoreCheckpoint(*retried);
    return machine;
}

std::optional<std::vector<std::uint8_t>>
PrefixPlanner::lookupImage(const machine::MachineConfig &config,
                           const workload::Mapping &mapping,
                           std::uint64_t warmup) const
{
    return store_.lookupCheckpoint(prefixKey(config, mapping, warmup));
}

void
PrefixPlanner::noteRestored(const machine::MachineConfig &config,
                            const workload::Mapping &mapping,
                            std::uint64_t warmup,
                            const std::vector<std::uint8_t> &image)
    const
{
    store_.getOrRunCheckpoint(prefixKey(config, mapping, warmup),
                              [&] { return image; });
}

void
PrefixPlanner::dropImage(const machine::MachineConfig &config,
                         const workload::Mapping &mapping,
                         std::uint64_t warmup) const
{
    store_.removeCheckpoint(prefixKey(config, mapping, warmup));
}

void
PrefixPlanner::storeProducedImage(
    const machine::MachineConfig &config,
    const workload::Mapping &mapping, std::uint64_t warmup,
    const std::vector<std::uint8_t> &image) const
{
    store_.getOrRunCheckpoint(prefixKey(config, mapping, warmup),
                              [&] { return image; });
}

std::vector<std::string>
PrefixPlanner::distinctPrefixes(
    const std::vector<PrefixPoint> &points) const
{
    std::vector<std::string> keys;
    std::unordered_set<std::string> seen;
    for (const PrefixPoint &point : points) {
        std::string key =
            prefixKey(*point.config, *point.mapping, point.warmup);
        if (seen.insert(key).second)
            keys.push_back(std::move(key));
    }
    return keys;
}

} // namespace cache
} // namespace locsim
