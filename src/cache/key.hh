/**
 * @file
 * Content-addressed cache keys for simulation runs.
 *
 * A simulation's result is a pure function of its full configuration:
 * topology, node/processor/coherence parameters, workload and its
 * seeds, thread placement, and the warmup/window cycle budget. The
 * key canonicalizes all of it into a byte string (via the same
 * serializer the checkpoints use) and hashes it with SHA-256, so two
 * harness cells with identical inputs share one cache entry and any
 * parameter change — however small — misses cleanly.
 *
 * kCacheSchemaVersion is folded into the hash. Bump it whenever the
 * simulator's behavior changes in any observable way (protocol
 * timing, router arbitration, workload op sequence, Measurement
 * layout): stale entries then simply stop being found, which is the
 * only invalidation a content-addressed store needs.
 */

#ifndef LOCSIM_CACHE_KEY_HH_
#define LOCSIM_CACHE_KEY_HH_

#include <cstdint>
#include <string>

#include "machine/machine.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace cache {

/** Simulator behavior + payload layout version (see file comment).
 *  Version 2: message ids became per-source sequence numbers (the
 *  sharded-execution rework); byte-identical results, but a bumped
 *  version keeps pre-rework entries from being trusted untested. */
inline constexpr std::uint32_t kCacheSchemaVersion = 2;

/**
 * Prefix-entry schema version, folded into prefixKey alongside
 * kCacheSchemaVersion and the checkpoint format version. Bump it when
 * the *meaning* of a prefix entry changes (e.g. what state a prefix
 * image is expected to capture) without either of the other two
 * versions moving.
 */
inline constexpr std::uint32_t kPrefixSchemaVersion = 1;

/**
 * @name Config-field coverage tripwire
 *
 * Every MachineConfig field (and every field of its nested parameter
 * structs) must be either hashed by simKey/prefixKey or explicitly
 * whitelisted here as late-binding/execution-only. The counts below
 * are pinned against the real structs by tests/prefix_test.cc, which
 * counts aggregate fields at compile time: adding a field without
 * deciding its cache-key status fails that test with instructions.
 *
 * Late-binding / execution-only whitelist (NOT hashed, with reasons):
 *  - MachineConfig::shards    — partitions execution, results are
 *    bit-identical at every count (cache_test pins this);
 *  - MachineConfig::trace     — observability sink; runs with tracing
 *    attached bypass the cache entirely (HarnessOptions::cacheUsable);
 *  - MachineConfig::sample_period — same contract as trace;
 *  - MachineConfig::profiler  — host-side observer, never influences
 *    simulated state.
 * The warmup/window cycle budget is hashed by simKey but deliberately
 * NOT by prefixKey: it selects where measurement happens on a
 * trajectory fully determined by the fields above, which is exactly
 * what lets one prefix image serve many measurement windows.
 */
///@{
inline constexpr std::size_t kMachineConfigFields = 17;
inline constexpr std::size_t kProcessorConfigFields = 2;
inline constexpr std::size_t kProtocolConfigFields = 8;
inline constexpr std::size_t kRouterConfigFields = 2;
inline constexpr std::size_t kTorusAppConfigFields = 3;
inline constexpr std::size_t kUniformAppConfigFields = 3;
///@}

/**
 * The cache key for "construct Machine(config, mapping), advance
 * warmup processor cycles, measure a window of `window` cycles":
 * 64 lowercase hex chars.
 *
 * Tracing and sampling knobs are deliberately excluded: runs with
 * observability attached bypass the cache entirely (the caller
 * enforces this), and a traced run's Measurement is identical to an
 * untraced one.
 *
 * Execution knobs that cannot change results are excluded too:
 * MachineConfig::shards and the runner thread count never enter the
 * key, so a result computed sequentially is found by a sharded run
 * and vice versa (sharding is bit-identical by construction).
 */
std::string simKey(const machine::MachineConfig &config,
                   const workload::Mapping &mapping,
                   std::uint64_t warmup, std::uint64_t window);

/**
 * The cache key for "the complete state of Machine(config, mapping)
 * after advancing `clock` processor cycles from reset": 64 lowercase
 * hex chars. This is the address of a prefix *checkpoint image* — the
 * payload is Machine::saveCheckpoint() bytes, so the checkpoint
 * format version is folded into the hash alongside the behavior
 * schema version (a layout bump retires stored images, a behavior
 * bump retires them too).
 *
 * Hashes exactly the fields that influence the simulated trajectory
 * up to `clock` — everything simKey hashes EXCEPT the warmup/window
 * budget. Two sweep points that differ only in measurement window (or
 * in any whitelisted execution knob) share one prefix image; see the
 * late-binding whitelist above.
 */
std::string prefixKey(const machine::MachineConfig &config,
                      const workload::Mapping &mapping,
                      std::uint64_t clock);

} // namespace cache
} // namespace locsim

#endif // LOCSIM_CACHE_KEY_HH_
