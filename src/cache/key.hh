/**
 * @file
 * Content-addressed cache keys for simulation runs.
 *
 * A simulation's result is a pure function of its full configuration:
 * topology, node/processor/coherence parameters, workload and its
 * seeds, thread placement, and the warmup/window cycle budget. The
 * key canonicalizes all of it into a byte string (via the same
 * serializer the checkpoints use) and hashes it with SHA-256, so two
 * harness cells with identical inputs share one cache entry and any
 * parameter change — however small — misses cleanly.
 *
 * kCacheSchemaVersion is folded into the hash. Bump it whenever the
 * simulator's behavior changes in any observable way (protocol
 * timing, router arbitration, workload op sequence, Measurement
 * layout): stale entries then simply stop being found, which is the
 * only invalidation a content-addressed store needs.
 */

#ifndef LOCSIM_CACHE_KEY_HH_
#define LOCSIM_CACHE_KEY_HH_

#include <cstdint>
#include <string>

#include "machine/machine.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace cache {

/** Simulator behavior + payload layout version (see file comment).
 *  Version 2: message ids became per-source sequence numbers (the
 *  sharded-execution rework); byte-identical results, but a bumped
 *  version keeps pre-rework entries from being trusted untested. */
inline constexpr std::uint32_t kCacheSchemaVersion = 2;

/**
 * The cache key for "construct Machine(config, mapping), advance
 * warmup processor cycles, measure a window of `window` cycles":
 * 64 lowercase hex chars.
 *
 * Tracing and sampling knobs are deliberately excluded: runs with
 * observability attached bypass the cache entirely (the caller
 * enforces this), and a traced run's Measurement is identical to an
 * untraced one.
 *
 * Execution knobs that cannot change results are excluded too:
 * MachineConfig::shards and the runner thread count never enter the
 * key, so a result computed sequentially is found by a sharded run
 * and vice versa (sharding is bit-identical by construction).
 */
std::string simKey(const machine::MachineConfig &config,
                   const workload::Mapping &mapping,
                   std::uint64_t warmup, std::uint64_t window);

} // namespace cache
} // namespace locsim

#endif // LOCSIM_CACHE_KEY_HH_
