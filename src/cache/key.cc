/**
 * @file
 * Canonical key-byte construction.
 */

#include "cache/key.hh"

#include "util/serialize.hh"
#include "util/sha256.hh"

namespace locsim {
namespace cache {

namespace {

void
putGraph(util::Serializer &s, const workload::CommGraph &graph)
{
    s.put(graph.vertexCount());
    for (std::uint32_t v = 0; v < graph.vertexCount(); ++v) {
        const auto &edges = graph.neighbors(v);
        s.put<std::uint64_t>(edges.size());
        // Adjacency lists preserve insertion order, which is part of
        // graph construction and therefore deterministic per config.
        for (const auto &edge : edges) {
            s.put(edge.peer);
            s.putDouble(edge.weight);
        }
    }
}

/**
 * Serialize every config/mapping field that shapes the simulated
 * trajectory — the shared core of simKey (which appends the cycle
 * budget) and prefixKey (which appends the checkpoint format version
 * and the prefix clock). Late-binding fields (see the whitelist in
 * key.hh) are deliberately absent from this function, so any field
 * added to MachineConfig must be added either here or to that
 * whitelist; tests/prefix_test.cc trips when neither happened.
 */
void
putBehavioralConfig(util::Serializer &s,
                    const machine::MachineConfig &config,
                    const workload::Mapping &mapping)
{
    // Machine geometry and clocks.
    s.put(config.radix);
    s.put(config.dims);
    s.put(config.wraparound);
    s.put(config.contexts);
    s.put(config.net_clock_ratio);

    // Processor.
    s.put(config.processor.contexts);
    s.put(config.processor.switch_cycles);

    // Coherence protocol.
    s.put(config.protocol.control_flits);
    s.put(config.protocol.data_flits);
    s.put(config.protocol.occupancy);
    s.put(config.protocol.mem_latency);
    s.put(config.protocol.hit_latency);
    s.put(config.protocol.cache_bytes);
    s.put(config.protocol.dir_pointers);
    s.put(config.protocol.overflow_trap_cycles);

    // Router.
    s.put(config.router.vcs);
    s.put(config.router.buffer_depth);

    // Stepping mode is result-invariant by contract, but the contract
    // is enforced by tests, not construction — keep the modes in
    // separate cache entries so a regression in one cannot poison
    // results attributed to the other.
    s.put(config.reference_stepping);

    // Deliberately absent: MachineConfig::shards (and the runner
    // thread count). They partition execution, not the simulated
    // machine — results are bit-identical for every value, so every
    // shard count must find the same entry (cache_test asserts this).

    // Workload.
    s.put(config.workload);
    s.put(config.app.compute_cycles);
    s.put(config.app.verify);
    s.put(config.app.prefetch_depth);
    s.put(config.uniform_app.compute_cycles);
    s.put(config.uniform_app.loads_per_store);
    s.put(config.uniform_app.seed);
    if (config.workload == machine::WorkloadKind::Graph &&
        config.graph != nullptr) {
        putGraph(s, *config.graph);
    }

    // Thread placement.
    s.put(mapping.size());
    for (std::uint32_t t = 0; t < mapping.size(); ++t)
        s.put(mapping.node(t));
}

} // namespace

std::string
simKey(const machine::MachineConfig &config,
       const workload::Mapping &mapping, std::uint64_t warmup,
       std::uint64_t window)
{
    util::Serializer s;
    s.put(kCacheSchemaVersion);
    putBehavioralConfig(s, config, mapping);

    // Cycle budget.
    s.put(warmup);
    s.put(window);

    return util::Sha256::hashHex(s.buffer());
}

std::string
prefixKey(const machine::MachineConfig &config,
          const workload::Mapping &mapping, std::uint64_t clock)
{
    util::Serializer s;
    s.put(kCacheSchemaVersion);
    s.put(kPrefixSchemaVersion);
    // The payload is a checkpoint image: a serialized-layout change
    // must retire stored prefixes even when behavior is unchanged.
    s.put(machine::checkpointFormatVersion());
    putBehavioralConfig(s, config, mapping);
    s.put(clock);
    return util::Sha256::hashHex(s.buffer());
}

} // namespace cache
} // namespace locsim
