/**
 * @file
 * The persistent simulation artifact store.
 *
 * A SimCache maps content hashes (see cache/key.hh) to opaque byte
 * payloads on disk, one file per entry, with two concurrency
 * guarantees:
 *
 *  - cross-process safety: entries are written to a temporary file
 *    and atomically renamed into place, so readers never observe a
 *    partial payload and concurrent writers of the same key simply
 *    race to produce identical bytes;
 *  - within-process dedup (singleflight): when several worker threads
 *    request the same missing key simultaneously, exactly one runs
 *    the compute function; the rest block and share its result.
 *
 * Payloads are opaque bytes; the harness layer decides what they mean
 * (serialized Measurements, today). A corrupt or truncated entry is
 * indistinguishable from a miss: the decode failure is the caller's
 * to handle, typically by deleting and recomputing.
 */

#ifndef LOCSIM_CACHE_STORE_HH_
#define LOCSIM_CACHE_STORE_HH_

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace locsim {

namespace obs {
class PhaseSlot;
}

namespace cache {

/** Hit/miss accounting for one SimCache over its lifetime. */
struct CacheStats
{
    std::uint64_t hits = 0;       //!< served from disk
    std::uint64_t misses = 0;     //!< computed (and stored)
    std::uint64_t stores = 0;     //!< payloads written to disk
    std::uint64_t dedup_hits = 0; //!< waited on a concurrent compute

    /** @name Prefix-checkpoint entries (same meanings, .ckpt files) */
    ///@{
    std::uint64_t prefix_hits = 0;
    std::uint64_t prefix_misses = 0;
    std::uint64_t prefix_stores = 0;
    std::uint64_t prefix_dedup_hits = 0;
    ///@}
};

/** A content-addressed byte store rooted at one directory. */
class SimCache
{
  public:
    /**
     * Open (creating if needed) the store at @p dir.
     *
     * @throws std::runtime_error if the directory cannot be created
     *         or is not writable — probed eagerly so a bad --cache-dir
     *         fails before hours of simulation, not after.
     */
    explicit SimCache(const std::string &dir);

    SimCache(const SimCache &) = delete;
    SimCache &operator=(const SimCache &) = delete;

    /**
     * Return the payload for @p key: from disk on a hit, otherwise by
     * invoking @p compute exactly once per process (concurrent
     * requests for the same key wait and share) and persisting its
     * result.
     *
     * If compute throws, the exception propagates to the caller that
     * ran it; waiting threads retry (one of them becomes the next
     * computer).
     */
    std::vector<std::uint8_t>
    getOrRun(const std::string &key,
             const std::function<std::vector<std::uint8_t>()> &compute);

    /** Look up @p key on disk without computing. */
    std::optional<std::vector<std::uint8_t>>
    lookup(const std::string &key) const;

    /** Remove @p key's entry, if present (corrupt-payload recovery). */
    void remove(const std::string &key);

    /**
     * @name Checkpoint-image entries
     *
     * A second entry family (`<key>.ckpt` beside `<key>.simcache`)
     * holding prefix checkpoint images, with identical semantics:
     * atomic temp+rename stores, singleflight getOrRun (so a prefix
     * shared by many sweep points is produced exactly once per
     * process, however many runner::ThreadPool lanes request it),
     * and corrupt entries handled by the caller via remove +
     * recompute. Keys come from cache::prefixKey, which folds in the
     * checkpoint format version — schema versioning is content-
     * addressed, like everything else in this store. Accounting lands
     * in the prefix_* stats fields.
     */
    ///@{
    std::vector<std::uint8_t> getOrRunCheckpoint(
        const std::string &key,
        const std::function<std::vector<std::uint8_t>()> &compute);

    std::optional<std::vector<std::uint8_t>>
    lookupCheckpoint(const std::string &key) const;

    void removeCheckpoint(const std::string &key);
    ///@}

    /** Lifetime hit/miss counters (thread-safe snapshot). */
    CacheStats stats() const;

    const std::filesystem::path &dir() const { return dir_; }

    /**
     * Attach a phase-profiler slot (nullptr to detach; not owned).
     * Disk probes record Phase::CacheProbe and payload writes
     * Phase::CacheStore — host-side I/O time, separable from
     * simulation time in the run manifest.
     */
    void setProfileSlot(obs::PhaseSlot *slot) { profile_slot_ = slot; }

  private:
    struct InFlight
    {
        std::mutex mutex;
        std::condition_variable done_cv;
        bool done = false;
        bool failed = false;
        std::vector<std::uint8_t> payload;
    };

    /** Entry families: result payloads vs prefix checkpoint images. */
    enum class Kind { Result, Checkpoint };

    std::filesystem::path entryPath(const std::string &key,
                                    Kind kind) const;
    std::optional<std::vector<std::uint8_t>>
    lookupEntry(const std::string &key, Kind kind) const;
    void storePayload(const std::string &key, Kind kind,
                      const std::vector<std::uint8_t> &payload);
    std::vector<std::uint8_t> getOrRunEntry(
        const std::string &key, Kind kind,
        const std::function<std::vector<std::uint8_t>()> &compute);

    std::filesystem::path dir_;
    mutable std::mutex mutex_; //!< guards stats_ and in_flight_
    CacheStats stats_;
    std::unordered_map<std::string, std::shared_ptr<InFlight>>
        in_flight_;
    std::uint64_t temp_counter_ = 0;
    obs::PhaseSlot *profile_slot_ = nullptr;
};

} // namespace cache
} // namespace locsim

#endif // LOCSIM_CACHE_STORE_HH_
