/**
 * @file
 * SimCache implementation.
 */

#include "cache/store.hh"

#include <fstream>
#include <stdexcept>
#include <system_error>

#include "obs/profiler.hh"

namespace locsim {
namespace cache {

namespace fs = std::filesystem;

SimCache::SimCache(const std::string &dir) : dir_(dir)
{
    if (dir.empty())
        throw std::runtime_error("cache directory path is empty");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        throw std::runtime_error("cannot create cache directory '" +
                                 dir + "': " + ec.message());
    }
    // Probe writability now: a read-only cache directory should fail
    // the run before any simulation time is spent.
    const fs::path probe = dir_ / ".write-probe";
    {
        std::ofstream os(probe, std::ios::binary | std::ios::trunc);
        os << "probe";
        if (!os) {
            throw std::runtime_error("cache directory '" + dir +
                                     "' is not writable");
        }
    }
    fs::remove(probe, ec);
}

fs::path
SimCache::entryPath(const std::string &key) const
{
    return dir_ / (key + ".simcache");
}

std::optional<std::vector<std::uint8_t>>
SimCache::lookup(const std::string &key) const
{
    obs::ScopedPhase profile(profile_slot_, obs::Phase::CacheProbe);

    std::ifstream is(entryPath(key),
                     std::ios::binary | std::ios::ate);
    if (!is)
        return std::nullopt;
    const std::streamsize size = is.tellg();
    if (size < 0)
        return std::nullopt;
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(size));
    is.seekg(0);
    if (!bytes.empty() &&
        !is.read(reinterpret_cast<char *>(bytes.data()), size))
        return std::nullopt;
    return bytes;
}

void
SimCache::remove(const std::string &key)
{
    std::error_code ec;
    fs::remove(entryPath(key), ec);
}

void
SimCache::storePayload(const std::string &key,
                       const std::vector<std::uint8_t> &payload)
{
    obs::ScopedPhase profile(profile_slot_, obs::Phase::CacheStore);

    std::uint64_t serial;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        serial = temp_counter_++;
    }
    // Write-then-rename: the rename is atomic within a filesystem, so
    // a concurrent reader (including another process) sees either no
    // entry or the whole payload, never a prefix.
    const fs::path temp =
        dir_ / (key + ".tmp." + std::to_string(serial));
    {
        std::ofstream os(temp, std::ios::binary | std::ios::trunc);
        if (!payload.empty()) {
            os.write(reinterpret_cast<const char *>(payload.data()),
                     static_cast<std::streamsize>(payload.size()));
        }
        if (!os) {
            std::error_code ec;
            fs::remove(temp, ec);
            throw std::runtime_error(
                "cache store failed writing temp file for key " +
                key);
        }
    }
    std::error_code ec;
    fs::rename(temp, entryPath(key), ec);
    if (ec) {
        std::error_code ec2;
        fs::remove(temp, ec2);
        throw std::runtime_error("cache store failed renaming key " +
                                 key + ": " + ec.message());
    }
}

std::vector<std::uint8_t>
SimCache::getOrRun(
    const std::string &key,
    const std::function<std::vector<std::uint8_t>()> &compute)
{
    for (;;) {
        std::shared_ptr<InFlight> flight;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = in_flight_.find(key);
            if (it != in_flight_.end()) {
                flight = it->second;
            } else {
                flight = std::make_shared<InFlight>();
                in_flight_.emplace(key, flight);
                owner = true;
            }
        }

        if (!owner) {
            std::unique_lock<std::mutex> fl(flight->mutex);
            flight->done_cv.wait(fl, [&] { return flight->done; });
            if (!flight->failed) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.dedup_hits;
                return flight->payload;
            }
            // The computing thread threw; loop and race to become the
            // next owner (or find the entry now on disk).
            continue;
        }

        std::vector<std::uint8_t> payload;
        bool from_disk = false;
        try {
            if (auto cached = lookup(key)) {
                payload = std::move(*cached);
                from_disk = true;
            } else {
                payload = compute();
                storePayload(key, payload);
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> fl(flight->mutex);
                flight->done = true;
                flight->failed = true;
            }
            flight->done_cv.notify_all();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                in_flight_.erase(key);
            }
            throw;
        }
        {
            std::lock_guard<std::mutex> fl(flight->mutex);
            flight->done = true;
            flight->payload = payload;
        }
        flight->done_cv.notify_all();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            in_flight_.erase(key);
            if (from_disk) {
                ++stats_.hits;
            } else {
                ++stats_.misses;
                ++stats_.stores;
            }
        }
        return payload;
    }
}

CacheStats
SimCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace cache
} // namespace locsim
