/**
 * @file
 * SimCache implementation.
 *
 * Both entry families — result payloads (.simcache) and prefix
 * checkpoint images (.ckpt) — share one code path: lookupEntry /
 * storePayload / getOrRunEntry parameterized by Kind. The in-flight
 * singleflight map is keyed by the on-disk file name, so a result and
 * a checkpoint with the same content hash never alias each other.
 */

#include "cache/store.hh"

#include <fstream>
#include <stdexcept>
#include <system_error>

#include "obs/profiler.hh"

namespace locsim {
namespace cache {

namespace fs = std::filesystem;

namespace {

const char *
entrySuffix(int kind)
{
    return kind == 0 ? ".simcache" : ".ckpt";
}

} // namespace

SimCache::SimCache(const std::string &dir) : dir_(dir)
{
    if (dir.empty())
        throw std::runtime_error("cache directory path is empty");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        throw std::runtime_error("cannot create cache directory '" +
                                 dir + "': " + ec.message());
    }
    // Probe writability now: a read-only cache directory should fail
    // the run before any simulation time is spent.
    const fs::path probe = dir_ / ".write-probe";
    {
        std::ofstream os(probe, std::ios::binary | std::ios::trunc);
        os << "probe";
        if (!os) {
            throw std::runtime_error("cache directory '" + dir +
                                     "' is not writable");
        }
    }
    fs::remove(probe, ec);
}

fs::path
SimCache::entryPath(const std::string &key, Kind kind) const
{
    return dir_ / (key + entrySuffix(static_cast<int>(kind)));
}

std::optional<std::vector<std::uint8_t>>
SimCache::lookupEntry(const std::string &key, Kind kind) const
{
    obs::ScopedPhase profile(profile_slot_, obs::Phase::CacheProbe);

    std::ifstream is(entryPath(key, kind),
                     std::ios::binary | std::ios::ate);
    if (!is)
        return std::nullopt;
    const std::streamsize size = is.tellg();
    if (size < 0)
        return std::nullopt;
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(size));
    is.seekg(0);
    if (!bytes.empty() &&
        !is.read(reinterpret_cast<char *>(bytes.data()), size))
        return std::nullopt;
    return bytes;
}

std::optional<std::vector<std::uint8_t>>
SimCache::lookup(const std::string &key) const
{
    return lookupEntry(key, Kind::Result);
}

std::optional<std::vector<std::uint8_t>>
SimCache::lookupCheckpoint(const std::string &key) const
{
    return lookupEntry(key, Kind::Checkpoint);
}

void
SimCache::remove(const std::string &key)
{
    std::error_code ec;
    fs::remove(entryPath(key, Kind::Result), ec);
}

void
SimCache::removeCheckpoint(const std::string &key)
{
    std::error_code ec;
    fs::remove(entryPath(key, Kind::Checkpoint), ec);
}

void
SimCache::storePayload(const std::string &key, Kind kind,
                       const std::vector<std::uint8_t> &payload)
{
    obs::ScopedPhase profile(profile_slot_, obs::Phase::CacheStore);

    std::uint64_t serial;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        serial = temp_counter_++;
    }
    // Write-then-rename: the rename is atomic within a filesystem, so
    // a concurrent reader (including another process) sees either no
    // entry or the whole payload, never a prefix.
    const fs::path temp =
        dir_ / (key + ".tmp." + std::to_string(serial));
    {
        std::ofstream os(temp, std::ios::binary | std::ios::trunc);
        if (!payload.empty()) {
            os.write(reinterpret_cast<const char *>(payload.data()),
                     static_cast<std::streamsize>(payload.size()));
        }
        if (!os) {
            std::error_code ec;
            fs::remove(temp, ec);
            throw std::runtime_error(
                "cache store failed writing temp file for key " +
                key);
        }
    }
    std::error_code ec;
    fs::rename(temp, entryPath(key, kind), ec);
    if (ec) {
        std::error_code ec2;
        fs::remove(temp, ec2);
        throw std::runtime_error("cache store failed renaming key " +
                                 key + ": " + ec.message());
    }
}

std::vector<std::uint8_t>
SimCache::getOrRunEntry(
    const std::string &key, Kind kind,
    const std::function<std::vector<std::uint8_t>()> &compute)
{
    const bool checkpoint = kind == Kind::Checkpoint;
    // Singleflight identity is the on-disk name: the two families
    // never share a flight even under content-hash collision by key.
    const std::string flight_key =
        key + entrySuffix(static_cast<int>(kind));
    for (;;) {
        std::shared_ptr<InFlight> flight;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = in_flight_.find(flight_key);
            if (it != in_flight_.end()) {
                flight = it->second;
            } else {
                flight = std::make_shared<InFlight>();
                in_flight_.emplace(flight_key, flight);
                owner = true;
            }
        }

        if (!owner) {
            std::unique_lock<std::mutex> fl(flight->mutex);
            flight->done_cv.wait(fl, [&] { return flight->done; });
            if (!flight->failed) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (checkpoint)
                    ++stats_.prefix_dedup_hits;
                else
                    ++stats_.dedup_hits;
                return flight->payload;
            }
            // The computing thread threw; loop and race to become the
            // next owner (or find the entry now on disk).
            continue;
        }

        std::vector<std::uint8_t> payload;
        bool from_disk = false;
        try {
            if (auto cached = lookupEntry(key, kind)) {
                payload = std::move(*cached);
                from_disk = true;
            } else {
                payload = compute();
                storePayload(key, kind, payload);
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> fl(flight->mutex);
                flight->done = true;
                flight->failed = true;
            }
            flight->done_cv.notify_all();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                in_flight_.erase(flight_key);
            }
            throw;
        }
        {
            std::lock_guard<std::mutex> fl(flight->mutex);
            flight->done = true;
            flight->payload = payload;
        }
        flight->done_cv.notify_all();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            in_flight_.erase(flight_key);
            if (checkpoint) {
                if (from_disk) {
                    ++stats_.prefix_hits;
                } else {
                    ++stats_.prefix_misses;
                    ++stats_.prefix_stores;
                }
            } else if (from_disk) {
                ++stats_.hits;
            } else {
                ++stats_.misses;
                ++stats_.stores;
            }
        }
        return payload;
    }
}

std::vector<std::uint8_t>
SimCache::getOrRun(
    const std::string &key,
    const std::function<std::vector<std::uint8_t>()> &compute)
{
    return getOrRunEntry(key, Kind::Result, compute);
}

std::vector<std::uint8_t>
SimCache::getOrRunCheckpoint(
    const std::string &key,
    const std::function<std::vector<std::uint8_t>()> &compute)
{
    return getOrRunEntry(key, Kind::Checkpoint, compute);
}

CacheStats
SimCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace cache
} // namespace locsim
