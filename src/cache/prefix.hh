/**
 * @file
 * Prefix-checkpoint incremental caching: never re-simulate a shared
 * warmup.
 *
 * The paper's sweeps evaluate many configurations that differ only in
 * late-binding parameters (measurement window and length, sampling,
 * output knobs) yet share an identical simulated trajectory up to the
 * warmup boundary. The PrefixPlanner exploits that: the machine state
 * at the warmup clock is content-addressed (cache::prefixKey, which
 * hashes everything that shapes the trajectory and *nothing* that
 * merely observes it) and stored as a checkpoint image in the
 * SimCache. A sweep point then restores the longest matching prefix
 * and simulates only its divergent suffix — the measurement window.
 *
 * Exactness is inherited, not asserted: restore-then-extend is
 * bit-identical to a straight run (tests/checkpoint_test.cc,
 * tests/prefix_test.cc), so a prefix-cached sweep's stdout is byte-
 * equal to an uncached one at every shard count and batch size.
 *
 * Production is deduplicated at two levels: within a process, the
 * store's singleflight runs one producer per prefix key however many
 * runner::ThreadPool lanes ask; across processes, the atomic
 * temp+rename store makes concurrent producers race to write
 * identical bytes.
 *
 * Rungs: with a nonzero stride the producer also stores intermediate
 * images at every multiple of the stride below the warmup boundary,
 * and starts from the longest stored rung when producing a new
 * prefix. Sweep points whose warmups *near-miss* each other (6000 vs
 * 6400 with stride 2000) then share the 6000-cycle rung instead of
 * simulating from clock zero.
 */

#ifndef LOCSIM_CACHE_PREFIX_HH_
#define LOCSIM_CACHE_PREFIX_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/store.hh"
#include "machine/machine.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace cache {

/** Prefix-cache knobs (the harness's --prefix-* flags). */
struct PrefixOptions
{
    /**
     * Rung stride in processor cycles; 0 (default) stores images at
     * exact warmup boundaries only. With a positive stride, producers
     * additionally store images at every multiple of the stride up to
     * the warmup, and restore from the longest available rung.
     */
    std::uint64_t rung_stride = 0;
};

/** One sweep point, as the planner sees it. */
struct PrefixPoint
{
    const machine::MachineConfig *config = nullptr;
    const workload::Mapping *mapping = nullptr;
    std::uint64_t warmup = 0;
};

/**
 * Plans and executes prefix reuse against one SimCache.
 *
 * Thread-safe: the planner holds no mutable state of its own; all
 * coordination lives in the store's singleflight map, so any number
 * of sweep workers may call warmMachine concurrently.
 */
class PrefixPlanner
{
  public:
    /** @param store backing cache (must outlive the planner). */
    PrefixPlanner(SimCache &store, const PrefixOptions &options);

    /**
     * A machine positioned at @p warmup processor cycles, by the
     * cheapest correct route: restored from the stored prefix image
     * when one exists, otherwise produced (itself restoring the
     * longest stored rung below @p warmup, then advancing) and stored
     * exactly once under singleflight. Corrupt stored images are
     * dropped and recomputed. The returned machine is ready for
     * measure(window); its measurements are bit-identical to
     * Machine::run(warmup, window) on a fresh machine.
     */
    std::unique_ptr<machine::Machine>
    warmMachine(const machine::MachineConfig &config,
                const workload::Mapping &mapping,
                std::uint64_t warmup) const;

    /**
     * Restore-or-null for batched execution: the stored prefix image
     * for the point, or nullopt on a miss. The caller (the batched
     * sweep driver) groups misses into one MachineBatch, advances the
     * warmup once for all lanes, and records each lane's image via
     * storeProducedImage — so a cold batched sweep still produces
     * every prefix exactly once.
     */
    std::optional<std::vector<std::uint8_t>>
    lookupImage(const machine::MachineConfig &config,
                const workload::Mapping &mapping,
                std::uint64_t warmup) const;

    /** Record a restore served from @p image (hit accounting). */
    void noteRestored(const machine::MachineConfig &config,
                      const workload::Mapping &mapping,
                      std::uint64_t warmup,
                      const std::vector<std::uint8_t> &image) const;

    /** Drop a corrupt stored image so the next producer recomputes. */
    void dropImage(const machine::MachineConfig &config,
                   const workload::Mapping &mapping,
                   std::uint64_t warmup) const;

    /**
     * Store @p image as the prefix for (config, mapping, warmup),
     * deduplicated under singleflight (miss+store accounting; a
     * concurrent identical store becomes a dedup hit).
     */
    void storeProducedImage(const machine::MachineConfig &config,
                            const workload::Mapping &mapping,
                            std::uint64_t warmup,
                            const std::vector<std::uint8_t> &image)
        const;

    /**
     * The distinct prefix keys @p points will need — the images a
     * cold sweep produces (each exactly once). Order of first
     * appearance; duplicates collapse. This is the planner's
     * set-level view: `prefix_stores == distinctPrefixes().size()`
     * after a cold sweep, which the CI determinism job asserts via
     * the run manifest.
     */
    std::vector<std::string>
    distinctPrefixes(const std::vector<PrefixPoint> &points) const;

    /**
     * The rung clocks below @p warmup, descending (largest first):
     * multiples of the stride in (0, warmup). Empty when the stride
     * is 0 or >= warmup.
     */
    std::vector<std::uint64_t> rungClocks(std::uint64_t warmup) const;

    SimCache &store() const { return store_; }
    const PrefixOptions &options() const { return options_; }

  private:
    /** Build a machine and advance it to @p warmup, reusing and
     *  materializing rungs along the way. */
    std::unique_ptr<machine::Machine>
    produce(const machine::MachineConfig &config,
            const workload::Mapping &mapping,
            std::uint64_t warmup) const;

    SimCache &store_;
    PrefixOptions options_;
};

} // namespace cache
} // namespace locsim

#endif // LOCSIM_CACHE_PREFIX_HH_
