/**
 * @file
 * ThreadPool implementation.
 */

#include "runner/runner.hh"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace locsim {
namespace runner {

int
defaultThreads()
{
    // LOCSIM_THREADS caps parallelism machine-wide (useful on shared
    // build boxes and in CI); otherwise use every hardware thread.
    if (const char *env = std::getenv("LOCSIM_THREADS")) {
        const int parsed = std::atoi(env);
        if (parsed >= 1)
            return parsed;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = defaultThreads();
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    work_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] {
        return queue_.empty() && in_progress_ == 0;
    });
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        bool cancelled = false;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_progress_;
            // Fail fast: once a job has thrown, drain the remaining
            // queue without executing (their result slots keep their
            // default values; wait() is about to rethrow anyway).
            cancelled = first_error_ != nullptr;
        }
        std::exception_ptr error;
        if (!cancelled) {
            try {
                job();
            } catch (...) {
                error = std::current_exception();
            }
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_progress_;
            if (error && !first_error_)
                first_error_ = error;
            if (queue_.empty() && in_progress_ == 0)
                all_done_.notify_all();
        }
    }
}

} // namespace runner
} // namespace locsim
