/**
 * @file
 * A thread-pool runner for embarrassingly parallel experiment sweeps.
 *
 * Every harness in this repository reduces to "run K independent
 * simulations, collect K result structs": each simulation owns its
 * Engine, Network, and RNG state, so runs share nothing and can
 * execute concurrently. The runner distributes the runs over a pool
 * of worker threads while keeping results in submission order, so a
 * sweep's output is bit-identical regardless of the thread count
 * (including 1, which degenerates to the old sequential loop).
 *
 * Determinism contract: the job function must derive all randomness
 * from its index (per-run seeds), never from shared mutable state,
 * and must write only to its own result slot.
 */

#ifndef LOCSIM_RUNNER_RUNNER_HH_
#define LOCSIM_RUNNER_RUNNER_HH_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/ring_queue.hh"

namespace locsim {
namespace runner {

/** Worker threads to use when the caller passes 0 ("all cores"). */
int defaultThreads();

/**
 * A fixed-size pool executing submitted jobs in FIFO order.
 *
 * Exceptions thrown by jobs are captured; the first one (in
 * completion order) is rethrown from wait(). Once a job has thrown,
 * the pool fails fast: jobs still queued are dequeued but not
 * executed (their result slots keep their default-constructed
 * values), so a long sweep does not burn hours after its first
 * failure. Jobs already running are allowed to finish; their
 * exceptions, if any, are dropped.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; <= 0 selects defaultThreads(). */
    explicit ThreadPool(int threads = 0);

    /** Joins all workers (waits for the queue to drain). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return static_cast<int>(workers_.size()); }

    /** Enqueue @p job for execution on some worker. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished; rethrows the
     * first captured job exception, if any. The pool remains usable
     * for further submissions afterwards.
     */
    void wait();

    /**
     * Run @p fn(0..count-1) to completion, one long-lived invocation
     * per lane: lanes 1..count-1 run on pool workers while lane 0 runs
     * on the calling thread. Returns (and rethrows the first captured
     * exception) once every lane has finished.
     *
     * This is the entry point for cooperating workers that synchronize
     * among themselves (e.g. barrier-stepped simulation shards): each
     * lane is dispatched through the queue exactly once for the whole
     * region, so the per-job queue/condition-variable round trip
     * (~1-2 us) is paid once instead of once per synchronization
     * window. Because the lanes may wait on each other, all of them
     * must be running concurrently: @p count - 1 must not exceed
     * threadCount(), and the pool must be otherwise idle.
     *
     * Templated so the (often large) lane closure is captured by
     * pointer: the per-lane job handed to submit() is then a 16-byte
     * trivially-copyable capture that fits std::function's inline
     * buffer, keeping the hot sharded-run path allocation-free.
     */
    template <typename Fn>
    void
    parallelRegion(int count, Fn &&fn)
    {
        if (count <= 0)
            return;
        if (count - 1 > threadCount()) {
            throw std::runtime_error(
                "parallelRegion: lanes exceed pool size (lanes wait "
                "on each other, so all must run concurrently)");
        }
        for (int lane = 1; lane < count; ++lane)
            submit([&fn, lane] { fn(lane); });
        // Lane 0 runs here: the caller participates instead of
        // blocking, so a K-lane region needs only K-1 pool workers.
        std::exception_ptr error;
        try {
            fn(0);
        } catch (...) {
            error = std::current_exception();
        }
        wait();
        if (error)
            std::rethrow_exception(error);
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable all_done_;
    util::RingQueue<std::function<void()>> queue_;
    std::size_t in_progress_ = 0;
    bool stopping_ = false;
    std::exception_ptr first_error_;
    std::vector<std::thread> workers_;
};

/**
 * Evaluate @p fn(0..count-1) across @p threads workers and return the
 * results indexed by input position.
 *
 * The result type must be default-constructible (slots are
 * pre-allocated so workers never contend on the output vector).
 * Rethrows the first job exception after all jobs finish.
 */
template <typename Fn>
auto
parallelMap(std::size_t count, Fn &&fn, int threads = 0)
    -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
{
    using Result = std::invoke_result_t<Fn &, std::size_t>;
    std::vector<Result> results(count);
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < count; ++i) {
        pool.submit([&results, &fn, i] { results[i] = fn(i); });
    }
    pool.wait();
    return results;
}

/** parallelMap for jobs with side effects only (no result vector). */
template <typename Fn>
void
parallelForEach(std::size_t count, Fn &&fn, int threads = 0)
{
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < count; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

/**
 * Batch-aware parallelMap: pack sweep cells with identical shapes
 * into batches and evaluate whole batches, keeping results in cell
 * order.
 *
 * Indices 0..count-1 are grouped by @p keyOf(i) (first-seen group
 * order, index order within a group), each group is chunked into runs
 * of at most @p batch, and @p runChunk(indices) — which must return
 * one result per index, in chunk order — is evaluated across
 * @p threads workers. Results land in their original index slots, so
 * for a runChunk that simulates each cell independently (or in
 * result-equivalent batched lanes, the machine::MachineBatch
 * contract) the output vector is identical to parallelMap of the
 * per-cell function, whatever the batch size or thread count.
 */
template <typename KeyFn, typename ChunkFn>
auto
batchMap(std::size_t count, KeyFn &&keyOf, int batch,
         ChunkFn &&runChunk, int threads = 0)
    -> std::invoke_result_t<ChunkFn &,
                            const std::vector<std::size_t> &>
{
    using ChunkResult =
        std::invoke_result_t<ChunkFn &,
                             const std::vector<std::size_t> &>;
    using Result = typename ChunkResult::value_type;
    using Key = std::invoke_result_t<KeyFn &, std::size_t>;
    if (batch < 1)
        throw std::invalid_argument("batchMap: batch must be >= 1");

    std::vector<std::vector<std::size_t>> chunks;
    {
        constexpr std::size_t kNone = static_cast<std::size_t>(-1);
        std::vector<Key> keys;
        std::vector<std::size_t> open_chunk; // per group
        for (std::size_t i = 0; i < count; ++i) {
            Key key = keyOf(i);
            std::size_t g = 0;
            while (g < keys.size() && !(keys[g] == key))
                ++g;
            if (g == keys.size()) {
                keys.push_back(std::move(key));
                open_chunk.push_back(kNone);
            }
            if (open_chunk[g] == kNone ||
                chunks[open_chunk[g]].size() ==
                    static_cast<std::size_t>(batch)) {
                open_chunk[g] = chunks.size();
                chunks.emplace_back();
                chunks.back().reserve(
                    static_cast<std::size_t>(batch));
            }
            chunks[open_chunk[g]].push_back(i);
        }
    }

    std::vector<Result> results(count);
    parallelForEach(
        chunks.size(),
        [&](std::size_t c) {
            const std::vector<std::size_t> &chunk = chunks[c];
            ChunkResult chunk_results = runChunk(chunk);
            if (chunk_results.size() != chunk.size()) {
                throw std::runtime_error(
                    "batchMap: runChunk returned a result count "
                    "different from its chunk size");
            }
            for (std::size_t j = 0; j < chunk.size(); ++j)
                results[chunk[j]] = std::move(chunk_results[j]);
        },
        threads);
    return results;
}

} // namespace runner
} // namespace locsim

#endif // LOCSIM_RUNNER_RUNNER_HH_
