/**
 * @file
 * The abstraction a thread presents to the processor model: a stream
 * of (compute, memory-op) steps.
 *
 * The paper's validation application is a tiny loop whose only
 * architecturally visible behavior is its memory reference stream and
 * the work between references; representing threads as op streams is
 * the substitution for instruction-level Sparcle simulation recorded
 * in DESIGN.md.
 */

#ifndef LOCSIM_PROC_PROGRAM_HH_
#define LOCSIM_PROC_PROGRAM_HH_

#include <cstdint>

#include "coher/protocol.hh"
#include "util/serialize.hh"

namespace locsim {
namespace proc {

/** One step of a thread: compute, then one memory operation. */
struct Op
{
    enum class Kind : std::uint8_t {
        Load,
        Store,
        /**
         * Non-binding software prefetch: brings the line toward the
         * cache in Shared state without blocking the issuing thread
         * (one of the paper's "multiple outstanding transactions"
         * mechanisms, Section 2.1).
         */
        Prefetch,
    };

    Kind kind = Kind::Load;
    coher::Addr addr = 0;
    /** Value to write (stores). */
    std::uint64_t store_value = 0;
    /** Useful work preceding the memory operation, processor cycles. */
    std::uint32_t compute_cycles = 0;
};

/**
 * A thread as a generator of operations.
 *
 * next() is called with the result of the previous operation (the
 * loaded value for loads; the stored value echoed for stores) and
 * returns the next step. Threads run forever; the machine harness
 * decides when to stop measuring.
 */
class ThreadProgram
{
  public:
    virtual ~ThreadProgram() = default;

    /** First operation of the thread. */
    virtual Op start() = 0;

    /** Next operation, given the previous operation's result. */
    virtual Op next(std::uint64_t previous_result) = 0;

    /**
     * Checkpoint the generator's dynamic state (position, RNG, ...).
     * Programs whose next() is a pure function of config may keep the
     * default no-op. Restored instances must produce the identical op
     * stream continuation for bit-identical restore-then-extend runs.
     */
    virtual void saveState(util::Serializer &s) const { (void)s; }

    /** Restore state written by saveState(). */
    virtual void loadState(util::Deserializer &d) { (void)d; }

    /**
     * Resident bytes of program state (footprint accounting).
     * Programs with heap-owned members add their capacities.
     */
    virtual std::size_t memoryBytes() const { return sizeof(*this); }
};

/** Serialize one Op (checkpoint helpers for processor state). */
inline void
saveOp(util::Serializer &s, const Op &op)
{
    s.put(op.kind);
    s.put(op.addr);
    s.put(op.store_value);
    s.put(op.compute_cycles);
}

inline Op
loadOp(util::Deserializer &d)
{
    Op op;
    op.kind = d.get<Op::Kind>();
    op.addr = d.get<coher::Addr>();
    op.store_value = d.get<std::uint64_t>();
    op.compute_cycles = d.get<std::uint32_t>();
    return op;
}

} // namespace proc
} // namespace locsim

#endif // LOCSIM_PROC_PROGRAM_HH_
