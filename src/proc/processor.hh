/**
 * @file
 * A Sparcle-like block-multithreaded processor model (Section 3.1):
 * p hardware contexts, each running one thread; on a cache miss the
 * processor switches to the next runnable context, paying an 11-cycle
 * switch penalty. With a single context the processor simply stalls
 * (Figure 1); with several it overlaps misses with other contexts'
 * work (Figure 2).
 */

#ifndef LOCSIM_PROC_PROCESSOR_HH_
#define LOCSIM_PROC_PROCESSOR_HH_

#include <cstdint>
#include <vector>

#include "coher/controller.hh"
#include "obs/trace.hh"
#include "proc/program.hh"
#include "sim/engine.hh"
#include "stats/stats.hh"

namespace locsim {
namespace proc {

/** Processor configuration. */
struct ProcessorConfig
{
    /** Hardware contexts (Sparcle provides four). */
    int contexts = 1;
    /** Context switch penalty in processor cycles (Sparcle: 11). */
    std::uint32_t switch_cycles = 11;
};

/** Per-processor statistics. */
struct ProcessorStats
{
    /** Cycles spent on useful thread work. */
    stats::Counter work_cycles;
    /** Cycles idle with every context blocked on memory. */
    stats::Counter idle_cycles;
    /** Cycles spent switching contexts. */
    stats::Counter switch_cycles;
    /** Context switches performed. */
    stats::Counter switches;
    /** Memory operations issued (hits and misses). */
    stats::Counter ops;
    /** Non-blocking prefetches issued. */
    stats::Counter prefetches;

    void
    saveState(util::Serializer &s) const
    {
        work_cycles.saveState(s);
        idle_cycles.saveState(s);
        switch_cycles.saveState(s);
        switches.saveState(s);
        ops.saveState(s);
        prefetches.saveState(s);
    }

    void
    loadState(util::Deserializer &d)
    {
        work_cycles.loadState(d);
        idle_cycles.loadState(d);
        switch_cycles.loadState(d);
        switches.loadState(d);
        ops.loadState(d);
        prefetches.loadState(d);
    }
};

/** The processor model for one node. */
class Processor : public sim::Clocked, public coher::MemClient
{
  public:
    /**
     * @param controller this node's memory controller. The processor
     *        registers itself as the controller's MemClient.
     * @param config processor knobs.
     * @param programs one thread program per context (not owned; must
     *        outlive the processor).
     */
    Processor(coher::CacheController &controller,
              const ProcessorConfig &config,
              std::vector<ThreadProgram *> programs);

    void tick(sim::Tick now) override;

    /** Memory completion from the controller: unblock the context. */
    void memComplete(const coher::MemResponse &resp) override;

    /**
     * The processor only marks time when every context is blocked on
     * memory and no switch is in flight; any other state does work on
     * each tick.
     */
    bool busy() const override
    {
        return switch_remaining_ > 0 || !allBlocked();
    }

    /**
     * Skipped ticks are exactly the cycles tick() would have spent in
     * the all-blocked idle branch; credit them so utilization
     * accounting is independent of the stepping mode.
     */
    void skipIdle(sim::Tick ticks) override
    {
        stats_.idle_cycles.inc(static_cast<std::uint64_t>(ticks));
    }

    const ProcessorStats &stats() const { return stats_; }

    /** Zero all statistics (e.g. after a warmup period). */
    void resetStats() { stats_ = ProcessorStats{}; }

    /**
     * Attach a tracer (nullptr to detach; not owned): emits one
     * "ctx_switch" span per context switch on @p track, with the
     * switch penalty rendered in engine ticks via
     * @p ticks_per_cycle (the processor's clock period).
     */
    void
    setTracer(obs::Tracer *tracer, int track,
              sim::Tick ticks_per_cycle)
    {
        tracer_ = tracer;
        trace_track_ = track;
        trace_ticks_per_cycle_ = ticks_per_cycle;
    }

    /** True if every context is blocked on memory. */
    bool allBlocked() const;

    /**
     * Resident bytes of processor + program state (footprint
     * accounting; includes the owned contexts' programs).
     */
    std::size_t
    memoryBytes() const
    {
        std::size_t bytes =
            sizeof(*this) + contexts_.capacity() * sizeof(Context);
        for (const Context &ctx : contexts_)
            bytes += ctx.program->memoryBytes();
        return bytes;
    }

    /**
     * Serialize dynamic state: per-context run state and current op,
     * the active context, switch progress, and statistics. Program
     * pointers are reconstructed at machine build time; the programs
     * themselves checkpoint separately (ThreadProgram::saveState).
     */
    void saveState(util::Serializer &s) const;
    void loadState(util::Deserializer &d);

  private:
    enum class CtxState : std::uint8_t {
        Computing,     //!< burning compute cycles
        ReadyToIssue,  //!< compute done; memory op pending issue
        WaitingMem,    //!< memory transaction outstanding
        ReadyToResume, //!< memory completed; awaiting the pipeline
    };

    struct Context
    {
        ThreadProgram *program = nullptr;
        CtxState state = CtxState::Computing;
        std::uint32_t compute_remaining = 0;
        Op op;
        std::uint64_t resume_value = 0;
    };

    /** Load the context's next op after a completed operation. */
    void advance(Context &ctx, std::uint64_t result);

    /** Issue the active context's pending op (fast path or miss). */
    void issue(int ctx_index);

    /** Find another runnable context (round-robin); -1 if none. */
    int findRunnable(int after) const;

    /** Begin switching to @p target. */
    void startSwitch(int target);

    bool runnable(const Context &ctx) const;

    coher::CacheController &controller_;
    ProcessorConfig config_;
    std::vector<Context> contexts_;

    int active_ = 0;
    std::uint32_t switch_remaining_ = 0;

    ProcessorStats stats_;

    obs::Tracer *tracer_ = nullptr;
    int trace_track_ = 0;
    sim::Tick trace_ticks_per_cycle_ = 1;
    /** Engine time of the current tick (for trace timestamps). */
    sim::Tick now_ = 0;
};

} // namespace proc
} // namespace locsim

#endif // LOCSIM_PROC_PROCESSOR_HH_
