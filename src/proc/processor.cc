/**
 * @file
 * Processor implementation.
 */

#include "proc/processor.hh"

#include "util/logging.hh"

namespace locsim {
namespace proc {

Processor::Processor(coher::CacheController &controller,
                     const ProcessorConfig &config,
                     std::vector<ThreadProgram *> programs)
    : controller_(controller), config_(config)
{
    LOCSIM_ASSERT(config.contexts >= 1, "need at least one context");
    LOCSIM_ASSERT(programs.size() ==
                      static_cast<std::size_t>(config.contexts),
                  "one program per context required: got ",
                  programs.size(), " for ", config.contexts,
                  " contexts");
    contexts_.resize(programs.size());
    for (std::size_t i = 0; i < programs.size(); ++i) {
        Context &ctx = contexts_[i];
        LOCSIM_ASSERT(programs[i] != nullptr, "null thread program");
        ctx.program = programs[i];
        ctx.op = ctx.program->start();
        ctx.compute_remaining = ctx.op.compute_cycles;
        ctx.state = ctx.compute_remaining > 0 ? CtxState::Computing
                                              : CtxState::ReadyToIssue;
    }
    controller_.setClient(this);
}

void
Processor::memComplete(const coher::MemResponse &resp)
{
    Context &blocked =
        contexts_[static_cast<std::size_t>(resp.context)];
    LOCSIM_ASSERT(blocked.state == CtxState::WaitingMem,
                  "completion for a context that is not waiting");
    blocked.state = CtxState::ReadyToResume;
    blocked.resume_value = resp.load_value;
}

bool
Processor::runnable(const Context &ctx) const
{
    return ctx.state != CtxState::WaitingMem;
}

bool
Processor::allBlocked() const
{
    for (const Context &ctx : contexts_) {
        if (runnable(ctx))
            return false;
    }
    return true;
}

int
Processor::findRunnable(int after) const
{
    const int n = static_cast<int>(contexts_.size());
    for (int i = 1; i <= n; ++i) {
        const int candidate = (after + i) % n;
        if (candidate != after &&
            runnable(contexts_[static_cast<std::size_t>(candidate)]))
            return candidate;
    }
    return -1;
}

void
Processor::startSwitch(int target)
{
    LOCSIM_ASSERT(target != active_, "switching to the active context");
    if (tracer_ != nullptr) {
        tracer_->complete(
            trace_track_, now_,
            static_cast<sim::Tick>(config_.switch_cycles) *
                trace_ticks_per_cycle_,
            "ctx_switch", obs::Category::Proc,
            std::move(obs::Args().add("from", active_).add("to", target))
                .str());
    }
    active_ = target;
    switch_remaining_ = config_.switch_cycles;
    stats_.switches.inc();
}

void
Processor::advance(Context &ctx, std::uint64_t result)
{
    ctx.op = ctx.program->next(result);
    ctx.compute_remaining = ctx.op.compute_cycles;
    ctx.state = ctx.compute_remaining > 0 ? CtxState::Computing
                                          : CtxState::ReadyToIssue;
}

void
Processor::issue(int ctx_index)
{
    Context &ctx = contexts_[static_cast<std::size_t>(ctx_index)];
    stats_.ops.inc();

    coher::MemRequest req;
    req.is_store = ctx.op.kind == Op::Kind::Store;
    req.addr = ctx.op.addr;
    req.store_value = ctx.op.store_value;
    req.context = ctx_index;

    if (ctx.op.kind == Op::Kind::Prefetch) {
        stats_.prefetches.inc();
        // Fire and forget: a hit needs nothing; a miss starts the
        // coherence transaction but the thread does not wait for it.
        if (!controller_.tryFastPath(req)) {
            req.wants_reply = false;
            controller_.request(req);
        }
        advance(ctx, 0);
        return;
    }

    if (auto fast = controller_.tryFastPath(req)) {
        // Cache hit: the access completes within the issue cycle.
        advance(ctx, fast->load_value);
        return;
    }

    ctx.state = CtxState::WaitingMem;
    controller_.request(req);

    // Block multithreading: switch away if another context can run.
    if (contexts_.size() > 1) {
        const int target = findRunnable(ctx_index);
        if (target >= 0)
            startSwitch(target);
    }
}

void
Processor::tick(sim::Tick now)
{
    now_ = now;
    if (switch_remaining_ > 0) {
        --switch_remaining_;
        stats_.switch_cycles.inc();
        return;
    }

    Context &active = contexts_[static_cast<std::size_t>(active_)];
    switch (active.state) {
      case CtxState::Computing:
        stats_.work_cycles.inc();
        --active.compute_remaining;
        if (active.compute_remaining == 0)
            active.state = CtxState::ReadyToIssue;
        return;
      case CtxState::ReadyToIssue:
        issue(active_);
        return;
      case CtxState::ReadyToResume:
        advance(active, active.resume_value);
        return;
      case CtxState::WaitingMem: {
        // The active context is blocked. Switch if someone else can
        // run; otherwise idle until a completion arrives.
        if (contexts_.size() > 1) {
            const int target = findRunnable(active_);
            if (target >= 0) {
                startSwitch(target);
                return;
            }
        }
        stats_.idle_cycles.inc();
        return;
      }
    }
}

void
Processor::saveState(util::Serializer &s) const
{
    s.put<std::uint64_t>(contexts_.size());
    for (const Context &ctx : contexts_) {
        s.put(ctx.state);
        s.put(ctx.compute_remaining);
        saveOp(s, ctx.op);
        s.put(ctx.resume_value);
    }
    s.put(active_);
    s.put(switch_remaining_);
    stats_.saveState(s);
    s.put(now_);
}

void
Processor::loadState(util::Deserializer &d)
{
    const auto n = d.get<std::uint64_t>();
    if (n != contexts_.size())
        throw std::runtime_error(
            "Processor::loadState: context count mismatch");
    for (Context &ctx : contexts_) {
        ctx.state = d.get<CtxState>();
        ctx.compute_remaining = d.get<std::uint32_t>();
        ctx.op = loadOp(d);
        ctx.resume_value = d.get<std::uint64_t>();
    }
    active_ = d.get<int>();
    switch_remaining_ = d.get<std::uint32_t>();
    stats_.loadState(d);
    now_ = d.get<sim::Tick>();
}

} // namespace proc
} // namespace locsim
