/**
 * @file
 * The paper's synthetic validation application (Section 3.2): each
 * thread keeps one state word in local memory and loops forever,
 * reading each torus-graph neighbour's state word, doing a trivial
 * computation, and writing a new value to its own word. Threads never
 * synchronize; all communication flows through cache coherence.
 *
 * Multiple independent application instances run side by side, one
 * per hardware context, with exactly one thread of each instance on
 * every node; instances share nothing.
 *
 * The state words carry per-thread iteration counters, which lets the
 * program verify coherence end to end: a value read from a neighbour
 * must never be smaller than one read previously (a writer's counter
 * only grows, so any regression means a stale copy was served).
 */

#ifndef LOCSIM_WORKLOAD_TORUS_APP_HH_
#define LOCSIM_WORKLOAD_TORUS_APP_HH_

#include <cstdint>
#include <vector>

#include "coher/protocol.hh"
#include "net/topology.hh"
#include "proc/program.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace workload {

/** Maximum concurrent application instances (hardware contexts). */
inline constexpr std::uint32_t kMaxInstances = 8;

/**
 * Global address of the state word of (instance, thread) under a
 * mapping: homed at the node running the thread, in a line of its
 * own (distinct cache sets for distinct threads, so the workload's
 * footprint is conflict-free in a 64 KB cache, as on Alewife).
 */
coher::Addr stateWordAddr(const Mapping &mapping,
                          std::uint32_t instance,
                          std::uint32_t thread);

/** Configuration for one application instance set. */
struct TorusAppConfig
{
    /** Useful work before each memory operation, processor cycles. */
    std::uint32_t compute_cycles = 8;
    /** Verify read values against coherence invariants (tests). */
    bool verify = true;
    /**
     * Software prefetching: before loading neighbour i, issue a
     * non-blocking prefetch for neighbour i+1 (for the first
     * `prefetch_depth` loads of each iteration), overlapping the
     * next miss with the current one. 0 disables prefetching (the
     * paper's baseline). This realizes the "data prefetching"
     * mechanism of Section 2.1 in the simulator: it raises the
     * average number of outstanding transactions without additional
     * hardware contexts.
     */
    std::uint32_t prefetch_depth = 0;
};

/** One thread of the synthetic application. */
class TorusNeighborProgram : public proc::ThreadProgram
{
  public:
    /**
     * @param topo the application's communication graph (the same
     *        torus shape as the machine).
     * @param mapping thread placement (shared by all instances).
     * @param instance which independent application instance.
     * @param thread this thread's id in the graph.
     */
    TorusNeighborProgram(const net::TorusTopology &topo,
                         const Mapping &mapping, std::uint32_t instance,
                         std::uint32_t thread,
                         const TorusAppConfig &config);

    proc::Op start() override;
    proc::Op next(std::uint64_t previous_result) override;

    /** Completed iterations of the inner loop. */
    std::uint64_t iterations() const { return iteration_; }

    /** Coherence-order violations observed (must stay zero). */
    std::uint64_t violations() const { return violations_; }

    void
    saveState(util::Serializer &s) const override
    {
        s.put(pos_);
        s.put(iteration_);
        s.put(violations_);
        for (std::uint64_t seen : last_seen_)
            s.put(seen);
    }

    void
    loadState(util::Deserializer &d) override
    {
        pos_ = d.get<std::uint32_t>();
        iteration_ = d.get<std::uint64_t>();
        violations_ = d.get<std::uint64_t>();
        for (std::uint64_t &seen : last_seen_)
            seen = d.get<std::uint64_t>();
    }

    std::size_t
    memoryBytes() const override
    {
        return sizeof(*this) +
               neighbor_addrs_.capacity() * sizeof(coher::Addr) +
               last_seen_.capacity() * sizeof(std::uint64_t) +
               sequence_.capacity() * sizeof(Step);
    }

  private:
    proc::Op makeOp() const;

    TorusAppConfig config_;
    std::uint32_t thread_;
    coher::Addr own_addr_;
    std::vector<coher::Addr> neighbor_addrs_;
    /** Last value seen from each neighbour (coherence check). */
    std::vector<std::uint64_t> last_seen_;

    /** One step of the precomputed per-iteration op sequence. */
    struct Step
    {
        proc::Op::Kind kind;
        /** Neighbour index for loads/prefetches; unused for stores. */
        std::uint32_t neighbor = 0;
    };
    std::vector<Step> sequence_;

    /** Position within sequence_. */
    std::uint32_t pos_ = 0;
    std::uint64_t iteration_ = 0;
    std::uint64_t violations_ = 0;
};

} // namespace workload
} // namespace locsim

#endif // LOCSIM_WORKLOAD_TORUS_APP_HH_
