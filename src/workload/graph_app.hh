/**
 * @file
 * The nearest-neighbour application generalized to arbitrary
 * communication graphs: each thread loads every graph-neighbour's
 * state word, computes, and stores its own — the Section 3.2 loop
 * with the torus replaced by any CommGraph. This is what a downstream
 * user runs to evaluate placement for their own application's
 * communication pattern.
 */

#ifndef LOCSIM_WORKLOAD_GRAPH_APP_HH_
#define LOCSIM_WORKLOAD_GRAPH_APP_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "proc/program.hh"
#include "workload/comm_graph.hh"
#include "workload/mapping.hh"
#include "workload/torus_app.hh"

namespace locsim {
namespace workload {

/** One thread of the graph application. */
class GraphNeighborProgram : public proc::ThreadProgram
{
  public:
    /**
     * @param graph the communication graph (must outlive the
     *        program).
     * @param mapping thread placement.
     * @param instance independent application instance (context).
     * @param thread this thread's vertex.
     * @param config reuses the torus app's knobs (compute cycles,
     *        verification).
     */
    GraphNeighborProgram(const CommGraph &graph,
                         const Mapping &mapping, std::uint32_t instance,
                         std::uint32_t thread,
                         const TorusAppConfig &config);

    proc::Op start() override;
    proc::Op next(std::uint64_t previous_result) override;

    std::uint64_t iterations() const { return iteration_; }
    std::uint64_t violations() const { return violations_; }

    void
    saveState(util::Serializer &s) const override
    {
        s.put(step_);
        s.put(iteration_);
        s.put(violations_);
        for (std::uint64_t seen : last_seen_)
            s.put(seen);
    }

    void
    loadState(util::Deserializer &d) override
    {
        step_ = d.get<std::uint32_t>();
        iteration_ = d.get<std::uint64_t>();
        violations_ = d.get<std::uint64_t>();
        for (std::uint64_t &seen : last_seen_)
            seen = d.get<std::uint64_t>();
    }

    std::size_t
    memoryBytes() const override
    {
        return sizeof(*this) +
               neighbor_addrs_.capacity() * sizeof(coher::Addr) +
               last_seen_.capacity() * sizeof(std::uint64_t);
    }

  private:
    proc::Op makeOp() const;

    TorusAppConfig config_;
    std::uint32_t thread_;
    coher::Addr own_addr_;
    std::vector<coher::Addr> neighbor_addrs_;
    std::vector<std::uint64_t> last_seen_;

    std::uint32_t step_ = 0;
    std::uint64_t iteration_ = 0;
    std::uint64_t violations_ = 0;
};

} // namespace workload
} // namespace locsim

#endif // LOCSIM_WORKLOAD_GRAPH_APP_HH_
