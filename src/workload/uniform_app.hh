/**
 * @file
 * A no-locality workload: each thread repeatedly loads the state word
 * of a uniformly random other thread (never itself, matching the
 * Equation 17 assumption) and periodically updates its own word.
 *
 * This realizes "an application in which all distinct pairs of
 * threads communicate equally has no physical locality" (Section 1.1)
 * directly in the simulator: its average communication distance is
 * Equation 17's value under any bijective mapping, so no placement
 * can help it. Because every thread eventually reads every other
 * thread's word, sharer lists grow toward N, which also exercises the
 * LimitLESS limited-directory path.
 */

#ifndef LOCSIM_WORKLOAD_UNIFORM_APP_HH_
#define LOCSIM_WORKLOAD_UNIFORM_APP_HH_

#include <cstdint>

#include "net/topology.hh"
#include "proc/program.hh"
#include "util/random.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace workload {

/** Configuration for the uniform-random workload. */
struct UniformAppConfig
{
    /** Useful work before each memory operation, processor cycles. */
    std::uint32_t compute_cycles = 8;
    /** One own-word store per this many random loads. */
    std::uint32_t loads_per_store = 4;
    std::uint64_t seed = 1;
};

/** One thread of the uniform-random application. */
class UniformRemoteProgram : public proc::ThreadProgram
{
  public:
    UniformRemoteProgram(const net::TorusTopology &topo,
                         const Mapping &mapping, std::uint32_t instance,
                         std::uint32_t thread,
                         const UniformAppConfig &config);

    proc::Op start() override;
    proc::Op next(std::uint64_t previous_result) override;

    /** Operations completed (loads + stores). */
    std::uint64_t operations() const { return operations_; }

    void
    saveState(util::Serializer &s) const override
    {
        rng_.saveState(s);
        s.put(until_store_);
        s.put(operations_);
        s.put(stores_);
    }

    void
    loadState(util::Deserializer &d) override
    {
        rng_.loadState(d);
        until_store_ = d.get<std::uint32_t>();
        operations_ = d.get<std::uint64_t>();
        stores_ = d.get<std::uint64_t>();
    }

  private:
    proc::Op makeOp();

    const Mapping &mapping_;
    UniformAppConfig config_;
    std::uint32_t instance_;
    std::uint32_t thread_;
    std::uint32_t thread_count_;
    util::Rng rng_;
    std::uint32_t until_store_;
    std::uint64_t operations_ = 0;
    std::uint64_t stores_ = 0;
};

} // namespace workload
} // namespace locsim

#endif // LOCSIM_WORKLOAD_UNIFORM_APP_HH_
