/**
 * @file
 * Thread-placement optimization.
 *
 * The paper assumes "good thread-to-processor mappings" exist and
 * studies their payoff; this module actually finds them. Given a
 * communication graph and a torus, the optimizer searches the space
 * of bijective placements for one minimizing the weighted average
 * communication distance (the d the combined model consumes), using
 * simulated annealing over pairwise swaps with greedy descent as the
 * final polish.
 */

#ifndef LOCSIM_WORKLOAD_PLACEMENT_HH_
#define LOCSIM_WORKLOAD_PLACEMENT_HH_

#include <cstdint>
#include <vector>

#include "net/topology.hh"
#include "workload/comm_graph.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace workload {

/** Annealing knobs. */
struct PlacementConfig
{
    /** Swap proposals evaluated. */
    std::uint64_t iterations = 200000;
    /** Initial temperature, in units of average edge distance. */
    double initial_temperature = 2.0;
    /** Geometric cooling applied every `iterations / 100` proposals. */
    double cooling = 0.93;
    /** Independent restarts; the best result wins. */
    int restarts = 2;
    std::uint64_t seed = 1;
};

/** Result of a placement search. */
struct PlacementResult
{
    Mapping mapping;
    double distance = 0.0;        //!< achieved average distance
    double initial_distance = 0.0; //!< random-start average distance
    std::uint64_t accepted_moves = 0;
};

/**
 * Search for a placement of @p graph onto @p topo minimizing average
 * communication distance.
 */
PlacementResult optimizePlacement(const CommGraph &graph,
                                  const net::TorusTopology &topo,
                                  const PlacementConfig &config = {});

} // namespace workload
} // namespace locsim

#endif // LOCSIM_WORKLOAD_PLACEMENT_HH_
