/**
 * @file
 * Trace parsing and replay.
 */

#include "workload/trace_app.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace locsim {
namespace workload {

std::vector<proc::Op>
parseTrace(std::istream &input)
{
    std::vector<proc::Op> ops;
    std::string line;
    int line_no = 0;
    while (std::getline(input, line)) {
        ++line_no;
        // Strip comments.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string kind;
        if (!(fields >> kind))
            continue; // blank line

        proc::Op op;
        if (kind == "L" || kind == "l") {
            op.kind = proc::Op::Kind::Load;
        } else if (kind == "S" || kind == "s") {
            op.kind = proc::Op::Kind::Store;
        } else if (kind == "P" || kind == "p") {
            op.kind = proc::Op::Kind::Prefetch;
        } else {
            LOCSIM_FATAL("trace line ", line_no,
                         ": unknown op kind '", kind,
                         "' (expected L, S, or P)");
        }

        std::uint64_t home = 0, index = 0;
        std::uint32_t compute = 0;
        if (!(fields >> home >> index >> compute)) {
            LOCSIM_FATAL("trace line ", line_no,
                         ": expected '<kind> <home> <line> "
                         "<compute>'");
        }
        std::string extra;
        if (fields >> extra) {
            LOCSIM_FATAL("trace line ", line_no,
                         ": trailing field '", extra, "'");
        }
        op.addr = coher::makeAddr(
            static_cast<sim::NodeId>(home),
            static_cast<std::uint32_t>(index));
        op.compute_cycles = compute;
        // Stores carry a deterministic value derived from position
        // so replays are reproducible.
        op.store_value = static_cast<std::uint64_t>(line_no);
        ops.push_back(op);
    }
    return ops;
}

std::vector<proc::Op>
loadTraceFile(const std::string &path)
{
    std::ifstream input(path);
    if (!input)
        LOCSIM_FATAL("cannot open trace file '", path, "'");
    auto ops = parseTrace(input);
    if (ops.empty())
        LOCSIM_FATAL("trace file '", path, "' contains no operations");
    return ops;
}

TraceProgram::TraceProgram(std::vector<proc::Op> ops)
    : ops_(std::move(ops))
{
    LOCSIM_ASSERT(!ops_.empty(), "empty trace");
}

proc::Op
TraceProgram::start()
{
    return ops_[0];
}

proc::Op
TraceProgram::next(std::uint64_t)
{
    ++pos_;
    if (pos_ == ops_.size()) {
        pos_ = 0;
        ++loops_;
    }
    return ops_[pos_];
}

} // namespace workload
} // namespace locsim
