/**
 * @file
 * Application communication graphs.
 *
 * Section 1.1 defines physical locality through the structure of an
 * application's inter-thread communication graph ("applications tend
 * to have good physical locality to the extent that their inter-
 * thread communication graphs have relatively low bisection width and
 * high diameter"). This module makes that graph a first-class object:
 * generators for common shapes, locality metrics, and the average
 * communication distance induced by a thread-to-processor mapping —
 * the single number the paper's model consumes.
 */

#ifndef LOCSIM_WORKLOAD_COMM_GRAPH_HH_
#define LOCSIM_WORKLOAD_COMM_GRAPH_HH_

#include <cstdint>
#include <utility>
#include <vector>

#include "net/topology.hh"
#include "util/random.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace workload {

/** An undirected, weighted inter-thread communication graph. */
class CommGraph
{
  public:
    /** One adjacency: peer vertex and communication weight. */
    struct Edge
    {
        std::uint32_t peer;
        double weight;
    };

    explicit CommGraph(std::uint32_t vertices);

    std::uint32_t vertexCount() const
    {
        return static_cast<std::uint32_t>(adjacency_.size());
    }

    /** Number of undirected edges. */
    std::uint64_t edgeCount() const { return edges_; }

    /**
     * Add an undirected edge (no self-loops; parallel edges merge by
     * summing weights).
     */
    void addEdge(std::uint32_t u, std::uint32_t v,
                 double weight = 1.0);

    /** Neighbors of @p vertex. */
    const std::vector<Edge> &neighbors(std::uint32_t vertex) const;

    /** Sum of all edge weights. */
    double totalWeight() const { return total_weight_; }

    /**
     * Weight-averaged network distance between the endpoints of every
     * edge under @p mapping on @p topo — the graph's average
     * communication distance d for that placement.
     */
    double averageDistance(const Mapping &mapping,
                           const net::TorusTopology &topo) const;

    /** Unweighted graph diameter (infinite graphs return UINT32_MAX). */
    std::uint32_t diameter() const;

    /** True if every vertex can reach every other. */
    bool connected() const;

    /**
     * Average vertex degree (edge endpoints per vertex) — with
     * diameter, a coarse proxy for the bisection-vs-diameter locality
     * discussion of Section 1.1.
     */
    double averageDegree() const;

    // Generators -------------------------------------------------------

    /** The k-ary n-dimensional torus graph (the Section 3 workload). */
    static CommGraph torus(int radix, int dims);

    /** A simple ring of @p vertices (maximal locality). */
    static CommGraph ring(std::uint32_t vertices);

    /**
     * Balanced binary tree over @p vertices (vertex 0 is the root;
     * vertex i links to (i-1)/2).
     */
    static CommGraph binaryTree(std::uint32_t vertices);

    /**
     * Random graph where each vertex draws @p degree distinct random
     * peers (degrees are therefore >= degree on average) — low
     * diameter, high bisection: essentially no physical locality.
     */
    static CommGraph randomPeers(std::uint32_t vertices, int degree,
                                 std::uint64_t seed);

    /**
     * 2-D five-point stencil without wraparound (open grid), the
     * classic scientific-computing pattern.
     */
    static CommGraph grid2d(int width, int height);

  private:
    std::vector<std::vector<Edge>> adjacency_;
    std::uint64_t edges_ = 0;
    double total_weight_ = 0.0;
};

} // namespace workload
} // namespace locsim

#endif // LOCSIM_WORKLOAD_COMM_GRAPH_HH_
