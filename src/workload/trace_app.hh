/**
 * @file
 * Trace-driven threads: replay a recorded memory-operation trace
 * through the processor model instead of a synthetic generator. This
 * is how a downstream user runs *their* application's reference
 * stream against the machine and the model.
 *
 * Trace text format, one operation per line:
 *
 *     <kind> <home> <line> <compute>
 *
 * where kind is L (load), S (store), or P (prefetch); home is the
 * node the word lives on; line is the cache-line index at that home;
 * and compute is the useful work in processor cycles preceding the
 * operation. '#' starts a comment; blank lines are ignored.
 *
 * Example:
 *
 *     # stream one line, then update a flag
 *     L 3 17 8
 *     S 0 2  4
 */

#ifndef LOCSIM_WORKLOAD_TRACE_APP_HH_
#define LOCSIM_WORKLOAD_TRACE_APP_HH_

#include <iosfwd>
#include <string>
#include <vector>

#include "proc/program.hh"

namespace locsim {
namespace workload {

/**
 * Parse a trace from a stream.
 *
 * @throws never; malformed input is a user error reported via
 *         LOCSIM_FATAL with the offending line number.
 */
std::vector<proc::Op> parseTrace(std::istream &input);

/** Parse a trace from a file path (fatal if unreadable). */
std::vector<proc::Op> loadTraceFile(const std::string &path);

/**
 * A thread that replays a fixed op sequence, looping forever (the
 * measurement harness decides when to stop).
 */
class TraceProgram : public proc::ThreadProgram
{
  public:
    /** @param ops the trace; must be non-empty. */
    explicit TraceProgram(std::vector<proc::Op> ops);

    proc::Op start() override;
    proc::Op next(std::uint64_t previous_result) override;

    /** Full passes over the trace completed. */
    std::uint64_t loops() const { return loops_; }

    void
    saveState(util::Serializer &s) const override
    {
        s.put<std::uint64_t>(pos_);
        s.put(loops_);
    }

    void
    loadState(util::Deserializer &d) override
    {
        pos_ = static_cast<std::size_t>(d.get<std::uint64_t>());
        loops_ = d.get<std::uint64_t>();
    }

  private:
    std::vector<proc::Op> ops_;
    std::size_t pos_ = 0;
    std::uint64_t loops_ = 0;
};

} // namespace workload
} // namespace locsim

#endif // LOCSIM_WORKLOAD_TRACE_APP_HH_
