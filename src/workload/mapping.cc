/**
 * @file
 * Mapping implementation.
 */

#include "workload/mapping.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"
#include "util/random.hh"

namespace locsim {
namespace workload {

Mapping::Mapping(std::vector<sim::NodeId> thread_to_node)
    : to_node_(std::move(thread_to_node))
{
    LOCSIM_ASSERT(!to_node_.empty(), "empty mapping");
    to_thread_.assign(to_node_.size(), ~0u);
    for (std::uint32_t t = 0; t < to_node_.size(); ++t) {
        const sim::NodeId node = to_node_[t];
        LOCSIM_ASSERT(node < to_node_.size(),
                      "mapping target out of range: ", node);
        LOCSIM_ASSERT(to_thread_[node] == ~0u,
                      "mapping is not a bijection: node ", node,
                      " assigned twice");
        to_thread_[node] = t;
    }
}

sim::NodeId
Mapping::node(std::uint32_t thread) const
{
    LOCSIM_ASSERT(thread < to_node_.size(), "thread out of range");
    return to_node_[thread];
}

std::uint32_t
Mapping::threadAt(sim::NodeId node) const
{
    LOCSIM_ASSERT(node < to_thread_.size(), "node out of range");
    return to_thread_[node];
}

double
Mapping::averageNeighborDistance(const net::TorusTopology &topo) const
{
    LOCSIM_ASSERT(topo.nodeCount() == to_node_.size(),
                  "mapping size does not match topology");
    double total = 0.0;
    std::uint64_t pairs = 0;
    for (std::uint32_t t = 0; t < to_node_.size(); ++t) {
        for (int dim = 0; dim < topo.dims(); ++dim) {
            for (int dir : {+1, -1}) {
                const sim::NodeId nbr = topo.neighbor(t, dim, dir);
                if (nbr == sim::kNodeNone)
                    continue; // mesh edge
                total += topo.distance(to_node_[t], to_node_[nbr]);
                ++pairs;
            }
        }
    }
    return total / static_cast<double>(pairs);
}

Mapping
Mapping::identity(std::uint32_t count)
{
    std::vector<sim::NodeId> map(count);
    std::iota(map.begin(), map.end(), 0u);
    return Mapping(std::move(map));
}

Mapping
Mapping::random(std::uint32_t count, std::uint64_t seed)
{
    std::vector<sim::NodeId> map(count);
    std::iota(map.begin(), map.end(), 0u);
    util::Rng rng(seed);
    rng.shuffle(map);
    return Mapping(std::move(map));
}

Mapping
Mapping::linear2d(const net::TorusTopology &topo, int a, int b, int c,
                  int d)
{
    LOCSIM_ASSERT(topo.dims() == 2, "linear2d needs a 2-D torus");
    const int k = topo.radix();
    std::vector<sim::NodeId> map(topo.nodeCount());
    for (sim::NodeId t = 0; t < topo.nodeCount(); ++t) {
        const int x = topo.coord(t, 0);
        const int y = topo.coord(t, 1);
        const int nx = ((a * x + b * y) % k + k) % k;
        const int ny = ((c * x + d * y) % k + k) % k;
        map[t] = topo.nodeAt({nx, ny});
    }
    // The Mapping constructor verifies bijectivity (equivalent to the
    // determinant being a unit mod k).
    return Mapping(std::move(map));
}

std::vector<NamedMapping>
experimentMappings(const net::TorusTopology &topo,
                   std::uint64_t random_seed)
{
    LOCSIM_ASSERT(topo.dims() == 2 && topo.radix() >= 8,
                  "the experiment mapping family targets 2-D tori of "
                  "radix >= 8");
    struct LinearSpec
    {
        const char *name;
        int a, b, c, d;
    };
    // Coefficients avoid k/2 (ring-distance ties), which would route
    // every tied hop in the same direction and concentrate load on
    // half the channels -- a pathology outside both the paper's
    // experiments and the network model's uniform-load assumption.
    const LinearSpec specs[] = {
        {"identity", 1, 0, 0, 1},          // d = 1
        {"shear-1", 1, 1, 0, 1},           // d = 1.5
        {"dilate-3x", 3, 0, 0, 1},         // d = 2
        {"cross-shear-2", 1, 2, 2, 1},     // d = 3
        {"dilate-3xy", 3, 0, 0, 3},        // d = 3
        {"mixed-3-2", 1, 3, 2, 1},         // d = 3.5
        {"cross-23", 2, 3, 3, 2},          // d = 5
        {"far", 3, 3, 2, 5},               // d = 5.5
    };

    std::vector<NamedMapping> out;
    for (const LinearSpec &spec : specs) {
        Mapping mapping = Mapping::linear2d(topo, spec.a, spec.b,
                                            spec.c, spec.d);
        const double dist = mapping.averageNeighborDistance(topo);
        out.push_back({spec.name, std::move(mapping), dist});
    }
    Mapping random = Mapping::random(topo.nodeCount(), random_seed);
    const double dist = random.averageNeighborDistance(topo);
    out.push_back({"random", std::move(random), dist});

    std::sort(out.begin(), out.end(),
              [](const NamedMapping &lhs, const NamedMapping &rhs) {
                  return lhs.avg_distance < rhs.avg_distance;
              });
    return out;
}

} // namespace workload
} // namespace locsim
