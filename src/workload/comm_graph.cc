/**
 * @file
 * CommGraph implementation.
 */

#include "workload/comm_graph.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/logging.hh"

namespace locsim {
namespace workload {

CommGraph::CommGraph(std::uint32_t vertices)
{
    LOCSIM_ASSERT(vertices >= 2, "graph needs at least two vertices");
    adjacency_.resize(vertices);
}

void
CommGraph::addEdge(std::uint32_t u, std::uint32_t v, double weight)
{
    LOCSIM_ASSERT(u < vertexCount() && v < vertexCount(),
                  "edge endpoint out of range");
    LOCSIM_ASSERT(u != v, "self-loops are not communication");
    LOCSIM_ASSERT(weight > 0.0, "edge weight must be positive");

    auto merge = [&](std::uint32_t from, std::uint32_t to) -> bool {
        for (Edge &edge : adjacency_[from]) {
            if (edge.peer == to) {
                edge.weight += weight;
                return true;
            }
        }
        adjacency_[from].push_back({to, weight});
        return false;
    };
    const bool existed = merge(u, v);
    merge(v, u);
    if (!existed) {
        ++edges_;
    }
    total_weight_ += weight;
}

const std::vector<CommGraph::Edge> &
CommGraph::neighbors(std::uint32_t vertex) const
{
    LOCSIM_ASSERT(vertex < vertexCount(), "vertex out of range");
    return adjacency_[vertex];
}

double
CommGraph::averageDistance(const Mapping &mapping,
                           const net::TorusTopology &topo) const
{
    LOCSIM_ASSERT(mapping.size() == vertexCount(),
                  "mapping size must match the graph");
    LOCSIM_ASSERT(topo.nodeCount() == vertexCount(),
                  "topology size must match the graph");
    double weighted = 0.0;
    double weight_total = 0.0;
    for (std::uint32_t u = 0; u < vertexCount(); ++u) {
        for (const Edge &edge : adjacency_[u]) {
            weighted += edge.weight *
                        topo.distance(mapping.node(u),
                                      mapping.node(edge.peer));
            weight_total += edge.weight;
        }
    }
    if (weight_total == 0.0)
        return 0.0;
    return weighted / weight_total;
}

std::uint32_t
CommGraph::diameter() const
{
    // BFS from every vertex (graphs here are machine-sized: <= a few
    // thousand vertices).
    std::uint32_t best = 0;
    std::vector<std::uint32_t> dist(vertexCount());
    for (std::uint32_t src = 0; src < vertexCount(); ++src) {
        std::fill(dist.begin(), dist.end(),
                  std::numeric_limits<std::uint32_t>::max());
        std::deque<std::uint32_t> queue{src};
        dist[src] = 0;
        while (!queue.empty()) {
            const std::uint32_t at = queue.front();
            queue.pop_front();
            for (const Edge &edge : adjacency_[at]) {
                if (dist[edge.peer] !=
                    std::numeric_limits<std::uint32_t>::max())
                    continue;
                dist[edge.peer] = dist[at] + 1;
                queue.push_back(edge.peer);
            }
        }
        for (std::uint32_t d : dist) {
            if (d == std::numeric_limits<std::uint32_t>::max())
                return std::numeric_limits<std::uint32_t>::max();
            best = std::max(best, d);
        }
    }
    return best;
}

bool
CommGraph::connected() const
{
    return diameter() !=
           std::numeric_limits<std::uint32_t>::max();
}

double
CommGraph::averageDegree() const
{
    std::uint64_t endpoints = 0;
    for (const auto &adj : adjacency_)
        endpoints += adj.size();
    return static_cast<double>(endpoints) /
           static_cast<double>(vertexCount());
}

CommGraph
CommGraph::torus(int radix, int dims)
{
    net::TorusTopology topo(radix, dims);
    CommGraph graph(topo.nodeCount());
    for (std::uint32_t v = 0; v < topo.nodeCount(); ++v) {
        for (int dim = 0; dim < dims; ++dim) {
            const std::uint32_t peer = topo.neighbor(v, dim, 1);
            if (peer != v)
                graph.addEdge(v, peer);
        }
    }
    return graph;
}

CommGraph
CommGraph::ring(std::uint32_t vertices)
{
    CommGraph graph(vertices);
    for (std::uint32_t v = 0; v < vertices; ++v)
        graph.addEdge(v, (v + 1) % vertices);
    return graph;
}

CommGraph
CommGraph::binaryTree(std::uint32_t vertices)
{
    CommGraph graph(vertices);
    for (std::uint32_t v = 1; v < vertices; ++v)
        graph.addEdge(v, (v - 1) / 2);
    return graph;
}

CommGraph
CommGraph::randomPeers(std::uint32_t vertices, int degree,
                       std::uint64_t seed)
{
    LOCSIM_ASSERT(degree >= 1, "degree must be positive");
    LOCSIM_ASSERT(static_cast<std::uint32_t>(degree) < vertices,
                  "degree too large for the vertex count");
    CommGraph graph(vertices);
    util::Rng rng(seed);
    for (std::uint32_t v = 0; v < vertices; ++v) {
        int added = 0;
        while (added < degree) {
            auto peer = static_cast<std::uint32_t>(
                rng.nextBounded(vertices - 1));
            if (peer >= v)
                ++peer;
            // addEdge merges duplicates; count attempts as draws so
            // the loop terminates regardless.
            graph.addEdge(v, peer);
            ++added;
        }
    }
    return graph;
}

CommGraph
CommGraph::grid2d(int width, int height)
{
    LOCSIM_ASSERT(width >= 1 && height >= 1, "bad grid shape");
    const auto vertices =
        static_cast<std::uint32_t>(width) *
        static_cast<std::uint32_t>(height);
    CommGraph graph(vertices);
    auto id = [&](int x, int y) {
        return static_cast<std::uint32_t>(y * width + x);
    };
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            if (x + 1 < width)
                graph.addEdge(id(x, y), id(x + 1, y));
            if (y + 1 < height)
                graph.addEdge(id(x, y), id(x, y + 1));
        }
    }
    return graph;
}

} // namespace workload
} // namespace locsim
