/**
 * @file
 * GraphNeighborProgram implementation.
 */

#include "workload/graph_app.hh"

#include "util/logging.hh"

namespace locsim {
namespace workload {

GraphNeighborProgram::GraphNeighborProgram(const CommGraph &graph,
                                           const Mapping &mapping,
                                           std::uint32_t instance,
                                           std::uint32_t thread,
                                           const TorusAppConfig &config)
    : config_(config), thread_(thread),
      own_addr_(stateWordAddr(mapping, instance, thread))
{
    LOCSIM_ASSERT(graph.vertexCount() == mapping.size(),
                  "graph and mapping sizes must match");
    for (const CommGraph::Edge &edge : graph.neighbors(thread)) {
        neighbor_addrs_.push_back(
            stateWordAddr(mapping, instance, edge.peer));
    }
    LOCSIM_ASSERT(!neighbor_addrs_.empty(),
                  "thread ", thread, " has no neighbours");
    last_seen_.assign(neighbor_addrs_.size(), 0);
}

proc::Op
GraphNeighborProgram::makeOp() const
{
    proc::Op op;
    op.compute_cycles = config_.compute_cycles;
    if (step_ < neighbor_addrs_.size()) {
        op.kind = proc::Op::Kind::Load;
        op.addr = neighbor_addrs_[step_];
    } else {
        op.kind = proc::Op::Kind::Store;
        op.addr = own_addr_;
        op.store_value = ((iteration_ + 1) << 16) | thread_;
    }
    return op;
}

proc::Op
GraphNeighborProgram::start()
{
    return makeOp();
}

proc::Op
GraphNeighborProgram::next(std::uint64_t previous_result)
{
    if (step_ < neighbor_addrs_.size()) {
        if (config_.verify) {
            const std::uint64_t counter = previous_result >> 16;
            if (counter < (last_seen_[step_] >> 16))
                ++violations_;
            last_seen_[step_] = previous_result;
        }
        ++step_;
    } else {
        step_ = 0;
        ++iteration_;
    }
    return makeOp();
}

} // namespace workload
} // namespace locsim
