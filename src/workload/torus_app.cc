/**
 * @file
 * Synthetic application implementation.
 */

#include "workload/torus_app.hh"

#include <algorithm>

#include "util/logging.hh"

namespace locsim {
namespace workload {

coher::Addr
stateWordAddr(const Mapping &mapping, std::uint32_t instance,
              std::uint32_t thread)
{
    LOCSIM_ASSERT(instance < kMaxInstances, "instance out of range");
    const sim::NodeId home = mapping.node(thread);
    const std::uint32_t line = thread * kMaxInstances + instance;
    return coher::makeAddr(home, line);
}

TorusNeighborProgram::TorusNeighborProgram(
    const net::TorusTopology &topo, const Mapping &mapping,
    std::uint32_t instance, std::uint32_t thread,
    const TorusAppConfig &config)
    : config_(config), thread_(thread),
      own_addr_(stateWordAddr(mapping, instance, thread))
{
    for (int dim = 0; dim < topo.dims(); ++dim) {
        for (int dir : {+1, -1}) {
            const sim::NodeId nbr = topo.neighbor(thread, dim, dir);
            if (nbr == sim::kNodeNone)
                continue; // mesh edge: boundary threads read fewer
            neighbor_addrs_.push_back(
                stateWordAddr(mapping, instance, nbr));
        }
    }
    last_seen_.assign(neighbor_addrs_.size(), 0);

    // Build the per-iteration op sequence: before load i, prefetch
    // neighbour i+1 (for the first prefetch_depth loads), then the
    // store of the thread's own word.
    const auto neighbors =
        static_cast<std::uint32_t>(neighbor_addrs_.size());
    const std::uint32_t depth =
        std::min<std::uint32_t>(config_.prefetch_depth,
                                neighbors - 1);
    for (std::uint32_t i = 0; i < neighbors; ++i) {
        if (i < depth) {
            sequence_.push_back(
                {proc::Op::Kind::Prefetch, i + 1});
        }
        sequence_.push_back({proc::Op::Kind::Load, i});
    }
    if (depth >= 1) {
        // Also prefetch the next iteration's first neighbour so the
        // store's stall hides that miss too.
        sequence_.push_back({proc::Op::Kind::Prefetch, 0});
    }
    sequence_.push_back({proc::Op::Kind::Store, 0});
}

proc::Op
TorusNeighborProgram::makeOp() const
{
    const Step &step = sequence_[pos_];
    proc::Op op;
    op.kind = step.kind;
    switch (step.kind) {
      case proc::Op::Kind::Prefetch:
        op.addr = neighbor_addrs_[step.neighbor];
        op.compute_cycles = 0; // overlap, not work
        break;
      case proc::Op::Kind::Load:
        op.addr = neighbor_addrs_[step.neighbor];
        op.compute_cycles = config_.compute_cycles;
        break;
      case proc::Op::Kind::Store:
        op.addr = own_addr_;
        op.compute_cycles = config_.compute_cycles;
        // Encode (iteration, thread) so readers can verify
        // monotonicity per writer.
        op.store_value = ((iteration_ + 1) << 16) | thread_;
        break;
    }
    return op;
}

proc::Op
TorusNeighborProgram::start()
{
    return makeOp();
}

proc::Op
TorusNeighborProgram::next(std::uint64_t previous_result)
{
    const Step &completed = sequence_[pos_];
    if (completed.kind == proc::Op::Kind::Load && config_.verify) {
        // A neighbour's counter must never regress: coherence must
        // serve a copy at least as fresh as any seen before.
        const std::uint64_t counter = previous_result >> 16;
        if (counter < (last_seen_[completed.neighbor] >> 16))
            ++violations_;
        last_seen_[completed.neighbor] = previous_result;
    }
    ++pos_;
    if (pos_ == sequence_.size()) {
        // The store completed; one full iteration done.
        pos_ = 0;
        ++iteration_;
    }
    return makeOp();
}

} // namespace workload
} // namespace locsim
