/**
 * @file
 * UniformRemoteProgram implementation.
 */

#include "workload/uniform_app.hh"

#include "util/logging.hh"
#include "workload/torus_app.hh"

namespace locsim {
namespace workload {

UniformRemoteProgram::UniformRemoteProgram(
    const net::TorusTopology &topo, const Mapping &mapping,
    std::uint32_t instance, std::uint32_t thread,
    const UniformAppConfig &config)
    : mapping_(mapping), config_(config), instance_(instance),
      thread_(thread), thread_count_(topo.nodeCount()),
      rng_(config.seed ^ (std::uint64_t(instance) << 32) ^ thread),
      until_store_(config.loads_per_store)
{
    LOCSIM_ASSERT(config.loads_per_store >= 1,
                  "need at least one load per store");
    LOCSIM_ASSERT(thread_count_ >= 2, "need at least two threads");
}

proc::Op
UniformRemoteProgram::makeOp()
{
    proc::Op op;
    op.compute_cycles = config_.compute_cycles;
    if (until_store_ > 0) {
        --until_store_;
        // Uniform over all other threads (never self): the random
        // traffic of Equation 17.
        auto target = static_cast<std::uint32_t>(
            rng_.nextBounded(thread_count_ - 1));
        if (target >= thread_)
            ++target;
        op.kind = proc::Op::Kind::Load;
        op.addr = stateWordAddr(mapping_, instance_, target);
    } else {
        until_store_ = config_.loads_per_store;
        op.kind = proc::Op::Kind::Store;
        op.addr = stateWordAddr(mapping_, instance_, thread_);
        op.store_value = (++stores_ << 16) | thread_;
    }
    return op;
}

proc::Op
UniformRemoteProgram::start()
{
    return makeOp();
}

proc::Op
UniformRemoteProgram::next(std::uint64_t)
{
    ++operations_;
    return makeOp();
}

} // namespace workload
} // namespace locsim
