/**
 * @file
 * Thread-to-processor mappings (Section 3.2).
 *
 * The validation application's threads communicate in a torus graph
 * of the same shape as the machine, so the mapping alone determines
 * the average communication distance. The paper used nine mappings
 * spanning average distances from one hop to just over six; we
 * provide an equivalent family: linear (matrix) maps over the torus
 * coordinate space, which are distance-homogeneous, plus random
 * permutations.
 */

#ifndef LOCSIM_WORKLOAD_MAPPING_HH_
#define LOCSIM_WORKLOAD_MAPPING_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.hh"
#include "sim/types.hh"

namespace locsim {
namespace workload {

/** A bijective assignment of application threads to nodes. */
class Mapping
{
  public:
    /**
     * @param thread_to_node permutation: entry t is the node running
     *        thread t. Must be a bijection.
     */
    explicit Mapping(std::vector<sim::NodeId> thread_to_node);

    /** Number of threads (== number of nodes). */
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(to_node_.size());
    }

    /** Node running thread @p thread. */
    sim::NodeId node(std::uint32_t thread) const;

    /** Thread resident on @p node (inverse map). */
    std::uint32_t threadAt(sim::NodeId node) const;

    /**
     * Average network distance between the nodes hosting each pair of
     * graph-adjacent threads, where the thread graph is the torus
     * @p topo (the synthetic application's communication graph).
     * This is the mapping's average communication distance d.
     */
    double averageNeighborDistance(const net::TorusTopology &topo) const;

    /** Identity mapping: thread t on node t (d = 1). */
    static Mapping identity(std::uint32_t count);

    /** Uniform random permutation (expected d from Equation 17). */
    static Mapping random(std::uint32_t count, std::uint64_t seed);

    /**
     * Linear map over 2-D torus coordinates:
     * (x, y) -> ((a x + b y) mod k, (c x + d y) mod k).
     * The determinant must be a unit modulo k so the map is a
     * bijection; the constructor checks this by construction.
     */
    static Mapping linear2d(const net::TorusTopology &topo, int a,
                            int b, int c, int d);

  private:
    std::vector<sim::NodeId> to_node_;
    std::vector<std::uint32_t> to_thread_;
};

/** A named mapping for experiment tables. */
struct NamedMapping
{
    std::string name;
    Mapping mapping;
    /** Average communication distance on the experiment's torus. */
    double avg_distance;
};

/**
 * The experiment suite's mapping family for a 2-D torus: nine
 * mappings with average communication distance from 1 to about 6
 * hops (paper Section 3.2), sorted by distance.
 */
std::vector<NamedMapping>
experimentMappings(const net::TorusTopology &topo,
                   std::uint64_t random_seed = 12345);

} // namespace workload
} // namespace locsim

#endif // LOCSIM_WORKLOAD_MAPPING_HH_
