/**
 * @file
 * Simulated-annealing placement optimizer.
 */

#include "workload/placement.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace locsim {
namespace workload {

namespace {

/** Working state for one annealing run. */
class Annealer
{
  public:
    Annealer(const CommGraph &graph, const net::TorusTopology &topo,
             util::Rng &rng)
        : graph_(graph), topo_(topo), rng_(rng),
          placement_(graph.vertexCount())
    {
        for (std::uint32_t t = 0; t < graph.vertexCount(); ++t)
            placement_[t] = t;
        rng_.shuffle(placement_);
    }

    /** Total weighted distance of the current placement. */
    double
    totalCost() const
    {
        double cost = 0.0;
        for (std::uint32_t u = 0; u < graph_.vertexCount(); ++u) {
            for (const CommGraph::Edge &edge : graph_.neighbors(u)) {
                if (edge.peer < u)
                    continue; // each undirected edge once
                cost += edge.weight *
                        topo_.distance(placement_[u],
                                       placement_[edge.peer]);
            }
        }
        return cost;
    }

    /**
     * Cost of vertex @p u's incident edges if placed at @p node,
     * excluding any edge to @p skip (whose distance is invariant
     * under a u<->skip swap and must not be evaluated against a
     * stale placement).
     */
    double
    incidentCost(std::uint32_t u, sim::NodeId node,
                 std::uint32_t skip) const
    {
        double cost = 0.0;
        for (const CommGraph::Edge &edge : graph_.neighbors(u)) {
            if (edge.peer == skip)
                continue;
            cost += edge.weight *
                    topo_.distance(node, placement_[edge.peer]);
        }
        return cost;
    }

    /**
     * Change in total cost from swapping the placements of threads
     * @p u and @p v. The edge between them (if any) spans the same
     * node pair before and after, so it is excluded from both sides.
     */
    double
    swapDelta(std::uint32_t u, std::uint32_t v) const
    {
        const sim::NodeId a = placement_[u];
        const sim::NodeId b = placement_[v];
        const double before =
            incidentCost(u, a, v) + incidentCost(v, b, u);
        const double after =
            incidentCost(u, b, v) + incidentCost(v, a, u);
        return after - before;
    }

    void
    swap(std::uint32_t u, std::uint32_t v)
    {
        std::swap(placement_[u], placement_[v]);
    }

    const std::vector<sim::NodeId> &placement() const
    {
        return placement_;
    }

  private:
    const CommGraph &graph_;
    const net::TorusTopology &topo_;
    util::Rng &rng_;
    std::vector<sim::NodeId> placement_;
};

} // namespace

PlacementResult
optimizePlacement(const CommGraph &graph,
                  const net::TorusTopology &topo,
                  const PlacementConfig &config)
{
    LOCSIM_ASSERT(graph.vertexCount() == topo.nodeCount(),
                  "graph and topology sizes must match");
    LOCSIM_ASSERT(config.iterations > 0 && config.restarts >= 1,
                  "bad placement configuration");
    LOCSIM_ASSERT(config.cooling > 0.0 && config.cooling < 1.0,
                  "cooling factor must be in (0, 1)");

    util::Rng rng(config.seed);
    const std::uint32_t n = graph.vertexCount();
    const double weight_total = graph.totalWeight();

    PlacementResult best{Mapping::identity(n)};
    best.distance = -1.0;

    for (int restart = 0; restart < config.restarts; ++restart) {
        Annealer annealer(graph, topo, rng);
        double cost = annealer.totalCost();
        const double initial_cost = cost;

        double temperature =
            config.initial_temperature * cost /
            static_cast<double>(graph.edgeCount());
        const std::uint64_t cooling_period =
            std::max<std::uint64_t>(1, config.iterations / 100);
        std::uint64_t accepted = 0;

        for (std::uint64_t i = 0; i < config.iterations; ++i) {
            const auto u =
                static_cast<std::uint32_t>(rng.nextBounded(n));
            auto v =
                static_cast<std::uint32_t>(rng.nextBounded(n - 1));
            if (v >= u)
                ++v;
            const double delta = annealer.swapDelta(u, v);
            bool accept = delta <= 0.0;
            if (!accept && temperature > 1e-12) {
                accept = rng.nextDouble() <
                         std::exp(-delta / temperature);
            }
            if (accept) {
                annealer.swap(u, v);
                cost += delta;
                ++accepted;
            }
            if ((i + 1) % cooling_period == 0)
                temperature *= config.cooling;
        }

        const double distance = cost / weight_total;
        if (best.distance < 0.0 || distance < best.distance) {
            best.mapping = Mapping(annealer.placement());
            best.distance = distance;
            best.initial_distance = initial_cost / weight_total;
            best.accepted_moves = accepted;
        }
    }
    return best;
}

} // namespace workload
} // namespace locsim
