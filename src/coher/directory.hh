/**
 * @file
 * The full-map directory kept at each line's home node.
 *
 * Tracks which nodes hold each home line and in what state, plus the
 * backing memory word used for end-to-end verification. Transient
 * (busy) bookkeeping lives in the controller; the directory itself
 * stores only stable sharing state.
 */

#ifndef LOCSIM_COHER_DIRECTORY_HH_
#define LOCSIM_COHER_DIRECTORY_HH_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "coher/protocol.hh"

namespace locsim {
namespace coher {

/** Stable directory states for one home line. */
enum class DirState : std::uint8_t {
    Uncached,   //!< no remote copies; memory is current
    Shared,     //!< one or more read copies; memory is current
    Exclusive,  //!< one Modified copy at `owner`; memory is stale
};

/** Directory entry for one home line. */
struct DirEntry
{
    DirState state = DirState::Uncached;
    std::vector<sim::NodeId> sharers; //!< valid when Shared
    sim::NodeId owner = sim::kNodeNone; //!< valid when Exclusive
    std::uint64_t memory = 0; //!< backing memory word
};

/** Per-node directory + memory for the lines homed there. */
class Directory
{
  public:
    explicit Directory(sim::NodeId home) : home_(home) {}

    /** The node this directory belongs to. */
    sim::NodeId home() const { return home_; }

    /**
     * Access (and create on demand) the entry for a line.
     *
     * @pre homeOf(addr) == home().
     */
    DirEntry &entry(Addr addr);

    /** Read-only lookup; returns nullptr for never-touched lines. */
    const DirEntry *find(Addr addr) const;

    /** Add a sharer if absent. */
    static void addSharer(DirEntry &entry, sim::NodeId node);

    /** Remove a sharer if present. */
    static void removeSharer(DirEntry &entry, sim::NodeId node);

    /** True if @p node is recorded as a sharer. */
    static bool isSharer(const DirEntry &entry, sim::NodeId node);

    /** Number of entries materialized (diagnostics). */
    std::size_t entryCount() const { return entries_.size(); }

  private:
    sim::NodeId home_;
    std::unordered_map<Addr, DirEntry> entries_;
};

} // namespace coher
} // namespace locsim

#endif // LOCSIM_COHER_DIRECTORY_HH_
