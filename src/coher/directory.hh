/**
 * @file
 * The full-map directory kept at each line's home node.
 *
 * Tracks which nodes hold each home line and in what state, plus the
 * backing memory word used for end-to-end verification. Transient
 * (busy) bookkeeping lives in the controller; the directory itself
 * stores only stable sharing state.
 */

#ifndef LOCSIM_COHER_DIRECTORY_HH_
#define LOCSIM_COHER_DIRECTORY_HH_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "coher/protocol.hh"
#include "util/serialize.hh"

namespace locsim {
namespace coher {

/** Stable directory states for one home line. */
enum class DirState : std::uint8_t {
    Uncached,   //!< no remote copies; memory is current
    Shared,     //!< one or more read copies; memory is current
    Exclusive,  //!< one Modified copy at `owner`; memory is stale
};

/** Directory entry for one home line. */
struct DirEntry
{
    DirState state = DirState::Uncached;
    std::vector<sim::NodeId> sharers; //!< valid when Shared
    sim::NodeId owner = sim::kNodeNone; //!< valid when Exclusive
    std::uint64_t memory = 0; //!< backing memory word
};

/** Per-node directory + memory for the lines homed there. */
class Directory
{
  public:
    explicit Directory(sim::NodeId home) : home_(home) {}

    /** The node this directory belongs to. */
    sim::NodeId home() const { return home_; }

    /**
     * Access (and create on demand) the entry for a line.
     *
     * @pre homeOf(addr) == home().
     */
    DirEntry &entry(Addr addr);

    /** Read-only lookup; returns nullptr for never-touched lines. */
    const DirEntry *find(Addr addr) const;

    /** Add a sharer if absent. */
    static void addSharer(DirEntry &entry, sim::NodeId node);

    /** Remove a sharer if present. */
    static void removeSharer(DirEntry &entry, sim::NodeId node);

    /** True if @p node is recorded as a sharer. */
    static bool isSharer(const DirEntry &entry, sim::NodeId node);

    /** Number of entries materialized (diagnostics). */
    std::size_t entryCount() const { return entries_.size(); }

    /**
     * Serialize entries sorted by address so the byte stream is
     * independent of unordered_map iteration order. Sharer vectors
     * keep their insertion order — it determines Inv send order, so
     * it is part of the simulation state.
     */
    void
    saveState(util::Serializer &s) const
    {
        std::vector<Addr> keys;
        keys.reserve(entries_.size());
        for (const auto &kv : entries_)
            keys.push_back(kv.first);
        std::sort(keys.begin(), keys.end());
        s.put<std::uint64_t>(keys.size());
        for (Addr key : keys) {
            const DirEntry &entry = entries_.at(key);
            s.put(key);
            s.put(entry.state);
            s.put<std::uint32_t>(
                static_cast<std::uint32_t>(entry.sharers.size()));
            for (sim::NodeId sharer : entry.sharers)
                s.put(sharer);
            s.put(entry.owner);
            s.put(entry.memory);
        }
    }

    void
    loadState(util::Deserializer &d)
    {
        entries_.clear();
        const auto n = d.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < n; ++i) {
            const Addr key = d.get<Addr>();
            DirEntry entry;
            entry.state = d.get<DirState>();
            const auto sharer_count = d.get<std::uint32_t>();
            entry.sharers.reserve(sharer_count);
            for (std::uint32_t j = 0; j < sharer_count; ++j)
                entry.sharers.push_back(d.get<sim::NodeId>());
            entry.owner = d.get<sim::NodeId>();
            entry.memory = d.get<std::uint64_t>();
            entries_.emplace(key, std::move(entry));
        }
    }

  private:
    sim::NodeId home_;
    std::unordered_map<Addr, DirEntry> entries_;
};

} // namespace coher
} // namespace locsim

#endif // LOCSIM_COHER_DIRECTORY_HH_
