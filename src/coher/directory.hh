/**
 * @file
 * The limited-pointer directory kept at each line's home node.
 *
 * Tracks which nodes hold each home line and in what state, plus the
 * backing memory word used for end-to-end verification. Transient
 * (busy) bookkeeping lives in the controller; the directory itself
 * stores only stable sharing state.
 *
 * Representation (large-radix compaction): entries live in a chunked
 * pool indexed by a flat hash map keyed by line, so references stay
 * valid while new entries materialize. Each entry stores a short
 * insertion-ordered pointer prefix inline; sets that outgrow it spill
 * to an overflow slot holding the full insertion-ordered list plus a
 * bitmap membership accelerator (fixed words covering node ids below
 * 1024, grown lazily above). Insertion order is authoritative in both
 * forms: it determines Inv send order and checkpoint bytes, so a
 * pure-bitmap sharer set (ascending iteration) would change observable
 * simulation state. See DESIGN.md.
 */

#ifndef LOCSIM_COHER_DIRECTORY_HH_
#define LOCSIM_COHER_DIRECTORY_HH_

#include <array>
#include <cstdint>
#include <span>

#include "coher/protocol.hh"
#include "util/flat_map.hh"
#include "util/pool.hh"
#include "util/serialize.hh"

namespace locsim {
namespace coher {

/** Stable directory states for one home line. */
enum class DirState : std::uint8_t {
    Uncached,   //!< no remote copies; memory is current
    Shared,     //!< one or more read copies; memory is current
    Exclusive,  //!< one Modified copy at `owner`; memory is stale
};

/** Sharer pointers stored inline in a DirEntry before spilling. */
inline constexpr std::uint32_t kInlineSharers = 6;

/**
 * Directory entry for one home line. Trivially copyable; the sharer
 * set is the inline pointer prefix while `overflow_slot` is unset,
 * and an overflow slot owned by the Directory afterwards. Mutate the
 * sharer set only through the Directory's accessors.
 */
struct DirEntry
{
    std::uint64_t memory = 0; //!< backing memory word
    sim::NodeId owner = sim::kNodeNone; //!< valid when Exclusive
    std::uint32_t sharer_count = 0; //!< sharers recorded (any form)
    /** Insertion-ordered pointer prefix (valid while not spilled). */
    std::array<sim::NodeId, kInlineSharers> inline_sharers{};
    /** Overflow slot in the owning Directory, or kNoOverflow. */
    std::uint32_t overflow_slot = 0xffffffffu;
    DirState state = DirState::Uncached;
};

/** Per-node directory + memory for the lines homed there. */
class Directory
{
  public:
    static constexpr std::uint32_t kNoOverflow = 0xffffffffu;

    explicit Directory(sim::NodeId home) : home_(home) {}

    /** The node this directory belongs to. */
    sim::NodeId home() const { return home_; }

    /**
     * Access (and create on demand) the entry for a line. The
     * reference stays valid across later entry() calls (pooled
     * storage never relocates).
     *
     * @pre homeOf(addr) == home().
     */
    DirEntry &entry(Addr addr);

    /**
     * Read-only lookup; returns nullptr for never-touched lines.
     *
     * @pre homeOf(addr) == home().
     */
    const DirEntry *find(Addr addr) const;

    /** Add a sharer if absent (appends to the insertion order). */
    void addSharer(DirEntry &entry, sim::NodeId node);

    /** Remove a sharer if present (preserves relative order). */
    void removeSharer(DirEntry &entry, sim::NodeId node);

    /** True if @p node is recorded as a sharer. */
    bool isSharer(const DirEntry &entry, sim::NodeId node) const;

    /** Drop every sharer (releases any overflow slot). */
    void clearSharers(DirEntry &entry);

    /**
     * The sharer set in insertion order. Invalidated by any sharer
     * mutation on the same entry.
     */
    std::span<const sim::NodeId> sharers(const DirEntry &entry) const;

    /** Number of entries materialized (diagnostics). */
    std::size_t entryCount() const { return index_.size(); }

    /** Resident bytes of directory storage (footprint accounting). */
    std::size_t memoryBytes() const;

    /**
     * Serialize entries sorted by address so the byte stream is
     * independent of map iteration order. Sharer sets keep their
     * insertion order — it determines Inv send order, so it is part
     * of the simulation state. The byte layout is identical to the
     * historical full-map representation (LSCK stability).
     */
    void saveState(util::Serializer &s) const;

    void loadState(util::Deserializer &d);

  private:
    /** A spilled sharer set: full insertion order plus a bitmap. */
    struct OverflowSet
    {
        std::vector<sim::NodeId> order; //!< authoritative order
        std::vector<std::uint64_t> bits; //!< membership accelerator
    };

    /** Entries come and stay a handful per node; keep chunks small. */
    using EntryPool = util::Pool<DirEntry, 4>;

    /** Move an inline entry's sharers into a fresh overflow slot. */
    void spill(DirEntry &entry);

    sim::NodeId home_;
    EntryPool entries_;
    util::FlatMap<Addr, EntryPool::Handle> index_;
    std::vector<OverflowSet> overflow_;
    std::vector<std::uint32_t> overflow_free_;
};

} // namespace coher
} // namespace locsim

#endif // LOCSIM_COHER_DIRECTORY_HH_
