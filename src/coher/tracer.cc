/**
 * @file
 * Protocol tracer implementations.
 */

#include "coher/tracer.hh"

#include <ostream>
#include <sstream>

namespace locsim {
namespace coher {

std::string
formatTraceEvent(const TraceEvent &event)
{
    std::ostringstream oss;
    oss << event.when << " node " << event.node << ' '
        << (event.dir == TraceEvent::Dir::Send ? "send" : "handle")
        << ' ' << msgTypeName(event.type) << " line "
        << lineIndexOf(event.addr) << '@' << homeOf(event.addr)
        << (event.dir == TraceEvent::Dir::Send ? " -> " : " <- ")
        << event.peer;
    return oss.str();
}

RingTracer::RingTracer(std::size_t capacity) : capacity_(capacity) {}

void
RingTracer::record(const TraceEvent &event)
{
    if (events_.size() == capacity_) {
        events_.pop_front();
        ++dropped_;
    }
    events_.push_back(event);
}

std::vector<TraceEvent>
RingTracer::eventsForLine(Addr addr) const
{
    std::vector<TraceEvent> out;
    const Addr line = lineOf(addr);
    for (const TraceEvent &event : events_) {
        if (lineOf(event.addr) == line)
            out.push_back(event);
    }
    return out;
}

void
RingTracer::print(std::ostream &os) const
{
    for (const TraceEvent &event : events_)
        os << formatTraceEvent(event) << '\n';
}

void
RingTracer::clear()
{
    events_.clear();
    dropped_ = 0;
}

CsvTracer::CsvTracer(std::ostream &os) : os_(os) {}

void
CsvTracer::record(const TraceEvent &event)
{
    if (!wrote_header_) {
        os_ << "tick,node,dir,type,home,line,peer\n";
        wrote_header_ = true;
    }
    os_ << event.when << ',' << event.node << ','
        << (event.dir == TraceEvent::Dir::Send ? "send" : "handle")
        << ',' << msgTypeName(event.type) << ','
        << homeOf(event.addr) << ',' << lineIndexOf(event.addr)
        << ',' << event.peer << '\n';
}

void
ObsTracerBridge::record(const TraceEvent &event)
{
    // msgTypeName returns static storage, satisfying Event::name's
    // lifetime contract.
    tracer_.instant(
        track_, event.when, msgTypeName(event.type),
        obs::Category::Coher,
        std::move(obs::Args()
                      .add("dir", event.dir == TraceEvent::Dir::Send
                                      ? "send"
                                      : "handle")
                      .add("line", lineIndexOf(event.addr))
                      .add("peer",
                           static_cast<std::int64_t>(event.peer)))
            .str());
}

} // namespace coher
} // namespace locsim
