/**
 * @file
 * Protocol event tracing.
 *
 * A ProtocolTracer observes every protocol message a controller sends
 * or handles, with timestamps, for debugging protocol issues and for
 * producing message-flow timelines. Tracing is opt-in per controller
 * (null tracer = zero overhead beyond a branch) and the standard
 * implementations are a bounded in-memory ring (tests, post-mortem
 * dumps) and a CSV stream.
 */

#ifndef LOCSIM_COHER_TRACER_HH_
#define LOCSIM_COHER_TRACER_HH_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "coher/protocol.hh"
#include "obs/trace.hh"
#include "sim/types.hh"

namespace locsim {
namespace coher {

/** One traced protocol event. */
struct TraceEvent
{
    enum class Dir : std::uint8_t {
        Send,   //!< controller staged the message for the network
        Handle, //!< controller processed an incoming message
    };

    sim::Tick when = 0;
    sim::NodeId node = sim::kNodeNone; //!< controller doing the action
    Dir dir = Dir::Send;
    MsgType type = MsgType::GetS;
    Addr addr = 0;
    sim::NodeId peer = sim::kNodeNone; //!< dst for sends, src for handles
};

/** Render one event as a stable, parseable line. */
std::string formatTraceEvent(const TraceEvent &event);

/** Observer interface. */
class ProtocolTracer
{
  public:
    virtual ~ProtocolTracer() = default;

    /** Called for every traced event, in simulation order per node. */
    virtual void record(const TraceEvent &event) = 0;
};

/**
 * Keeps the most recent @p capacity events in memory.
 */
class RingTracer : public ProtocolTracer
{
  public:
    explicit RingTracer(std::size_t capacity = 4096);

    void record(const TraceEvent &event) override;

    const std::deque<TraceEvent> &events() const { return events_; }

    /** Events dropped because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Events matching a line address, oldest first. */
    std::vector<TraceEvent> eventsForLine(Addr addr) const;

    /** Dump all retained events, one line each. */
    void print(std::ostream &os) const;

    void clear();

  private:
    std::size_t capacity_;
    std::deque<TraceEvent> events_;
    std::uint64_t dropped_ = 0;
};

/** Streams one CSV row per event to an ostream (header on first row). */
class CsvTracer : public ProtocolTracer
{
  public:
    /** @param os destination stream; must outlive the tracer. */
    explicit CsvTracer(std::ostream &os);

    void record(const TraceEvent &event) override;

  private:
    std::ostream &os_;
    bool wrote_header_ = false;
};

/**
 * Forwards protocol events into the unified obs::Tracer as instant
 * events (Category::Coher) named after the message type, on a fixed
 * track (one bridge per controller, e.g. track "coher.<node>").
 */
class ObsTracerBridge : public ProtocolTracer
{
  public:
    /** @param tracer destination shard; must outlive the bridge. */
    ObsTracerBridge(obs::Tracer &tracer, int track)
        : tracer_(tracer), track_(track)
    {
    }

    void record(const TraceEvent &event) override;

  private:
    obs::Tracer &tracer_;
    int track_;
};

} // namespace coher
} // namespace locsim

#endif // LOCSIM_COHER_TRACER_HH_
