/**
 * @file
 * Cache implementation.
 */

#include "coher/cache.hh"

#include "util/logging.hh"

namespace locsim {
namespace coher {

Cache::Cache(std::uint32_t cache_bytes)
{
    LOCSIM_ASSERT(cache_bytes >= kLineBytes &&
                      cache_bytes % kLineBytes == 0,
                  "cache size must be a positive multiple of the line "
                  "size, got ",
                  cache_bytes);
    lines_.resize(cache_bytes / kLineBytes);
}

std::uint32_t
Cache::setIndex(Addr addr) const
{
    // Direct-mapped, indexed by the node-local line offset (the low
    // half of the address); lines at the same local offset on
    // different homes conflict, as in a physically indexed cache.
    return lineIndexOf(addr) %
           static_cast<std::uint32_t>(lines_.size());
}

Cache::Line &
Cache::lineFor(Addr addr)
{
    return lines_[setIndex(addr)];
}

const Cache::Line &
Cache::lineFor(Addr addr) const
{
    return lines_[setIndex(addr)];
}

CacheLookup
Cache::lookup(Addr addr) const
{
    const Line &line = lineFor(addr);
    if (!line.valid || line.addr != lineOf(addr))
        return {};
    return {line.state, line.data};
}

std::optional<Eviction>
Cache::fill(Addr addr, CacheState state, std::uint64_t data)
{
    LOCSIM_ASSERT(state != CacheState::Invalid,
                  "cannot fill a line Invalid");
    Line &line = lineFor(addr);
    std::optional<Eviction> evicted;
    if (line.valid && line.addr != lineOf(addr)) {
        evicted = Eviction{line.addr, line.state, line.data};
    }
    line.valid = true;
    line.addr = lineOf(addr);
    line.state = state;
    line.data = data;
    return evicted;
}

void
Cache::setState(Addr addr, CacheState state)
{
    Line &line = lineFor(addr);
    LOCSIM_ASSERT(line.valid && line.addr == lineOf(addr),
                  "setState on a non-resident line");
    if (state == CacheState::Invalid) {
        line.valid = false;
        line.state = CacheState::Invalid;
    } else {
        line.state = state;
    }
}

void
Cache::writeData(Addr addr, std::uint64_t data)
{
    Line &line = lineFor(addr);
    LOCSIM_ASSERT(line.valid && line.addr == lineOf(addr) &&
                      line.state == CacheState::Modified,
                  "writeData requires a resident Modified line");
    line.data = data;
}

void
Cache::invalidate(Addr addr)
{
    Line &line = lineFor(addr);
    if (line.valid && line.addr == lineOf(addr)) {
        line.valid = false;
        line.state = CacheState::Invalid;
    }
}

std::uint32_t
Cache::residentLines() const
{
    std::uint32_t count = 0;
    for (const Line &line : lines_)
        count += line.valid ? 1 : 0;
    return count;
}

} // namespace coher
} // namespace locsim
