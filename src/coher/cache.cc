/**
 * @file
 * Cache implementation.
 */

#include "coher/cache.hh"

#include <stdexcept>

#include "util/logging.hh"

namespace locsim {
namespace coher {

Cache::Cache(std::uint32_t cache_bytes)
{
    LOCSIM_ASSERT(cache_bytes >= kLineBytes &&
                      cache_bytes % kLineBytes == 0,
                  "cache size must be a positive multiple of the line "
                  "size, got ",
                  cache_bytes);
    sets_ = cache_bytes / kLineBytes;
}

std::uint32_t
Cache::setIndex(Addr addr) const
{
    // Direct-mapped, indexed by the node-local line offset (the low
    // half of the address); lines at the same local offset on
    // different homes conflict, as in a physically indexed cache.
    return lineIndexOf(addr) % sets_;
}

CacheLookup
Cache::lookup(Addr addr) const
{
    const Line *line = lines_.find(setIndex(addr));
    if (!line || !line->valid || line->addr != lineOf(addr))
        return {};
    return {line->state, line->data};
}

std::optional<Eviction>
Cache::fill(Addr addr, CacheState state, std::uint64_t data)
{
    LOCSIM_ASSERT(state != CacheState::Invalid,
                  "cannot fill a line Invalid");
    const std::uint32_t set = setIndex(addr);
    Line *lp = lines_.find(set);
    if (!lp)
        lp = &lines_.insert(set, Line{});
    Line &line = *lp;
    std::optional<Eviction> evicted;
    if (line.valid && line.addr != lineOf(addr)) {
        evicted = Eviction{line.addr, line.state, line.data};
    }
    line.valid = true;
    line.addr = lineOf(addr);
    line.state = state;
    line.data = data;
    return evicted;
}

void
Cache::setState(Addr addr, CacheState state)
{
    Line *line = lines_.find(setIndex(addr));
    LOCSIM_ASSERT(line && line->valid && line->addr == lineOf(addr),
                  "setState on a non-resident line");
    if (state == CacheState::Invalid) {
        line->valid = false;
        line->state = CacheState::Invalid;
    } else {
        line->state = state;
    }
}

void
Cache::writeData(Addr addr, std::uint64_t data)
{
    Line *line = lines_.find(setIndex(addr));
    LOCSIM_ASSERT(line && line->valid && line->addr == lineOf(addr) &&
                      line->state == CacheState::Modified,
                  "writeData requires a resident Modified line");
    line->data = data;
}

void
Cache::invalidate(Addr addr)
{
    Line *line = lines_.find(setIndex(addr));
    if (line && line->valid && line->addr == lineOf(addr)) {
        line->valid = false;
        line->state = CacheState::Invalid;
    }
}

std::uint32_t
Cache::residentLines() const
{
    std::uint32_t count = 0;
    lines_.forEach([&](std::uint32_t, const Line &line) {
        count += line.valid ? 1 : 0;
    });
    return count;
}

void
Cache::saveState(util::Serializer &s) const
{
    s.put<std::uint64_t>(sets_);
    const Line untouched{};
    for (std::uint32_t set = 0; set < sets_; ++set) {
        const Line *found = lines_.find(set);
        const Line &line = found ? *found : untouched;
        s.put(line.valid);
        s.put(line.addr);
        s.put(line.state);
        s.put(line.data);
    }
}

void
Cache::loadState(util::Deserializer &d)
{
    const auto n = d.get<std::uint64_t>();
    if (n != sets_)
        throw std::runtime_error("Cache::loadState: geometry mismatch");
    lines_.clear();
    for (std::uint32_t set = 0; set < sets_; ++set) {
        Line line;
        line.valid = d.getBool();
        line.addr = d.get<Addr>();
        line.state = d.get<CacheState>();
        line.data = d.get<std::uint64_t>();
        // Only touched sets materialize records; an all-default record
        // is byte-identical to an absent one on the next save.
        if (line.valid || line.addr != 0 || line.data != 0 ||
            line.state != CacheState::Invalid) {
            lines_.insert(set, line);
        }
    }
}

} // namespace coher
} // namespace locsim
