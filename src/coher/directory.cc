/**
 * @file
 * Directory implementation.
 */

#include "coher/directory.hh"

#include <algorithm>

#include "util/logging.hh"

namespace locsim {
namespace coher {

namespace {

/** Bitmap words pre-sized on spill: covers node ids below 1024. */
constexpr std::size_t kFixedBitmapWords = 16;

void
bitSet(std::vector<std::uint64_t> &bits, sim::NodeId node)
{
    const std::size_t word = node >> 6;
    if (word >= bits.size())
        bits.resize(word + 1, 0);
    bits[word] |= std::uint64_t{1} << (node & 63);
}

void
bitClear(std::vector<std::uint64_t> &bits, sim::NodeId node)
{
    const std::size_t word = node >> 6;
    if (word < bits.size())
        bits[word] &= ~(std::uint64_t{1} << (node & 63));
}

bool
bitTest(const std::vector<std::uint64_t> &bits, sim::NodeId node)
{
    const std::size_t word = node >> 6;
    return word < bits.size() &&
           (bits[word] >> (node & 63)) & std::uint64_t{1};
}

} // namespace

DirEntry &
Directory::entry(Addr addr)
{
    LOCSIM_ASSERT(homeOf(addr) == home_,
                  "directory access for a line homed elsewhere: node ",
                  home_, " asked about home ", homeOf(addr));
    const Addr line = lineOf(addr);
    if (EntryPool::Handle *h = index_.find(line))
        return entries_.get(*h);
    const EntryPool::Handle h = entries_.alloc();
    DirEntry &e = entries_.get(h);
    e = DirEntry{}; // pool recycles without destroy
    index_.insert(line, h);
    return e;
}

const DirEntry *
Directory::find(Addr addr) const
{
    LOCSIM_ASSERT(homeOf(addr) == home_,
                  "directory lookup for a line homed elsewhere: node ",
                  home_, " asked about home ", homeOf(addr));
    const EntryPool::Handle *h = index_.find(lineOf(addr));
    return h ? &entries_.get(*h) : nullptr;
}

void
Directory::addSharer(DirEntry &entry, sim::NodeId node)
{
    if (isSharer(entry, node))
        return;
    if (entry.overflow_slot == kNoOverflow) {
        if (entry.sharer_count < kInlineSharers) {
            entry.inline_sharers[entry.sharer_count++] = node;
            return;
        }
        spill(entry);
    }
    OverflowSet &o = overflow_[entry.overflow_slot];
    o.order.push_back(node);
    bitSet(o.bits, node);
    ++entry.sharer_count;
}

void
Directory::removeSharer(DirEntry &entry, sim::NodeId node)
{
    if (entry.overflow_slot != kNoOverflow) {
        // A spilled set never shrinks back inline: the slot is
        // released on clearSharers(). Iteration order is the `order`
        // list either way, so the forms are indistinguishable.
        OverflowSet &o = overflow_[entry.overflow_slot];
        auto it = std::find(o.order.begin(), o.order.end(), node);
        if (it == o.order.end())
            return;
        o.order.erase(it);
        bitClear(o.bits, node);
        --entry.sharer_count;
        return;
    }
    for (std::uint32_t i = 0; i < entry.sharer_count; ++i) {
        if (entry.inline_sharers[i] != node)
            continue;
        for (std::uint32_t j = i + 1; j < entry.sharer_count; ++j)
            entry.inline_sharers[j - 1] = entry.inline_sharers[j];
        --entry.sharer_count;
        return;
    }
}

bool
Directory::isSharer(const DirEntry &entry, sim::NodeId node) const
{
    if (entry.overflow_slot != kNoOverflow)
        return bitTest(overflow_[entry.overflow_slot].bits, node);
    for (std::uint32_t i = 0; i < entry.sharer_count; ++i) {
        if (entry.inline_sharers[i] == node)
            return true;
    }
    return false;
}

void
Directory::clearSharers(DirEntry &entry)
{
    if (entry.overflow_slot != kNoOverflow) {
        OverflowSet &o = overflow_[entry.overflow_slot];
        o.order.clear();
        std::fill(o.bits.begin(), o.bits.end(), 0);
        overflow_free_.push_back(entry.overflow_slot);
        entry.overflow_slot = kNoOverflow;
    }
    entry.sharer_count = 0;
}

std::span<const sim::NodeId>
Directory::sharers(const DirEntry &entry) const
{
    if (entry.overflow_slot != kNoOverflow) {
        const OverflowSet &o = overflow_[entry.overflow_slot];
        return {o.order.data(), o.order.size()};
    }
    return {entry.inline_sharers.data(), entry.sharer_count};
}

void
Directory::spill(DirEntry &entry)
{
    std::uint32_t slot;
    if (!overflow_free_.empty()) {
        slot = overflow_free_.back();
        overflow_free_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(overflow_.size());
        overflow_.emplace_back();
    }
    OverflowSet &o = overflow_[slot];
    o.order.assign(entry.inline_sharers.begin(),
                   entry.inline_sharers.begin() + entry.sharer_count);
    if (o.bits.size() < kFixedBitmapWords)
        o.bits.resize(kFixedBitmapWords, 0);
    for (sim::NodeId node : o.order)
        bitSet(o.bits, node);
    entry.overflow_slot = slot;
}

std::size_t
Directory::memoryBytes() const
{
    std::size_t bytes = entries_.memoryBytes() + index_.memoryBytes() +
                        overflow_.capacity() * sizeof(OverflowSet) +
                        overflow_free_.capacity() *
                            sizeof(std::uint32_t);
    for (const OverflowSet &o : overflow_) {
        bytes += o.order.capacity() * sizeof(sim::NodeId) +
                 o.bits.capacity() * sizeof(std::uint64_t);
    }
    return bytes;
}

void
Directory::saveState(util::Serializer &s) const
{
    std::vector<Addr> keys;
    keys.reserve(index_.size());
    index_.forEach(
        [&](Addr key, EntryPool::Handle) { keys.push_back(key); });
    std::sort(keys.begin(), keys.end());
    s.put<std::uint64_t>(keys.size());
    for (Addr key : keys) {
        const DirEntry &entry = entries_.get(*index_.find(key));
        s.put(key);
        s.put(entry.state);
        s.put<std::uint32_t>(entry.sharer_count);
        for (sim::NodeId sharer : sharers(entry))
            s.put(sharer);
        s.put(entry.owner);
        s.put(entry.memory);
    }
}

void
Directory::loadState(util::Deserializer &d)
{
    entries_.clear();
    index_.clear();
    overflow_.clear();
    overflow_free_.clear();
    const auto n = d.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr key = d.get<Addr>();
        DirEntry &entry = this->entry(key);
        entry.state = d.get<DirState>();
        const auto sharer_count = d.get<std::uint32_t>();
        for (std::uint32_t j = 0; j < sharer_count; ++j)
            addSharer(entry, d.get<sim::NodeId>());
        entry.owner = d.get<sim::NodeId>();
        entry.memory = d.get<std::uint64_t>();
    }
}

} // namespace coher
} // namespace locsim
