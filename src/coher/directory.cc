/**
 * @file
 * Directory implementation.
 */

#include "coher/directory.hh"

#include <algorithm>

#include "util/logging.hh"

namespace locsim {
namespace coher {

DirEntry &
Directory::entry(Addr addr)
{
    LOCSIM_ASSERT(homeOf(addr) == home_,
                  "directory access for a line homed elsewhere: node ",
                  home_, " asked about home ", homeOf(addr));
    return entries_[lineOf(addr)];
}

const DirEntry *
Directory::find(Addr addr) const
{
    auto it = entries_.find(lineOf(addr));
    return it == entries_.end() ? nullptr : &it->second;
}

void
Directory::addSharer(DirEntry &entry, sim::NodeId node)
{
    if (!isSharer(entry, node))
        entry.sharers.push_back(node);
}

void
Directory::removeSharer(DirEntry &entry, sim::NodeId node)
{
    entry.sharers.erase(
        std::remove(entry.sharers.begin(), entry.sharers.end(), node),
        entry.sharers.end());
}

bool
Directory::isSharer(const DirEntry &entry, sim::NodeId node)
{
    return std::find(entry.sharers.begin(), entry.sharers.end(),
                     node) != entry.sharers.end();
}

} // namespace coher
} // namespace locsim
