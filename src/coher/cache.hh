/**
 * @file
 * A direct-mapped write-back cache with MSI line states, modeled
 * after Alewife's 64-kilobyte unified cache with 16-byte lines
 * (Section 3.1).
 *
 * The cache stores one 64-bit verification word per line (the
 * synthetic application's state word) so protocol correctness can be
 * checked end to end.
 *
 * Storage is sparse: the workload touches a handful of sets per node,
 * so line records are materialized on first touch in a flat map keyed
 * by set index instead of a dense 4096-set array (128KB per node at
 * the default geometry). A touched set's record is never dropped —
 * invalidation leaves the stale tag/data residue in place exactly as
 * the dense array did, which keeps checkpoint bytes identical
 * (saveState walks sets 0..N-1, emitting the default record for
 * never-touched sets).
 */

#ifndef LOCSIM_COHER_CACHE_HH_
#define LOCSIM_COHER_CACHE_HH_

#include <cstdint>
#include <optional>

#include "coher/protocol.hh"
#include "util/flat_map.hh"
#include "util/serialize.hh"

namespace locsim {
namespace coher {

/** MSI stable states of a cached line. */
enum class CacheState : std::uint8_t {
    Invalid,
    Shared,
    Modified,
};

/** Result of probing the cache for an address. */
struct CacheLookup
{
    CacheState state = CacheState::Invalid;
    std::uint64_t data = 0;
};

/** A line evicted to make room for a fill. */
struct Eviction
{
    Addr addr = 0;
    CacheState state = CacheState::Invalid;
    std::uint64_t data = 0;
};

/** Direct-mapped write-back cache. */
class Cache
{
  public:
    /**
     * @param cache_bytes total capacity; must be a multiple of the
     *        line size.
     */
    explicit Cache(std::uint32_t cache_bytes);

    /** Number of sets (lines) in the cache. */
    std::uint32_t sets() const { return sets_; }

    /** Probe for an address without changing state. */
    CacheLookup lookup(Addr addr) const;

    /** Current state of the line holding @p addr (Invalid if absent). */
    CacheState state(Addr addr) const { return lookup(addr).state; }

    /**
     * Install a line in the given state, returning the line displaced
     * from the set, if any (the controller must write back Modified
     * victims).
     */
    std::optional<Eviction> fill(Addr addr, CacheState state,
                                 std::uint64_t data);

    /**
     * Update the state of a resident line (e.g. Shared -> Modified on
     * an upgrade grant, Modified -> Shared on a Fetch).
     *
     * @pre the line is resident.
     */
    void setState(Addr addr, CacheState state);

    /** Write the verification word of a resident Modified line. */
    void writeData(Addr addr, std::uint64_t data);

    /** Invalidate a line if resident (idempotent). */
    void invalidate(Addr addr);

    /** Count of resident (non-invalid) lines. */
    std::uint32_t residentLines() const;

    /** Resident bytes of cache storage (footprint accounting). */
    std::size_t memoryBytes() const { return lines_.memoryBytes(); }

    /**
     * Serialize all sets in index order (geometry comes from the
     * config). Never-touched sets emit the default record, so the
     * byte stream matches the historical dense-array layout.
     */
    void saveState(util::Serializer &s) const;

    void loadState(util::Deserializer &d);

  private:
    struct Line
    {
        Addr addr = 0; // line-aligned address (acts as the tag)
        std::uint64_t data = 0;
        CacheState state = CacheState::Invalid;
        bool valid = false;
    };

    std::uint32_t setIndex(Addr addr) const;

    std::uint32_t sets_ = 0;
    /** Touched sets only, keyed by set index; records never erased. */
    util::FlatMap<std::uint32_t, Line> lines_;
};

} // namespace coher
} // namespace locsim

#endif // LOCSIM_COHER_CACHE_HH_
