/**
 * @file
 * A direct-mapped write-back cache with MSI line states, modeled
 * after Alewife's 64-kilobyte unified cache with 16-byte lines
 * (Section 3.1).
 *
 * The cache stores one 64-bit verification word per line (the
 * synthetic application's state word) so protocol correctness can be
 * checked end to end.
 */

#ifndef LOCSIM_COHER_CACHE_HH_
#define LOCSIM_COHER_CACHE_HH_

#include <cstdint>
#include <optional>
#include <vector>

#include "coher/protocol.hh"
#include "util/serialize.hh"

namespace locsim {
namespace coher {

/** MSI stable states of a cached line. */
enum class CacheState : std::uint8_t {
    Invalid,
    Shared,
    Modified,
};

/** Result of probing the cache for an address. */
struct CacheLookup
{
    CacheState state = CacheState::Invalid;
    std::uint64_t data = 0;
};

/** A line evicted to make room for a fill. */
struct Eviction
{
    Addr addr = 0;
    CacheState state = CacheState::Invalid;
    std::uint64_t data = 0;
};

/** Direct-mapped write-back cache. */
class Cache
{
  public:
    /**
     * @param cache_bytes total capacity; must be a multiple of the
     *        line size.
     */
    explicit Cache(std::uint32_t cache_bytes);

    /** Number of sets (lines) in the cache. */
    std::uint32_t sets() const
    {
        return static_cast<std::uint32_t>(lines_.size());
    }

    /** Probe for an address without changing state. */
    CacheLookup lookup(Addr addr) const;

    /** Current state of the line holding @p addr (Invalid if absent). */
    CacheState state(Addr addr) const { return lookup(addr).state; }

    /**
     * Install a line in the given state, returning the line displaced
     * from the set, if any (the controller must write back Modified
     * victims).
     */
    std::optional<Eviction> fill(Addr addr, CacheState state,
                                 std::uint64_t data);

    /**
     * Update the state of a resident line (e.g. Shared -> Modified on
     * an upgrade grant, Modified -> Shared on a Fetch).
     *
     * @pre the line is resident.
     */
    void setState(Addr addr, CacheState state);

    /** Write the verification word of a resident Modified line. */
    void writeData(Addr addr, std::uint64_t data);

    /** Invalidate a line if resident (idempotent). */
    void invalidate(Addr addr);

    /** Count of resident (non-invalid) lines. */
    std::uint32_t residentLines() const;

    /** Serialize all lines (geometry comes from the config). */
    void
    saveState(util::Serializer &s) const
    {
        s.put<std::uint64_t>(lines_.size());
        for (const Line &line : lines_) {
            s.put(line.valid);
            s.put(line.addr);
            s.put(line.state);
            s.put(line.data);
        }
    }

    void
    loadState(util::Deserializer &d)
    {
        const auto n = d.get<std::uint64_t>();
        if (n != lines_.size())
            throw std::runtime_error(
                "Cache::loadState: geometry mismatch");
        for (Line &line : lines_) {
            line.valid = d.getBool();
            line.addr = d.get<Addr>();
            line.state = d.get<CacheState>();
            line.data = d.get<std::uint64_t>();
        }
    }

  private:
    struct Line
    {
        bool valid = false;
        Addr addr = 0; // line-aligned address (acts as the tag)
        CacheState state = CacheState::Invalid;
        std::uint64_t data = 0;
    };

    std::uint32_t setIndex(Addr addr) const;

    Line &lineFor(Addr addr);
    const Line &lineFor(Addr addr) const;

    std::vector<Line> lines_;
};

} // namespace coher
} // namespace locsim

#endif // LOCSIM_COHER_CACHE_HH_
