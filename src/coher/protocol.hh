/**
 * @file
 * Protocol-level definitions for the directory-based cache coherence
 * layer: addresses, protocol message types, and configuration.
 *
 * The protocol is a full-map invalidation MSI protocol, the behavior
 * LimitLESS exhibits when sharer counts stay within its hardware
 * pointers (true for the paper's synthetic application, whose lines
 * have at most four sharers). See DESIGN.md for the substitution
 * rationale.
 */

#ifndef LOCSIM_COHER_PROTOCOL_HH_
#define LOCSIM_COHER_PROTOCOL_HH_

#include <cstdint>
#include <string>

#include "net/message.hh"
#include "sim/types.hh"

namespace locsim {
namespace coher {

/**
 * A global address: the home node in the high 32 bits, the byte
 * offset within that node's memory in the low 32 bits.
 */
using Addr = std::uint64_t;

/** Cache line size in bytes (Alewife: 16-byte lines). */
inline constexpr std::uint32_t kLineBytes = 16;

/** Compose an address from home node and line index. */
inline Addr
makeAddr(sim::NodeId home, std::uint32_t line)
{
    return (static_cast<Addr>(home) << 32) |
           (static_cast<Addr>(line) * kLineBytes);
}

/** Home node of an address. */
inline sim::NodeId
homeOf(Addr addr)
{
    return static_cast<sim::NodeId>(addr >> 32);
}

/** Line-aligned address (drops the offset within the line). */
inline Addr
lineOf(Addr addr)
{
    return addr & ~static_cast<Addr>(kLineBytes - 1);
}

/** Line index within the home node's memory. */
inline std::uint32_t
lineIndexOf(Addr addr)
{
    return static_cast<std::uint32_t>(addr & 0xffffffffu) / kLineBytes;
}

/** Coherence protocol message types. */
enum class MsgType : std::uint8_t {
    GetS,       //!< read request to home
    GetX,       //!< write/exclusive request to home
    DataS,      //!< home -> requester: data, shared grant
    DataX,      //!< home -> requester: data, exclusive grant
    Inv,        //!< home -> sharer: invalidate
    InvAck,     //!< sharer -> home: invalidation done
    Fetch,      //!< home -> owner: demote M to S, return data
    FetchInv,   //!< home -> owner: invalidate M copy, return data
    FetchReply, //!< owner -> home: data from a Fetch/FetchInv
    PutX,       //!< owner -> home: writeback of an evicted M line
};

/** Human-readable message type name (diagnostics and traces). */
const char *msgTypeName(MsgType type);

/** True if this message type carries a data payload. */
bool carriesData(MsgType type);

/** A coherence protocol message (rides in a network message). */
struct ProtoMsg
{
    MsgType type = MsgType::GetS;
    Addr addr = 0;
    sim::NodeId sender = sim::kNodeNone;
    /**
     * For grants/data: the memory word value, used to verify protocol
     * correctness end to end (readers must observe the most recent
     * write).
     */
    std::uint64_t data = 0;
    /** Requester on whose behalf a Fetch/Inv was issued. */
    sim::NodeId requester = sim::kNodeNone;
    /**
     * On grants: number of messages on the serial critical path of
     * the transaction (2 for a direct home reply, 4 when the home had
     * to invalidate sharers or recall an owner first). Used by the
     * measurement harness to compute the transaction model's c.
     */
    int critical = 0;
};

/**
 * Pack a protocol message into a network message's inline payload
 * words. The encoding is a stable part of the checkpoint format
 * (in-flight messages serialize their payload words verbatim).
 */
inline net::MessagePayload
packProtoMsg(const ProtoMsg &msg)
{
    net::MessagePayload words{};
    words[0] = msg.addr;
    words[1] = msg.data;
    words[2] = static_cast<std::uint64_t>(msg.sender) |
               (static_cast<std::uint64_t>(msg.requester) << 32);
    words[3] = static_cast<std::uint64_t>(msg.type) |
               (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(msg.critical))
                << 32);
    return words;
}

/** Inverse of packProtoMsg. */
inline ProtoMsg
unpackProtoMsg(const net::MessagePayload &words)
{
    ProtoMsg msg;
    msg.addr = words[0];
    msg.data = words[1];
    msg.sender = static_cast<sim::NodeId>(words[2] & 0xffffffffu);
    msg.requester = static_cast<sim::NodeId>(words[2] >> 32);
    msg.type = static_cast<MsgType>(words[3] & 0xffu);
    msg.critical = static_cast<int>(
        static_cast<std::int32_t>(words[3] >> 32));
    return msg;
}

/** Timing and sizing knobs for the coherence layer. */
struct ProtocolConfig
{
    /**
     * Flits per protocol message. The paper reports an average of
     * 96 bits = 12 flits over 8-bit channels for this protocol and
     * workload; by default all messages use that size so the
     * simulated average matches exactly.
     */
    std::uint32_t control_flits = 12;
    std::uint32_t data_flits = 12;

    /**
     * Controller occupancy per protocol message, processor cycles.
     * Together with mem_latency this calibrates the fixed transaction
     * overhead to the paper's stated 1-1.5 us (Section 4.2).
     */
    std::uint32_t occupancy = 6;

    /** DRAM access latency at the home, processor cycles. */
    std::uint32_t mem_latency = 16;

    /** Cache hit latency, processor cycles. */
    std::uint32_t hit_latency = 1;

    /**
     * Cache size in bytes (64 KB direct-mapped in Alewife). Tests use
     * small sizes to exercise evictions.
     */
    std::uint32_t cache_bytes = 64 * 1024;

    /**
     * LimitLESS-style limited directory: number of hardware sharer
     * pointers per entry. Entries needing more sharers trap to a
     * software handler that extends the directory in memory --
     * correctness is unchanged, but the home controller stalls for
     * overflow_trap_cycles on each overflowed operation. 0 disables
     * the limit (pure full-map hardware directory, the default, which
     * is what LimitLESS degenerates to for the Section 3 workload's
     * <= 4 sharers when the pointer count is >= 4).
     */
    std::uint32_t dir_pointers = 0;

    /** Software handler cost per overflowed operation, proc cycles. */
    std::uint32_t overflow_trap_cycles = 50;
};

} // namespace coher
} // namespace locsim

#endif // LOCSIM_COHER_PROTOCOL_HH_
