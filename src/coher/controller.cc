/**
 * @file
 * CacheController implementation.
 */

#include "coher/controller.hh"

#include <algorithm>

#include "obs/profiler.hh"
#include "util/logging.hh"

namespace locsim {
namespace coher {

namespace {

/** Min-heap order (due, seq) for std::push_heap/pop_heap. */
template <typename Pending>
bool
completesLater(const Pending &a, const Pending &b)
{
    if (a.due != b.due)
        return a.due > b.due;
    return a.seq > b.seq;
}

void
saveProtoMsg(util::Serializer &s, const ProtoMsg &m)
{
    s.put(m.type);
    s.put(m.addr);
    s.put(m.sender);
    s.put(m.data);
    s.put(m.requester);
    s.put(m.critical);
}

ProtoMsg
loadProtoMsg(util::Deserializer &d)
{
    ProtoMsg m;
    m.type = d.get<MsgType>();
    m.addr = d.get<Addr>();
    m.sender = d.get<sim::NodeId>();
    m.data = d.get<std::uint64_t>();
    m.requester = d.get<sim::NodeId>();
    m.critical = d.get<int>();
    return m;
}

void
saveMemRequest(util::Serializer &s, const MemRequest &req)
{
    s.put(req.is_store);
    s.put(req.addr);
    s.put(req.store_value);
    s.put(req.context);
    s.put(req.wants_reply);
}

MemRequest
loadMemRequest(util::Deserializer &d)
{
    MemRequest req;
    req.is_store = d.getBool();
    req.addr = d.get<Addr>();
    req.store_value = d.get<std::uint64_t>();
    req.context = d.get<int>();
    req.wants_reply = d.getBool();
    return req;
}

void
saveMemResponse(util::Serializer &s, const MemResponse &resp)
{
    s.put(resp.context);
    s.put(resp.load_value);
    s.put(resp.was_transaction);
}

MemResponse
loadMemResponse(util::Deserializer &d)
{
    MemResponse resp;
    resp.context = d.get<int>();
    resp.load_value = d.get<std::uint64_t>();
    resp.was_transaction = d.getBool();
    return resp;
}

/** Attribution class of a protocol message (net latency breakdown). */
net::MessageClass
classOf(MsgType type)
{
    switch (type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::Fetch:
      case MsgType::FetchInv:
        return net::MessageClass::Request;
      case MsgType::DataS:
      case MsgType::DataX:
      case MsgType::FetchReply:
        return net::MessageClass::Reply;
      case MsgType::Inv:
      case MsgType::InvAck:
        return net::MessageClass::Inv;
      case MsgType::PutX:
        return net::MessageClass::Writeback;
    }
    return net::MessageClass::Generic;
}

} // namespace

CacheController::CacheController(sim::Engine &engine,
                                 net::Network &network,
                                 sim::NodeId node,
                                 const ProtocolConfig &config,
                                 std::uint32_t ticks_per_cycle)
    : engine_(engine), network_(network), node_(node), config_(config),
      ticks_per_cycle_(ticks_per_cycle), cache_(config.cache_bytes),
      directory_(node)
{
    LOCSIM_ASSERT(ticks_per_cycle >= 1, "bad clock ratio");
    // Pre-size the work rings past the typical stochastic high-water
    // mark so steady-state operation never touches the allocator
    // (rare late capacity doublings would otherwise show up in the
    // zero-allocation CI gate).
    inbox_.reserve(16);
    proc_queue_.reserve(16);
    outbox_.reserve(16);
}

void
CacheController::busyFor(std::uint32_t cycles)
{
    const sim::Tick now = engine_.now();
    const sim::Tick base = busy_until_ > now ? busy_until_ : now;
    busy_until_ = base + static_cast<sim::Tick>(cycles) *
                             ticks_per_cycle_;
}

void
CacheController::send(sim::NodeId dst, MsgType type, Addr addr,
                      std::uint64_t data, sim::NodeId requester,
                      std::uint32_t delay_cycles, int critical)
{
    LOCSIM_ASSERT(dst != node_,
                  "protocol must not message its own node: ",
                  msgTypeName(type));
    ProtoMsg proto;
    proto.type = type;
    proto.addr = addr;
    proto.sender = node_;
    proto.data = data;
    proto.requester = requester;
    proto.critical = critical;

    net::Message msg;
    msg.src = node_;
    msg.dst = dst;
    msg.flits = carriesData(type) ? config_.data_flits
                                  : config_.control_flits;
    msg.payload = packProtoMsg(proto);
    msg.cls = classOf(type);

    StagedSend staged;
    staged.ready = engine_.now() + static_cast<sim::Tick>(delay_cycles) *
                                       ticks_per_cycle_;
    staged.msg = msg;
    outbox_.push_back(staged);
    stats_.messages_sent.inc();

    if (tracer_ != nullptr) {
        TraceEvent event;
        event.when = engine_.now();
        event.node = node_;
        event.dir = TraceEvent::Dir::Send;
        event.type = type;
        event.addr = addr;
        event.peer = dst;
        tracer_->record(event);
    }
}

std::optional<MemResponse>
CacheController::tryFastPath(const MemRequest &req)
{
    const CacheLookup hit = cache_.lookup(req.addr);
    const bool load_hit =
        !req.is_store && hit.state != CacheState::Invalid;
    const bool store_hit =
        req.is_store && hit.state == CacheState::Modified;
    if (!load_hit && !store_hit)
        return std::nullopt;

    (req.is_store ? stats_.stores : stats_.loads).inc();
    stats_.hits.inc();
    if (store_hit)
        cache_.writeData(req.addr, req.store_value);

    MemResponse resp;
    resp.context = req.context;
    resp.load_value = store_hit ? req.store_value : hit.data;
    resp.was_transaction = false;
    return resp;
}

void
CacheController::request(const MemRequest &req)
{
    proc_queue_.push_back(req);
}

void
CacheController::deliver(const MemResponse &resp, bool wants_reply)
{
    if (!wants_reply)
        return;
    LOCSIM_ASSERT(client_ != nullptr,
                  "completion with no MemClient attached");
    client_->memComplete(resp);
}

void
CacheController::queueCompletion(const MemResponse &resp,
                                 std::uint32_t delay_cycles,
                                 bool wants_reply)
{
    if (!wants_reply)
        return;
    PendingCompletion pc;
    pc.due = engine_.now() + static_cast<sim::Tick>(delay_cycles) *
                                 ticks_per_cycle_;
    pc.seq = completion_seq_++;
    pc.resp = resp;
    pending_completions_.push_back(pc);
    std::push_heap(pending_completions_.begin(),
                   pending_completions_.end(),
                   completesLater<PendingCompletion>);
    // Captureless wakeup so Activity-mode fast-forward stops at the
    // due tick even when every component is otherwise idle.
    engine_.events().schedule(pc.due, [] {});
}

void
CacheController::drainCompletions(sim::Tick now)
{
    while (!pending_completions_.empty() &&
           pending_completions_.front().due <= now) {
        std::pop_heap(pending_completions_.begin(),
                      pending_completions_.end(),
                      completesLater<PendingCompletion>);
        const MemResponse resp = pending_completions_.back().resp;
        pending_completions_.pop_back();
        deliver(resp, true);
    }
}

void
CacheController::tick(sim::Tick now)
{
    obs::ScopedPhase profile(profile_slot_, obs::Phase::Coherence);

    // Completions first: they only touch processor-side context state,
    // and must land regardless of controller occupancy (the old
    // event-queue completions also ignored busy_until_).
    drainCompletions(now);

    // Receive from the network every cycle (dedicated hardware path).
    while (auto msg = network_.receive(node_))
        inbox_.push_back(unpackProtoMsg(msg->payload));

    // Launch staged sends whose delay has elapsed (FIFO per node).
    while (!outbox_.empty() && outbox_.front().ready <= now) {
        network_.send(outbox_.front().msg);
        outbox_.pop_front();
    }

    if (now < busy_until_)
        return;

    // One unit of protocol work per free slot; protocol messages take
    // priority over new processor requests (replies unblock work).
    if (!inbox_.empty()) {
        const ProtoMsg msg = inbox_.front();
        inbox_.pop_front();
        busyFor(config_.occupancy);
        if (tracer_ != nullptr) {
            TraceEvent event;
            event.when = now;
            event.node = node_;
            event.dir = TraceEvent::Dir::Handle;
            event.type = msg.type;
            event.addr = msg.addr;
            event.peer = msg.sender;
            tracer_->record(event);
        }
        handleProtocolMessage(msg);
    } else if (!proc_queue_.empty()) {
        const MemRequest req = proc_queue_.front();
        proc_queue_.pop_front();
        busyFor(config_.occupancy);
        handleProcessorRequest(req);
    }
}

void
CacheController::handleProcessorRequest(const MemRequest &req)
{
    (req.is_store ? stats_.stores : stats_.loads).inc();

    const CacheLookup hit = cache_.lookup(req.addr);
    const bool load_hit =
        !req.is_store && hit.state != CacheState::Invalid;
    const bool store_hit =
        req.is_store && hit.state == CacheState::Modified;
    if (load_hit || store_hit) {
        stats_.hits.inc();
        if (store_hit)
            cache_.writeData(req.addr, req.store_value);
        MemResponse resp;
        resp.context = req.context;
        resp.load_value = hit.data;
        resp.was_transaction = false;
        queueCompletion(resp, config_.hit_latency, req.wants_reply);
        return;
    }

    const Addr line = lineOf(req.addr);
    if (MshrHandle *hp = mshrs_.find(line)) {
        mshr_pool_.get(*hp).deferred.push_back(req);
        return;
    }

    if (homeOf(req.addr) == node_) {
        homeLocalAccess(req);
    } else {
        startMiss(req);
    }
}

CacheController::Mshr &
CacheController::newMshr(Addr line)
{
    const MshrHandle h = mshr_pool_.alloc();
    Mshr &mshr = mshr_pool_.get(h);
    mshr.req = MemRequest{};
    mshr.issued = 0;
    mshr.deferred.clear();
    // Warm a fresh pool slot's ring at transaction start rather than
    // on its first deferral: cold-ring allocations then stop with pool
    // high-water growth instead of trickling in whenever an old slot
    // first defers (a recycled slot keeps its capacity, so this is a
    // no-op after the first use).
    mshr.deferred.reserve(8);
    mshrs_.insert(line, h);
    return mshr;
}

CacheController::HomeTxn &
CacheController::newHomeTxn(Addr line)
{
    const HomeHandle h = home_pool_.alloc();
    HomeTxn &txn = home_pool_.get(h);
    txn.kind = HomeTxn::Kind::RemoteRead;
    txn.requester = sim::kNodeNone;
    txn.pending_acks = 0;
    txn.waiting_fetch = false;
    txn.deferred.clear();
    txn.local_deferred.clear();
    // See newMshr(): warm cold rings at transaction start.
    txn.deferred.reserve(8);
    txn.local_deferred.reserve(8);
    txn.local_req = MemRequest{};
    txn.issued = 0;
    home_txns_.insert(line, h);
    return txn;
}

void
CacheController::startMiss(const MemRequest &req)
{
    const Addr line = lineOf(req.addr);
    Mshr &mshr = newMshr(line);
    mshr.req = req;
    mshr.issued = engine_.now();
    recordTxnIssue();
    send(homeOf(req.addr),
         req.is_store ? MsgType::GetX : MsgType::GetS, req.addr, 0,
         node_, 0);
}

void
CacheController::fillLine(Addr addr, CacheState state,
                          std::uint64_t data)
{
    const auto evicted = cache_.fill(addr, state, data);
    if (!evicted)
        return;
    stats_.evictions.inc();
    if (evicted->state != CacheState::Modified)
        return; // Shared/clean victims drop silently.
    stats_.writebacks.inc();
    const sim::NodeId home = homeOf(evicted->addr);
    if (home == node_) {
        DirEntry &entry = directory_.entry(evicted->addr);
        LOCSIM_ASSERT(entry.state == DirState::Exclusive &&
                          entry.owner == node_,
                      "directory out of sync on local writeback");
        entry.memory = evicted->data;
        entry.state = DirState::Uncached;
        entry.owner = sim::kNodeNone;
        directory_.clearSharers(entry);
    } else {
        send(home, MsgType::PutX, evicted->addr, evicted->data, node_,
             0);
    }
}

void
CacheController::handleProtocolMessage(const ProtoMsg &msg)
{
    switch (msg.type) {
      case MsgType::GetS:
        homeGetS(msg);
        return;
      case MsgType::GetX:
        homeGetX(msg);
        return;
      case MsgType::DataS:
        handleGrant(msg, false);
        return;
      case MsgType::DataX:
        handleGrant(msg, true);
        return;
      case MsgType::Inv:
        handleInv(msg);
        return;
      case MsgType::InvAck:
        homeInvAck(msg);
        return;
      case MsgType::Fetch:
        handleFetch(msg, false);
        return;
      case MsgType::FetchInv:
        handleFetch(msg, true);
        return;
      case MsgType::FetchReply:
        homeFetchReply(msg, false);
        return;
      case MsgType::PutX:
        homeFetchReply(msg, true);
        return;
    }
    LOCSIM_PANIC("unknown protocol message type");
}

std::uint32_t
CacheController::overflowPenalty(const DirEntry &entry)
{
    if (config_.dir_pointers == 0)
        return 0;
    // Hardware pointers track remote copies; the home's own cached
    // copy needs no pointer.
    std::size_t remote = entry.sharer_count;
    if (directory_.isSharer(entry, node_))
        --remote;
    if (remote <= config_.dir_pointers)
        return 0;
    // The hardware pointers overflowed: LimitLESS traps to a software
    // handler that maintains the full sharer list in memory. The
    // controller is occupied for the handler's duration and the
    // reply is delayed accordingly.
    stats_.limitless_traps.inc();
    busyFor(config_.overflow_trap_cycles);
    return config_.overflow_trap_cycles;
}

int
CacheController::invalidateSharers(DirEntry &entry, Addr addr,
                                   sim::NodeId keep)
{
    int sent = 0;
    for (sim::NodeId sharer : directory_.sharers(entry)) {
        if (sharer == keep)
            continue;
        if (sharer == node_) {
            cache_.invalidate(addr);
            continue;
        }
        send(sharer, MsgType::Inv, addr, 0, keep, 0);
        ++sent;
    }
    return sent;
}

void
CacheController::homeLocalAccess(const MemRequest &req)
{
    const Addr line = lineOf(req.addr);
    if (HomeHandle *hp = home_txns_.find(line)) {
        home_pool_.get(*hp).local_deferred.push_back(req);
        return;
    }

    DirEntry &entry = directory_.entry(req.addr);
    LOCSIM_ASSERT(!(entry.state == DirState::Exclusive &&
                    entry.owner == node_),
                  "local miss on a line the local cache owns");

    auto respond_local = [&](std::uint64_t value,
                             std::uint32_t extra_cycles = 0) {
        MemResponse resp;
        resp.context = req.context;
        resp.load_value = value;
        resp.was_transaction = false;
        busyFor(config_.mem_latency);
        queueCompletion(resp, config_.mem_latency + extra_cycles,
                        req.wants_reply);
    };

    if (!req.is_store) {
        if (entry.state != DirState::Exclusive) {
            // Memory is current: serve locally, become a sharer.
            fillLine(req.addr, CacheState::Shared, entry.memory);
            if (entry.state == DirState::Uncached)
                entry.state = DirState::Shared;
            directory_.addSharer(entry, node_);
            respond_local(entry.memory, overflowPenalty(entry));
            return;
        }
        // Recall the remote owner's copy.
        HomeTxn &txn = newHomeTxn(line);
        txn.kind = HomeTxn::Kind::LocalRead;
        txn.requester = node_;
        txn.waiting_fetch = true;
        txn.local_req = req;
        txn.issued = engine_.now();
        recordTxnIssue();
        send(entry.owner, MsgType::Fetch, req.addr, 0, node_, 0);
        return;
    }

    // Store.
    if (entry.state == DirState::Exclusive) {
        HomeTxn &txn = newHomeTxn(line);
        txn.kind = HomeTxn::Kind::LocalWrite;
        txn.requester = node_;
        txn.waiting_fetch = true;
        txn.local_req = req;
        txn.issued = engine_.now();
        recordTxnIssue();
        send(entry.owner, MsgType::FetchInv, req.addr, 0, node_, 0);
        return;
    }

    overflowPenalty(entry); // software walks an overflowed list
    const int invs = invalidateSharers(entry, req.addr, node_);
    if (invs > 0) {
        HomeTxn &txn = newHomeTxn(line);
        txn.kind = HomeTxn::Kind::LocalWrite;
        txn.requester = node_;
        txn.pending_acks = invs;
        txn.local_req = req;
        txn.issued = engine_.now();
        recordTxnIssue();
        return;
    }

    // No remote copies: take exclusive ownership locally.
    entry.state = DirState::Exclusive;
    entry.owner = node_;
    directory_.clearSharers(entry);
    fillLine(req.addr, CacheState::Modified, entry.memory);
    cache_.writeData(req.addr, req.store_value);
    respond_local(req.store_value);
}

void
CacheController::homeGetS(const ProtoMsg &msg)
{
    const Addr line = lineOf(msg.addr);
    if (HomeHandle *hp = home_txns_.find(line)) {
        home_pool_.get(*hp).deferred.push_back(msg);
        return;
    }

    DirEntry &entry = directory_.entry(msg.addr);
    if (entry.state == DirState::Exclusive) {
        LOCSIM_ASSERT(entry.owner != msg.sender,
                      "owner sent GetS for its own Modified line");
        if (entry.owner == node_) {
            // Our own cache holds the line Modified: demote in place.
            const CacheLookup local = cache_.lookup(msg.addr);
            LOCSIM_ASSERT(local.state == CacheState::Modified,
                          "directory says local owner but cache "
                          "disagrees");
            cache_.setState(msg.addr, CacheState::Shared);
            entry.memory = local.data;
            entry.state = DirState::Shared;
            directory_.clearSharers(entry);
            directory_.addSharer(entry, node_);
            entry.owner = sim::kNodeNone;
            directory_.addSharer(entry, msg.sender);
            send(msg.sender, MsgType::DataS, msg.addr, entry.memory,
                 msg.sender, config_.mem_latency, 2);
            return;
        }
        HomeTxn &txn = newHomeTxn(line);
        txn.kind = HomeTxn::Kind::RemoteRead;
        txn.requester = msg.sender;
        txn.waiting_fetch = true;
        send(entry.owner, MsgType::Fetch, msg.addr, 0, msg.sender, 0);
        return;
    }

    if (entry.state == DirState::Uncached)
        entry.state = DirState::Shared;
    directory_.addSharer(entry, msg.sender);
    const std::uint32_t penalty = overflowPenalty(entry);
    send(msg.sender, MsgType::DataS, msg.addr, entry.memory,
         msg.sender, config_.mem_latency + penalty, 2);
}

void
CacheController::homeGetX(const ProtoMsg &msg)
{
    const Addr line = lineOf(msg.addr);
    if (HomeHandle *hp = home_txns_.find(line)) {
        home_pool_.get(*hp).deferred.push_back(msg);
        return;
    }

    DirEntry &entry = directory_.entry(msg.addr);
    if (entry.state == DirState::Exclusive) {
        LOCSIM_ASSERT(entry.owner != msg.sender,
                      "owner sent GetX for its own Modified line");
        if (entry.owner == node_) {
            const CacheLookup local = cache_.lookup(msg.addr);
            LOCSIM_ASSERT(local.state == CacheState::Modified,
                          "directory says local owner but cache "
                          "disagrees");
            cache_.invalidate(msg.addr);
            entry.memory = local.data;
            entry.state = DirState::Exclusive;
            entry.owner = msg.sender;
            directory_.clearSharers(entry);
            send(msg.sender, MsgType::DataX, msg.addr, entry.memory,
                 msg.sender, config_.mem_latency, 2);
            return;
        }
        HomeTxn &txn = newHomeTxn(line);
        txn.kind = HomeTxn::Kind::RemoteWrite;
        txn.requester = msg.sender;
        txn.waiting_fetch = true;
        send(entry.owner, MsgType::FetchInv, msg.addr, 0, msg.sender,
             0);
        return;
    }

    overflowPenalty(entry); // software walks an overflowed list
    const int invs = invalidateSharers(entry, msg.addr, msg.sender);
    if (invs > 0) {
        HomeTxn &txn = newHomeTxn(line);
        txn.kind = HomeTxn::Kind::RemoteWrite;
        txn.requester = msg.sender;
        txn.pending_acks = invs;
        return;
    }

    entry.state = DirState::Exclusive;
    entry.owner = msg.sender;
    directory_.clearSharers(entry);
    send(msg.sender, MsgType::DataX, msg.addr, entry.memory,
         msg.sender, config_.mem_latency, 2);
}

void
CacheController::handleInv(const ProtoMsg &msg)
{
    const CacheLookup look = cache_.lookup(msg.addr);
    LOCSIM_ASSERT(look.state != CacheState::Modified,
                  "Inv received for a Modified line");
    cache_.invalidate(msg.addr);
    send(homeOf(msg.addr), MsgType::InvAck, msg.addr, 0,
         msg.requester, 0);
}

void
CacheController::handleFetch(const ProtoMsg &msg, bool invalidate)
{
    const CacheLookup look = cache_.lookup(msg.addr);
    if (look.state != CacheState::Modified) {
        // The line was evicted; the PutX in flight carries the data
        // and will satisfy the home's pending fetch.
        return;
    }
    if (invalidate) {
        cache_.invalidate(msg.addr);
    } else {
        cache_.setState(msg.addr, CacheState::Shared);
    }
    send(homeOf(msg.addr), MsgType::FetchReply, msg.addr, look.data,
         msg.requester, 0);
}

void
CacheController::homeInvAck(const ProtoMsg &msg)
{
    const Addr line = lineOf(msg.addr);
    HomeHandle *hp = home_txns_.find(line);
    LOCSIM_ASSERT(hp != nullptr, "InvAck with no transaction pending");
    HomeTxn &txn = home_pool_.get(*hp);
    LOCSIM_ASSERT(txn.pending_acks > 0, "unexpected InvAck");
    --txn.pending_acks;
    if (txn.pending_acks == 0 && !txn.waiting_fetch)
        completeHomeTxn(line, txn);
}

void
CacheController::homeFetchReply(const ProtoMsg &msg, bool is_putx)
{
    const Addr line = lineOf(msg.addr);
    DirEntry &entry = directory_.entry(msg.addr);
    entry.memory = msg.data;

    if (HomeHandle *hp = home_txns_.find(line)) {
        HomeTxn &txn = home_pool_.get(*hp);
        if (txn.waiting_fetch) {
            txn.waiting_fetch = false;
            if (txn.pending_acks == 0)
                completeHomeTxn(line, txn);
            return;
        }
    }

    LOCSIM_ASSERT(is_putx, "FetchReply with no fetch pending");
    LOCSIM_ASSERT(entry.state == DirState::Exclusive &&
                      entry.owner == msg.sender,
                  "PutX from a non-owner");
    entry.state = DirState::Uncached;
    entry.owner = sim::kNodeNone;
    directory_.clearSharers(entry);
}

void
CacheController::completeHomeTxn(Addr line, HomeTxn &txn)
{
    DirEntry &entry = directory_.entry(line);
    const sim::NodeId old_owner = entry.owner;

    switch (txn.kind) {
      case HomeTxn::Kind::RemoteRead:
        entry.state = DirState::Shared;
        directory_.clearSharers(entry);
        if (old_owner != sim::kNodeNone)
            directory_.addSharer(entry, old_owner);
        directory_.addSharer(entry, txn.requester);
        entry.owner = sim::kNodeNone;
        send(txn.requester, MsgType::DataS, line, entry.memory,
             txn.requester, config_.mem_latency, 4);
        break;
      case HomeTxn::Kind::RemoteWrite:
        entry.state = DirState::Exclusive;
        entry.owner = txn.requester;
        directory_.clearSharers(entry);
        send(txn.requester, MsgType::DataX, line, entry.memory,
             txn.requester, config_.mem_latency, 4);
        break;
      case HomeTxn::Kind::LocalRead: {
        entry.state = DirState::Shared;
        directory_.clearSharers(entry);
        if (old_owner != sim::kNodeNone)
            directory_.addSharer(entry, old_owner);
        directory_.addSharer(entry, node_);
        entry.owner = sim::kNodeNone;
        fillLine(line, CacheState::Shared, entry.memory);
        finishLocalTxn(txn, entry.memory);
        break;
      }
      case HomeTxn::Kind::LocalWrite: {
        entry.state = DirState::Exclusive;
        entry.owner = node_;
        directory_.clearSharers(entry);
        fillLine(line, CacheState::Modified, entry.memory);
        cache_.writeData(line, txn.local_req.store_value);
        finishLocalTxn(txn, txn.local_req.store_value);
        break;
      }
    }
    releaseHomeTxn(line);
}

void
CacheController::finishLocalTxn(HomeTxn &txn, std::uint64_t value)
{
    stats_.transactions.inc();
    stats_.txn_latency.add(
        static_cast<double>(engine_.now() - txn.issued));
    stats_.critical_messages.add(2.0);

    MemResponse resp;
    resp.context = txn.local_req.context;
    resp.load_value = value;
    resp.was_transaction = true;
    queueCompletion(resp, config_.mem_latency,
                    txn.local_req.wants_reply);
}

void
CacheController::releaseHomeTxn(Addr line)
{
    HomeHandle *hp = home_txns_.find(line);
    LOCSIM_ASSERT(hp != nullptr, "releasing absent txn");
    const HomeHandle h = *hp;
    HomeTxn &txn = home_pool_.get(h);
    // Requeue deferred work at the front so it is served before new
    // arrivals, preserving request order per line. The queues are
    // drained in place (not moved out) so the pooled slot keeps its
    // capacity when it is recycled.
    for (std::size_t i = txn.local_deferred.size(); i > 0; --i)
        proc_queue_.push_front(txn.local_deferred[i - 1]);
    for (std::size_t i = txn.deferred.size(); i > 0; --i)
        inbox_.push_front(txn.deferred[i - 1]);
    txn.deferred.clear();
    txn.local_deferred.clear();
    home_txns_.erase(line);
    home_pool_.free(h);
}

void
CacheController::handleGrant(const ProtoMsg &msg, bool exclusive)
{
    const Addr line = lineOf(msg.addr);
    MshrHandle *hp = mshrs_.find(line);
    LOCSIM_ASSERT(hp != nullptr, "grant with no MSHR: ",
                  msgTypeName(msg.type), " line ", line, " at node ",
                  node_);
    const MshrHandle h = *hp;
    Mshr &mshr = mshr_pool_.get(h);
    LOCSIM_ASSERT(exclusive == mshr.req.is_store,
                  "grant kind does not match the pending request");

    std::uint64_t value = msg.data;
    fillLine(msg.addr, exclusive ? CacheState::Modified
                                 : CacheState::Shared,
             msg.data);
    if (mshr.req.is_store) {
        cache_.writeData(msg.addr, mshr.req.store_value);
        value = mshr.req.store_value;
    }

    stats_.transactions.inc();
    stats_.txn_latency.add(
        static_cast<double>(engine_.now() - mshr.issued));
    stats_.critical_messages.add(static_cast<double>(msg.critical));

    MemResponse resp;
    resp.context = mshr.req.context;
    resp.load_value = value;
    resp.was_transaction = true;
    deliver(resp, mshr.req.wants_reply);

    for (std::size_t i = mshr.deferred.size(); i > 0; --i)
        proc_queue_.push_front(mshr.deferred[i - 1]);
    mshr.deferred.clear();
    mshrs_.erase(line);
    mshr_pool_.free(h);
}

void
CacheController::recordTxnIssue()
{
    if (last_txn_issue_ != sim::kTickNever) {
        stats_.txn_spacing.add(
            static_cast<double>(engine_.now() - last_txn_issue_));
    }
    last_txn_issue_ = engine_.now();
}

bool
CacheController::quiescent() const
{
    return mshrs_.empty() && home_txns_.empty() && inbox_.empty() &&
           proc_queue_.empty() && outbox_.empty();
}

std::size_t
CacheController::memoryBytes() const
{
    // Chunked pool storage dominates; the per-object deferred-queue
    // capacities inside recycled transactions are a few hundred bytes
    // and are deliberately left out of the sum.
    return sizeof(*this) + cache_.memoryBytes() +
           directory_.memoryBytes() + inbox_.memoryBytes() +
           proc_queue_.memoryBytes() + outbox_.memoryBytes() +
           mshr_pool_.memoryBytes() + home_pool_.memoryBytes() +
           mshrs_.memoryBytes() + home_txns_.memoryBytes() +
           pending_completions_.capacity() * sizeof(PendingCompletion);
}

void
CacheController::saveState(util::Serializer &s) const
{
    cache_.saveState(s);
    directory_.saveState(s);

    s.put<std::uint64_t>(inbox_.size());
    for (std::size_t i = 0; i < inbox_.size(); ++i)
        saveProtoMsg(s, inbox_[i]);

    s.put<std::uint64_t>(proc_queue_.size());
    for (std::size_t i = 0; i < proc_queue_.size(); ++i)
        saveMemRequest(s, proc_queue_[i]);

    s.put<std::uint64_t>(outbox_.size());
    for (std::size_t i = 0; i < outbox_.size(); ++i) {
        s.put(outbox_[i].ready);
        net::saveMessage(s, outbox_[i].msg);
    }

    // Map contents sorted by line so the stream is independent of
    // hash-table iteration order.
    {
        std::vector<Addr> keys;
        keys.reserve(mshrs_.size());
        mshrs_.forEach(
            [&](const Addr &k, const MshrHandle &) { keys.push_back(k); });
        std::sort(keys.begin(), keys.end());
        s.put<std::uint64_t>(keys.size());
        for (Addr key : keys) {
            const Mshr &mshr = mshr_pool_.get(*mshrs_.find(key));
            s.put(key);
            saveMemRequest(s, mshr.req);
            s.put(mshr.issued);
            s.put<std::uint64_t>(mshr.deferred.size());
            for (std::size_t i = 0; i < mshr.deferred.size(); ++i)
                saveMemRequest(s, mshr.deferred[i]);
        }
    }
    {
        std::vector<Addr> keys;
        keys.reserve(home_txns_.size());
        home_txns_.forEach(
            [&](const Addr &k, const HomeHandle &) { keys.push_back(k); });
        std::sort(keys.begin(), keys.end());
        s.put<std::uint64_t>(keys.size());
        for (Addr key : keys) {
            const HomeTxn &txn = home_pool_.get(*home_txns_.find(key));
            s.put(key);
            s.put(txn.kind);
            s.put(txn.requester);
            s.put(txn.pending_acks);
            s.put(txn.waiting_fetch);
            s.put<std::uint64_t>(txn.deferred.size());
            for (std::size_t i = 0; i < txn.deferred.size(); ++i)
                saveProtoMsg(s, txn.deferred[i]);
            s.put<std::uint64_t>(txn.local_deferred.size());
            for (std::size_t i = 0; i < txn.local_deferred.size(); ++i)
                saveMemRequest(s, txn.local_deferred[i]);
            saveMemRequest(s, txn.local_req);
            s.put(txn.issued);
        }
    }

    // The heap vector is serialized verbatim: it is already a valid
    // heap and its layout is deterministic (same simulation history).
    s.put<std::uint64_t>(pending_completions_.size());
    for (const PendingCompletion &pc : pending_completions_) {
        s.put(pc.due);
        s.put(pc.seq);
        saveMemResponse(s, pc.resp);
    }
    s.put(completion_seq_);

    s.put(busy_until_);
    s.put(last_txn_issue_);
    stats_.saveState(s);
}

void
CacheController::loadState(util::Deserializer &d)
{
    cache_.loadState(d);
    directory_.loadState(d);

    inbox_.clear();
    for (std::uint64_t i = 0, n = d.get<std::uint64_t>(); i < n; ++i)
        inbox_.push_back(loadProtoMsg(d));

    proc_queue_.clear();
    for (std::uint64_t i = 0, n = d.get<std::uint64_t>(); i < n; ++i)
        proc_queue_.push_back(loadMemRequest(d));

    outbox_.clear();
    for (std::uint64_t i = 0, n = d.get<std::uint64_t>(); i < n;
         ++i) {
        StagedSend staged;
        staged.ready = d.get<sim::Tick>();
        staged.msg = net::loadMessage(d);
        outbox_.push_back(staged);
    }

    mshrs_.clear();
    mshr_pool_.clear();
    for (std::uint64_t i = 0, n = d.get<std::uint64_t>(); i < n;
         ++i) {
        const Addr key = d.get<Addr>();
        Mshr &mshr = newMshr(key);
        mshr.req = loadMemRequest(d);
        mshr.issued = d.get<sim::Tick>();
        for (std::uint64_t j = 0, m = d.get<std::uint64_t>(); j < m;
             ++j)
            mshr.deferred.push_back(loadMemRequest(d));
    }

    home_txns_.clear();
    home_pool_.clear();
    for (std::uint64_t i = 0, n = d.get<std::uint64_t>(); i < n;
         ++i) {
        const Addr key = d.get<Addr>();
        HomeTxn &txn = newHomeTxn(key);
        txn.kind = d.get<HomeTxn::Kind>();
        txn.requester = d.get<sim::NodeId>();
        txn.pending_acks = d.get<int>();
        txn.waiting_fetch = d.getBool();
        for (std::uint64_t j = 0, m = d.get<std::uint64_t>(); j < m;
             ++j)
            txn.deferred.push_back(loadProtoMsg(d));
        for (std::uint64_t j = 0, m = d.get<std::uint64_t>(); j < m;
             ++j)
            txn.local_deferred.push_back(loadMemRequest(d));
        txn.local_req = loadMemRequest(d);
        txn.issued = d.get<sim::Tick>();
    }

    pending_completions_.clear();
    for (std::uint64_t i = 0, n = d.get<std::uint64_t>(); i < n;
         ++i) {
        PendingCompletion pc;
        pc.due = d.get<sim::Tick>();
        pc.seq = d.get<std::uint64_t>();
        pc.resp = loadMemResponse(d);
        pending_completions_.push_back(pc);
        // Re-arm the wakeup that the serialized event queue dropped
        // (the queue itself is not checkpointed; see Machine docs).
        engine_.events().schedule(pc.due, [] {});
    }
    completion_seq_ = d.get<std::uint64_t>();

    busy_until_ = d.get<sim::Tick>();
    last_txn_issue_ = d.get<sim::Tick>();
    stats_.loadState(d);
}

} // namespace coher
} // namespace locsim
