/**
 * @file
 * CacheController implementation.
 */

#include "coher/controller.hh"

#include "util/logging.hh"

namespace locsim {
namespace coher {

namespace {

/** Attribution class of a protocol message (net latency breakdown). */
net::MessageClass
classOf(MsgType type)
{
    switch (type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::Fetch:
      case MsgType::FetchInv:
        return net::MessageClass::Request;
      case MsgType::DataS:
      case MsgType::DataX:
      case MsgType::FetchReply:
        return net::MessageClass::Reply;
      case MsgType::Inv:
      case MsgType::InvAck:
        return net::MessageClass::Inv;
      case MsgType::PutX:
        return net::MessageClass::Writeback;
    }
    return net::MessageClass::Generic;
}

} // namespace

std::uint64_t
ProtoTransport::store(const ProtoMsg &msg)
{
    ++in_flight_;
    if (!free_.empty()) {
        const std::uint64_t handle = free_.back();
        free_.pop_back();
        slots_[handle] = msg;
        return handle;
    }
    slots_.push_back(msg);
    return slots_.size() - 1;
}

ProtoMsg
ProtoTransport::take(std::uint64_t handle)
{
    LOCSIM_ASSERT(handle < slots_.size(), "bad protocol handle");
    LOCSIM_ASSERT(in_flight_ > 0, "take with nothing in flight");
    --in_flight_;
    free_.push_back(handle);
    return slots_[handle];
}

CacheController::CacheController(sim::Engine &engine,
                                 net::Network &network,
                                 ProtoTransport &transport,
                                 sim::NodeId node,
                                 const ProtocolConfig &config,
                                 std::uint32_t ticks_per_cycle)
    : engine_(engine), network_(network), transport_(transport),
      node_(node), config_(config),
      ticks_per_cycle_(ticks_per_cycle), cache_(config.cache_bytes),
      directory_(node)
{
    LOCSIM_ASSERT(ticks_per_cycle >= 1, "bad clock ratio");
}

void
CacheController::busyFor(std::uint32_t cycles)
{
    const sim::Tick now = engine_.now();
    const sim::Tick base = busy_until_ > now ? busy_until_ : now;
    busy_until_ = base + static_cast<sim::Tick>(cycles) *
                             ticks_per_cycle_;
}

void
CacheController::send(sim::NodeId dst, MsgType type, Addr addr,
                      std::uint64_t data, sim::NodeId requester,
                      std::uint32_t delay_cycles, int critical)
{
    LOCSIM_ASSERT(dst != node_,
                  "protocol must not message its own node: ",
                  msgTypeName(type));
    ProtoMsg proto;
    proto.type = type;
    proto.addr = addr;
    proto.sender = node_;
    proto.data = data;
    proto.requester = requester;
    proto.critical = critical;

    net::Message msg;
    msg.src = node_;
    msg.dst = dst;
    msg.flits = carriesData(type) ? config_.data_flits
                                  : config_.control_flits;
    msg.payload = transport_.store(proto);
    msg.cls = classOf(type);

    StagedSend staged;
    staged.ready = engine_.now() + static_cast<sim::Tick>(delay_cycles) *
                                       ticks_per_cycle_;
    staged.msg = msg;
    outbox_.push_back(staged);
    stats_.messages_sent.inc();

    if (tracer_ != nullptr) {
        TraceEvent event;
        event.when = engine_.now();
        event.node = node_;
        event.dir = TraceEvent::Dir::Send;
        event.type = type;
        event.addr = addr;
        event.peer = dst;
        tracer_->record(event);
    }
}

std::optional<MemResponse>
CacheController::tryFastPath(const MemRequest &req)
{
    const CacheLookup hit = cache_.lookup(req.addr);
    const bool load_hit =
        !req.is_store && hit.state != CacheState::Invalid;
    const bool store_hit =
        req.is_store && hit.state == CacheState::Modified;
    if (!load_hit && !store_hit)
        return std::nullopt;

    (req.is_store ? stats_.stores : stats_.loads).inc();
    stats_.hits.inc();
    if (store_hit)
        cache_.writeData(req.addr, req.store_value);

    MemResponse resp;
    resp.context = req.context;
    resp.load_value = store_hit ? req.store_value : hit.data;
    resp.was_transaction = false;
    return resp;
}

void
CacheController::request(const MemRequest &req, CompletionFn done)
{
    LOCSIM_ASSERT(done, "null completion callback");
    proc_queue_.emplace_back(req, std::move(done));
}

void
CacheController::tick(sim::Tick now)
{
    // Receive from the network every cycle (dedicated hardware path).
    while (auto msg = network_.receive(node_))
        inbox_.push_back(transport_.take(msg->payload));

    // Launch staged sends whose delay has elapsed (FIFO per node).
    while (!outbox_.empty() && outbox_.front().ready <= now) {
        network_.send(outbox_.front().msg);
        outbox_.pop_front();
    }

    if (now < busy_until_)
        return;

    // One unit of protocol work per free slot; protocol messages take
    // priority over new processor requests (replies unblock work).
    if (!inbox_.empty()) {
        const ProtoMsg msg = inbox_.front();
        inbox_.pop_front();
        busyFor(config_.occupancy);
        if (tracer_ != nullptr) {
            TraceEvent event;
            event.when = now;
            event.node = node_;
            event.dir = TraceEvent::Dir::Handle;
            event.type = msg.type;
            event.addr = msg.addr;
            event.peer = msg.sender;
            tracer_->record(event);
        }
        handleProtocolMessage(msg);
    } else if (!proc_queue_.empty()) {
        auto [req, done] = std::move(proc_queue_.front());
        proc_queue_.pop_front();
        busyFor(config_.occupancy);
        handleProcessorRequest(req, std::move(done));
    }
}

void
CacheController::handleProcessorRequest(const MemRequest &req,
                                        CompletionFn done)
{
    (req.is_store ? stats_.stores : stats_.loads).inc();

    const CacheLookup hit = cache_.lookup(req.addr);
    const bool load_hit =
        !req.is_store && hit.state != CacheState::Invalid;
    const bool store_hit =
        req.is_store && hit.state == CacheState::Modified;
    if (load_hit || store_hit) {
        stats_.hits.inc();
        if (store_hit)
            cache_.writeData(req.addr, req.store_value);
        MemResponse resp;
        resp.context = req.context;
        resp.load_value = hit.data;
        resp.was_transaction = false;
        engine_.events().schedule(
            engine_.now() + static_cast<sim::Tick>(
                                config_.hit_latency) *
                                ticks_per_cycle_,
            [done = std::move(done), resp] { done(resp); });
        return;
    }

    const Addr line = lineOf(req.addr);
    if (auto it = mshrs_.find(line); it != mshrs_.end()) {
        it->second.deferred.emplace_back(req, std::move(done));
        return;
    }

    if (homeOf(req.addr) == node_) {
        homeLocalAccess(req, std::move(done));
    } else {
        startMiss(req, std::move(done));
    }
}

void
CacheController::startMiss(const MemRequest &req, CompletionFn done)
{
    const Addr line = lineOf(req.addr);
    Mshr mshr;
    mshr.req = req;
    mshr.done = std::move(done);
    mshr.issued = engine_.now();
    mshrs_.emplace(line, std::move(mshr));
    recordTxnIssue();
    send(homeOf(req.addr),
         req.is_store ? MsgType::GetX : MsgType::GetS, req.addr, 0,
         node_, 0);
}

void
CacheController::fillLine(Addr addr, CacheState state,
                          std::uint64_t data)
{
    const auto evicted = cache_.fill(addr, state, data);
    if (!evicted)
        return;
    stats_.evictions.inc();
    if (evicted->state != CacheState::Modified)
        return; // Shared/clean victims drop silently.
    stats_.writebacks.inc();
    const sim::NodeId home = homeOf(evicted->addr);
    if (home == node_) {
        DirEntry &entry = directory_.entry(evicted->addr);
        LOCSIM_ASSERT(entry.state == DirState::Exclusive &&
                          entry.owner == node_,
                      "directory out of sync on local writeback");
        entry.memory = evicted->data;
        entry.state = DirState::Uncached;
        entry.owner = sim::kNodeNone;
        entry.sharers.clear();
    } else {
        send(home, MsgType::PutX, evicted->addr, evicted->data, node_,
             0);
    }
}

void
CacheController::handleProtocolMessage(const ProtoMsg &msg)
{
    switch (msg.type) {
      case MsgType::GetS:
        homeGetS(msg);
        return;
      case MsgType::GetX:
        homeGetX(msg);
        return;
      case MsgType::DataS:
        handleGrant(msg, false);
        return;
      case MsgType::DataX:
        handleGrant(msg, true);
        return;
      case MsgType::Inv:
        handleInv(msg);
        return;
      case MsgType::InvAck:
        homeInvAck(msg);
        return;
      case MsgType::Fetch:
        handleFetch(msg, false);
        return;
      case MsgType::FetchInv:
        handleFetch(msg, true);
        return;
      case MsgType::FetchReply:
        homeFetchReply(msg, false);
        return;
      case MsgType::PutX:
        homeFetchReply(msg, true);
        return;
    }
    LOCSIM_PANIC("unknown protocol message type");
}

std::uint32_t
CacheController::overflowPenalty(const DirEntry &entry)
{
    if (config_.dir_pointers == 0)
        return 0;
    // Hardware pointers track remote copies; the home's own cached
    // copy needs no pointer.
    std::size_t remote = entry.sharers.size();
    if (Directory::isSharer(entry, node_))
        --remote;
    if (remote <= config_.dir_pointers)
        return 0;
    // The hardware pointers overflowed: LimitLESS traps to a software
    // handler that maintains the full sharer list in memory. The
    // controller is occupied for the handler's duration and the
    // reply is delayed accordingly.
    stats_.limitless_traps.inc();
    busyFor(config_.overflow_trap_cycles);
    return config_.overflow_trap_cycles;
}

int
CacheController::invalidateSharers(DirEntry &entry, Addr addr,
                                   sim::NodeId keep)
{
    int sent = 0;
    for (sim::NodeId sharer : entry.sharers) {
        if (sharer == keep)
            continue;
        if (sharer == node_) {
            cache_.invalidate(addr);
            continue;
        }
        send(sharer, MsgType::Inv, addr, 0, keep, 0);
        ++sent;
    }
    return sent;
}

void
CacheController::homeLocalAccess(const MemRequest &req,
                                 CompletionFn done)
{
    const Addr line = lineOf(req.addr);
    if (auto it = home_txns_.find(line); it != home_txns_.end()) {
        it->second.local_deferred.emplace_back(req, std::move(done));
        return;
    }

    DirEntry &entry = directory_.entry(req.addr);
    LOCSIM_ASSERT(!(entry.state == DirState::Exclusive &&
                    entry.owner == node_),
                  "local miss on a line the local cache owns");

    auto respond_local = [&](std::uint64_t value,
                             std::uint32_t extra_cycles = 0) {
        MemResponse resp;
        resp.context = req.context;
        resp.load_value = value;
        resp.was_transaction = false;
        busyFor(config_.mem_latency);
        engine_.events().schedule(
            engine_.now() +
                static_cast<sim::Tick>(config_.mem_latency +
                                       extra_cycles) *
                    ticks_per_cycle_,
            [done, resp] { done(resp); });
    };

    if (!req.is_store) {
        if (entry.state != DirState::Exclusive) {
            // Memory is current: serve locally, become a sharer.
            fillLine(req.addr, CacheState::Shared, entry.memory);
            if (entry.state == DirState::Uncached)
                entry.state = DirState::Shared;
            Directory::addSharer(entry, node_);
            respond_local(entry.memory, overflowPenalty(entry));
            return;
        }
        // Recall the remote owner's copy.
        HomeTxn txn;
        txn.kind = HomeTxn::Kind::LocalRead;
        txn.requester = node_;
        txn.waiting_fetch = true;
        txn.local_req = req;
        txn.local_done = std::move(done);
        txn.issued = engine_.now();
        home_txns_.emplace(line, std::move(txn));
        recordTxnIssue();
        send(entry.owner, MsgType::Fetch, req.addr, 0, node_, 0);
        return;
    }

    // Store.
    if (entry.state == DirState::Exclusive) {
        HomeTxn txn;
        txn.kind = HomeTxn::Kind::LocalWrite;
        txn.requester = node_;
        txn.waiting_fetch = true;
        txn.local_req = req;
        txn.local_done = std::move(done);
        txn.issued = engine_.now();
        home_txns_.emplace(line, std::move(txn));
        recordTxnIssue();
        send(entry.owner, MsgType::FetchInv, req.addr, 0, node_, 0);
        return;
    }

    overflowPenalty(entry); // software walks an overflowed list
    const int invs = invalidateSharers(entry, req.addr, node_);
    if (invs > 0) {
        HomeTxn txn;
        txn.kind = HomeTxn::Kind::LocalWrite;
        txn.requester = node_;
        txn.pending_acks = invs;
        txn.local_req = req;
        txn.local_done = std::move(done);
        txn.issued = engine_.now();
        home_txns_.emplace(line, std::move(txn));
        recordTxnIssue();
        return;
    }

    // No remote copies: take exclusive ownership locally.
    entry.state = DirState::Exclusive;
    entry.owner = node_;
    entry.sharers.clear();
    fillLine(req.addr, CacheState::Modified, entry.memory);
    cache_.writeData(req.addr, req.store_value);
    respond_local(req.store_value);
}

void
CacheController::homeGetS(const ProtoMsg &msg)
{
    const Addr line = lineOf(msg.addr);
    if (auto it = home_txns_.find(line); it != home_txns_.end()) {
        it->second.deferred.push_back(msg);
        return;
    }

    DirEntry &entry = directory_.entry(msg.addr);
    if (entry.state == DirState::Exclusive) {
        LOCSIM_ASSERT(entry.owner != msg.sender,
                      "owner sent GetS for its own Modified line");
        if (entry.owner == node_) {
            // Our own cache holds the line Modified: demote in place.
            const CacheLookup local = cache_.lookup(msg.addr);
            LOCSIM_ASSERT(local.state == CacheState::Modified,
                          "directory says local owner but cache "
                          "disagrees");
            cache_.setState(msg.addr, CacheState::Shared);
            entry.memory = local.data;
            entry.state = DirState::Shared;
            entry.sharers = {node_};
            entry.owner = sim::kNodeNone;
            Directory::addSharer(entry, msg.sender);
            send(msg.sender, MsgType::DataS, msg.addr, entry.memory,
                 msg.sender, config_.mem_latency, 2);
            return;
        }
        HomeTxn txn;
        txn.kind = HomeTxn::Kind::RemoteRead;
        txn.requester = msg.sender;
        txn.waiting_fetch = true;
        home_txns_.emplace(line, std::move(txn));
        send(entry.owner, MsgType::Fetch, msg.addr, 0, msg.sender, 0);
        return;
    }

    if (entry.state == DirState::Uncached)
        entry.state = DirState::Shared;
    Directory::addSharer(entry, msg.sender);
    const std::uint32_t penalty = overflowPenalty(entry);
    send(msg.sender, MsgType::DataS, msg.addr, entry.memory,
         msg.sender, config_.mem_latency + penalty, 2);
}

void
CacheController::homeGetX(const ProtoMsg &msg)
{
    const Addr line = lineOf(msg.addr);
    if (auto it = home_txns_.find(line); it != home_txns_.end()) {
        it->second.deferred.push_back(msg);
        return;
    }

    DirEntry &entry = directory_.entry(msg.addr);
    if (entry.state == DirState::Exclusive) {
        LOCSIM_ASSERT(entry.owner != msg.sender,
                      "owner sent GetX for its own Modified line");
        if (entry.owner == node_) {
            const CacheLookup local = cache_.lookup(msg.addr);
            LOCSIM_ASSERT(local.state == CacheState::Modified,
                          "directory says local owner but cache "
                          "disagrees");
            cache_.invalidate(msg.addr);
            entry.memory = local.data;
            entry.state = DirState::Exclusive;
            entry.owner = msg.sender;
            entry.sharers.clear();
            send(msg.sender, MsgType::DataX, msg.addr, entry.memory,
                 msg.sender, config_.mem_latency, 2);
            return;
        }
        HomeTxn txn;
        txn.kind = HomeTxn::Kind::RemoteWrite;
        txn.requester = msg.sender;
        txn.waiting_fetch = true;
        home_txns_.emplace(line, std::move(txn));
        send(entry.owner, MsgType::FetchInv, msg.addr, 0, msg.sender,
             0);
        return;
    }

    overflowPenalty(entry); // software walks an overflowed list
    const int invs = invalidateSharers(entry, msg.addr, msg.sender);
    if (invs > 0) {
        HomeTxn txn;
        txn.kind = HomeTxn::Kind::RemoteWrite;
        txn.requester = msg.sender;
        txn.pending_acks = invs;
        home_txns_.emplace(line, std::move(txn));
        return;
    }

    entry.state = DirState::Exclusive;
    entry.owner = msg.sender;
    entry.sharers.clear();
    send(msg.sender, MsgType::DataX, msg.addr, entry.memory,
         msg.sender, config_.mem_latency, 2);
}

void
CacheController::handleInv(const ProtoMsg &msg)
{
    const CacheLookup look = cache_.lookup(msg.addr);
    LOCSIM_ASSERT(look.state != CacheState::Modified,
                  "Inv received for a Modified line");
    cache_.invalidate(msg.addr);
    send(homeOf(msg.addr), MsgType::InvAck, msg.addr, 0,
         msg.requester, 0);
}

void
CacheController::handleFetch(const ProtoMsg &msg, bool invalidate)
{
    const CacheLookup look = cache_.lookup(msg.addr);
    if (look.state != CacheState::Modified) {
        // The line was evicted; the PutX in flight carries the data
        // and will satisfy the home's pending fetch.
        return;
    }
    if (invalidate) {
        cache_.invalidate(msg.addr);
    } else {
        cache_.setState(msg.addr, CacheState::Shared);
    }
    send(homeOf(msg.addr), MsgType::FetchReply, msg.addr, look.data,
         msg.requester, 0);
}

void
CacheController::homeInvAck(const ProtoMsg &msg)
{
    const Addr line = lineOf(msg.addr);
    auto it = home_txns_.find(line);
    LOCSIM_ASSERT(it != home_txns_.end(),
                  "InvAck with no transaction pending");
    HomeTxn &txn = it->second;
    LOCSIM_ASSERT(txn.pending_acks > 0, "unexpected InvAck");
    --txn.pending_acks;
    if (txn.pending_acks == 0 && !txn.waiting_fetch)
        completeHomeTxn(line, txn);
}

void
CacheController::homeFetchReply(const ProtoMsg &msg, bool is_putx)
{
    const Addr line = lineOf(msg.addr);
    DirEntry &entry = directory_.entry(msg.addr);
    entry.memory = msg.data;

    auto it = home_txns_.find(line);
    if (it != home_txns_.end() && it->second.waiting_fetch) {
        it->second.waiting_fetch = false;
        if (it->second.pending_acks == 0)
            completeHomeTxn(line, it->second);
        return;
    }

    LOCSIM_ASSERT(is_putx, "FetchReply with no fetch pending");
    LOCSIM_ASSERT(entry.state == DirState::Exclusive &&
                      entry.owner == msg.sender,
                  "PutX from a non-owner");
    entry.state = DirState::Uncached;
    entry.owner = sim::kNodeNone;
    entry.sharers.clear();
}

void
CacheController::completeHomeTxn(Addr line, HomeTxn &txn)
{
    DirEntry &entry = directory_.entry(line);
    const sim::NodeId old_owner = entry.owner;

    switch (txn.kind) {
      case HomeTxn::Kind::RemoteRead:
        entry.state = DirState::Shared;
        entry.sharers.clear();
        if (old_owner != sim::kNodeNone)
            entry.sharers.push_back(old_owner);
        Directory::addSharer(entry, txn.requester);
        entry.owner = sim::kNodeNone;
        send(txn.requester, MsgType::DataS, line, entry.memory,
             txn.requester, config_.mem_latency, 4);
        break;
      case HomeTxn::Kind::RemoteWrite:
        entry.state = DirState::Exclusive;
        entry.owner = txn.requester;
        entry.sharers.clear();
        send(txn.requester, MsgType::DataX, line, entry.memory,
             txn.requester, config_.mem_latency, 4);
        break;
      case HomeTxn::Kind::LocalRead: {
        entry.state = DirState::Shared;
        entry.sharers.clear();
        if (old_owner != sim::kNodeNone)
            entry.sharers.push_back(old_owner);
        Directory::addSharer(entry, node_);
        entry.owner = sim::kNodeNone;
        fillLine(line, CacheState::Shared, entry.memory);
        finishLocalTxn(txn, entry.memory);
        break;
      }
      case HomeTxn::Kind::LocalWrite: {
        entry.state = DirState::Exclusive;
        entry.owner = node_;
        entry.sharers.clear();
        fillLine(line, CacheState::Modified, entry.memory);
        cache_.writeData(line, txn.local_req.store_value);
        finishLocalTxn(txn, txn.local_req.store_value);
        break;
      }
    }
    releaseHomeTxn(line);
}

void
CacheController::finishLocalTxn(HomeTxn &txn, std::uint64_t value)
{
    stats_.transactions.inc();
    stats_.txn_latency.add(
        static_cast<double>(engine_.now() - txn.issued));
    stats_.critical_messages.add(2.0);

    MemResponse resp;
    resp.context = txn.local_req.context;
    resp.load_value = value;
    resp.was_transaction = true;
    auto done = std::move(txn.local_done);
    engine_.events().schedule(
        engine_.now() +
            static_cast<sim::Tick>(config_.mem_latency) *
                ticks_per_cycle_,
        [done = std::move(done), resp] { done(resp); });
}

void
CacheController::releaseHomeTxn(Addr line)
{
    auto it = home_txns_.find(line);
    LOCSIM_ASSERT(it != home_txns_.end(), "releasing absent txn");
    // Requeue deferred work at the front so it is served before new
    // arrivals, preserving request order per line.
    auto deferred = std::move(it->second.deferred);
    auto local_deferred = std::move(it->second.local_deferred);
    home_txns_.erase(it);
    for (auto rit = local_deferred.rbegin();
         rit != local_deferred.rend(); ++rit) {
        proc_queue_.emplace_front(std::move(*rit));
    }
    for (auto rit = deferred.rbegin(); rit != deferred.rend(); ++rit)
        inbox_.push_front(*rit);
}

void
CacheController::handleGrant(const ProtoMsg &msg, bool exclusive)
{
    const Addr line = lineOf(msg.addr);
    auto it = mshrs_.find(line);
    LOCSIM_ASSERT(it != mshrs_.end(), "grant with no MSHR: ",
                  msgTypeName(msg.type), " line ", line, " at node ",
                  node_);
    Mshr &mshr = it->second;
    LOCSIM_ASSERT(exclusive == mshr.req.is_store,
                  "grant kind does not match the pending request");

    std::uint64_t value = msg.data;
    fillLine(msg.addr, exclusive ? CacheState::Modified
                                 : CacheState::Shared,
             msg.data);
    if (mshr.req.is_store) {
        cache_.writeData(msg.addr, mshr.req.store_value);
        value = mshr.req.store_value;
    }

    stats_.transactions.inc();
    stats_.txn_latency.add(
        static_cast<double>(engine_.now() - mshr.issued));
    stats_.critical_messages.add(static_cast<double>(msg.critical));

    MemResponse resp;
    resp.context = mshr.req.context;
    resp.load_value = value;
    resp.was_transaction = true;
    mshr.done(resp);

    auto deferred = std::move(mshr.deferred);
    mshrs_.erase(it);
    for (auto rit = deferred.rbegin(); rit != deferred.rend(); ++rit)
        proc_queue_.emplace_front(std::move(*rit));
}

void
CacheController::recordTxnIssue()
{
    if (last_txn_issue_ != sim::kTickNever) {
        stats_.txn_spacing.add(
            static_cast<double>(engine_.now() - last_txn_issue_));
    }
    last_txn_issue_ = engine_.now();
}

bool
CacheController::quiescent() const
{
    return mshrs_.empty() && home_txns_.empty() && inbox_.empty() &&
           proc_queue_.empty() && outbox_.empty();
}

} // namespace coher
} // namespace locsim
