/**
 * @file
 * The per-node memory/network interface controller: serves processor
 * loads and stores, maintains the home directory for local lines, and
 * runs the full-map MSI invalidation protocol over the network
 * (Alewife's "controller that serves as both memory and network
 * interface", Section 3.1).
 *
 * Protocol summary (stable states MSI at caches;
 * Uncached/Shared/Exclusive at directories; acknowledgements are
 * collected at the home):
 *
 *   read miss:  GetS -> home; home replies DataS (fetching from the
 *               exclusive owner first if necessary via Fetch /
 *               FetchReply).
 *   write miss: GetX -> home; home invalidates sharers (Inv/InvAck)
 *               or recalls the owner (FetchInv/FetchReply), then
 *               grants with DataX.
 *   eviction:   Modified victims write back with PutX; Shared victims
 *               drop silently (homes tolerate stale sharers by
 *               accepting InvAcks from non-holders).
 *
 * Races handled: Inv arriving while a GetS/GetX is outstanding on the
 * same line (ack immediately; the grant carries fresh data), and
 * Fetch crossing a PutX in flight (the home accepts the PutX as the
 * fetch reply; the owner drops the stale Fetch).
 */

#ifndef LOCSIM_COHER_CONTROLLER_HH_
#define LOCSIM_COHER_CONTROLLER_HH_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "coher/cache.hh"
#include "coher/directory.hh"
#include "coher/protocol.hh"
#include "coher/tracer.hh"
#include "net/network.hh"
#include "sim/engine.hh"
#include "stats/stats.hh"
#include "util/flat_map.hh"
#include "util/pool.hh"
#include "util/ring_queue.hh"
#include "util/serialize.hh"

namespace locsim {
namespace coher {

/** A processor memory request. */
struct MemRequest
{
    bool is_store = false;
    Addr addr = 0;
    std::uint64_t store_value = 0;
    int context = 0;
    /**
     * False for fire-and-forget accesses (prefetch): the access runs
     * the full protocol but no completion is delivered to the client.
     */
    bool wants_reply = true;
};

/** Outcome delivered to the processor when a request completes. */
struct MemResponse
{
    int context = 0;
    std::uint64_t load_value = 0;
    /** True if satisfying the request required network messages. */
    bool was_transaction = false;
};

/**
 * Consumer of memory completions (implemented by proc::Processor and
 * test harnesses). Replaces per-request completion closures: keeping
 * the controller's pending work as plain data (request + response
 * records instead of captured std::functions) is what makes
 * checkpoint/restore possible, and it removes a heap allocation per
 * completion from the hot path.
 */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /** A request submitted via CacheController::request() finished. */
    virtual void memComplete(const MemResponse &resp) = 0;
};

/** Per-controller statistics. */
struct ControllerStats
{
    stats::Counter loads;
    stats::Counter stores;
    stats::Counter hits;
    /** Completed communication (network) transactions. */
    stats::Counter transactions;
    /** Protocol messages sent into the network. */
    stats::Counter messages_sent;
    /** Latency of communication transactions, in ticks. */
    stats::Accumulator txn_latency;
    /** Messages on the critical path, per transaction. */
    stats::Accumulator critical_messages;
    /** Issue-to-issue spacing of communication transactions (ticks). */
    stats::Accumulator txn_spacing;
    stats::Counter evictions;
    stats::Counter writebacks;
    /** LimitLESS software-directory traps at this home. */
    stats::Counter limitless_traps;

    void
    saveState(util::Serializer &s) const
    {
        loads.saveState(s);
        stores.saveState(s);
        hits.saveState(s);
        transactions.saveState(s);
        messages_sent.saveState(s);
        txn_latency.saveState(s);
        critical_messages.saveState(s);
        txn_spacing.saveState(s);
        evictions.saveState(s);
        writebacks.saveState(s);
        limitless_traps.saveState(s);
    }

    void
    loadState(util::Deserializer &d)
    {
        loads.loadState(d);
        stores.loadState(d);
        hits.loadState(d);
        transactions.loadState(d);
        messages_sent.loadState(d);
        txn_latency.loadState(d);
        critical_messages.loadState(d);
        txn_spacing.loadState(d);
        evictions.loadState(d);
        writebacks.loadState(d);
        limitless_traps.loadState(d);
    }
};

/** The memory-side controller for one node. */
class CacheController : public sim::Clocked
{
  public:
    /**
     * @param engine the engine driving this node (for timestamps).
     * @param network fabric this node attaches to.
     * @param node this controller's node id.
     * @param config protocol timing/sizing knobs.
     * @param ticks_per_cycle engine ticks per processor cycle.
     */
    CacheController(sim::Engine &engine, net::Network &network,
                    sim::NodeId node, const ProtocolConfig &config,
                    std::uint32_t ticks_per_cycle);

    /**
     * Synchronous cache probe for the processor's issue stage: if the
     * access hits (load in any valid state; store in Modified), apply
     * it and return the response immediately. Misses return nullopt
     * and must be submitted via request(). Models the processor's
     * direct cache path, which does not contend with the controller.
     */
    std::optional<MemResponse> tryFastPath(const MemRequest &req);

    /**
     * Attach the completion consumer. Must be set before the first
     * request with wants_reply completes. Not owned; must outlive the
     * controller while attached.
     */
    void setClient(MemClient *client) { client_ = client; }

    /**
     * Submit a processor request. The client's memComplete() fires
     * when the access is satisfied (never before the controller's
     * next tick). At most one request per context may be outstanding.
     */
    void request(const MemRequest &req);

    void tick(sim::Tick now) override;

    /**
     * Serialize all dynamic state (cache, directory, queues, MSHRs,
     * home transients, pending completions, stats). Topology/config
     * state is reconstructed from the configuration, not serialized.
     */
    void saveState(util::Serializer &s) const;

    /**
     * Restore state written by saveState() into a freshly constructed
     * controller with the same configuration; re-schedules completion
     * wakeup events into the engine (call after Engine::restoreTime).
     */
    void loadState(util::Deserializer &d);

    const ControllerStats &stats() const { return stats_; }
    ControllerStats &stats() { return stats_; }

    /**
     * Attach a protocol tracer (nullptr to detach). Not owned; must
     * outlive the controller while attached.
     */
    void setTracer(ProtocolTracer *tracer) { tracer_ = tracer; }

    /**
     * Attach a phase-profiler slot (nullptr to detach; not owned).
     * tick() records Phase::Coherence; null costs one branch.
     */
    void setProfiler(obs::PhaseSlot *slot) { profile_slot_ = slot; }

    const Cache &cache() const { return cache_; }
    const Directory &directory() const { return directory_; }
    sim::NodeId node() const { return node_; }

    /** True if no transaction is outstanding at this node. */
    bool quiescent() const;

    /** Resident bytes of this node's coherence state (footprint). */
    std::size_t memoryBytes() const;

    /**
     * The controller has work while any transaction state (MSHRs,
     * home transients, queued messages or requests) exists, or while
     * the network holds deliveries this node has not drained yet.
     * A future busy_until_ alone does not count: with every queue
     * empty the occupancy window expires without side effects.
     */
    bool busy() const override
    {
        return !quiescent() || network_.pendingAt(node_) > 0;
    }

  private:
    /**
     * Requester-side outstanding miss. Lives in a generation-checked
     * pool: a recycled MSHR keeps its deferred queue's capacity, so
     * steady-state transaction turnover never touches the allocator.
     */
    struct Mshr
    {
        MemRequest req;
        sim::Tick issued = 0;
        /** Requests for the same line arriving while busy. */
        util::RingQueue<MemRequest> deferred;
    };

    /** Home-side transient for one line (pooled, like Mshr). */
    struct HomeTxn
    {
        enum class Kind {
            RemoteRead,   //!< GetS needing a Fetch
            RemoteWrite,  //!< GetX needing Invs or a FetchInv
            LocalRead,    //!< local load needing a Fetch
            LocalWrite,   //!< local store needing Invs or FetchInv
        };
        Kind kind = Kind::RemoteRead;
        sim::NodeId requester = sim::kNodeNone;
        int pending_acks = 0;
        bool waiting_fetch = false;
        /** Deferred same-line requests from the network. */
        util::RingQueue<ProtoMsg> deferred;
        /** Deferred same-line local requests. */
        util::RingQueue<MemRequest> local_deferred;
        /** For Local* kinds: the processor request being served. */
        MemRequest local_req;
        /** Issue tick of the local transaction (for latency stats). */
        sim::Tick issued = 0;
    };

    /**
     * Transaction pools hold only a handful of live objects per node
     * (the workload bounds outstanding misses per context), so small
     * 16-slot chunks keep a 64x64 machine's warm footprint compact
     * where the default 512-slot chunks would cost ~128KB per node.
     */
    using MshrPool = util::Pool<Mshr, 4>;
    using MshrHandle = MshrPool::Handle;
    using HomePool = util::Pool<HomeTxn, 4>;
    using HomeHandle = HomePool::Handle;

    /** A completion waiting for its due tick (min-heap by due, seq). */
    struct PendingCompletion
    {
        sim::Tick due = 0;
        std::uint64_t seq = 0;
        MemResponse resp;
    };

    void handleProcessorRequest(const MemRequest &req);
    void handleProtocolMessage(const ProtoMsg &msg);

    /**
     * Allocate a pooled transaction for @p line and register its
     * handle. Pool slots recycle without destruction, so every field
     * is reset here (the deferred queues keep their capacity).
     */
    Mshr &newMshr(Addr line);
    HomeTxn &newHomeTxn(Addr line);

    // Requester-side handlers.
    void startMiss(const MemRequest &req);
    void handleGrant(const ProtoMsg &msg, bool exclusive);
    void handleInv(const ProtoMsg &msg);
    void handleFetch(const ProtoMsg &msg, bool invalidate);

    // Home-side handlers.
    void homeGetS(const ProtoMsg &msg);
    void homeGetX(const ProtoMsg &msg);
    void homeInvAck(const ProtoMsg &msg);
    void homeFetchReply(const ProtoMsg &msg, bool is_putx);
    void homeLocalAccess(const MemRequest &req);
    void completeHomeTxn(Addr line, HomeTxn &txn);
    void finishLocalTxn(HomeTxn &txn, std::uint64_t value);
    void releaseHomeTxn(Addr line);
    void recordTxnIssue();

    /**
     * Invalidate all sharers of a home entry other than @p keep;
     * returns the number of Inv messages sent (self-invalidations are
     * performed directly).
     */
    int invalidateSharers(DirEntry &entry, Addr addr,
                          sim::NodeId keep);

    /** Send a protocol message, after @p delay_cycles proc cycles. */
    void send(sim::NodeId dst, MsgType type, Addr addr,
              std::uint64_t data, sim::NodeId requester,
              std::uint32_t delay_cycles, int critical = 0);

    /** Install a fill, handling any writeback of the victim. */
    void fillLine(Addr addr, CacheState state, std::uint64_t data);

    /**
     * Charge the LimitLESS software trap if this entry has overflowed
     * the hardware pointers; returns the extra reply delay in
     * processor cycles (0 when within the hardware limit).
     */
    std::uint32_t overflowPenalty(const DirEntry &entry);

    /** Complete a requester-side transaction and retry deferrals. */
    void finishMshr(Addr line, std::uint64_t load_value);

    void busyFor(std::uint32_t cycles);

    /**
     * Deliver @p resp to the client now (synchronous completion, e.g.
     * a network grant). No-op when the request asked for no reply.
     */
    void deliver(const MemResponse &resp, bool wants_reply);

    /**
     * Queue @p resp for delivery after @p delay_cycles processor
     * cycles. A captureless wakeup event keeps fast-forward honest
     * (the engine must not skip past the due tick); the payload lives
     * in pending_completions_, which is serializable plain data.
     */
    void queueCompletion(const MemResponse &resp,
                         std::uint32_t delay_cycles, bool wants_reply);

    /** Deliver every queued completion whose due tick has arrived. */
    void drainCompletions(sim::Tick now);

    sim::Engine &engine_;
    net::Network &network_;
    sim::NodeId node_;
    ProtocolConfig config_;
    std::uint32_t ticks_per_cycle_;

    Cache cache_;
    Directory directory_;

    util::RingQueue<ProtoMsg> inbox_;
    util::RingQueue<MemRequest> proc_queue_;
    struct StagedSend
    {
        sim::Tick ready = 0;
        net::Message msg;
    };
    util::RingQueue<StagedSend> outbox_;

    /**
     * Outstanding transactions: pooled objects (stable addresses,
     * recycled with their queue capacity) indexed by line address
     * through flat hash maps of handles. Rehashing moves only the
     * 8-byte handles, never a transaction.
     */
    MshrPool mshr_pool_;
    HomePool home_pool_;
    util::FlatMap<Addr, MshrHandle> mshrs_;
    util::FlatMap<Addr, HomeHandle> home_txns_;

    /** Heap of delayed completions ordered by (due, seq). */
    std::vector<PendingCompletion> pending_completions_;
    /** Preserves delivery order among same-tick completions. */
    std::uint64_t completion_seq_ = 0;

    MemClient *client_ = nullptr;
    sim::Tick busy_until_ = 0;
    sim::Tick last_txn_issue_ = sim::kTickNever;
    ProtocolTracer *tracer_ = nullptr;
    obs::PhaseSlot *profile_slot_ = nullptr;

    ControllerStats stats_;
};

} // namespace coher
} // namespace locsim

#endif // LOCSIM_COHER_CONTROLLER_HH_
