/**
 * @file
 * The per-node memory/network interface controller: serves processor
 * loads and stores, maintains the home directory for local lines, and
 * runs the full-map MSI invalidation protocol over the network
 * (Alewife's "controller that serves as both memory and network
 * interface", Section 3.1).
 *
 * Protocol summary (stable states MSI at caches;
 * Uncached/Shared/Exclusive at directories; acknowledgements are
 * collected at the home):
 *
 *   read miss:  GetS -> home; home replies DataS (fetching from the
 *               exclusive owner first if necessary via Fetch /
 *               FetchReply).
 *   write miss: GetX -> home; home invalidates sharers (Inv/InvAck)
 *               or recalls the owner (FetchInv/FetchReply), then
 *               grants with DataX.
 *   eviction:   Modified victims write back with PutX; Shared victims
 *               drop silently (homes tolerate stale sharers by
 *               accepting InvAcks from non-holders).
 *
 * Races handled: Inv arriving while a GetS/GetX is outstanding on the
 * same line (ack immediately; the grant carries fresh data), and
 * Fetch crossing a PutX in flight (the home accepts the PutX as the
 * fetch reply; the owner drops the stale Fetch).
 */

#ifndef LOCSIM_COHER_CONTROLLER_HH_
#define LOCSIM_COHER_CONTROLLER_HH_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "coher/cache.hh"
#include "coher/directory.hh"
#include "coher/protocol.hh"
#include "coher/tracer.hh"
#include "net/network.hh"
#include "sim/engine.hh"
#include "stats/stats.hh"

namespace locsim {
namespace coher {

/**
 * Shared transport that moves ProtoMsg values through net::Message
 * payloads (the network treats payloads as opaque handles).
 */
class ProtoTransport
{
  public:
    /** Park a protocol message; returns the payload handle. */
    std::uint64_t store(const ProtoMsg &msg);

    /** Retrieve and release a parked protocol message. */
    ProtoMsg take(std::uint64_t handle);

    /** Messages currently in flight (diagnostics). */
    std::size_t inFlight() const { return in_flight_; }

  private:
    std::vector<ProtoMsg> slots_;
    std::vector<std::uint64_t> free_;
    std::size_t in_flight_ = 0;
};

/** A processor memory request. */
struct MemRequest
{
    bool is_store = false;
    Addr addr = 0;
    std::uint64_t store_value = 0;
    int context = 0;
};

/** Outcome delivered to the processor when a request completes. */
struct MemResponse
{
    int context = 0;
    std::uint64_t load_value = 0;
    /** True if satisfying the request required network messages. */
    bool was_transaction = false;
};

/** Per-controller statistics. */
struct ControllerStats
{
    stats::Counter loads;
    stats::Counter stores;
    stats::Counter hits;
    /** Completed communication (network) transactions. */
    stats::Counter transactions;
    /** Protocol messages sent into the network. */
    stats::Counter messages_sent;
    /** Latency of communication transactions, in ticks. */
    stats::Accumulator txn_latency;
    /** Messages on the critical path, per transaction. */
    stats::Accumulator critical_messages;
    /** Issue-to-issue spacing of communication transactions (ticks). */
    stats::Accumulator txn_spacing;
    stats::Counter evictions;
    stats::Counter writebacks;
    /** LimitLESS software-directory traps at this home. */
    stats::Counter limitless_traps;
};

/** The memory-side controller for one node. */
class CacheController : public sim::Clocked
{
  public:
    using CompletionFn = std::function<void(const MemResponse &)>;

    /**
     * @param engine shared simulation engine (for timestamps).
     * @param network fabric this node attaches to.
     * @param transport shared protocol-message transport.
     * @param node this controller's node id.
     * @param config protocol timing/sizing knobs.
     * @param ticks_per_cycle engine ticks per processor cycle.
     */
    CacheController(sim::Engine &engine, net::Network &network,
                    ProtoTransport &transport, sim::NodeId node,
                    const ProtocolConfig &config,
                    std::uint32_t ticks_per_cycle);

    /**
     * Synchronous cache probe for the processor's issue stage: if the
     * access hits (load in any valid state; store in Modified), apply
     * it and return the response immediately. Misses return nullopt
     * and must be submitted via request(). Models the processor's
     * direct cache path, which does not contend with the controller.
     */
    std::optional<MemResponse> tryFastPath(const MemRequest &req);

    /**
     * Submit a processor request. The completion callback fires when
     * the access is satisfied (possibly the same tick for hits).
     * At most one request per context may be outstanding.
     */
    void request(const MemRequest &req, CompletionFn done);

    void tick(sim::Tick now) override;

    const ControllerStats &stats() const { return stats_; }
    ControllerStats &stats() { return stats_; }

    /**
     * Attach a protocol tracer (nullptr to detach). Not owned; must
     * outlive the controller while attached.
     */
    void setTracer(ProtocolTracer *tracer) { tracer_ = tracer; }

    const Cache &cache() const { return cache_; }
    const Directory &directory() const { return directory_; }
    sim::NodeId node() const { return node_; }

    /** True if no transaction is outstanding at this node. */
    bool quiescent() const;

    /**
     * The controller has work while any transaction state (MSHRs,
     * home transients, queued messages or requests) exists, or while
     * the network holds deliveries this node has not drained yet.
     * A future busy_until_ alone does not count: with every queue
     * empty the occupancy window expires without side effects.
     */
    bool busy() const override
    {
        return !quiescent() || network_.pendingAt(node_) > 0;
    }

  private:
    /** Requester-side outstanding miss. */
    struct Mshr
    {
        MemRequest req;
        CompletionFn done;
        sim::Tick issued = 0;
        /** Requests for the same line arriving while busy. */
        std::deque<std::pair<MemRequest, CompletionFn>> deferred;
    };

    /** Home-side transient for one line. */
    struct HomeTxn
    {
        enum class Kind {
            RemoteRead,   //!< GetS needing a Fetch
            RemoteWrite,  //!< GetX needing Invs or a FetchInv
            LocalRead,    //!< local load needing a Fetch
            LocalWrite,   //!< local store needing Invs or FetchInv
        };
        Kind kind = Kind::RemoteRead;
        sim::NodeId requester = sim::kNodeNone;
        int pending_acks = 0;
        bool waiting_fetch = false;
        /** Deferred same-line requests from the network. */
        std::deque<ProtoMsg> deferred;
        /** Deferred same-line local requests. */
        std::deque<std::pair<MemRequest, CompletionFn>> local_deferred;
        /** For Local* kinds: the processor request being served. */
        MemRequest local_req;
        CompletionFn local_done;
        /** Issue tick of the local transaction (for latency stats). */
        sim::Tick issued = 0;
    };

    void handleProcessorRequest(const MemRequest &req,
                                CompletionFn done);
    void handleProtocolMessage(const ProtoMsg &msg);

    // Requester-side handlers.
    void startMiss(const MemRequest &req, CompletionFn done);
    void handleGrant(const ProtoMsg &msg, bool exclusive);
    void handleInv(const ProtoMsg &msg);
    void handleFetch(const ProtoMsg &msg, bool invalidate);

    // Home-side handlers.
    void homeGetS(const ProtoMsg &msg);
    void homeGetX(const ProtoMsg &msg);
    void homeInvAck(const ProtoMsg &msg);
    void homeFetchReply(const ProtoMsg &msg, bool is_putx);
    void homeLocalAccess(const MemRequest &req, CompletionFn done);
    void completeHomeTxn(Addr line, HomeTxn &txn);
    void finishLocalTxn(HomeTxn &txn, std::uint64_t value);
    void releaseHomeTxn(Addr line);
    void recordTxnIssue();

    /**
     * Invalidate all sharers of a home entry other than @p keep;
     * returns the number of Inv messages sent (self-invalidations are
     * performed directly).
     */
    int invalidateSharers(DirEntry &entry, Addr addr,
                          sim::NodeId keep);

    /** Send a protocol message, after @p delay_cycles proc cycles. */
    void send(sim::NodeId dst, MsgType type, Addr addr,
              std::uint64_t data, sim::NodeId requester,
              std::uint32_t delay_cycles, int critical = 0);

    /** Install a fill, handling any writeback of the victim. */
    void fillLine(Addr addr, CacheState state, std::uint64_t data);

    /**
     * Charge the LimitLESS software trap if this entry has overflowed
     * the hardware pointers; returns the extra reply delay in
     * processor cycles (0 when within the hardware limit).
     */
    std::uint32_t overflowPenalty(const DirEntry &entry);

    /** Complete a requester-side transaction and retry deferrals. */
    void finishMshr(Addr line, std::uint64_t load_value);

    void busyFor(std::uint32_t cycles);

    sim::Engine &engine_;
    net::Network &network_;
    ProtoTransport &transport_;
    sim::NodeId node_;
    ProtocolConfig config_;
    std::uint32_t ticks_per_cycle_;

    Cache cache_;
    Directory directory_;

    std::deque<ProtoMsg> inbox_;
    std::deque<std::pair<MemRequest, CompletionFn>> proc_queue_;
    struct StagedSend
    {
        sim::Tick ready = 0;
        net::Message msg;
    };
    std::deque<StagedSend> outbox_;

    std::unordered_map<Addr, Mshr> mshrs_;
    std::unordered_map<Addr, HomeTxn> home_txns_;

    sim::Tick busy_until_ = 0;
    sim::Tick last_txn_issue_ = sim::kTickNever;
    ProtocolTracer *tracer_ = nullptr;

    ControllerStats stats_;
};

} // namespace coher
} // namespace locsim

#endif // LOCSIM_COHER_CONTROLLER_HH_
