/**
 * @file
 * Protocol helper implementations.
 */

#include "coher/protocol.hh"

#include "util/logging.hh"

namespace locsim {
namespace coher {

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::GetS:
        return "GetS";
      case MsgType::GetX:
        return "GetX";
      case MsgType::DataS:
        return "DataS";
      case MsgType::DataX:
        return "DataX";
      case MsgType::Inv:
        return "Inv";
      case MsgType::InvAck:
        return "InvAck";
      case MsgType::Fetch:
        return "Fetch";
      case MsgType::FetchInv:
        return "FetchInv";
      case MsgType::FetchReply:
        return "FetchReply";
      case MsgType::PutX:
        return "PutX";
    }
    LOCSIM_PANIC("unknown message type");
}

bool
carriesData(MsgType type)
{
    switch (type) {
      case MsgType::DataS:
      case MsgType::DataX:
      case MsgType::FetchReply:
      case MsgType::PutX:
        return true;
      default:
        return false;
    }
}

} // namespace coher
} // namespace locsim
