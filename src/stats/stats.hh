/**
 * @file
 * Statistics primitives for the simulator and the measurement harness:
 * counters, streaming mean/variance accumulators, fixed-bucket
 * histograms, and time-weighted averages (for utilization-style
 * quantities). A StatRegistry groups named statistics for dumping.
 *
 * All statistics are deliberately simple value types; simulated
 * components own their stats directly and optionally register them for
 * reporting.
 */

#ifndef LOCSIM_STATS_STATS_HH_
#define LOCSIM_STATS_STATS_HH_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "util/serialize.hh"

namespace locsim {
namespace stats {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t delta = 1) { value_ += delta; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    void saveState(util::Serializer &s) const { s.put(value_); }
    void loadState(util::Deserializer &d)
    {
        value_ = d.get<std::uint64_t>();
    }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Streaming accumulator for mean/variance/min/max over exact running
 * sums (count, sum, sum of squares).
 *
 * The simulator's samples are integer-valued doubles far below 2^53,
 * so the running sums are computed exactly and the accumulator is a
 * pure function of the sample *multiset*: splitting a stream across
 * shards and merging gives bit-identical results to accumulating the
 * stream sequentially, for any split. The sharded execution mode
 * depends on this property; a Welford-style recurrence (the previous
 * implementation) is order-dependent in its low bits and cannot
 * provide it. The trade-off is that variance() loses precision for
 * non-integer samples with magnitudes above ~2^26 — no simulator
 * statistic is in that regime.
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** Number of samples so far. */
    std::uint64_t count() const { return count_; }

    /** Sample mean (0 when empty). */
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Unbiased sample variance (0 with < 2 samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double min() const;
    double max() const;

    void reset();

    /**
     * Merge another accumulator into this one. Exact sums make the
     * merge associative and grouping-independent (bit-for-bit) for
     * integer-valued samples.
     */
    void merge(const Accumulator &other);

    void
    saveState(util::Serializer &s) const
    {
        s.put(count_);
        s.putDouble(sum_);
        s.putDouble(sum_sq_);
        s.putDouble(min_);
        s.putDouble(max_);
    }

    void
    loadState(util::Deserializer &d)
    {
        count_ = d.get<std::uint64_t>();
        sum_ = d.getDouble();
        sum_sq_ = d.getDouble();
        min_ = d.getDouble();
        max_ = d.getDouble();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram with uniform buckets over [lo, hi); samples outside the
 * range land in underflow/overflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double sample);

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    double bucketLo(std::size_t i) const;
    double bucketHi(std::size_t i) const;
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Approximate quantile (linear interpolation within a bucket). */
    double quantile(double q) const;

    void reset();

    /**
     * Merge another histogram into this one (bucket geometries must
     * match). Counts add exactly, so the merge is grouping-independent.
     */
    void merge(const Histogram &other);

    /** Serialize the dynamic counts (bucket geometry is config). */
    void
    saveState(util::Serializer &s) const
    {
        s.put<std::uint64_t>(counts_.size());
        for (std::uint64_t c : counts_)
            s.put(c);
        s.put(underflow_);
        s.put(overflow_);
        s.put(total_);
    }

    void
    loadState(util::Deserializer &d)
    {
        const auto n = d.get<std::uint64_t>();
        if (n != counts_.size())
            throw std::runtime_error(
                "Histogram::loadState: bucket count mismatch");
        for (std::uint64_t &c : counts_)
            c = d.get<std::uint64_t>();
        underflow_ = d.get<std::uint64_t>();
        overflow_ = d.get<std::uint64_t>();
        total_ = d.get<std::uint64_t>();
    }

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Time-weighted average of a piecewise-constant signal, e.g. channel
 * utilization or queue occupancy sampled against simulation time.
 */
class TimeWeighted
{
  public:
    /**
     * Record that the signal held @p value from the previous update
     * time up to @p now.
     */
    void update(std::uint64_t now, double value);

    /** Time-weighted mean over the observed interval. */
    double average() const;

    /** Total observed time. */
    std::uint64_t elapsed() const { return elapsed_; }

    void reset();

  private:
    std::uint64_t last_time_ = 0;
    std::uint64_t elapsed_ = 0;
    double weighted_sum_ = 0.0;
    bool started_ = false;
};

/** One named entry in a StatRegistry dump. */
struct StatValue
{
    std::string name;
    double value;
};

/**
 * A flat registry of named statistic readouts.
 *
 * Components register closures that produce current values; dump()
 * snapshots all of them. Registration order is preserved.
 */
class StatRegistry
{
  public:
    /** Register a counter by reference (must outlive the registry). */
    void add(const std::string &name, const Counter &counter);

    /** Register an accumulator's mean and count. */
    void add(const std::string &name, const Accumulator &acc);

    /**
     * Register an arbitrary double source by reference (must outlive
     * the registry).
     */
    void addValue(const std::string &name, const double &value);

    /**
     * Register a fixed value. The temporary is captured into storage
     * owned by the registry; without this overload a call with an
     * rvalue (`addValue("x", compute())`) would bind the const
     * reference to a dead temporary and dump garbage.
     */
    void addValue(const std::string &name, double &&value);

    /** Snapshot all registered statistics. */
    std::vector<StatValue> dump() const;

    /** Pretty-print a snapshot. */
    void print(std::ostream &os) const;

  private:
    struct Entry
    {
        std::string name;
        enum class Kind { Counter, AccMean, AccCount, Value } kind;
        const void *source;
    };

    std::vector<Entry> entries_;
    /** Stable storage for captured rvalues (deque: no reallocation). */
    std::deque<double> owned_values_;
};

} // namespace stats
} // namespace locsim

#endif // LOCSIM_STATS_STATS_HH_
