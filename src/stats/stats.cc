/**
 * @file
 * Statistics primitive implementations.
 */

#include "stats/stats.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/logging.hh"

namespace locsim {
namespace stats {

void
Accumulator::add(double sample)
{
    ++count_;
    sum_ += sample;
    sum_sq_ += sample * sample;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double centered = sum_sq_ - sum_ * sum_ / n;
    // Cancellation can leave a tiny negative residual for
    // near-constant streams; variance is non-negative by definition.
    return std::max(0.0, centered / static_cast<double>(count_ - 1));
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Accumulator::min() const
{
    return count_ ? min_ : 0.0;
}

double
Accumulator::max() const
{
    return count_ ? max_ : 0.0;
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    LOCSIM_ASSERT(hi > lo, "histogram range must be non-empty");
    LOCSIM_ASSERT(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::add(double sample)
{
    ++total_;
    if (sample < lo_) {
        ++underflow_;
        return;
    }
    if (sample >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<std::size_t>((sample - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1); // guard FP edge at hi_
    ++counts_[idx];
}

double
Histogram::bucketLo(std::size_t i) const
{
    LOCSIM_ASSERT(i < counts_.size(), "bucket index out of range");
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::bucketHi(std::size_t i) const
{
    return bucketLo(i) + width_;
}

double
Histogram::quantile(double q) const
{
    LOCSIM_ASSERT(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    if (total_ == 0)
        return lo_;
    const double target = q * static_cast<double>(total_);
    double seen = static_cast<double>(underflow_);
    if (seen >= target)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double in_bucket = static_cast<double>(counts_[i]);
        if (seen + in_bucket >= target && in_bucket > 0) {
            const double frac = (target - seen) / in_bucket;
            return bucketLo(i) + frac * width_;
        }
        seen += in_bucket;
    }
    return hi_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

void
Histogram::merge(const Histogram &other)
{
    LOCSIM_ASSERT(counts_.size() == other.counts_.size() &&
                      lo_ == other.lo_ && hi_ == other.hi_,
                  "histogram merge requires identical bucket geometry");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

void
TimeWeighted::update(std::uint64_t now, double value)
{
    if (started_) {
        LOCSIM_ASSERT(now >= last_time_,
                      "time-weighted update went backwards: ", now,
                      " < ", last_time_);
        const std::uint64_t dt = now - last_time_;
        weighted_sum_ += value * static_cast<double>(dt);
        elapsed_ += dt;
    }
    last_time_ = now;
    started_ = true;
}

double
TimeWeighted::average() const
{
    if (elapsed_ == 0)
        return 0.0;
    return weighted_sum_ / static_cast<double>(elapsed_);
}

void
TimeWeighted::reset()
{
    *this = TimeWeighted();
}

void
StatRegistry::add(const std::string &name, const Counter &counter)
{
    entries_.push_back({name, Entry::Kind::Counter, &counter});
}

void
StatRegistry::add(const std::string &name, const Accumulator &acc)
{
    entries_.push_back({name + ".mean", Entry::Kind::AccMean, &acc});
    entries_.push_back({name + ".count", Entry::Kind::AccCount, &acc});
}

void
StatRegistry::addValue(const std::string &name, const double &value)
{
    entries_.push_back({name, Entry::Kind::Value, &value});
}

void
StatRegistry::addValue(const std::string &name, double &&value)
{
    owned_values_.push_back(value);
    entries_.push_back({name, Entry::Kind::Value,
                        &owned_values_.back()});
}

std::vector<StatValue>
StatRegistry::dump() const
{
    std::vector<StatValue> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_) {
        double value = 0.0;
        switch (entry.kind) {
          case Entry::Kind::Counter:
            value = static_cast<double>(
                static_cast<const Counter *>(entry.source)->value());
            break;
          case Entry::Kind::AccMean:
            value =
                static_cast<const Accumulator *>(entry.source)->mean();
            break;
          case Entry::Kind::AccCount:
            value = static_cast<double>(
                static_cast<const Accumulator *>(entry.source)->count());
            break;
          case Entry::Kind::Value:
            value = *static_cast<const double *>(entry.source);
            break;
        }
        out.push_back({entry.name, value});
    }
    return out;
}

void
StatRegistry::print(std::ostream &os) const
{
    for (const auto &stat : dump())
        os << stat.name << " = " << stat.value << '\n';
}

} // namespace stats
} // namespace locsim
