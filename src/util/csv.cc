/**
 * @file
 * CsvWriter implementation.
 */

#include "util/csv.hh"

#include "util/logging.hh"
#include "util/table.hh"

namespace locsim {
namespace util {

CsvWriter::CsvWriter(const std::string &path)
    : out_(path), path_(path)
{
    if (!out_)
        LOCSIM_FATAL("cannot open CSV output file '", path, "'");
}

CsvWriter::~CsvWriter() = default;

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quote =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << escape(values[i]);
    }
    out_ << '\n';
}

void
CsvWriter::header(const std::vector<std::string> &names)
{
    LOCSIM_ASSERT(!wrote_header_, "CSV header written twice for ",
                  path_);
    columns_ = names.size();
    wrote_header_ = true;
    writeRow(names);
}

void
CsvWriter::row(const std::vector<std::string> &values)
{
    if (wrote_header_) {
        LOCSIM_ASSERT(values.size() == columns_,
                      "CSV row width ", values.size(),
                      " != header width ", columns_, " in ", path_);
    }
    writeRow(values);
}

void
CsvWriter::rowDoubles(const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values)
        cells.push_back(formatDouble(v, precision));
    row(cells);
}

} // namespace util
} // namespace locsim
