/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * Uses xoshiro256++, a small, fast generator with excellent statistical
 * quality. Simulations must be reproducible, so every component that
 * needs randomness takes an explicit Rng (or a seed) rather than
 * touching global state.
 */

#ifndef LOCSIM_UTIL_RANDOM_HH_
#define LOCSIM_UTIL_RANDOM_HH_

#include <cstdint>
#include <vector>

#include "util/serialize.hh"

namespace locsim {
namespace util {

/**
 * xoshiro256++ pseudo-random number generator.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also
 * be used with <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    result_type operator()() { return next(); }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Uniform integer in [0, bound), bound > 0, without modulo bias. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability p. */
    bool nextBool(double p = 0.5);

    /**
     * Sample from a geometric distribution: number of failures before
     * the first success with per-trial probability p (mean (1-p)/p).
     */
    std::uint64_t nextGeometric(double p);

    /** Exponentially distributed double with the given mean. */
    double nextExponential(double mean);

    /** Uniformly shuffle a vector in place (Fisher-Yates). */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Split off an independently seeded child generator. Useful for
     * giving each simulated component its own stream derived from one
     * top-level seed.
     */
    Rng split();

    /** Serialize the generator state (checkpoint support). */
    void
    saveState(Serializer &s) const
    {
        for (std::uint64_t word : s_)
            s.put(word);
    }

    /** Restore state written by saveState(). */
    void
    loadState(Deserializer &d)
    {
        for (std::uint64_t &word : s_)
            word = d.get<std::uint64_t>();
    }

  private:
    std::uint64_t s_[4];
};

} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_RANDOM_HH_
