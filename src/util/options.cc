/**
 * @file
 * OptionParser implementation.
 */

#include "util/options.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "util/logging.hh"

namespace locsim {
namespace util {

OptionParser::OptionParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{
}

void
OptionParser::addString(const std::string &name, const std::string &help,
                        const std::string &default_value)
{
    options_[name] = Option{Kind::String, help, default_value};
}

void
OptionParser::addInt(const std::string &name, const std::string &help,
                     long long default_value)
{
    options_[name] =
        Option{Kind::Int, help, std::to_string(default_value)};
}

void
OptionParser::addDouble(const std::string &name, const std::string &help,
                        double default_value)
{
    std::ostringstream oss;
    oss << default_value;
    options_[name] = Option{Kind::Double, help, oss.str()};
}

void
OptionParser::addFlag(const std::string &name, const std::string &help)
{
    options_[name] = Option{Kind::Flag, help, "0"};
}

std::vector<std::string>
OptionParser::parse(int argc, const char *const *argv)
{
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            positional.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool have_value = false;
        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            have_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end()) {
            std::fputs(usage().c_str(), stderr);
            LOCSIM_FATAL("unknown option --", name);
        }
        Option &opt = it->second;
        if (opt.kind == Kind::Flag) {
            if (have_value)
                LOCSIM_FATAL("flag --", name, " takes no value");
            opt.value.assign(1, '1');
            opt.parsed = true;
            continue;
        }
        if (!have_value) {
            if (i + 1 >= argc)
                LOCSIM_FATAL("option --", name, " requires a value");
            value = argv[++i];
        }
        if (opt.kind == Kind::Int) {
            char *end = nullptr;
            (void)std::strtoll(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                LOCSIM_FATAL("option --", name,
                             " expects an integer, got '", value, "'");
        } else if (opt.kind == Kind::Double) {
            char *end = nullptr;
            (void)std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                LOCSIM_FATAL("option --", name,
                             " expects a number, got '", value, "'");
        }
        opt.value = value;
        opt.parsed = true;
    }
    return positional;
}

bool
OptionParser::wasSet(const std::string &name) const
{
    auto it = options_.find(name);
    LOCSIM_ASSERT(it != options_.end(), "option --", name,
                  " was never registered");
    return it->second.parsed;
}

const OptionParser::Option &
OptionParser::find(const std::string &name, Kind kind) const
{
    auto it = options_.find(name);
    LOCSIM_ASSERT(it != options_.end(), "option --", name,
                  " was never registered");
    LOCSIM_ASSERT(it->second.kind == kind, "option --", name,
                  " accessed with the wrong type");
    return it->second;
}

std::string
OptionParser::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

long long
OptionParser::getInt(const std::string &name) const
{
    return std::strtoll(find(name, Kind::Int).value.c_str(), nullptr,
                        10);
}

double
OptionParser::getDouble(const std::string &name) const
{
    return std::strtod(find(name, Kind::Double).value.c_str(), nullptr);
}

bool
OptionParser::getFlag(const std::string &name) const
{
    return find(name, Kind::Flag).value == "1";
}

std::string
OptionParser::usage() const
{
    std::ostringstream oss;
    oss << program_ << " - " << summary_ << "\n\noptions:\n";
    for (const auto &[name, opt] : options_) {
        oss << "  --" << name;
        switch (opt.kind) {
          case Kind::String:
            oss << " <string>";
            break;
          case Kind::Int:
            oss << " <int>";
            break;
          case Kind::Double:
            oss << " <num>";
            break;
          case Kind::Flag:
            break;
        }
        oss << "\n      " << opt.help;
        if (opt.kind != Kind::Flag)
            oss << " (default: " << opt.value << ")";
        oss << "\n";
    }
    oss << "  --help\n      show this message\n";
    return oss.str();
}

void
addObservabilityOptions(OptionParser &parser)
{
    parser.addString("log-level",
                     "verbosity: silent, warn, inform, or debug",
                     logLevelName(logLevel()));
    parser.addString("trace-out",
                     "write a Chrome trace_event JSON trace here "
                     "(empty: tracing off)",
                     "");
    parser.addString("trace-detail",
                     "trace granularity: message or flit", "message");
    parser.addInt("sample-period",
                  "metrics sample cadence in network cycles "
                  "(0: sampler off)",
                  0);
    parser.addString("run-report",
                     "write a JSON run manifest here (config, build, "
                     "counters, phase profile; empty: off)",
                     "");
}

void
requireWritableParent(const std::string &path, const std::string &flag)
{
    namespace fs = std::filesystem;
    const fs::path parent = fs::path(path).parent_path();
    if (parent.empty())
        return; // current directory
    std::error_code ec;
    if (!fs::is_directory(parent, ec)) {
        LOCSIM_FATAL(flag, " path '", path,
                     "': parent directory '", parent.string(),
                     "' does not exist");
    }
}

ObservabilityOptions
applyObservabilityOptions(const OptionParser &parser)
{
    setLogLevel(parseLogLevel(parser.getString("log-level")));

    ObservabilityOptions obs;
    obs.trace_out = parser.getString("trace-out");
    const std::string detail = parser.getString("trace-detail");
    if (detail == "flit") {
        obs.flit_detail = true;
    } else if (detail != "message") {
        LOCSIM_FATAL("unknown --trace-detail '", detail,
                     "' (expected message or flit)");
    }
    obs.sample_period = parser.getInt("sample-period");
    if (obs.sample_period < 0)
        LOCSIM_FATAL("--sample-period must be >= 0");
    obs.run_report = parser.getString("run-report");
    // Output paths fail now (a typo'd directory would otherwise be
    // discovered only when the artifact is written, after the run).
    if (!obs.trace_out.empty())
        requireWritableParent(obs.trace_out, "--trace-out");
    if (!obs.run_report.empty())
        requireWritableParent(obs.run_report, "--run-report");
    return obs;
}

} // namespace util
} // namespace locsim
