/**
 * @file
 * Per-simulation bump/arena allocator.
 *
 * A Machine's long-lived simulation objects (routers, flit rings,
 * credit pipes) are allocated once at construction and freed together
 * at teardown — the textbook arena shape. Allocating them from
 * chained slabs removes per-object malloc/free traffic and packs the
 * per-node structures that the hot tick loop walks into contiguous
 * memory, which is where BM_FullMachineCycles spends its time.
 *
 * make<T>() registers a finalizer for non-trivially-destructible
 * types; ~Arena runs finalizers in reverse construction order (like
 * stack unwinding), then releases the slabs wholesale.
 */

#ifndef LOCSIM_UTIL_ARENA_HH_
#define LOCSIM_UTIL_ARENA_HH_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace locsim {
namespace util {

/** Chained-slab bump allocator with reverse-order finalization. */
class Arena
{
  public:
    explicit Arena(std::size_t slab_bytes = 1 << 18)
        : slab_bytes_(slab_bytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    ~Arena()
    {
        for (auto it = finalizers_.rbegin(); it != finalizers_.rend();
             ++it)
            it->fn(it->object);
    }

    /** Raw aligned allocation; freed only when the arena dies. */
    void *
    allocate(std::size_t size, std::size_t align)
    {
        Slab *slab = slabs_.empty() ? nullptr : &slabs_.back();
        std::size_t offset = 0;
        if (slab != nullptr) {
            offset = (slab->used + align - 1) & ~(align - 1);
            if (offset + size > slab->capacity)
                slab = nullptr;
        }
        if (slab == nullptr) {
            const std::size_t capacity =
                size + align > slab_bytes_ ? size + align : slab_bytes_;
            slabs_.push_back(Slab{
                std::make_unique<std::byte[]>(capacity), 0, capacity});
            slab = &slabs_.back();
            const auto base =
                reinterpret_cast<std::uintptr_t>(slab->data.get());
            offset = ((base + align - 1) & ~(align - 1)) - base;
        }
        void *p = slab->data.get() + offset;
        slab->used = offset + size;
        bytes_allocated_ += size;
        ++object_count_;
        return p;
    }

    /**
     * Construct a T in the arena. The object lives until the arena is
     * destroyed; its destructor (if non-trivial) runs then, in reverse
     * construction order.
     */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        void *mem = allocate(sizeof(T), alignof(T));
        T *obj = new (mem) T(std::forward<Args>(args)...);
        if constexpr (!std::is_trivially_destructible_v<T>) {
            finalizers_.push_back(Finalizer{
                [](void *p) { static_cast<T *>(p)->~T(); }, obj});
        }
        return obj;
    }

    std::size_t bytesAllocated() const { return bytes_allocated_; }
    std::size_t slabCount() const { return slabs_.size(); }
    std::size_t objectCount() const { return object_count_; }

  private:
    struct Slab {
        std::unique_ptr<std::byte[]> data;
        std::size_t used;
        std::size_t capacity;
    };

    struct Finalizer {
        void (*fn)(void *);
        void *object;
    };

    std::size_t slab_bytes_;
    std::vector<Slab> slabs_;
    std::vector<Finalizer> finalizers_;
    std::size_t bytes_allocated_ = 0;
    std::size_t object_count_ = 0;
};

} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_ARENA_HH_
