/**
 * @file
 * Numerical helper implementations.
 */

#include "util/math.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace locsim {
namespace util {

LineFit
fitLine(std::span<const double> xs, std::span<const double> ys)
{
    LOCSIM_ASSERT(xs.size() == ys.size(),
                  "fitLine: size mismatch ", xs.size(), " vs ",
                  ys.size());
    LOCSIM_ASSERT(xs.size() >= 2, "fitLine: need at least two points");

    const double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
    }
    const double mx = sx / n;
    const double my = sy / n;

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    LOCSIM_ASSERT(sxx > 0.0, "fitLine: degenerate x values");

    LineFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.n = xs.size();
    if (syy > 0.0) {
        const double ss_res = syy - fit.slope * sxy;
        fit.r2 = std::clamp(1.0 - ss_res / syy, 0.0, 1.0);
    } else {
        fit.r2 = 1.0; // perfectly flat data is perfectly fit
    }
    return fit;
}

bool
nearlyEqual(double a, double b, double rel_tol, double abs_tol)
{
    const double diff = std::fabs(a - b);
    if (diff <= abs_tol)
        return true;
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return diff <= rel_tol * scale;
}

double
bisect(const std::function<double(double)> &f, double lo, double hi,
       double tol, int max_iter)
{
    LOCSIM_ASSERT(lo <= hi, "bisect: inverted bracket");
    double flo = f(lo);
    double fhi = f(hi);
    if (flo == 0.0)
        return lo;
    if (fhi == 0.0)
        return hi;
    LOCSIM_ASSERT(std::signbit(flo) != std::signbit(fhi),
                  "bisect: f(lo) and f(hi) must have opposite signs: f(",
                  lo, ")=", flo, ", f(", hi, ")=", fhi);

    for (int i = 0; i < max_iter && (hi - lo) > tol; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        if (fmid == 0.0)
            return mid;
        if (std::signbit(fmid) == std::signbit(flo)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

int
solveQuadratic(double a, double b, double c, double roots[2])
{
    if (a == 0.0) {
        if (b == 0.0)
            return 0;
        roots[0] = -c / b;
        return 1;
    }
    const double disc = b * b - 4.0 * a * c;
    if (disc < 0.0)
        return 0;
    if (disc == 0.0) {
        roots[0] = -b / (2.0 * a);
        return 1;
    }
    // Numerically stable form: compute the larger-magnitude root first.
    const double sq = std::sqrt(disc);
    const double q = -0.5 * (b + (b >= 0.0 ? sq : -sq));
    double r0 = q / a;
    double r1 = (q != 0.0) ? c / q : -b / a - r0;
    if (r0 > r1)
        std::swap(r0, r1);
    roots[0] = r0;
    roots[1] = r1;
    return 2;
}

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

} // namespace util
} // namespace locsim
