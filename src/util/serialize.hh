/**
 * @file
 * Binary serialization primitives for checkpoints and cached
 * simulation artifacts.
 *
 * The format is deliberately boring: little-endian fixed-width
 * integers, doubles as their IEEE-754 bit patterns, strings and
 * containers length-prefixed. No framing, no self-description — the
 * reader must know the layout, and every persistent consumer embeds a
 * schema version in its own header (see src/cache and
 * machine::Machine::saveCheckpoint) so stale bytes are never
 * misparsed, only discarded.
 *
 * Doubles round-trip through std::bit_cast, so a deserialized
 * Measurement is bit-identical to the one serialized — a requirement
 * for the cache's "warm output is byte-identical" contract.
 *
 * Header-only and dependency-free (no logging) so every layer,
 * including stats at the bottom of the stack, can serialize itself.
 * Deserializer errors (truncated or oversized input) throw
 * std::runtime_error: persistent inputs are untrusted, and callers
 * such as the simulation cache treat a parse failure as a miss.
 */

#ifndef LOCSIM_UTIL_SERIALIZE_HH_
#define LOCSIM_UTIL_SERIALIZE_HH_

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace locsim {
namespace util {

namespace detail {

/** The wire representation of T: its underlying type for enums
 *  (evaluated lazily so plain integers are legal), T itself
 *  otherwise. */
template <typename T, bool = std::is_enum_v<T>>
struct Wire
{
    using type = std::underlying_type_t<T>;
};

template <typename T>
struct Wire<T, false>
{
    using type = T;
};

template <typename T>
using wire_t = typename Wire<T>::type;

} // namespace detail

/** Appends primitive values to a growable byte buffer. */
class Serializer
{
  public:
    /** Append an integral or enum value, little-endian. */
    template <typename T>
    void
    put(T value)
    {
        static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                      "put() takes integral or enum types");
        using Under = detail::wire_t<T>;
        const auto bits = static_cast<std::uint64_t>(
            static_cast<std::make_unsigned_t<Under>>(
                static_cast<Under>(value)));
        constexpr std::size_t n = sizeof(Under);
        for (std::size_t i = 0; i < n; ++i)
            bytes_.push_back(
                static_cast<std::uint8_t>(bits >> (8 * i)));
    }

    void put(bool value) { put<std::uint8_t>(value ? 1 : 0); }

    /** Append a double as its IEEE-754 bit pattern (exact). */
    void
    putDouble(double value)
    {
        put(std::bit_cast<std::uint64_t>(value));
    }

    /** Append a length-prefixed string. */
    void
    putString(const std::string &s)
    {
        put<std::uint64_t>(s.size());
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    /** Append raw bytes (caller knows the length). */
    void
    putBytes(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        bytes_.insert(bytes_.end(), p, p + size);
    }

    const std::vector<std::uint8_t> &buffer() const { return bytes_; }
    std::vector<std::uint8_t> takeBuffer() { return std::move(bytes_); }
    std::size_t size() const { return bytes_.size(); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Reads primitive values back out of a byte buffer. The buffer is
 * borrowed, not owned; it must outlive the deserializer.
 */
class Deserializer
{
  public:
    Deserializer(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit Deserializer(const std::vector<std::uint8_t> &bytes)
        : Deserializer(bytes.data(), bytes.size())
    {
    }

    /** Read an integral or enum value written by Serializer::put. */
    template <typename T>
    T
    get()
    {
        static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                      "get() takes integral or enum types");
        using Under = detail::wire_t<T>;
        constexpr std::size_t n = sizeof(Under);
        need(n);
        std::uint64_t bits = 0;
        for (std::size_t i = 0; i < n; ++i)
            bits |= static_cast<std::uint64_t>(data_[pos_ + i])
                    << (8 * i);
        pos_ += n;
        return static_cast<T>(
            static_cast<Under>(static_cast<std::make_unsigned_t<Under>>(
                bits)));
    }

    bool getBool() { return get<std::uint8_t>() != 0; }

    double
    getDouble()
    {
        return std::bit_cast<double>(get<std::uint64_t>());
    }

    std::string
    getString()
    {
        const auto n =
            static_cast<std::size_t>(get<std::uint64_t>());
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    void
    getBytes(void *out, std::size_t size)
    {
        need(size);
        auto *p = static_cast<std::uint8_t *>(out);
        for (std::size_t i = 0; i < size; ++i)
            p[i] = data_[pos_ + i];
        pos_ += size;
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    void
    need(std::size_t n) const
    {
        if (size_ - pos_ < n)
            throw std::runtime_error(
                "Deserializer: truncated input");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_SERIALIZE_HH_
