/**
 * @file
 * xoshiro256++ implementation.
 *
 * Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
 * generators" (2019). Public-domain reference code re-implemented.
 */

#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace locsim {
namespace util {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** splitmix64 step, used for seed expansion. */
inline std::uint64_t
splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &word : s_)
        word = splitmix64(x);
    // A state of all zeros would be a fixed point; splitmix64 cannot
    // produce four zero outputs in a row, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    LOCSIM_ASSERT(bound > 0, "nextBounded requires bound > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    LOCSIM_ASSERT(lo <= hi, "nextRange requires lo <= hi, got ", lo,
                  " > ", hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 high-quality bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    LOCSIM_ASSERT(p > 0.0 && p <= 1.0, "geometric p out of (0,1]: ", p);
    if (p >= 1.0)
        return 0;
    double u = nextDouble();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log1p(-p)));
}

double
Rng::nextExponential(double mean)
{
    LOCSIM_ASSERT(mean > 0.0, "exponential mean must be positive");
    double u = nextDouble();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa02bdbf7bb3c0a7ull);
}

} // namespace util
} // namespace locsim
