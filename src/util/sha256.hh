/**
 * @file
 * Minimal SHA-256 (FIPS 180-4) for content-addressing simulation
 * artifacts. Self-contained — no external crypto dependency — because
 * the cache only needs a stable, collision-resistant digest of
 * canonical configuration bytes, not a vetted TLS stack.
 */

#ifndef LOCSIM_UTIL_SHA256_HH_
#define LOCSIM_UTIL_SHA256_HH_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace locsim {
namespace util {

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256();

    /** Absorb `size` bytes. */
    void update(const void *data, std::size_t size);

    /** Finalize and return the 32-byte digest. Call at most once. */
    std::array<std::uint8_t, 32> digest();

    /** Finalize and return the digest as 64 lowercase hex chars. */
    std::string hexDigest();

    /** One-shot convenience: hex digest of a byte buffer. */
    static std::string hashHex(const std::vector<std::uint8_t> &bytes);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t buffered_ = 0;
    std::uint64_t total_bytes_ = 0;
};

} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_SHA256_HH_
