/**
 * @file
 * Runtime selection of the lane-vector kernel ISA level.
 *
 * The hot-path kernels (net/kernels.hh) are compiled at every level
 * the build allows — the AVX2 bodies carry a gnu::target attribute,
 * so a single binary holds scalar, SSE2 and AVX2 variants — and the
 * level actually executed is resolved once per process as
 *
 *     min(compile-time ceiling, CPU capability, LOCSIM_SIMD env var)
 *
 * The compile-time ceiling comes from the LOCSIM_SIMD configure
 * option (auto/avx2 -> Avx2, sse2 -> Sse2, off -> Off; see the root
 * CMakeLists). The LOCSIM_SIMD environment variable can only clamp
 * the level down ("off", "sse2", "avx2"/"auto"), which lets CI A/B a
 * single build: run once with LOCSIM_SIMD=off and once without, and
 * byte-diff the outputs. Every kernel is bit-identical across levels
 * by construction, so the level is an execution detail — it never
 * enters stats, checkpoints, cache keys or stdout.
 */

#ifndef LOCSIM_UTIL_SIMD_HH_
#define LOCSIM_UTIL_SIMD_HH_

namespace locsim {
namespace util {
namespace simd {

/** ISA levels, ordered so numeric comparison means capability. */
enum class Level : int
{
    Off = 0,  //!< scalar fallback everywhere
    Sse2 = 1, //!< 128-bit kernels (x86-64 baseline)
    Avx2 = 2, //!< 256-bit kernels with masked stores
};

/**
 * The level kernels should execute at, resolved once on first call
 * (compile ceiling, CPU check, env clamp) and cached. Components that
 * dispatch per call may cache the value again at construction.
 */
Level activeLevel();

/**
 * Force the active level (clamped to what the build and CPU support).
 * Test hook for in-process scalar-vs-SIMD byte-identity checks; takes
 * effect for components constructed afterwards.
 */
void setActiveLevelForTest(Level level);

/** Human-readable level name ("off", "sse2", "avx2"). */
const char *levelName(Level level);

} // namespace simd
} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_SIMD_HH_
