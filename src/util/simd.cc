/**
 * @file
 * SIMD level resolution: compile ceiling, CPU capability, env clamp.
 */

#include "util/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#ifndef LOCSIM_SIMD_MAX
#define LOCSIM_SIMD_MAX 2
#endif

namespace locsim {
namespace util {
namespace simd {

namespace {

Level
cpuCeiling()
{
#if defined(__x86_64__)
    // SSE2 is the x86-64 baseline; only AVX2 needs a runtime probe.
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
    return Level::Sse2;
#else
    return Level::Off;
#endif
}

Level
envCeiling()
{
    const char *env = std::getenv("LOCSIM_SIMD");
    if (env == nullptr)
        return Level::Avx2;
    if (std::strcmp(env, "off") == 0)
        return Level::Off;
    if (std::strcmp(env, "sse2") == 0)
        return Level::Sse2;
    // "avx2", "auto" and anything unrecognized leave the build's
    // resolution alone: the variable can only clamp down.
    return Level::Avx2;
}

Level
minLevel(Level a, Level b)
{
    return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

Level
resolveLevel()
{
    const auto compile_max = static_cast<Level>(LOCSIM_SIMD_MAX);
    return minLevel(minLevel(compile_max, cpuCeiling()), envCeiling());
}

/** -1 = unresolved; otherwise the cached Level. */
std::atomic<int> g_active{-1};

} // namespace

Level
activeLevel()
{
    int v = g_active.load(std::memory_order_relaxed);
    if (v < 0) {
        v = static_cast<int>(resolveLevel());
        g_active.store(v, std::memory_order_relaxed);
    }
    return static_cast<Level>(v);
}

void
setActiveLevelForTest(Level level)
{
    const Level hw =
        minLevel(static_cast<Level>(LOCSIM_SIMD_MAX), cpuCeiling());
    g_active.store(static_cast<int>(minLevel(level, hw)),
                   std::memory_order_relaxed);
}

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Off:
        return "off";
      case Level::Sse2:
        return "sse2";
      case Level::Avx2:
        return "avx2";
    }
    return "?";
}

} // namespace simd
} // namespace util
} // namespace locsim
