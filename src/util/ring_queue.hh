/**
 * @file
 * A growable power-of-two ring buffer with deque semantics.
 *
 * std::deque allocates a block map at construction and churns blocks
 * as elements flow through it in steady state (each block-boundary
 * crossing frees one block and allocates another), which makes every
 * queue in the simulation hot loop a per-cycle allocation source.
 * RingQueue keeps one contiguous power-of-two buffer with monotonic
 * masked indices: elements flowing through an already-warm queue
 * never touch the allocator, and clear() retains capacity.
 *
 * Supports push/pop at both ends (the coherence controller requeues
 * deferred work at the FRONT of its queues) and indexed access from
 * the front for in-order serialization.
 */

#ifndef LOCSIM_UTIL_RING_QUEUE_HH_
#define LOCSIM_UTIL_RING_QUEUE_HH_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace locsim {
namespace util {

template <typename T>
class RingQueue
{
  public:
    RingQueue() = default;

    /** Pre-size the ring (rounded up to a power of two). */
    explicit RingQueue(std::size_t initial_capacity)
    {
        grow(initial_capacity);
    }

    bool empty() const { return head_ == tail_; }
    std::size_t size() const
    {
        return static_cast<std::size_t>(tail_ - head_);
    }
    std::size_t capacity() const { return buf_.size(); }

    void
    push_back(T value)
    {
        if (size() == buf_.size())
            grow(buf_.size() + 1);
        buf_[static_cast<std::size_t>(tail_) & mask_] =
            std::move(value);
        ++tail_;
    }

    void
    push_front(T value)
    {
        if (size() == buf_.size())
            grow(buf_.size() + 1);
        --head_;
        buf_[static_cast<std::size_t>(head_) & mask_] =
            std::move(value);
    }

    T &
    front()
    {
        LOCSIM_ASSERT(!empty(), "front() on empty ring queue");
        return buf_[static_cast<std::size_t>(head_) & mask_];
    }
    const T &
    front() const
    {
        LOCSIM_ASSERT(!empty(), "front() on empty ring queue");
        return buf_[static_cast<std::size_t>(head_) & mask_];
    }

    T &
    back()
    {
        LOCSIM_ASSERT(!empty(), "back() on empty ring queue");
        return buf_[static_cast<std::size_t>(tail_ - 1) & mask_];
    }
    const T &
    back() const
    {
        LOCSIM_ASSERT(!empty(), "back() on empty ring queue");
        return buf_[static_cast<std::size_t>(tail_ - 1) & mask_];
    }

    /** Element @p i positions behind the front (0 == front()). */
    T &
    operator[](std::size_t i)
    {
        LOCSIM_ASSERT(i < size(), "ring queue index range");
        return buf_[static_cast<std::size_t>(head_ + i) & mask_];
    }
    const T &
    operator[](std::size_t i) const
    {
        LOCSIM_ASSERT(i < size(), "ring queue index range");
        return buf_[static_cast<std::size_t>(head_ + i) & mask_];
    }

    void
    pop_front()
    {
        LOCSIM_ASSERT(!empty(), "pop_front() on empty ring queue");
        // Reset the vacated slot so popped values do not pin
        // resources (e.g. a moved-from std::function's allocation).
        buf_[static_cast<std::size_t>(head_) & mask_] = T{};
        ++head_;
    }

    void
    pop_back()
    {
        LOCSIM_ASSERT(!empty(), "pop_back() on empty ring queue");
        --tail_;
        buf_[static_cast<std::size_t>(tail_) & mask_] = T{};
    }

    /** Drop all contents; capacity is retained. */
    void
    clear()
    {
        while (!empty())
            pop_front();
        head_ = tail_ = 0;
    }

    /** Resident bytes of ring storage (footprint accounting). */
    std::size_t memoryBytes() const { return buf_.capacity() * sizeof(T); }

    /** Grow capacity to at least @p min_capacity (never shrinks). */
    void
    reserve(std::size_t min_capacity)
    {
        if (min_capacity > buf_.size())
            grow(min_capacity);
    }

  private:
    void
    grow(std::size_t min_capacity)
    {
        std::size_t cap = buf_.empty() ? 8 : buf_.size();
        while (cap < min_capacity)
            cap <<= 1;
        std::vector<T> fresh(cap);
        const std::size_t count = size();
        for (std::size_t i = 0; i < count; ++i)
            fresh[i] = std::move((*this)[i]);
        buf_ = std::move(fresh);
        mask_ = cap - 1;
        head_ = 0;
        tail_ = count;
    }

    std::vector<T> buf_;
    std::size_t mask_ = 0;
    /** Monotonic indices, masked on access: contents are [head_, tail_). */
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_RING_QUEUE_HH_
