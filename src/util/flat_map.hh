/**
 * @file
 * An open-addressing hash map over trivially-copyable keys/values.
 *
 * std::unordered_map allocates one node per insert, which puts an
 * allocator round-trip on every transaction the simulator starts
 * (message records, MSHR/home-transient indices). FlatMap stores
 * keys, values and occupancy flags in three parallel flat arrays
 * with linear probing, so inserts after warmup touch no allocator:
 * only a new size *peak* rehashes.
 *
 * Deletion uses backward-shift compaction (no tombstones), so lookup
 * cost stays bounded by the probe-sequence invariant regardless of
 * the insert/erase history. References returned by find() are
 * invalidated by insert (rehash) and erase (shifting) — callers store
 * trivially-copyable values (pool handles) and re-find after
 * mutation, exactly as they would re-find an unordered_map iterator.
 *
 * Iteration order is unspecified (like unordered_map); serialization
 * paths must collect and sort keys, which they already do.
 */

#ifndef LOCSIM_UTIL_FLAT_MAP_HH_
#define LOCSIM_UTIL_FLAT_MAP_HH_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace locsim {
namespace util {

/** splitmix64: a strong, cheap mix for integer keys. */
inline std::uint64_t
mixHash64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

template <typename K, typename V>
class FlatMap
{
  public:
    FlatMap() = default;

    /** Pre-size so the map holds @p expected entries without rehash. */
    explicit FlatMap(std::size_t expected) { rehash(expected * 2); }

    /** Grow so @p expected entries fit without rehash (never shrinks). */
    void
    reserve(std::size_t expected)
    {
        if (expected * 2 > slots())
            rehash(expected * 2);
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    /** Pointer to the value for @p key, or nullptr. Invalidated by
     *  insert/erase. */
    V *
    find(const K &key)
    {
        if (count_ == 0)
            return nullptr;
        for (std::size_t i = indexOf(key);; i = (i + 1) & mask_) {
            if (!used_[i])
                return nullptr;
            if (keys_[i] == key)
                return &values_[i];
        }
    }
    const V *
    find(const K &key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    /**
     * Insert (key, value); the key must not be present. Returns a
     * reference valid until the next insert/erase.
     */
    V &
    insert(const K &key, V value)
    {
        if ((count_ + 1) * 2 > slots())
            rehash(slots() * 2);
        for (std::size_t i = indexOf(key);; i = (i + 1) & mask_) {
            if (!used_[i]) {
                used_[i] = 1;
                keys_[i] = key;
                values_[i] = value;
                ++count_;
                return values_[i];
            }
            LOCSIM_ASSERT(!(keys_[i] == key),
                          "FlatMap::insert: key already present");
        }
    }

    /** Remove @p key if present; returns true when an entry existed. */
    bool
    erase(const K &key)
    {
        if (count_ == 0)
            return false;
        std::size_t i = indexOf(key);
        for (;; i = (i + 1) & mask_) {
            if (!used_[i])
                return false;
            if (keys_[i] == key)
                break;
        }
        // Backward-shift compaction: move later probe-chain entries
        // up until a hole or an entry already at its home slot.
        std::size_t hole = i;
        for (std::size_t j = (i + 1) & mask_;; j = (j + 1) & mask_) {
            if (!used_[j])
                break;
            const std::size_t home = indexOf(keys_[j]);
            // Entry j may fill the hole only if its home position is
            // cyclically outside (hole, j].
            const bool movable =
                ((j - home) & mask_) >= ((j - hole) & mask_);
            if (movable) {
                keys_[hole] = keys_[j];
                values_[hole] = values_[j];
                hole = j;
            }
        }
        used_[hole] = 0;
        --count_;
        return true;
    }

    /** Drop all entries; capacity is retained. */
    void
    clear()
    {
        std::fill(used_.begin(), used_.end(), 0);
        count_ = 0;
    }

    /** Resident bytes of slot storage (footprint accounting). */
    std::size_t
    memoryBytes() const
    {
        return keys_.capacity() * sizeof(K) +
               values_.capacity() * sizeof(V) +
               used_.capacity() * sizeof(std::uint8_t);
    }

    /** Call @p fn(key, value) for every entry (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < used_.size(); ++i) {
            if (used_[i])
                fn(keys_[i], values_[i]);
        }
    }

  private:
    std::size_t slots() const { return keys_.size(); }

    std::size_t
    indexOf(const K &key) const
    {
        return static_cast<std::size_t>(
                   mixHash64(static_cast<std::uint64_t>(key))) &
               mask_;
    }

    void
    rehash(std::size_t min_slots)
    {
        std::size_t cap = 16;
        while (cap < min_slots)
            cap <<= 1;
        std::vector<K> old_keys = std::move(keys_);
        std::vector<V> old_values = std::move(values_);
        std::vector<std::uint8_t> old_used = std::move(used_);
        keys_.assign(cap, K{});
        values_.assign(cap, V{});
        used_.assign(cap, 0);
        mask_ = cap - 1;
        count_ = 0;
        for (std::size_t i = 0; i < old_used.size(); ++i) {
            if (old_used[i])
                insert(old_keys[i], old_values[i]);
        }
    }

    std::vector<K> keys_;
    std::vector<V> values_;
    std::vector<std::uint8_t> used_;
    std::size_t mask_ = 0;
    std::size_t count_ = 0;
};

} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_FLAT_MAP_HH_
