/**
 * @file
 * Heap-allocation accounting by global operator-new replacement.
 *
 * Including this header replaces every replaceable allocation form
 * with a counting wrapper (one relaxed atomic increment per
 * allocation; deletes stay malloc/free compatible), and provides
 * locsim::util::heapAllocCount() to read the running total. The
 * micro_perf benchmarks report it as allocs_per_op and the
 * steady-state allocation tests assert it stays flat across warm
 * simulation windows.
 *
 * The definitions are non-inline replacements of global operators:
 * include this header in EXACTLY ONE translation unit of an
 * executable (it is a tool for dedicated benchmark/test binaries,
 * not a library header).
 */

#ifndef LOCSIM_UTIL_ALLOC_COUNT_HH_
#define LOCSIM_UTIL_ALLOC_COUNT_HH_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace locsim {
namespace util {
namespace alloc_count_detail {

inline std::atomic<std::uint64_t> g_heap_allocs{0};

inline void *
countedAlloc(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}

inline void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (align < sizeof(void *))
        align = sizeof(void *);
    void *p = nullptr;
    if (posix_memalign(&p, align, size ? size : 1) != 0)
        return nullptr;
    return p;
}

} // namespace alloc_count_detail

/** Total heap allocations since process start. */
inline std::uint64_t
heapAllocCount()
{
    return alloc_count_detail::g_heap_allocs.load(
        std::memory_order_relaxed);
}

} // namespace util
} // namespace locsim

void *
operator new(std::size_t size)
{
    if (void *p = locsim::util::alloc_count_detail::countedAlloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return locsim::util::alloc_count_detail::countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return locsim::util::alloc_count_detail::countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    if (void *p = locsim::util::alloc_count_detail::countedAlignedAlloc(
            size, static_cast<std::size_t>(align)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

// GCC pairs the free() below with individual new-expressions it
// inlined and misdiagnoses mismatched-new-delete; with the global
// operators replaced malloc/free-compatibly, the pairing is fine.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif // LOCSIM_UTIL_ALLOC_COUNT_HH_
