/**
 * @file
 * TextTable implementation.
 */

#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace locsim {
namespace util {

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    LOCSIM_ASSERT(!headers_.empty(), "table needs at least one column");
}

TextTable &
TextTable::newRow()
{
    rows_.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(std::string value)
{
    LOCSIM_ASSERT(!rows_.empty(), "cell() before newRow()");
    LOCSIM_ASSERT(rows_.back().size() < headers_.size(),
                  "row has more cells than headers");
    rows_.back().push_back(std::move(value));
    return *this;
}

TextTable &
TextTable::cell(double value, int precision)
{
    return cell(formatDouble(value, precision));
}

TextTable &
TextTable::cell(long long value)
{
    return cell(std::to_string(value));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string text = c < row.size() ? row[c] : "";
            const std::size_t pad = widths[c] - text.size();
            if (c == 0) {
                os << text << std::string(pad, ' ');
            } else {
                os << std::string(pad, ' ') << text;
            }
            os << (c + 1 < headers_.size() ? "  " : "");
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
TextTable::str() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace util
} // namespace locsim
