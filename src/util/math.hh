/**
 * @file
 * Small numerical helpers shared across the library: least-squares
 * line fitting (used to extract application message curves from
 * simulation measurements), root bracketing/bisection (used by the
 * combined-model solver), and a couple of comparison utilities.
 */

#ifndef LOCSIM_UTIL_MATH_HH_
#define LOCSIM_UTIL_MATH_HH_

#include <cstddef>
#include <functional>
#include <span>

namespace locsim {
namespace util {

/** Result of an ordinary least-squares line fit y = slope*x + intercept. */
struct LineFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination in [0, 1]. */
    double r2 = 0.0;
    std::size_t n = 0;
};

/**
 * Fit a least-squares line through (x[i], y[i]).
 *
 * @pre xs.size() == ys.size() and xs.size() >= 2 with non-degenerate x.
 */
LineFit fitLine(std::span<const double> xs, std::span<const double> ys);

/** Approximate floating-point equality with relative + absolute slack. */
bool nearlyEqual(double a, double b, double rel_tol = 1e-9,
                 double abs_tol = 1e-12);

/**
 * Find a root of f on [lo, hi] by bisection.
 *
 * @pre f(lo) and f(hi) have opposite signs (or one of them is zero).
 * @param tol absolute tolerance on the bracket width.
 * @return the midpoint of the final bracket.
 */
double bisect(const std::function<double(double)> &f, double lo,
              double hi, double tol = 1e-12, int max_iter = 200);

/**
 * Solve the quadratic a*x^2 + b*x + c = 0 and return the number of
 * real roots (0, 1, or 2), storing them in ascending order.
 */
int solveQuadratic(double a, double b, double c, double roots[2]);

/** Arithmetic mean of a span; 0 for an empty span. */
double mean(std::span<const double> xs);

} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_MATH_HH_
