/**
 * @file
 * Plain-text table formatting for benchmark harnesses and examples.
 *
 * Every bench binary reproduces one of the paper's tables or figures;
 * TextTable renders the rows in aligned columns so the output can be
 * compared side-by-side with the paper.
 */

#ifndef LOCSIM_UTIL_TABLE_HH_
#define LOCSIM_UTIL_TABLE_HH_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace locsim {
namespace util {

/**
 * A simple column-aligned text table.
 *
 * Cells are strings; numeric convenience overloads format with a fixed
 * precision. Columns are right-aligned except the first, which is
 * left-aligned (matching the layout of the paper's tables).
 */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it. */
    TextTable &newRow();

    /** Append a string cell to the current row. */
    TextTable &cell(std::string value);

    /** Append a formatted floating-point cell. */
    TextTable &cell(double value, int precision = 2);

    /** Append an integer cell. */
    TextTable &cell(long long value);

    /** Render the table to a stream with a header separator line. */
    void print(std::ostream &os) const;

    /** Render the table to a string. */
    std::string str() const;

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper shared with CSV). */
std::string formatDouble(double value, int precision);

} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_TABLE_HH_
