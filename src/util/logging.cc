/**
 * @file
 * Implementation of the logging helpers.
 */

#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace locsim {
namespace util {

namespace {

LogLevel g_level = LogLevel::Inform;

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "silent")
        return LogLevel::Silent;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "inform")
        return LogLevel::Inform;
    if (name == "debug")
        return LogLevel::Debug;
    LOCSIM_FATAL("unknown log level '", name,
                 "' (expected silent, warn, inform, or debug)");
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Silent:
        return "silent";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Inform:
        return "inform";
      case LogLevel::Debug:
        return "debug";
    }
    return "?";
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace util
} // namespace locsim
