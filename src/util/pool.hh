/**
 * @file
 * A generation-checked object pool with freelist recycling.
 *
 * The steady-state simulation loop allocates and releases the same
 * kinds of short-lived transaction objects (message records, MSHRs,
 * home transients) millions of times per run. Heap-allocating them —
 * directly or through node-based containers — costs an allocator
 * round-trip per object and scatters them across the heap. The pool
 * replaces that with index-based handles into chunked storage:
 *
 *  - alloc() pops the freelist (O(1)); only a new occupancy *peak*
 *    grows storage, so after warmup the loop performs zero heap
 *    allocations.
 *  - Slots are recycled WITHOUT destroying the contained object: a
 *    recycled MSHR keeps its deferred-queue capacity, so per-object
 *    sub-allocations are also amortized away. Callers reset the
 *    fields they use.
 *  - Handles carry a generation counter that is bumped on free, so a
 *    stale handle (use-after-free) is caught by an assert instead of
 *    silently reading a recycled object.
 *  - Storage is chunked (fixed power-of-two chunks that never
 *    relocate on growth), so references obtained from get() stay
 *    valid across alloc() — containers indexing the pool may rehash
 *    freely — and slot lookup is two shifts and two loads.
 *
 * Handles are transient runtime names and are never serialized; LSCK
 * checkpoints store pooled objects by value in a deterministic key
 * order and re-allocate them on restore (see DESIGN.md).
 */

#ifndef LOCSIM_UTIL_POOL_HH_
#define LOCSIM_UTIL_POOL_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/logging.hh"

namespace locsim {
namespace util {

template <typename T, std::uint32_t ChunkShiftV = 9>
class Pool
{
  public:
    static constexpr std::uint32_t kNullIndex = 0xffffffffu;

    /** An index + generation pair naming one live pool slot. */
    struct Handle
    {
        std::uint32_t index = kNullIndex;
        std::uint32_t gen = 0;

        bool isNull() const { return index == kNullIndex; }
        bool operator==(const Handle &other) const
        {
            return index == other.index && gen == other.gen;
        }
    };

    /**
     * Acquire a slot. The contained object is in whatever state its
     * previous user left it (recycle-without-destroy); the caller
     * resets the fields it relies on.
     */
    Handle
    alloc()
    {
        std::uint32_t index;
        if (free_head_ != kNullIndex) {
            index = free_head_;
            free_head_ = slot(index).next_free;
        } else {
            index = size_;
            LOCSIM_ASSERT(index != kNullIndex, "pool index overflow");
            if ((index & kChunkMask) == 0)
                chunks_.push_back(
                    std::make_unique<Slot[]>(kChunkSize));
            ++size_;
        }
        Slot &slot = this->slot(index);
        slot.live = true;
        ++live_;
        return Handle{index, slot.gen};
    }

    /** Release a slot; bumps its generation so stale handles assert. */
    void
    free(Handle h)
    {
        Slot &slot = checkedSlot(h);
        slot.live = false;
        ++slot.gen;
        slot.next_free = free_head_;
        free_head_ = h.index;
        --live_;
    }

    T &get(Handle h) { return checkedSlot(h).value; }
    const T &
    get(Handle h) const
    {
        return const_cast<Pool *>(this)->checkedSlot(h).value;
    }

    /** True if @p h names a currently live slot. */
    bool
    valid(Handle h) const
    {
        if (h.index >= size_)
            return false;
        const Slot &s = const_cast<Pool *>(this)->slot(h.index);
        return s.live && s.gen == h.gen;
    }

    std::size_t liveCount() const { return live_; }
    std::size_t capacity() const { return size_; }

    /** Resident bytes of chunk storage (footprint accounting). */
    std::size_t
    memoryBytes() const
    {
        return chunks_.size() * kChunkSize * sizeof(Slot) +
               chunks_.capacity() * sizeof(chunks_[0]);
    }

    /**
     * Release every slot and drop storage (load/reset paths only; all
     * outstanding handles become invalid).
     */
    void
    clear()
    {
        chunks_.clear();
        size_ = 0;
        free_head_ = kNullIndex;
        live_ = 0;
    }

  private:
    struct Slot
    {
        T value{};
        std::uint32_t gen = 0;
        std::uint32_t next_free = kNullIndex;
        bool live = false;
    };

    /** Default 512 slots per chunk: large enough that growth is rare,
     *  small enough that a new peak doesn't over-allocate. Pools with
     *  only a handful of live objects per owner (one per node) pass a
     *  smaller ChunkShiftV so large machines stay compact. */
    static constexpr std::uint32_t kChunkShift = ChunkShiftV;
    static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
    static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

    Slot &
    slot(std::uint32_t index)
    {
        return chunks_[index >> kChunkShift][index & kChunkMask];
    }

    Slot &
    checkedSlot(Handle h)
    {
        LOCSIM_ASSERT(h.index < size_, "pool handle range");
        Slot &slot = this->slot(h.index);
        LOCSIM_ASSERT(slot.live && slot.gen == h.gen,
                      "stale pool handle (generation mismatch)");
        return slot;
    }

    /** Chunked storage: chunks never relocate, so get() references
     *  survive pool growth. */
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::uint32_t size_ = 0;
    std::uint32_t free_head_ = kNullIndex;
    std::size_t live_ = 0;
};

} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_POOL_HH_
