/**
 * @file
 * Minimal CSV output support so bench harnesses can dump machine-
 * readable series (for replotting the paper's figures) alongside the
 * human-readable tables.
 */

#ifndef LOCSIM_UTIL_CSV_HH_
#define LOCSIM_UTIL_CSV_HH_

#include <fstream>
#include <string>
#include <vector>

namespace locsim {
namespace util {

/**
 * Writes rows of values to a CSV file (or any ostream).
 *
 * Values containing commas, quotes, or newlines are quoted per
 * RFC 4180.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Write the header row. */
    void header(const std::vector<std::string> &names);

    /** Append one data row of preformatted strings. */
    void row(const std::vector<std::string> &values);

    /** Append one data row of doubles with the given precision. */
    void rowDoubles(const std::vector<double> &values,
                    int precision = 6);

    /** Escape one field per RFC 4180 (exposed for testing). */
    static std::string escape(const std::string &field);

  private:
    void writeRow(const std::vector<std::string> &values);

    std::ofstream out_;
    std::string path_;
    std::size_t columns_ = 0;
    bool wrote_header_ = false;
};

} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_CSV_HH_
