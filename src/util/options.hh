/**
 * @file
 * A tiny command-line option parser for the examples and bench
 * harnesses. Supports --name value, --name=value, and boolean flags,
 * with typed accessors, defaults, and an auto-generated usage string.
 */

#ifndef LOCSIM_UTIL_OPTIONS_HH_
#define LOCSIM_UTIL_OPTIONS_HH_

#include <map>
#include <string>
#include <vector>

namespace locsim {
namespace util {

/** Declarative command-line option set. */
class OptionParser
{
  public:
    /** @param program short program name, @param summary one-liner. */
    OptionParser(std::string program, std::string summary);

    /** Register a string option. */
    void addString(const std::string &name, const std::string &help,
                   const std::string &default_value);

    /** Register an integer option. */
    void addInt(const std::string &name, const std::string &help,
                long long default_value);

    /** Register a floating-point option. */
    void addDouble(const std::string &name, const std::string &help,
                   double default_value);

    /** Register a boolean flag (default false; presence sets true). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Unknown options or malformed values produce a usage
     * message and a fatal error. "--help" prints usage and exits 0.
     *
     * @return leftover positional arguments.
     */
    std::vector<std::string> parse(int argc, const char *const *argv);

    std::string getString(const std::string &name) const;
    long long getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /**
     * True iff @p name appeared on the command line (vs. holding its
     * default). Lets callers distinguish "--threads 0" (invalid) from
     * the default 0 meaning "auto".
     */
    bool wasSet(const std::string &name) const;

    /** Render the usage/help text. */
    std::string usage() const;

  private:
    enum class Kind { String, Int, Double, Flag };

    struct Option
    {
        Kind kind;
        std::string help;
        std::string value; // current (default or parsed) textual value
        bool parsed = false; // appeared on the command line
    };

    const Option &find(const std::string &name, Kind kind) const;

    std::string program_;
    std::string summary_;
    std::map<std::string, Option> options_;
};

/**
 * The shared observability options, parsed out of an OptionParser by
 * applyObservabilityOptions(). Plain types only so util stays at the
 * bottom of the library stack; callers map these onto
 * machine::MachineConfig / obs::TraceConfig.
 */
struct ObservabilityOptions
{
    /** --trace-out: trace JSON path; empty means tracing off. */
    std::string trace_out;
    /** --trace-detail=flit: record per-flit events and stalls. */
    bool flit_detail = false;
    /** --sample-period: metrics cadence in ticks; 0 disables. */
    long long sample_period = 0;
    /** --run-report: JSON run-manifest path; empty means off. */
    std::string run_report;
};

/**
 * Register --log-level, --trace-out, --trace-detail, --sample-period,
 * and --run-report on @p parser (one shared definition so every
 * binary spells them identically).
 */
void addObservabilityOptions(OptionParser &parser);

/**
 * Read back the options registered by addObservabilityOptions() and
 * apply --log-level globally (setLogLevel). Call after parse().
 * Output paths (--trace-out, --run-report) are validated here: a
 * missing parent directory is fatal at parse time, before any
 * simulation time is spent.
 */
ObservabilityOptions
applyObservabilityOptions(const OptionParser &parser);

/**
 * Fatal unless @p path could be created: its parent directory must
 * exist. Used for output artifacts (--trace-out, --run-report) so
 * typos fail before the run, not after; @p flag names the offender.
 */
void requireWritableParent(const std::string &path,
                           const std::string &flag);

} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_OPTIONS_HH_
