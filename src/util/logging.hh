/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (simulator bugs, aborts the process), fatal() is for user
 * errors (bad configuration, exits cleanly with an error code), warn()
 * and inform() report conditions that do not stop the run.
 */

#ifndef LOCSIM_UTIL_LOGGING_HH_
#define LOCSIM_UTIL_LOGGING_HH_

#include <sstream>
#include <string>

namespace locsim {
namespace util {

/** Verbosity levels for status messages. */
enum class LogLevel {
    Silent,  //!< suppress everything except panic/fatal
    Warn,    //!< warnings only
    Inform,  //!< warnings and informational messages
    Debug,   //!< everything, including debug traces
};

/** Set the global verbosity threshold for warn/inform/debug messages. */
void setLogLevel(LogLevel level);

/** Get the current global verbosity threshold. */
LogLevel logLevel();

/**
 * Parse a level name ("silent", "warn", "inform", "debug"); fatal on
 * anything else. Used by the shared --log-level command-line option.
 */
LogLevel parseLogLevel(const std::string &name);

/** Stable lower-case name of a level. */
const char *logLevelName(LogLevel level);

namespace detail {

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 *
 * Use for conditions that can only arise from a bug in locsim itself,
 * never from user input.
 */
#define LOCSIM_PANIC(...)                                                 \
    ::locsim::util::detail::panicImpl(                                    \
        __FILE__, __LINE__, ::locsim::util::detail::concat(__VA_ARGS__))

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit with a non-zero status.
 */
#define LOCSIM_FATAL(...)                                                 \
    ::locsim::util::detail::fatalImpl(                                    \
        __FILE__, __LINE__, ::locsim::util::detail::concat(__VA_ARGS__))

/** Warn about suspicious but survivable conditions. */
#define LOCSIM_WARN(...)                                                  \
    ::locsim::util::detail::warnImpl(                                     \
        ::locsim::util::detail::concat(__VA_ARGS__))

/** Emit a normal informational status message. */
#define LOCSIM_INFORM(...)                                                \
    ::locsim::util::detail::informImpl(                                   \
        ::locsim::util::detail::concat(__VA_ARGS__))

/** Emit a debug trace message (only at LogLevel::Debug). */
#define LOCSIM_DEBUG(...)                                                 \
    ::locsim::util::detail::debugImpl(                                    \
        ::locsim::util::detail::concat(__VA_ARGS__))

/**
 * Assert an invariant with a formatted message; active in all build
 * types (model and protocol invariants are cheap relative to the work
 * they guard).
 */
#define LOCSIM_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            LOCSIM_PANIC("assertion failed: " #cond " ", __VA_ARGS__);    \
        }                                                                 \
    } while (0)

} // namespace util
} // namespace locsim

#endif // LOCSIM_UTIL_LOGGING_HH_
