/**
 * @file
 * Batched lockstep multi-simulation: K independent machines of the
 * same topology shape advancing together through one hot loop.
 *
 * The paper's studies are sweeps of independent simulations differing
 * only in seed, mapping, or context count on one topology shape. A
 * MachineBatch runs K of them as lanes of a single execution: all
 * lanes register their components with one set of shard engines and
 * draw their links from one pair of lane-striped SoA stores
 * (net::LinkStores), so the engine's clocked scan, dirty-channel
 * rotation, and quiescence machinery run once over the whole batch.
 * The same logical channel of every lane occupies adjacent bits of
 * one dirty word (ids are allocated lane-strided), so a congested
 * link rotates for all K lanes in one word-drain.
 *
 * Batching is an execution detail, invisible to results: lanes share
 * no simulation state, so each lane's statistics, sampled series, and
 * checkpoints are bit-identical to the same configuration run solo
 * (locked in by tests/batch_test.cc). The one observable-in-principle
 * difference is quiescence: the shared engine skips only when every
 * lane is idle, so a lane that could have skipped is instead stepped
 * through its idle stretch — which Reference-mode equivalence already
 * proves is behaviour-preserving, and skipped ticks are credited
 * identically either way.
 *
 * Requirements on the lanes: identical topology shape (radix, dims,
 * wraparound), clock ratio, router configuration, stepping mode, and
 * resolved shard count — everything that shapes the shared engines
 * and stores. Workload, mapping, context count, and sampling may vary
 * per lane. Tracing is incompatible (a tracer is per engine, and the
 * engines are shared).
 */

#ifndef LOCSIM_MACHINE_BATCH_HH_
#define LOCSIM_MACHINE_BATCH_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "machine/machine.hh"

namespace locsim {
namespace machine {

/** One lane of a batch: a machine configuration plus its mapping. */
struct BatchLaneSpec
{
    MachineConfig config;
    workload::Mapping mapping;
};

/** K same-shape machines advancing in lockstep over shared engines
 *  and lane-striped link stores. */
class MachineBatch : private sim::LockstepSerial
{
  public:
    /** Fatal on an empty batch or non-uniform lane shapes. */
    explicit MachineBatch(const std::vector<BatchLaneSpec> &specs);
    ~MachineBatch();

    MachineBatch(const MachineBatch &) = delete;
    MachineBatch &operator=(const MachineBatch &) = delete;

    int lanes() const { return static_cast<int>(machines_.size()); }
    Machine &lane(int l) { return *machines_[static_cast<std::size_t>(l)]; }

    /** Resolved shard count shared by every lane. */
    int shards() const { return static_cast<int>(engines_.size()); }

    /** Advance every lane @p cycles processor cycles. */
    void advance(std::uint64_t cycles);

    /** Reset stats, advance @p window processor cycles, and report
     *  one Measurement per lane (indexed like the specs). */
    std::vector<Measurement> measure(std::uint64_t window);

    /** advance(warmup) + measure(window). */
    std::vector<Measurement> run(std::uint64_t warmup,
                                 std::uint64_t window);

    /**
     * Restore every lane from per-lane solo checkpoint images (see
     * Machine::saveCheckpoint). All images must be at the same
     * timeline position — lanes share engines, and the shared
     * timeline is restored once before any lane's components re-arm
     * their wakeups. Must be called before any advance.
     *
     * @throws std::runtime_error on malformed or mismatched images.
     */
    void restoreCheckpoints(
        const std::vector<std::vector<std::uint8_t>> &images);

  private:
    void runTicks(sim::Tick ticks);

    // sim::LockstepSerial: the batch's serial work is every lane's
    // sampler, each with its own due schedule.
    bool serialDue(sim::Tick now) const override;
    void serialTick(sim::Tick now) override;
    void serialSkip(sim::Tick target) override;

    std::vector<std::unique_ptr<sim::Engine>> owned_engines_;
    std::vector<sim::Engine *> engines_;
    std::unique_ptr<net::LinkStores> stores_;
    std::unique_ptr<runner::ThreadPool> shard_pool_;
    std::vector<std::unique_ptr<Machine>> machines_;
    bool reference_ = false;
    std::uint32_t ratio_ = 1;
    /** Head lane's profiler (shared-phase wiring; may be null). */
    obs::Profiler *profiler_ = nullptr;
};

} // namespace machine
} // namespace locsim

#endif // LOCSIM_MACHINE_BATCH_HH_
