/**
 * @file
 * MachineBatch implementation.
 */

#include "machine/batch.hh"

#include <stdexcept>

#include "obs/counters.hh"
#include "util/logging.hh"

namespace locsim {
namespace machine {

namespace {

sim::NodeId
nodeCountFor(const MachineConfig &config)
{
    sim::NodeId nodes = 1;
    for (int d = 0; d < config.dims; ++d)
        nodes *= static_cast<sim::NodeId>(config.radix);
    return nodes;
}

/**
 * Everything that shapes the shared engines and link stores must be
 * uniform across the batch; anything else (workload, mapping,
 * contexts, sampling) may vary per lane. Mirrors the --shards
 * validation style: nonsense is fatal with a message naming the
 * offending lane.
 */
void
validateSpecs(const std::vector<BatchLaneSpec> &specs)
{
    if (specs.empty())
        LOCSIM_FATAL("batch needs at least one lane");
    const MachineConfig &head = specs.front().config;
    const int shards =
        Machine::resolveShardCount(head, nodeCountFor(head));
    for (std::size_t l = 0; l < specs.size(); ++l) {
        const MachineConfig &c = specs[l].config;
        if (c.radix != head.radix || c.dims != head.dims ||
            c.wraparound != head.wraparound) {
            LOCSIM_FATAL(
                "batch lanes must share one topology shape: lane ", l,
                " is ", c.radix, "^", c.dims,
                (c.wraparound ? " torus" : " mesh"), ", lane 0 is ",
                head.radix, "^", head.dims,
                (head.wraparound ? " torus" : " mesh"));
        }
        if (c.net_clock_ratio != head.net_clock_ratio) {
            LOCSIM_FATAL("batch lanes must share one network clock "
                         "ratio: lane ",
                         l, " has ", c.net_clock_ratio, ", lane 0 has ",
                         head.net_clock_ratio);
        }
        if (c.router.vcs != head.router.vcs ||
            c.router.buffer_depth != head.router.buffer_depth) {
            LOCSIM_FATAL("batch lanes must share one router "
                         "configuration (vcs, buffer depth): lane ",
                         l, " differs from lane 0");
        }
        if (c.reference_stepping != head.reference_stepping) {
            LOCSIM_FATAL("batch lanes must share one stepping mode: "
                         "lane ",
                         l, " differs from lane 0");
        }
        if (Machine::resolveShardCount(c, nodeCountFor(c)) != shards) {
            LOCSIM_FATAL("batch lanes must resolve to one shard "
                         "count: lane ",
                         l, " differs from lane 0 (", shards, ")");
        }
        if (c.trace.enabled) {
            LOCSIM_FATAL("tracing is incompatible with batched "
                         "execution (tracers are per engine, and "
                         "batch lanes share engines): lane ",
                         l);
        }
    }
}

} // namespace

MachineBatch::MachineBatch(const std::vector<BatchLaneSpec> &specs)
{
    validateSpecs(specs);
    const MachineConfig &head = specs.front().config;
    const sim::NodeId nodes = nodeCountFor(head);
    const int shards = Machine::resolveShardCount(head, nodes);
    const int lanes = static_cast<int>(specs.size());
    reference_ = head.reference_stepping;
    ratio_ = head.net_clock_ratio;

    for (int s = 0; s < shards; ++s) {
        owned_engines_.push_back(std::make_unique<sim::Engine>());
        engines_.push_back(owned_engines_.back().get());
    }
    stores_ = std::make_unique<net::LinkStores>(
        head.router.buffer_depth + 2, head.router.vcs, shards, lanes);
    // Once, for the whole batch: the per-shard rotators are shared by
    // every lane's channels (Network skips registration when handed
    // shared stores).
    stores_->registerRotators(engines_);
    if (shards > 1)
        shard_pool_ =
            std::make_unique<runner::ThreadPool>(shards - 1);

    // Lanes share engines, so the shared phases (dispatch, rotation,
    // quiescence, barrier waits) are wired once from the head lane's
    // profiler; per-lane machines attach only their own components.
    profiler_ = head.profiler;
    if (profiler_ != nullptr) {
        for (int s = 0; s < shards; ++s)
            engines_[static_cast<std::size_t>(s)]->setProfiler(
                &profiler_->slot(s, 0));
    }

    BatchContext context;
    context.engines = engines_;
    context.stores = stores_.get();
    machines_.reserve(specs.size());
    for (int l = 0; l < lanes; ++l) {
        stores_->beginLane(l);
        context.lane = l;
        machines_.push_back(std::make_unique<Machine>(
            specs[static_cast<std::size_t>(l)].config,
            specs[static_cast<std::size_t>(l)].mapping, &context));
        // Uniform shapes must allocate identical channel structures;
        // a mismatch here means the lane-striding invariant (logical
        // channel c of lane l at id c*stride+l, stride = bit_ceil of
        // the lane count) is broken.
        LOCSIM_ASSERT(
            stores_->flits.laneChannels(l) ==
                    stores_->flits.laneChannels(0) &&
                stores_->credits.laneChannels(l) ==
                    stores_->credits.laneChannels(0),
            "batch lanes allocated differing channel counts");
    }
}

MachineBatch::~MachineBatch()
{
    // The lanes' shared engines: skipped ticks are published once for
    // the whole batch (the per-lane Machine dtors skip them).
    sim::Tick skipped = 0;
    for (const sim::Engine *engine : engines_)
        skipped += engine->skippedTicks();
    obs::CounterRegistry::process().add(
        "sim.skipped_ticks", static_cast<std::uint64_t>(skipped));
    // Machines must release the shared engines/stores before they do.
    machines_.clear();
}

void
MachineBatch::runTicks(sim::Tick ticks)
{
    if (engines_.size() == 1) {
        // The batched hot loop for the common case: one engine whose
        // clocked list and dirty words span every lane.
        engines_.front()->run(ticks);
        return;
    }
    if (ticks == 0)
        return;
    // Trace spans need not be emitted around the lockstep window:
    // batched lanes cannot trace.
    sim::runLockstep(engines_, *shard_pool_, ticks, reference_, this,
                     profiler_);
}

bool
MachineBatch::serialDue(sim::Tick now) const
{
    for (const auto &machine : machines_) {
        if (machine->serialSampleDue(now))
            return true;
    }
    return false;
}

void
MachineBatch::serialTick(sim::Tick now)
{
    for (auto &machine : machines_) {
        if (machine->serialSampleDue(now))
            machine->serialSampleTick(now);
    }
}

void
MachineBatch::serialSkip(sim::Tick target)
{
    for (auto &machine : machines_)
        machine->serialSampleSkip(target);
}

void
MachineBatch::advance(std::uint64_t cycles)
{
    runTicks(cycles * ratio_);
}

std::vector<Measurement>
MachineBatch::measure(std::uint64_t window)
{
    for (auto &machine : machines_)
        machine->beginMeasurement();
    runTicks(window * ratio_);
    std::vector<Measurement> results;
    results.reserve(machines_.size());
    for (const auto &machine : machines_)
        results.push_back(machine->collectMeasurement());
    return results;
}

std::vector<Measurement>
MachineBatch::run(std::uint64_t warmup, std::uint64_t window)
{
    advance(warmup);
    return measure(window);
}

void
MachineBatch::restoreCheckpoints(
    const std::vector<std::vector<std::uint8_t>> &images)
{
    LOCSIM_ASSERT(images.size() == machines_.size(),
                  "one checkpoint image per lane");
    LOCSIM_ASSERT(engines_.front()->now() == 0,
                  "restoreCheckpoints requires a fresh batch");
    for (const auto &machine : machines_) {
        LOCSIM_ASSERT(machine->sampler_ == nullptr,
                      "cannot restore with sampling on");
    }

    // Parse every header first: the shared timeline can only be
    // restored to one position.
    std::vector<util::Deserializer> streams;
    streams.reserve(images.size());
    sim::Tick now = 0;
    for (std::size_t l = 0; l < images.size(); ++l) {
        streams.emplace_back(images[l]);
        const sim::Tick lane_now =
            Machine::parseCheckpointHeader(streams.back());
        if (l == 0) {
            now = lane_now;
        } else if (lane_now != now) {
            throw std::runtime_error(
                "checkpoint: lane images disagree on the timeline "
                "position");
        }
    }
    // Timeline once per shared engine, before ANY lane's controllers
    // re-arm their event-queue wakeups during component restore.
    for (sim::Engine *engine : engines_)
        engine->restoreTime(now, 0);
    for (std::size_t l = 0; l < images.size(); ++l)
        machines_[l]->restoreComponents(streams[l]);
}

} // namespace machine
} // namespace locsim
