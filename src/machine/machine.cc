/**
 * @file
 * Machine implementation, including the sharded lockstep driver.
 */

#include "machine/machine.hh"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <string>

#include "obs/counters.hh"
#include "sim/barrier.hh"
#include "util/logging.hh"

namespace locsim {
namespace machine {

namespace {

/**
 * Resolve MachineConfig::shards against the machine size: explicit
 * values are validated (fatal on nonsense), 0 consults LOCSIM_SHARDS
 * (clamped to the node count so small test machines still run under
 * an env-forced shard count), default 1.
 */
int
resolveShards(const MachineConfig &config, sim::NodeId nodes)
{
    const int node_count = static_cast<int>(nodes);
    if (config.shards != 0) {
        if (config.shards < 1)
            LOCSIM_FATAL("shards must be positive, got ",
                         config.shards);
        if (config.shards > node_count)
            LOCSIM_FATAL("shards (", config.shards,
                         ") exceeds the node count (", node_count,
                         "); each shard needs at least one node");
        return config.shards;
    }
    if (const char *env = std::getenv("LOCSIM_SHARDS")) {
        const int parsed = std::atoi(env);
        if (parsed >= 1)
            return std::min(parsed, node_count);
    }
    return 1;
}

} // namespace

int
Machine::resolveShardCount(const MachineConfig &config,
                           sim::NodeId nodes)
{
    return resolveShards(config, nodes);
}

Machine::Machine(const MachineConfig &config,
                 const workload::Mapping &mapping)
    : Machine(config, mapping, nullptr)
{
}

Machine::Machine(const MachineConfig &config,
                 const workload::Mapping &mapping,
                 const BatchContext *batch)
    : config_(config), mapping_(mapping)
{
    LOCSIM_ASSERT(config.contexts >= 1 &&
                      config.contexts <=
                          static_cast<int>(workload::kMaxInstances),
                  "context count out of range");
    LOCSIM_ASSERT(config.net_clock_ratio >= 1, "bad clock ratio");

    sim::NodeId nodes = 1;
    for (int d = 0; d < config.dims; ++d)
        nodes *= static_cast<sim::NodeId>(config.radix);

    if (batch != nullptr) {
        batched_ = true;
        lane_ = batch->lane;
        engines_ = batch->engines;
        shards_ = static_cast<int>(engines_.size());
        LOCSIM_ASSERT(batch->stores != nullptr,
                      "batch context needs link stores");
        LOCSIM_ASSERT(resolveShards(config, nodes) == shards_,
                      "batch engine count does not match the lane's "
                      "resolved shard count");
        LOCSIM_ASSERT(!config.trace.enabled,
                      "batched machines cannot trace");
    } else {
        shards_ = resolveShards(config, nodes);
        for (int s = 0; s < shards_; ++s) {
            owned_engines_.push_back(std::make_unique<sim::Engine>());
            engines_.push_back(owned_engines_.back().get());
        }
    }
    if (config.reference_stepping) {
        for (sim::Engine *engine : engines_)
            engine->setStepMode(sim::Engine::StepMode::Reference);
    }

    net::NetworkConfig net_config;
    net_config.radix = config.radix;
    net_config.dims = config.dims;
    net_config.wraparound = config.wraparound;
    net_config.router = config.router;
    const net::ShardPlan plan =
        net::ShardPlan::contiguous(nodes, shards_);
    network_ = std::make_unique<net::Network>(
        net_config, engines_, plan,
        batch != nullptr ? batch->stores : nullptr);

    const net::TorusTopology &topo = network_->topology();
    LOCSIM_ASSERT(mapping_.size() == topo.nodeCount(),
                  "mapping size must match the machine size");

    proc::ProcessorConfig proc_config = config.processor;
    proc_config.contexts = config.contexts;

    // Pass 1: build node components into pre-sized slots. Building a
    // node only reads shared state (engine/network/topology/mapping
    // references, config), so large machines fan the construction out
    // over a thread pool; the slot indexing makes the result identical
    // to sequential construction.
    controllers_.resize(nodes);
    processors_.resize(nodes);
    programs_.resize(static_cast<std::size_t>(nodes) *
                     static_cast<std::size_t>(config.contexts));
    const auto buildNode = [&](sim::NodeId node) {
        sim::Engine &shard_engine =
            *engines_[static_cast<std::size_t>(plan.shardOf(node))];
        controllers_[node] = std::make_unique<coher::CacheController>(
            shard_engine, *network_, node, config.protocol,
            config.net_clock_ratio);

        std::vector<proc::ThreadProgram *> node_programs;
        const std::uint32_t thread = mapping_.threadAt(node);
        for (int ctx = 0; ctx < config.contexts; ++ctx) {
            const auto instance = static_cast<std::uint32_t>(ctx);
            const std::size_t slot =
                static_cast<std::size_t>(node) *
                    static_cast<std::size_t>(config.contexts) +
                static_cast<std::size_t>(ctx);
            switch (config.workload) {
              case WorkloadKind::TorusNeighbor:
                programs_[slot] =
                    std::make_unique<workload::TorusNeighborProgram>(
                        topo, mapping_, instance, thread, config.app);
                break;
              case WorkloadKind::UniformRandom:
                programs_[slot] =
                    std::make_unique<workload::UniformRemoteProgram>(
                        topo, mapping_, instance, thread,
                        config.uniform_app);
                break;
              case WorkloadKind::Graph:
                LOCSIM_ASSERT(config.graph != nullptr,
                              "Graph workload needs a CommGraph");
                programs_[slot] =
                    std::make_unique<workload::GraphNeighborProgram>(
                        *config.graph, mapping_, instance, thread,
                        config.app);
                break;
            }
            node_programs.push_back(programs_[slot].get());
        }
        processors_[node] = std::make_unique<proc::Processor>(
            *controllers_[node], proc_config, node_programs);
    };

    // Spinning up a build pool costs more than building a small
    // machine outright; only large radixes take the parallel path.
    constexpr sim::NodeId kParallelBuildNodes = 1024;
    if (nodes >= kParallelBuildNodes) {
        runner::ThreadPool build_pool;
        const int lanes = build_pool.threadCount() + 1;
        build_pool.parallelRegion(lanes, [&](int lane) {
            const auto first = static_cast<sim::NodeId>(
                (static_cast<std::uint64_t>(nodes) *
                 static_cast<std::uint64_t>(lane)) /
                static_cast<std::uint64_t>(lanes));
            const auto last = static_cast<sim::NodeId>(
                (static_cast<std::uint64_t>(nodes) *
                 static_cast<std::uint64_t>(lane + 1)) /
                static_cast<std::uint64_t>(lanes));
            for (sim::NodeId node = first; node < last; ++node)
                buildNode(node);
        });
    } else {
        for (sim::NodeId node = 0; node < nodes; ++node)
            buildNode(node);
    }

    // Pass 2 — registration, strictly sequential. Per shard: the
    // fabric slice first (period 1), then that shard's node
    // components. Registration order is the intra-tick call order and
    // must be the same whatever the shard count or build path:
    // network, then controller/processor in node order.
    for (int s = 0; s < shards_; ++s) {
        sim::Engine &shard_engine = *engines_[s];
        if (shards_ == 1)
            shard_engine.addClocked(network_.get(), 1);
        else
            shard_engine.addClocked(network_->shardClocked(s), 1);

        for (sim::NodeId node = plan.first(s); node < plan.last(s);
             ++node) {
            shard_engine.addClocked(controllers_[node].get(),
                                    config.net_clock_ratio);
            shard_engine.addClocked(processors_[node].get(),
                                    config.net_clock_ratio);
        }
    }

    if (shards_ > 1 && !batched_)
        shard_pool_ =
            std::make_unique<runner::ThreadPool>(shards_ - 1);

    if (config.profiler != nullptr) {
        // Shared phases (dispatch, rotation, quiescence) belong to
        // the shard, not the lane: a solo machine owns its engines and
        // wires them here; batched lanes share engines, which the
        // MachineBatch wires once itself. Per-component phases
        // (router scan, coherence) carry this machine's lane so
        // batched lanes stay separable.
        if (!batched_) {
            for (int s = 0; s < shards_; ++s) {
                engines_[static_cast<std::size_t>(s)]->setProfiler(
                    &config.profiler->slot(s, 0));
            }
        }
        network_->setProfiler(config.profiler, lane_);
        for (int s = 0; s < shards_; ++s) {
            for (sim::NodeId node = plan.first(s); node < plan.last(s);
                 ++node) {
                controllers_[node]->setProfiler(
                    &config.profiler->slot(s, lane_));
            }
        }
    }

    if (config.trace.enabled) {
        // One tracer shard per simulation shard so emission stays
        // thread-local; with one shard this produces exactly the old
        // single-tracer track order.
        shard_tracers_.reserve(static_cast<std::size_t>(shards_));
        coher_bridges_.reserve(nodes);
        for (int s = 0; s < shards_; ++s) {
            auto tracer = std::make_shared<obs::Tracer>(config.trace);
            engines_[s]->setTracer(tracer.get(),
                                   tracer->newTrack("engine"));
            network_->setShardTracer(s, tracer.get());
            for (sim::NodeId node = plan.first(s);
                 node < plan.last(s); ++node) {
                coher_bridges_.push_back(
                    std::make_unique<coher::ObsTracerBridge>(
                        *tracer,
                        tracer->newTrack("coher." +
                                         std::to_string(node))));
                controllers_[node]->setTracer(
                    coher_bridges_.back().get());
                processors_[node]->setTracer(
                    tracer.get(),
                    tracer->newTrack("proc." + std::to_string(node)),
                    config.net_clock_ratio);
            }
            shard_tracers_.push_back(std::move(tracer));
        }
        tracer_ = shard_tracers_.front();
    }

    if (config.sample_period > 0) {
        sampler_ =
            std::make_unique<obs::MetricsSampler>(config.sample_period);
        net::Network *net = network_.get();
        const double node_count = static_cast<double>(nodes);
        const double channels =
            node_count * 2.0 * static_cast<double>(config.dims);
        sampler_->addGauge("buffered_flits", [net] {
            return static_cast<double>(net->bufferedFlits());
        });
        // rho: flit-hops per channel per cycle over the sample window.
        sampler_->addRate(
            "rho",
            [net] {
                return static_cast<double>(
                    net->totalNeighborFlitHops());
            },
            1.0 / channels);
        // r_m: messages submitted per node per network cycle.
        sampler_->addRate(
            "r_m",
            [net] {
                return static_cast<double>(
                    net->stats().messages_sent);
            },
            1.0 / node_count);
        sampler_->addRate("alloc_stalls", [net] {
            return static_cast<double>(net->totalAllocStalls());
        });
        // T_m: mean network latency of messages delivered during the
        // sample window.
        sampler_->addMean(
            "T_m", [net] { return net->stats().latency.sum(); },
            [net] {
                return static_cast<double>(
                    net->stats().latency.count());
            });
        if (tracer_ != nullptr)
            sampler_->attachTracer(tracer_.get());
        if (shards_ == 1) {
            engines_.front()->addClocked(sampler_.get(),
                                         config.sample_period);
        }
        // With several shards the driver ticks the sampler itself at
        // the serial point of each window (it probes whole-fabric
        // state); next_sample_due_ starts at 0 like the sampler's own
        // schedule.
    }
}

Machine::~Machine()
{
    // Publish execution diagnostics into the process counter registry
    // on teardown (off every hot path). Batched lanes share engines,
    // so their skipped-tick totals are published once by the
    // MachineBatch instead.
    obs::CounterRegistry &counters = obs::CounterRegistry::process();
    if (!batched_) {
        sim::Tick skipped = 0;
        for (const sim::Engine *engine : engines_)
            skipped += engine->skippedTicks();
        counters.add("sim.skipped_ticks",
                     static_cast<std::uint64_t>(skipped));
    }
    counters.add("net.alloc_stalls", network_->totalAllocStalls());
    counters.add("net.remote_wakes", network_->totalRemoteWakes());
    if (!controllers_.empty()) {
        counters.set("mem.bytes_per_node",
                     static_cast<std::uint64_t>(memoryBytes()) /
                         controllers_.size());
    }
}

std::size_t
Machine::memoryBytes() const
{
    std::size_t bytes = network_->memoryBytes();
    for (const auto &controller : controllers_)
        bytes += controller->memoryBytes();
    for (const auto &processor : processors_)
        bytes += processor->memoryBytes();
    return bytes;
}

double
Machine::mappingDistance() const
{
    return mapping_.averageNeighborDistance(network_->topology());
}

coher::CacheController &
Machine::controller(sim::NodeId node)
{
    return *controllers_[node];
}

const workload::TorusNeighborProgram &
Machine::program(sim::NodeId node, int context) const
{
    const auto *program =
        dynamic_cast<const workload::TorusNeighborProgram *>(
            programs_[node * static_cast<sim::NodeId>(
                                 config_.contexts) +
                      static_cast<sim::NodeId>(context)]
                .get());
    LOCSIM_ASSERT(program != nullptr,
                  "program() requires the torus-neighbour workload");
    return *program;
}

void
Machine::resetStats()
{
    network_->resetStats();
    for (auto &controller : controllers_)
        controller->stats() = coher::ControllerStats{};
    for (auto &processor : processors_)
        processor->resetStats();
    // After the network counters so the rate windows re-prime from
    // the post-reset values.
    if (sampler_ != nullptr)
        sampler_->clearSamples();
}

void
Machine::writeTrace(std::ostream &os) const
{
    LOCSIM_ASSERT(tracer_ != nullptr,
                  "writeTrace requires config.trace.enabled");
    if (shards_ == 1) {
        tracer_->write(os);
        return;
    }
    std::vector<const obs::Tracer *> shards;
    std::vector<std::string> names;
    for (int s = 0; s < shards_; ++s) {
        shards.push_back(shard_tracers_[static_cast<std::size_t>(s)]
                             .get());
        names.push_back("shard" + std::to_string(s));
    }
    obs::writeMergedTrace(os, shards, names);
}

Measurement
Machine::run(std::uint64_t warmup, std::uint64_t window)
{
    advance(warmup);
    return measure(window);
}

void
Machine::runTicks(sim::Tick ticks)
{
    if (batched_) {
        LOCSIM_FATAL(
            "batched machine driven directly; lanes share engines, "
            "so run/advance/measure must go through the MachineBatch");
    }
    if (shards_ == 1) {
        engines_.front()->run(ticks);
        return;
    }
    if (ticks == 0)
        return;
    runSharded(ticks);
}

bool
Machine::serialSampleDue(sim::Tick now) const
{
    return sampler_ != nullptr && now == next_sample_due_;
}

void
Machine::serialSampleTick(sim::Tick now)
{
    LOCSIM_ASSERT(serialSampleDue(now), "sampler tick when not due");
    sampler_->tick(next_sample_due_);
    next_sample_due_ += sampler_->period();
}

void
Machine::serialSampleSkip(sim::Tick target)
{
    if (sampler_ == nullptr || next_sample_due_ >= target)
        return;
    // Credit samples skipped by a quiescence jump, with the same
    // arithmetic Engine::jumpIdleTo applies to registered components.
    const sim::Tick period = sampler_->period();
    const sim::Tick skipped =
        (target - next_sample_due_ + period - 1) / period;
    sampler_->skipIdle(skipped);
    next_sample_due_ += skipped * period;
}

void
Machine::runSharded(sim::Tick ticks)
{
    const int shards = shards_;
    const sim::Tick start = engines_.front()->now();

    std::vector<sim::Tick> &skipped_before = shard_skipped_scratch_;
    skipped_before.resize(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s)
        skipped_before[static_cast<std::size_t>(s)] =
            engines_[static_cast<std::size_t>(s)]->skippedTicks();

    sim::runLockstep(engines_, *shard_pool_, ticks,
                     config_.reference_stepping, this,
                     config_.profiler);

    for (int s = 0; s < shards; ++s)
        engines_[static_cast<std::size_t>(s)]->emitRunSpan(
            start, skipped_before[static_cast<std::size_t>(s)]);
}

void
Machine::advance(std::uint64_t cycles)
{
    runTicks(cycles * config_.net_clock_ratio);
}

Measurement
Machine::measure(std::uint64_t window)
{
    beginMeasurement();
    runTicks(window * config_.net_clock_ratio);
    return collectMeasurement();
}

void
Machine::beginMeasurement()
{
    resetStats();
    measure_start_ = engines_.front()->now();
}

Measurement
Machine::collectMeasurement() const
{
    const std::uint64_t ratio = config_.net_clock_ratio;
    const sim::Tick elapsed_ticks =
        engines_.front()->now() - measure_start_;
    // runTicks advances exactly window * ratio ticks, so the window
    // in processor cycles is recoverable from the timeline.
    const std::uint64_t window = elapsed_ticks / ratio;
    const double elapsed = static_cast<double>(elapsed_ticks);

    Measurement m;
    m.window = elapsed;

    const double nodes =
        static_cast<double>(network_->topology().nodeCount());

    stats::Accumulator txn_latency, critical;
    std::uint64_t txns = 0, hits = 0, accesses = 0;
    for (const auto &controller : controllers_) {
        const coher::ControllerStats &cs = controller->stats();
        txns += cs.transactions.value();
        txn_latency.merge(cs.txn_latency);
        critical.merge(cs.critical_messages);
        hits += cs.hits.value();
        accesses += cs.loads.value() + cs.stores.value();
    }
    std::uint64_t idle_cycles = 0, switch_cycles = 0;
    for (const auto &processor : processors_) {
        idle_cycles += processor->stats().idle_cycles.value();
        switch_cycles += processor->stats().switch_cycles.value();
    }
    // Busy processor cycles: everything except memory stalls and
    // context switches. This is the effective per-transaction run
    // length the application model calls T_r (it includes issue and
    // resume overhead and hit service, which are useful work from
    // the model's perspective).
    const std::uint64_t total_proc_cycles =
        window * network_->topology().nodeCount();
    const std::uint64_t busy_cycles =
        total_proc_cycles - idle_cycles - switch_cycles;

    const net::NetworkStats &ns = network_->stats();
    m.transactions = txns;
    m.messages = ns.messages_sent;

    if (txns > 0) {
        m.inter_txn_time = elapsed * nodes / static_cast<double>(txns);
        m.txn_rate = 1.0 / m.inter_txn_time;
        m.txn_latency = txn_latency.mean();
        m.messages_per_txn =
            static_cast<double>(m.messages) / static_cast<double>(txns);
        m.critical_messages = critical.mean();
        m.run_length = static_cast<double>(busy_cycles) *
                       static_cast<double>(ratio) /
                       static_cast<double>(txns);
        m.switch_overhead = static_cast<double>(switch_cycles) *
                            static_cast<double>(ratio) /
                            static_cast<double>(txns);
    }
    if (m.messages > 0) {
        m.inter_message_time =
            elapsed * nodes / static_cast<double>(m.messages);
        m.message_rate = 1.0 / m.inter_message_time;
        m.message_latency = ns.latency.mean();
        m.message_latency_p50 = ns.latency_hist.quantile(0.5);
        m.message_latency_p95 = ns.latency_hist.quantile(0.95);
        m.source_queue_wait = ns.source_queue.mean();
        m.avg_hops = ns.hops.mean();
    }
    m.utilization = network_->channelUtilization();
    m.fitted_fixed_overhead =
        m.txn_latency - m.critical_messages * m.message_latency;
    if (accesses > 0) {
        m.hit_rate =
            static_cast<double>(hits) / static_cast<double>(accesses);
    }

    m.avg_flits = ns.flits.mean();
    m.attribution = ns.attribution;

    std::uint64_t iterations = 0, violations = 0;
    for (const auto &program : programs_) {
        if (const auto *torus =
                dynamic_cast<const workload::TorusNeighborProgram *>(
                    program.get())) {
            iterations += torus->iterations();
            violations += torus->violations();
        } else if (const auto *graph_app = dynamic_cast<
                       const workload::GraphNeighborProgram *>(
                       program.get())) {
            iterations += graph_app->iterations();
            violations += graph_app->violations();
        }
    }
    m.iterations = iterations;
    m.violations = violations;
    return m;
}

namespace {

/** Checkpoint framing: magic + layout version. Bump the version on
 *  any change to the serialized layout of any component. Version 2:
 *  shard-independent images (per-node message sequence numbers in the
 *  network endpoint block, no transport block). Version 3: drop the
 *  skipped-ticks field — it is an execution-strategy diagnostic (a
 *  batched lane skips less than the same run solo), and serializing
 *  it made otherwise-identical images differ. */
constexpr std::uint32_t kCheckpointMagic = 0x4b43534c; // "LSCK"
constexpr std::uint32_t kCheckpointVersion = 3;

} // namespace

std::uint32_t
checkpointFormatVersion()
{
    return kCheckpointVersion;
}

std::vector<std::uint8_t>
Machine::saveCheckpoint() const
{
    obs::ScopedPhase profile(
        config_.profiler != nullptr
            ? &config_.profiler->slot(0, lane_)
            : nullptr,
        obs::Phase::CheckpointSave);

    LOCSIM_ASSERT(tracer_ == nullptr && sampler_ == nullptr,
                  "cannot checkpoint with tracing or sampling on");

    util::Serializer s;
    s.put(kCheckpointMagic);
    s.put(kCheckpointVersion);
    s.put(engines_.front()->now());
    network_->saveState(s);
    for (const auto &controller : controllers_)
        controller->saveState(s);
    for (const auto &processor : processors_)
        processor->saveState(s);
    for (const auto &program : programs_)
        program->saveState(s);
    return s.takeBuffer();
}

sim::Tick
Machine::parseCheckpointHeader(util::Deserializer &d)
{
    if (d.get<std::uint32_t>() != kCheckpointMagic)
        throw std::runtime_error("checkpoint: bad magic");
    if (d.get<std::uint32_t>() != kCheckpointVersion)
        throw std::runtime_error("checkpoint: version mismatch");
    return d.get<sim::Tick>();
}

void
Machine::restoreComponents(util::Deserializer &d)
{
    network_->loadState(d);
    for (auto &controller : controllers_)
        controller->loadState(d);
    for (auto &processor : processors_)
        processor->loadState(d);
    for (auto &program : programs_)
        program->loadState(d);
    if (!d.atEnd())
        throw std::runtime_error("checkpoint: trailing bytes");
}

void
Machine::restoreCheckpoint(const std::vector<std::uint8_t> &bytes)
{
    obs::ScopedPhase profile(
        config_.profiler != nullptr
            ? &config_.profiler->slot(0, lane_)
            : nullptr,
        obs::Phase::CheckpointRestore);

    LOCSIM_ASSERT(tracer_ == nullptr && sampler_ == nullptr,
                  "cannot restore with tracing or sampling on");
    LOCSIM_ASSERT(engines_.front()->now() == 0,
                  "restoreCheckpoint requires a fresh machine");
    LOCSIM_ASSERT(!batched_,
                  "restore batched lanes through the MachineBatch");

    util::Deserializer d(bytes);
    const sim::Tick now = parseCheckpointHeader(d);
    // Time first: controllers re-arm their completion wakeups during
    // loadState, and restoreTime requires an empty event queue. Every
    // shard engine shares the one timeline. The skipped-ticks
    // diagnostic restarts at zero: it describes this run, not the
    // saved one.
    for (sim::Engine *engine : engines_)
        engine->restoreTime(now, 0);
    restoreComponents(d);
}

void
saveMeasurement(util::Serializer &s, const Measurement &m)
{
    s.putDouble(m.window);
    s.put(m.transactions);
    s.put(m.messages);
    s.putDouble(m.inter_txn_time);
    s.putDouble(m.txn_latency);
    s.putDouble(m.txn_rate);
    s.putDouble(m.inter_message_time);
    s.putDouble(m.message_latency);
    s.putDouble(m.message_latency_p50);
    s.putDouble(m.message_latency_p95);
    s.putDouble(m.message_rate);
    s.putDouble(m.source_queue_wait);
    s.putDouble(m.avg_hops);
    s.putDouble(m.utilization);
    s.putDouble(m.avg_flits);
    s.putDouble(m.messages_per_txn);
    s.putDouble(m.critical_messages);
    s.putDouble(m.run_length);
    s.putDouble(m.switch_overhead);
    s.putDouble(m.fitted_fixed_overhead);
    s.putDouble(m.hit_rate);
    s.put(m.iterations);
    s.put(m.violations);
    for (const net::ClassAttribution &attr : m.attribution) {
        s.put(attr.count);
        s.putDouble(attr.latency);
        s.putDouble(attr.serialization);
        s.putDouble(attr.hops);
        s.putDouble(attr.contention);
        s.putDouble(attr.stalls);
    }
}

Measurement
loadMeasurement(util::Deserializer &d)
{
    Measurement m;
    m.window = d.getDouble();
    m.transactions = d.get<std::uint64_t>();
    m.messages = d.get<std::uint64_t>();
    m.inter_txn_time = d.getDouble();
    m.txn_latency = d.getDouble();
    m.txn_rate = d.getDouble();
    m.inter_message_time = d.getDouble();
    m.message_latency = d.getDouble();
    m.message_latency_p50 = d.getDouble();
    m.message_latency_p95 = d.getDouble();
    m.message_rate = d.getDouble();
    m.source_queue_wait = d.getDouble();
    m.avg_hops = d.getDouble();
    m.utilization = d.getDouble();
    m.avg_flits = d.getDouble();
    m.messages_per_txn = d.getDouble();
    m.critical_messages = d.getDouble();
    m.run_length = d.getDouble();
    m.switch_overhead = d.getDouble();
    m.fitted_fixed_overhead = d.getDouble();
    m.hit_rate = d.getDouble();
    m.iterations = d.get<std::uint64_t>();
    m.violations = d.get<std::uint64_t>();
    for (net::ClassAttribution &attr : m.attribution) {
        attr.count = d.get<std::uint64_t>();
        attr.latency = d.getDouble();
        attr.serialization = d.getDouble();
        attr.hops = d.getDouble();
        attr.contention = d.getDouble();
        attr.stalls = d.getDouble();
    }
    return m;
}

} // namespace machine
} // namespace locsim
