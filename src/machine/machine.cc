/**
 * @file
 * Machine implementation.
 */

#include "machine/machine.hh"

#include <ostream>
#include <string>

#include "util/logging.hh"

namespace locsim {
namespace machine {

Machine::Machine(const MachineConfig &config,
                 const workload::Mapping &mapping)
    : config_(config), mapping_(mapping)
{
    LOCSIM_ASSERT(config.contexts >= 1 &&
                      config.contexts <=
                          static_cast<int>(workload::kMaxInstances),
                  "context count out of range");
    LOCSIM_ASSERT(config.net_clock_ratio >= 1, "bad clock ratio");

    if (config.reference_stepping)
        engine_.setStepMode(sim::Engine::StepMode::Reference);

    net::NetworkConfig net_config;
    net_config.radix = config.radix;
    net_config.dims = config.dims;
    net_config.wraparound = config.wraparound;
    net_config.router = config.router;
    network_ = std::make_unique<net::Network>(engine_, net_config);
    engine_.addClocked(network_.get(), 1);

    const net::TorusTopology &topo = network_->topology();
    LOCSIM_ASSERT(mapping_.size() == topo.nodeCount(),
                  "mapping size must match the machine size");

    const sim::NodeId nodes = topo.nodeCount();
    controllers_.reserve(nodes);
    processors_.reserve(nodes);

    proc::ProcessorConfig proc_config = config.processor;
    proc_config.contexts = config.contexts;

    for (sim::NodeId node = 0; node < nodes; ++node) {
        controllers_.push_back(std::make_unique<coher::CacheController>(
            engine_, *network_, transport_, node, config.protocol,
            config.net_clock_ratio));
        engine_.addClocked(controllers_.back().get(),
                           config.net_clock_ratio);

        std::vector<proc::ThreadProgram *> node_programs;
        const std::uint32_t thread = mapping_.threadAt(node);
        for (int ctx = 0; ctx < config.contexts; ++ctx) {
            const auto instance = static_cast<std::uint32_t>(ctx);
            switch (config.workload) {
              case WorkloadKind::TorusNeighbor:
                programs_.push_back(
                    std::make_unique<workload::TorusNeighborProgram>(
                        topo, mapping_, instance, thread,
                        config.app));
                break;
              case WorkloadKind::UniformRandom:
                programs_.push_back(
                    std::make_unique<workload::UniformRemoteProgram>(
                        topo, mapping_, instance, thread,
                        config.uniform_app));
                break;
              case WorkloadKind::Graph:
                LOCSIM_ASSERT(config.graph != nullptr,
                              "Graph workload needs a CommGraph");
                programs_.push_back(
                    std::make_unique<workload::GraphNeighborProgram>(
                        *config.graph, mapping_, instance, thread,
                        config.app));
                break;
            }
            node_programs.push_back(programs_.back().get());
        }
        processors_.push_back(std::make_unique<proc::Processor>(
            *controllers_.back(), proc_config, node_programs));
        engine_.addClocked(processors_.back().get(),
                           config.net_clock_ratio);
    }

    if (config.trace.enabled) {
        tracer_ = std::make_shared<obs::Tracer>(config.trace);
        engine_.setTracer(tracer_.get(), tracer_->newTrack("engine"));
        network_->setTracer(tracer_.get());
        coher_bridges_.reserve(nodes);
        for (sim::NodeId node = 0; node < nodes; ++node) {
            coher_bridges_.push_back(
                std::make_unique<coher::ObsTracerBridge>(
                    *tracer_, tracer_->newTrack(
                                  "coher." + std::to_string(node))));
            controllers_[node]->setTracer(coher_bridges_.back().get());
            processors_[node]->setTracer(
                tracer_.get(),
                tracer_->newTrack("proc." + std::to_string(node)),
                config.net_clock_ratio);
        }
    }

    if (config.sample_period > 0) {
        sampler_ =
            std::make_unique<obs::MetricsSampler>(config.sample_period);
        net::Network *net = network_.get();
        const double node_count = static_cast<double>(nodes);
        const double channels =
            node_count * 2.0 * static_cast<double>(config.dims);
        sampler_->addGauge("buffered_flits", [net] {
            return static_cast<double>(net->bufferedFlits());
        });
        // rho: flit-hops per channel per cycle over the sample window.
        sampler_->addRate(
            "rho",
            [net] {
                return static_cast<double>(
                    net->totalNeighborFlitHops());
            },
            1.0 / channels);
        // r_m: messages submitted per node per network cycle.
        sampler_->addRate(
            "r_m",
            [net] {
                return static_cast<double>(
                    net->stats().messages_sent);
            },
            1.0 / node_count);
        sampler_->addRate("alloc_stalls", [net] {
            return static_cast<double>(net->totalAllocStalls());
        });
        // T_m: mean network latency of messages delivered during the
        // sample window.
        sampler_->addMean(
            "T_m", [net] { return net->stats().latency.sum(); },
            [net] {
                return static_cast<double>(
                    net->stats().latency.count());
            });
        if (tracer_ != nullptr)
            sampler_->attachTracer(tracer_.get());
        engine_.addClocked(sampler_.get(), config.sample_period);
    }
}

Machine::~Machine() = default;

double
Machine::mappingDistance() const
{
    return mapping_.averageNeighborDistance(network_->topology());
}

coher::CacheController &
Machine::controller(sim::NodeId node)
{
    return *controllers_[node];
}

const workload::TorusNeighborProgram &
Machine::program(sim::NodeId node, int context) const
{
    const auto *program =
        dynamic_cast<const workload::TorusNeighborProgram *>(
            programs_[node * static_cast<sim::NodeId>(
                                 config_.contexts) +
                      static_cast<sim::NodeId>(context)]
                .get());
    LOCSIM_ASSERT(program != nullptr,
                  "program() requires the torus-neighbour workload");
    return *program;
}

void
Machine::resetStats()
{
    network_->resetStats();
    for (auto &controller : controllers_)
        controller->stats() = coher::ControllerStats{};
    for (auto &processor : processors_)
        processor->resetStats();
    // After the network counters so the rate windows re-prime from
    // the post-reset values.
    if (sampler_ != nullptr)
        sampler_->clearSamples();
}

void
Machine::writeTrace(std::ostream &os) const
{
    LOCSIM_ASSERT(tracer_ != nullptr,
                  "writeTrace requires config.trace.enabled");
    tracer_->write(os);
}

Measurement
Machine::run(std::uint64_t warmup, std::uint64_t window)
{
    advance(warmup);
    return measure(window);
}

void
Machine::advance(std::uint64_t cycles)
{
    engine_.run(cycles * config_.net_clock_ratio);
}

Measurement
Machine::measure(std::uint64_t window)
{
    const std::uint64_t ratio = config_.net_clock_ratio;
    resetStats();
    const sim::Tick start = engine_.now();
    engine_.run(window * ratio);
    const double elapsed = static_cast<double>(engine_.now() - start);

    Measurement m;
    m.window = elapsed;

    const double nodes =
        static_cast<double>(network_->topology().nodeCount());

    stats::Accumulator txn_latency, critical;
    std::uint64_t txns = 0, hits = 0, accesses = 0;
    for (const auto &controller : controllers_) {
        const coher::ControllerStats &cs = controller->stats();
        txns += cs.transactions.value();
        txn_latency.merge(cs.txn_latency);
        critical.merge(cs.critical_messages);
        hits += cs.hits.value();
        accesses += cs.loads.value() + cs.stores.value();
    }
    std::uint64_t idle_cycles = 0, switch_cycles = 0;
    for (const auto &processor : processors_) {
        idle_cycles += processor->stats().idle_cycles.value();
        switch_cycles += processor->stats().switch_cycles.value();
    }
    // Busy processor cycles: everything except memory stalls and
    // context switches. This is the effective per-transaction run
    // length the application model calls T_r (it includes issue and
    // resume overhead and hit service, which are useful work from
    // the model's perspective).
    const std::uint64_t total_proc_cycles =
        window * network_->topology().nodeCount();
    const std::uint64_t busy_cycles =
        total_proc_cycles - idle_cycles - switch_cycles;

    const net::NetworkStats &ns = network_->stats();
    m.transactions = txns;
    m.messages = ns.messages_sent;

    if (txns > 0) {
        m.inter_txn_time = elapsed * nodes / static_cast<double>(txns);
        m.txn_rate = 1.0 / m.inter_txn_time;
        m.txn_latency = txn_latency.mean();
        m.messages_per_txn =
            static_cast<double>(m.messages) / static_cast<double>(txns);
        m.critical_messages = critical.mean();
        m.run_length = static_cast<double>(busy_cycles) *
                       static_cast<double>(ratio) /
                       static_cast<double>(txns);
        m.switch_overhead = static_cast<double>(switch_cycles) *
                            static_cast<double>(ratio) /
                            static_cast<double>(txns);
    }
    if (m.messages > 0) {
        m.inter_message_time =
            elapsed * nodes / static_cast<double>(m.messages);
        m.message_rate = 1.0 / m.inter_message_time;
        m.message_latency = ns.latency.mean();
        m.message_latency_p50 = ns.latency_hist.quantile(0.5);
        m.message_latency_p95 = ns.latency_hist.quantile(0.95);
        m.source_queue_wait = ns.source_queue.mean();
        m.avg_hops = ns.hops.mean();
    }
    m.utilization = network_->channelUtilization();
    m.fitted_fixed_overhead =
        m.txn_latency - m.critical_messages * m.message_latency;
    if (accesses > 0) {
        m.hit_rate =
            static_cast<double>(hits) / static_cast<double>(accesses);
    }

    m.avg_flits = ns.flits.mean();
    m.attribution = ns.attribution;

    std::uint64_t iterations = 0, violations = 0;
    for (const auto &program : programs_) {
        if (const auto *torus =
                dynamic_cast<const workload::TorusNeighborProgram *>(
                    program.get())) {
            iterations += torus->iterations();
            violations += torus->violations();
        } else if (const auto *graph_app = dynamic_cast<
                       const workload::GraphNeighborProgram *>(
                       program.get())) {
            iterations += graph_app->iterations();
            violations += graph_app->violations();
        }
    }
    m.iterations = iterations;
    m.violations = violations;
    return m;
}

namespace {

/** Checkpoint framing: magic + layout version. Bump the version on
 *  any change to the serialized layout of any component. */
constexpr std::uint32_t kCheckpointMagic = 0x4b43534c; // "LSCK"
constexpr std::uint32_t kCheckpointVersion = 1;

} // namespace

std::vector<std::uint8_t>
Machine::saveCheckpoint() const
{
    LOCSIM_ASSERT(tracer_ == nullptr && sampler_ == nullptr,
                  "cannot checkpoint with tracing or sampling on");

    util::Serializer s;
    s.put(kCheckpointMagic);
    s.put(kCheckpointVersion);
    s.put(engine_.now());
    s.put(engine_.skippedTicks());
    transport_.saveState(s);
    network_->saveState(s);
    for (const auto &controller : controllers_)
        controller->saveState(s);
    for (const auto &processor : processors_)
        processor->saveState(s);
    for (const auto &program : programs_)
        program->saveState(s);
    return s.takeBuffer();
}

void
Machine::restoreCheckpoint(const std::vector<std::uint8_t> &bytes)
{
    LOCSIM_ASSERT(tracer_ == nullptr && sampler_ == nullptr,
                  "cannot restore with tracing or sampling on");
    LOCSIM_ASSERT(engine_.now() == 0,
                  "restoreCheckpoint requires a fresh machine");

    util::Deserializer d(bytes);
    if (d.get<std::uint32_t>() != kCheckpointMagic)
        throw std::runtime_error("checkpoint: bad magic");
    if (d.get<std::uint32_t>() != kCheckpointVersion)
        throw std::runtime_error("checkpoint: version mismatch");

    const auto now = d.get<sim::Tick>();
    const auto skipped = d.get<sim::Tick>();
    // Time first: controllers re-arm their completion wakeups during
    // loadState, and restoreTime requires an empty event queue.
    engine_.restoreTime(now, skipped);
    transport_.loadState(d);
    network_->loadState(d);
    for (auto &controller : controllers_)
        controller->loadState(d);
    for (auto &processor : processors_)
        processor->loadState(d);
    for (auto &program : programs_)
        program->loadState(d);
    if (!d.atEnd())
        throw std::runtime_error("checkpoint: trailing bytes");
}

void
saveMeasurement(util::Serializer &s, const Measurement &m)
{
    s.putDouble(m.window);
    s.put(m.transactions);
    s.put(m.messages);
    s.putDouble(m.inter_txn_time);
    s.putDouble(m.txn_latency);
    s.putDouble(m.txn_rate);
    s.putDouble(m.inter_message_time);
    s.putDouble(m.message_latency);
    s.putDouble(m.message_latency_p50);
    s.putDouble(m.message_latency_p95);
    s.putDouble(m.message_rate);
    s.putDouble(m.source_queue_wait);
    s.putDouble(m.avg_hops);
    s.putDouble(m.utilization);
    s.putDouble(m.avg_flits);
    s.putDouble(m.messages_per_txn);
    s.putDouble(m.critical_messages);
    s.putDouble(m.run_length);
    s.putDouble(m.switch_overhead);
    s.putDouble(m.fitted_fixed_overhead);
    s.putDouble(m.hit_rate);
    s.put(m.iterations);
    s.put(m.violations);
    for (const net::ClassAttribution &attr : m.attribution) {
        s.put(attr.count);
        s.putDouble(attr.latency);
        s.putDouble(attr.serialization);
        s.putDouble(attr.hops);
        s.putDouble(attr.contention);
        s.putDouble(attr.stalls);
    }
}

Measurement
loadMeasurement(util::Deserializer &d)
{
    Measurement m;
    m.window = d.getDouble();
    m.transactions = d.get<std::uint64_t>();
    m.messages = d.get<std::uint64_t>();
    m.inter_txn_time = d.getDouble();
    m.txn_latency = d.getDouble();
    m.txn_rate = d.getDouble();
    m.inter_message_time = d.getDouble();
    m.message_latency = d.getDouble();
    m.message_latency_p50 = d.getDouble();
    m.message_latency_p95 = d.getDouble();
    m.message_rate = d.getDouble();
    m.source_queue_wait = d.getDouble();
    m.avg_hops = d.getDouble();
    m.utilization = d.getDouble();
    m.avg_flits = d.getDouble();
    m.messages_per_txn = d.getDouble();
    m.critical_messages = d.getDouble();
    m.run_length = d.getDouble();
    m.switch_overhead = d.getDouble();
    m.fitted_fixed_overhead = d.getDouble();
    m.hit_rate = d.getDouble();
    m.iterations = d.get<std::uint64_t>();
    m.violations = d.get<std::uint64_t>();
    for (net::ClassAttribution &attr : m.attribution) {
        attr.count = d.get<std::uint64_t>();
        attr.latency = d.getDouble();
        attr.serialization = d.getDouble();
        attr.hops = d.getDouble();
        attr.contention = d.getDouble();
        attr.stalls = d.getDouble();
    }
    return m;
}

} // namespace machine
} // namespace locsim
