/**
 * @file
 * Full-machine assembly: the Alewife-like multiprocessor of
 * Section 3.1. One object wires the cycle engine, the torus network
 * (network clock), and per-node cache controllers and block-
 * multithreaded processors (processor clock, half the network clock
 * by default), runs the synthetic application, and produces the
 * measurements the paper's validation figures plot (t_m, T_m, t_t,
 * T_t, d, rho, and the fitted transaction-model constants).
 */

#ifndef LOCSIM_MACHINE_MACHINE_HH_
#define LOCSIM_MACHINE_MACHINE_HH_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "coher/controller.hh"
#include "net/network.hh"
#include "obs/profiler.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "proc/processor.hh"
#include "runner/runner.hh"
#include "sim/engine.hh"
#include "sim/lockstep.hh"
#include "util/serialize.hh"
#include "workload/comm_graph.hh"
#include "workload/graph_app.hh"
#include "workload/mapping.hh"
#include "workload/torus_app.hh"
#include "workload/uniform_app.hh"

namespace locsim {
namespace machine {

/** Which synthetic application the machine runs. */
enum class WorkloadKind {
    /** Section 3.2's nearest-neighbour application (the default). */
    TorusNeighbor,
    /** Uniform-random communication: no physical locality at all. */
    UniformRandom,
    /**
     * The nearest-neighbour loop over an arbitrary communication
     * graph supplied in MachineConfig::graph.
     */
    Graph,
};

/** Full-machine configuration. */
struct MachineConfig
{
    /** Torus shape (Section 3: radix-8, 2-D, 64 nodes). */
    int radix = 8;
    int dims = 2;
    /** Torus (the paper's simulations) or mesh (physical Alewife). */
    bool wraparound = true;

    /** Hardware contexts per processor (1, 2, or 4 in the paper). */
    int contexts = 1;

    /**
     * Network clock ticks per processor cycle ("network switches are
     * clocked twice as fast as processors").
     */
    std::uint32_t net_clock_ratio = 2;

    proc::ProcessorConfig processor;
    coher::ProtocolConfig protocol;
    net::RouterConfig router;

    /**
     * Drive the engine in reference (dumb-stepping) mode instead of
     * activity tracking. Both produce identical results; reference
     * mode exists as the oracle for equivalence tests.
     */
    bool reference_stepping = false;

    /**
     * Intra-simulation parallelism: partition the torus into this many
     * contiguous spatial shards, each driven by its own engine on its
     * own thread, synchronized conservatively every network cycle
     * (latched channels provide one cycle of lookahead — see
     * docs/SHARDING.md). Results — statistics, sampled series, and
     * checkpoints — are bit-identical for every shard count.
     *
     * 0 (the default) resolves to the LOCSIM_SHARDS environment
     * variable when set (clamped to the node count), else 1
     * (sequential, the unchanged single-engine path). Explicit values
     * must be in [1, node count]; anything else is fatal.
     */
    int shards = 0;

    WorkloadKind workload = WorkloadKind::TorusNeighbor;
    workload::TorusAppConfig app;
    workload::UniformAppConfig uniform_app;
    /** Required when workload == WorkloadKind::Graph. */
    std::shared_ptr<const workload::CommGraph> graph;

    /**
     * Structured event tracing (off by default). When enabled the
     * machine owns one obs::Tracer shard wired through every layer:
     * engine run/fast-forward spans, per-node network message spans
     * (flit detail optional), coherence protocol events, and
     * processor context switches.
     */
    obs::TraceConfig trace;

    /**
     * Metrics sampler period in network cycles; 0 (default) disables
     * the sampler. When set, a low-rate Clocked probe snapshots
     * channel utilization (rho), injection rate (r_m), observed
     * message latency (T_m), buffered flits, and allocation stalls.
     */
    sim::Tick sample_period = 0;

    /**
     * Host-side phase profiler (off by default; not owned, must
     * outlive the machine). When set, the machine wires phase slots
     * through every layer: engine dispatch/rotation/quiescence and
     * lockstep barrier waits on slot (shard, 0), router scans and
     * coherence ticks on slot (shard, lane), checkpoint save/restore
     * on slot (0, lane). A host-only observer: it never influences
     * simulated results and is excluded from the simulation cache key.
     */
    obs::Profiler *profiler = nullptr;
};

/**
 * Measurements over one window, all times in network cycles
 * (simulation ticks). Naming follows the paper's nomenclature
 * (Appendix A).
 */
struct Measurement
{
    double window = 0.0;           //!< measurement length, net cycles
    std::uint64_t transactions = 0;
    std::uint64_t messages = 0;

    double inter_txn_time = 0.0;   //!< t_t (per node)
    double txn_latency = 0.0;      //!< T_t (mean)
    double txn_rate = 0.0;         //!< r_t = 1/t_t
    double inter_message_time = 0.0; //!< t_m (per node)
    double message_latency = 0.0;  //!< T_m (mean, network portion)
    double message_latency_p50 = 0.0; //!< median network latency
    double message_latency_p95 = 0.0; //!< 95th-percentile latency
    double message_rate = 0.0;     //!< r_m = 1/t_m
    double source_queue_wait = 0.0; //!< mean wait before injection
    double avg_hops = 0.0;         //!< measured d
    double utilization = 0.0;      //!< measured rho
    double avg_flits = 0.0;        //!< measured B

    double messages_per_txn = 0.0; //!< measured g
    double critical_messages = 0.0; //!< measured c
    /**
     * Measured effective T_r per transaction in network cycles: all
     * non-idle, non-switch processor time (useful work, issue/resume
     * overhead, and hit service) divided by transactions.
     */
    double run_length = 0.0;
    /** Context-switch cycles per transaction, network cycles. */
    double switch_overhead = 0.0;
    /** T_f fitted as mean(T_t) - c*mean(T_m). */
    double fitted_fixed_overhead = 0.0;

    double hit_rate = 0.0;
    std::uint64_t iterations = 0;  //!< app loop iterations completed
    std::uint64_t violations = 0;  //!< coherence-order violations

    /**
     * Per-class latency decomposition sums over the window, indexed
     * by net::MessageClass (always filled; zero when no traffic of a
     * class was delivered).
     */
    std::array<net::ClassAttribution, net::kMessageClassCount>
        attribution{};
};

/**
 * Serialize a Measurement bit-exactly (doubles round-trip through
 * their IEEE-754 bit patterns). This is the payload format of the
 * content-addressed simulation cache.
 */
void saveMeasurement(util::Serializer &s, const Measurement &m);
Measurement loadMeasurement(util::Deserializer &d);

/**
 * The LSCK checkpoint format version Machine::saveCheckpoint emits
 * (and restoreCheckpoint requires). Content-addressed stores of
 * checkpoint images fold it into their keys so a layout bump retires
 * stored images without a scan (see cache::prefixKey).
 */
std::uint32_t checkpointFormatVersion();

/**
 * Shared execution context for one lane of a machine batch (see
 * machine/batch.hh): the shard engines every lane registers its
 * components with, and the lane-striped link stores every lane's
 * fabric allocates channels from. A machine built with a context does
 * not own engines and must be driven through its MachineBatch, never
 * through its own run()/advance()/measure().
 */
struct BatchContext
{
    std::vector<sim::Engine *> engines; //!< one per shard, shared
    net::LinkStores *stores = nullptr;  //!< lane-striped, shared
    int lane = 0; //!< this machine's lane index (profiler column)
};

/** The assembled machine. */
class Machine : private sim::LockstepSerial
{
  public:
    /**
     * @param config machine knobs.
     * @param mapping thread placement (copied).
     * @param batch shared batch context, or null for a solo machine
     *        that owns its engines and link stores.
     */
    Machine(const MachineConfig &config,
            const workload::Mapping &mapping);
    Machine(const MachineConfig &config,
            const workload::Mapping &mapping,
            const BatchContext *batch);
    ~Machine();

    /**
     * The shard count @p config resolves to on a machine of @p nodes
     * nodes (explicit value, LOCSIM_SHARDS, or 1; fatal on nonsense).
     */
    static int resolveShardCount(const MachineConfig &config,
                                 sim::NodeId nodes);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Average communication distance implied by the mapping. */
    double mappingDistance() const;

    /**
     * Resident bytes of the machine's major per-node containers
     * (caches, directories, transaction pools, queues, processors,
     * programs, network fabric). Deterministic explicit accounting —
     * not RSS — so the value is portable across hosts and gateable;
     * published as `mem.bytes_per_node` (divided by the node count)
     * in the process counter registry on teardown.
     */
    std::size_t memoryBytes() const;

    /**
     * Run @p warmup processor cycles, reset statistics, run
     * @p window processor cycles, and report measurements.
     * Equivalent to advance(warmup) followed by measure(window).
     */
    Measurement run(std::uint64_t warmup, std::uint64_t window);

    /** Advance @p cycles processor cycles without touching stats. */
    void advance(std::uint64_t cycles);

    /**
     * Reset statistics, run @p window processor cycles, and report
     * measurements over that window.
     */
    Measurement measure(std::uint64_t window);

    /**
     * Serialize the complete simulation state — timeline, network
     * fabric, every controller, processor, and workload program — so
     * the run can later be resumed on a freshly constructed Machine
     * with identical configuration. Restoring and continuing is
     * bit-identical to never having stopped.
     *
     * The image is independent of the shard count: a checkpoint taken
     * at any shards() restores on a machine with any other (identical
     * machine configuration otherwise), byte-identically.
     *
     * Requires tracing and sampling off (their state references live
     * tracks and rate windows that cannot survive a restore).
     */
    std::vector<std::uint8_t> saveCheckpoint() const;

    /**
     * Restore state saved by saveCheckpoint(). Must be called on a
     * freshly constructed Machine (time still at zero) with the same
     * configuration (any shard count) and mapping as the saving
     * machine.
     *
     * @throws std::runtime_error on a malformed or mismatched image.
     */
    void restoreCheckpoint(const std::vector<std::uint8_t> &bytes);

    const MachineConfig &config() const { return config_; }

    /**
     * Shard 0's engine (the only engine when shards() == 1). On a
     * sharded machine it reports the shared timeline (now(), skipped
     * ticks), but must not be run() directly — drive the machine via
     * advance()/measure() so every shard moves together.
     */
    sim::Engine &engine() { return *engines_.front(); }

    /** Resolved shard count (>= 1; see MachineConfig::shards). */
    int shards() const { return shards_; }

    net::Network &network() { return *network_; }
    coher::CacheController &controller(sim::NodeId node);

    /** The trace shard, or null when config().trace.enabled is off. */
    obs::Tracer *tracer() { return tracer_.get(); }

    /**
     * Shared ownership of the trace shard, so a runner can keep the
     * shard alive after the machine is destroyed and merge shards
     * from a sweep deterministically (submission order).
     */
    std::shared_ptr<obs::Tracer> shareTracer() const
    {
        return tracer_;
    }

    /** Serialize this machine's trace shard (requires tracing on). */
    void writeTrace(std::ostream &os) const;

    /** The metrics sampler, or null when sample_period is 0. */
    obs::MetricsSampler *sampler() { return sampler_.get(); }

    /**
     * The torus-neighbour program of (node, context).
     * @pre config().workload == WorkloadKind::TorusNeighbor.
     */
    const workload::TorusNeighborProgram &
    program(sim::NodeId node, int context) const;

  private:
    friend class MachineBatch;

    void resetStats();

    /** Advance all shards @p ticks network cycles (engine ticks). */
    void runTicks(sim::Tick ticks);

    /** The conservative lockstep driver (shards() > 1 only). */
    void runSharded(sim::Tick ticks);

    /**
     * @name Split measurement (batch driver interface)
     * measure() == beginMeasurement() + runTicks() +
     * collectMeasurement(); the batch driver advances all lanes
     * between the two halves.
     */
    ///@{
    void beginMeasurement();
    Measurement collectMeasurement() const;
    ///@}

    /**
     * @name Serial-point sampler stepping (lockstep driver hooks)
     * With several shards the sampler is ticked at the serial point
     * of the lockstep window rather than by an engine; these apply
     * the same due/credit arithmetic Engine uses for Clocked
     * components, against next_sample_due_.
     */
    ///@{
    bool serialSampleDue(sim::Tick now) const;
    void serialSampleTick(sim::Tick now);
    void serialSampleSkip(sim::Tick target);
    ///@}

    // sim::LockstepSerial: this machine's serial work is its sampler.
    bool serialDue(sim::Tick now) const override
    {
        return serialSampleDue(now);
    }
    void serialTick(sim::Tick now) override { serialSampleTick(now); }
    void serialSkip(sim::Tick target) override
    {
        serialSampleSkip(target);
    }

    /**
     * @name Split checkpoint restore (batch driver interface)
     * Lanes of a batch share engines, and restoreTime() must run
     * once per engine before ANY lane's components re-arm their
     * event-queue wakeups — so header parsing / timeline restore and
     * component restore are separable steps.
     */
    ///@{
    /** Validate framing, return the checkpoint's timeline position. */
    static sim::Tick parseCheckpointHeader(util::Deserializer &d);
    /** Restore everything after the header; throws on trailing bytes. */
    void restoreComponents(util::Deserializer &d);
    ///@}

    MachineConfig config_;
    workload::Mapping mapping_;
    int shards_ = 1;
    /** True when engines/link stores belong to a MachineBatch. */
    bool batched_ = false;
    /** Batch lane index (0 for solo machines; profiler column). */
    int lane_ = 0;
    /** Engines this solo machine owns (empty when batched). */
    std::vector<std::unique_ptr<sim::Engine>> owned_engines_;
    /** All K engines by shard (aliases owned_engines_ or the batch's). */
    std::vector<sim::Engine *> engines_;
    std::unique_ptr<net::Network> network_;
    std::vector<std::unique_ptr<coher::CacheController>> controllers_;
    std::vector<std::unique_ptr<proc::ThreadProgram>> programs_;
    std::vector<std::unique_ptr<proc::Processor>> processors_;

    /** Long-lived workers for the shard lanes (K > 1 only). */
    std::unique_ptr<runner::ThreadPool> shard_pool_;

    /** Per-shard skipped-tick snapshot reused across runSharded()
     *  calls so the hot path stays allocation-free. */
    std::vector<sim::Tick> shard_skipped_scratch_;

    /** Per-shard trace shards; tracer_ aliases entry 0. */
    std::vector<std::shared_ptr<obs::Tracer>> shard_tracers_;
    std::shared_ptr<obs::Tracer> tracer_;
    std::vector<std::unique_ptr<coher::ObsTracerBridge>>
        coher_bridges_;
    std::unique_ptr<obs::MetricsSampler> sampler_;
    /**
     * When K > 1 the sampler is driven by the lockstep driver rather
     * than an engine (it probes whole-fabric state, so it must run at
     * the serial point of a window); this mirrors its next due tick
     * with the same arithmetic Engine uses.
     */
    sim::Tick next_sample_due_ = 0;

    /** Timeline position of the last beginMeasurement(). */
    sim::Tick measure_start_ = 0;
};

} // namespace machine
} // namespace locsim

#endif // LOCSIM_MACHINE_MACHINE_HH_
