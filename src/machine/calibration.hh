/**
 * @file
 * Measurement-to-model calibration: the paper's Section 3.3
 * methodology as a library function. Given a Measurement from the
 * cycle-level machine, build the node model from the *measured*
 * application parameters (a-priori B and g, measured c and T_r,
 * fitted T_f, measured per-transaction switch charge) and predict the
 * operating point with the combined model. Figures 4 and 5 are
 * exactly "predictFromMeasurement vs the simulation it came from".
 */

#ifndef LOCSIM_MACHINE_CALIBRATION_HH_
#define LOCSIM_MACHINE_CALIBRATION_HH_

#include "machine/machine.hh"
#include "model/combined_model.hh"
#include "model/node_model.hh"

namespace locsim {
namespace machine {

/**
 * Node model implied by a measurement.
 *
 * @param m the measurement window's results.
 * @param contexts hardware contexts the machine ran with.
 * @param net_clock_ratio network cycles per processor cycle of the
 *        measured machine (Measurement times are network cycles).
 */
model::NodeModel nodeModelFromMeasurement(const Measurement &m,
                                          int contexts,
                                          double net_clock_ratio = 2.0);

/**
 * Combined-model prediction at the measured communication distance
 * (or any other distance), using the measured parameters.
 *
 * @param distance average communication distance to predict at;
 *        usually m.avg_hops.
 * @param node_channels include the node-channel contention extension
 *        (the paper's modeled values do).
 */
model::Prediction
predictFromMeasurement(const Measurement &m, int contexts,
                       double distance, int network_dims = 2,
                       bool node_channels = true,
                       double net_clock_ratio = 2.0);

/**
 * The per-run implied latency sensitivity: s such that the measured
 * (t_m, T_m) point lies on the Equation 9 curve with this run's own
 * intercept. Controls for the cross-run intercept drift that flattens
 * naive Figure 3 fits (see EXPERIMENTS.md).
 */
double impliedSensitivity(const Measurement &m);

} // namespace machine
} // namespace locsim

#endif // LOCSIM_MACHINE_CALIBRATION_HH_
