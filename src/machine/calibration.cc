/**
 * @file
 * Calibration implementation.
 */

#include "machine/calibration.hh"

#include "util/logging.hh"

namespace locsim {
namespace machine {

model::NodeModel
nodeModelFromMeasurement(const Measurement &m, int contexts,
                         double net_clock_ratio)
{
    LOCSIM_ASSERT(contexts >= 1, "bad context count");
    LOCSIM_ASSERT(m.transactions > 0,
                  "cannot calibrate from an empty measurement");

    // Measurement quantities are in network cycles; the model's
    // parameter convention is processor cycles.
    model::ApplicationParams app;
    app.run_length = m.run_length / net_clock_ratio;
    app.contexts = contexts;
    app.switch_time = contexts > 1
                          ? m.switch_overhead / net_clock_ratio
                          : 0.0;

    model::TransactionParams txn;
    txn.critical_messages = m.critical_messages;
    txn.messages_per_txn = m.messages_per_txn;
    txn.fixed_overhead = m.fitted_fixed_overhead / net_clock_ratio;

    return model::NodeModel(
        model::ApplicationModel(app, net_clock_ratio),
        model::TransactionModel(txn, net_clock_ratio));
}

model::Prediction
predictFromMeasurement(const Measurement &m, int contexts,
                       double distance, int network_dims,
                       bool node_channels, double net_clock_ratio)
{
    model::NetworkParams network;
    network.dims = network_dims;
    network.message_flits = m.avg_flits;
    network.node_channel_contention = node_channels;

    model::CombinedModel combined(
        nodeModelFromMeasurement(m, contexts, net_clock_ratio),
        model::TorusNetworkModel(network), distance);
    return combined.solve();
}

double
impliedSensitivity(const Measurement &m)
{
    LOCSIM_ASSERT(m.critical_messages > 0.0 &&
                      m.inter_message_time > 0.0,
                  "measurement lacks message statistics");
    const double intercept =
        (m.run_length + m.switch_overhead + m.fitted_fixed_overhead) /
        m.critical_messages;
    return (m.message_latency + intercept) / m.inter_message_time;
}

} // namespace machine
} // namespace locsim
