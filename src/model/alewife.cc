/**
 * @file
 * Canonical Alewife parameter sets.
 */

#include "model/alewife.hh"

namespace locsim {
namespace model {

ApplicationParams
sectionThreeApplication(double contexts)
{
    ApplicationParams params;
    // T_r = 8 processor cycles: the inner loop reads four neighbour
    // state words, performs a trivial combine, and writes one word;
    // deliberately tiny so locality effects are pronounced
    // (Section 3.2: "particularly small computation grain size").
    params.run_length = 8.0;
    params.contexts = contexts;
    // Sparcle block-multithreading switch: 11 cycles (Section 3.1).
    params.switch_time = 11.0;
    return params;
}

TransactionParams
alewifeTransaction()
{
    TransactionParams params;
    // Simple request/response critical path (Section 2.2).
    params.critical_messages = 2.0;
    // Measured for the Section 3.2 sharing pattern (Section 3.2).
    params.messages_per_txn = 3.2;
    // 40 processor cycles = 80 network cycles ~= 1.2 us at 33 MHz:
    // within the paper's "1 or 1.5 us" and exactly two-thirds of the
    // total fixed component c*B + T_f + T_r (Figure 8 discussion).
    params.fixed_overhead = 40.0;
    return params;
}

MachineParams
alewifeMachine(double processors, bool model_node_channels)
{
    MachineParams params;
    params.processors = processors;
    // "network switches are clocked twice as fast as processors"
    params.net_clock_ratio = 2.0;
    params.network.dims = 2;
    // 96-bit coherence messages over 8-bit channels (Section 3.2).
    params.network.message_flits = 12.0;
    params.network.node_channel_contention = model_node_channels;
    return params;
}

StudyConfig
alewifeStudy(double contexts, double processors,
             bool model_node_channels)
{
    StudyConfig config;
    config.application = sectionThreeApplication(contexts);
    config.transaction = alewifeTransaction();
    config.machine = alewifeMachine(processors, model_node_channels);
    return config;
}

} // namespace model
} // namespace locsim
