/**
 * @file
 * IndirectNetworkModel implementation.
 */

#include "model/indirect_network.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/math.hh"

namespace locsim {
namespace model {

IndirectNetworkModel::IndirectNetworkModel(double processors,
                                           int switch_radix,
                                           double message_flits)
    : radix_(switch_radix), flits_(message_flits)
{
    LOCSIM_ASSERT(processors > 1.0, "need more than one endpoint");
    LOCSIM_ASSERT(switch_radix >= 2, "switch radix must be >= 2");
    LOCSIM_ASSERT(message_flits >= 1.0, "messages are >= 1 flit");
    stages_ = static_cast<int>(std::ceil(
        std::log(processors) / std::log(double(switch_radix)) -
        1e-9));
    if (stages_ < 1)
        stages_ = 1;
}

double
IndirectNetworkModel::utilization(double injection_rate) const
{
    LOCSIM_ASSERT(injection_rate >= 0.0, "negative rate");
    return injection_rate * flits_;
}

double
IndirectNetworkModel::perStageWait(double rho) const
{
    LOCSIM_ASSERT(rho >= 0.0 && rho < 1.0,
                  "stage utilization must be in [0, 1)");
    // M/D/1 wait scaled by the probability another input contends
    // for the same output port.
    return (rho * flits_ / (2.0 * (1.0 - rho))) *
           (1.0 - 1.0 / static_cast<double>(radix_));
}

double
IndirectNetworkModel::messageLatency(double injection_rate) const
{
    const double rho = utilization(injection_rate);
    LOCSIM_ASSERT(rho < 1.0, "injection rate ", injection_rate,
                  " saturates the indirect network");
    return static_cast<double>(stages_) * (1.0 + perStageWait(rho)) +
           flits_;
}

Prediction
solveIndirectClosedLoop(const NodeModel &node,
                        const IndirectNetworkModel &network,
                        bool enforce_issue_floor)
{
    const double s = node.latencySensitivity();
    const double fixed_k = node.fixedTerm();

    auto excess = [&](double r) {
        return s / r - fixed_k - network.messageLatency(r);
    };
    const double hi = network.saturationRate() * (1.0 - 1e-9);
    double root = util::bisect(excess, 1e-12, hi, 1e-13);

    bool floor_hit = false;
    if (enforce_issue_floor && node.application().contexts() > 1.0) {
        const double cap = node.maxInjectionRate();
        if (root > cap) {
            root = cap;
            floor_hit = true;
        }
    }

    Prediction out;
    out.injection_rate = root;
    out.inter_message_time = 1.0 / root;
    out.utilization = network.utilization(root);
    out.message_latency = network.messageLatency(root);
    out.per_hop_latency =
        1.0 + network.perStageWait(out.utilization);
    out.issue_bound_hit = floor_hit;

    const TransactionModel &txn = node.transaction();
    out.txn_latency = txn.transactionLatency(out.message_latency);
    out.inter_txn_time =
        txn.interTransactionTime(out.inter_message_time);
    out.txn_rate = 1.0 / out.inter_txn_time;

    const double p = node.application().contexts();
    const double c = txn.criticalMessages();
    // For the UCL network every hop is "variable" in the sense of
    // scaling with machine size (stages ~ log N), none with mapping.
    out.comp_variable_msg = c * static_cast<double>(network.stages()) *
                            out.per_hop_latency / p;
    out.comp_fixed_msg = c * network.messageFlits() / p;
    out.comp_fixed_txn = txn.fixedOverhead() / p;
    out.comp_cpu = out.inter_txn_time - out.comp_variable_msg -
                   out.comp_fixed_msg - out.comp_fixed_txn;
    return out;
}

} // namespace model
} // namespace locsim
