/**
 * @file
 * Physical-locality analyses built on the combined model (paper
 * Section 4): expected gain from ideal versus random thread-to-
 * processor mappings, per-hop latency scaling with machine size, the
 * Equation 18 component breakdown, and the network-speed sensitivity
 * study of Table 1.
 */

#ifndef LOCSIM_MODEL_LOCALITY_HH_
#define LOCSIM_MODEL_LOCALITY_HH_

#include <vector>

#include "model/combined_model.hh"
#include "model/parameters.hh"

namespace locsim {
namespace model {

/** The two mapping regimes Figure 7 compares. */
enum class Mapping {
    /**
     * Best case: every communication traverses a single hop (the
     * Section 3 application's torus communication graph embedded
     * identically in the torus network).
     */
    Ideal,
    /**
     * Random thread placement / no physical locality: average
     * distance follows Equation 17.
     */
    Random,
};

/** Inputs for one locality study. */
struct StudyConfig
{
    ApplicationParams application;
    TransactionParams transaction;
    MachineParams machine;
    /** Apply the Equation 4 issue floor (see CombinedModel). */
    bool enforce_issue_floor = true;
};

/** Result of comparing the two mappings at one machine size. */
struct GainResult
{
    double processors = 0.0;
    double random_distance = 0.0;  //!< Equation 17
    double ideal_distance = 1.0;
    Prediction ideal;
    Prediction random;
    /**
     * Expected gain (Section 2.6/4.2): ratio of aggregate transaction
     * rates, ideal over random. Since N is common it equals the
     * per-processor ratio r_t(ideal) / r_t(random).
     */
    double gain = 0.0;
};

/** Analysis entry points over the combined model. */
class LocalityAnalysis
{
  public:
    explicit LocalityAnalysis(const StudyConfig &config);

    /** The node model implied by the configuration. */
    NodeModel nodeModel() const;

    /** The network model implied by the configuration. */
    TorusNetworkModel networkModel() const;

    /**
     * Average communication distance for a mapping regime on a
     * machine with the configured processor count.
     */
    double mappingDistance(Mapping mapping) const;

    /** Solve the combined model at an explicit average distance. */
    Prediction predictAtDistance(double distance) const;

    /** Solve the combined model for a mapping regime. */
    Prediction predict(Mapping mapping) const;

    /** Compare ideal and random mappings (one Figure 7 point). */
    GainResult expectedGain() const;

    /**
     * Equation 16's limiting per-hop latency for this configuration:
     * B * s / (2n).
     */
    double limitingPerHopLatency() const;

    const StudyConfig &config() const { return config_; }

  private:
    StudyConfig config_;
};

/**
 * Sweep expected gain over machine sizes (Figure 7 / Table 1 rows).
 *
 * @param base study configuration; base.machine.processors is
 *        overridden by each sweep point.
 * @param processor_counts machine sizes to evaluate.
 */
std::vector<GainResult>
sweepExpectedGain(const StudyConfig &base,
                  const std::vector<double> &processor_counts);

/**
 * Per-hop latency T_h under random mappings as a function of machine
 * size (Figure 6's curves).
 */
std::vector<std::pair<double, double>>
sweepPerHopLatency(const StudyConfig &base,
                   const std::vector<double> &processor_counts);

/**
 * Scale a configuration's relative network speed (Table 1): a factor
 * of 0.5 makes the network twice as slow relative to the processors.
 * Processor-clock parameters (T_r, T_s, T_f) are unchanged; only the
 * clock ratio moves.
 */
StudyConfig withRelativeNetworkSpeed(const StudyConfig &base,
                                     double speed_factor);

} // namespace model
} // namespace locsim

#endif // LOCSIM_MODEL_LOCALITY_HH_
