/**
 * @file
 * The transaction model (paper Section 2.2): resources required to
 * satisfy one communication transaction.
 *
 *   T_t = c * T_m + T_f        (Equation 7)
 *   t_t = g * t_m              (Equation 8)
 *
 * All outputs in network cycles.
 */

#ifndef LOCSIM_MODEL_TRANSACTION_MODEL_HH_
#define LOCSIM_MODEL_TRANSACTION_MODEL_HH_

#include "model/parameters.hh"

namespace locsim {
namespace model {

/** Maps message-level behavior to transaction-level behavior. */
class TransactionModel
{
  public:
    /**
     * @param params transaction parameters; fixed_overhead is in
     *        processor cycles.
     * @param net_clock_ratio network cycles per processor cycle.
     */
    TransactionModel(const TransactionParams &params,
                     double net_clock_ratio);

    /** c: messages on the critical path. */
    double criticalMessages() const { return critical_; }

    /** g: average messages per transaction. */
    double messagesPerTxn() const { return per_txn_; }

    /** T_f in network cycles. */
    double fixedOverhead() const { return fixed_; }

    /** Equation 7: transaction latency for a given message latency. */
    double
    transactionLatency(double message_latency) const
    {
        return critical_ * message_latency + fixed_;
    }

    /** Inverse of Equation 7. */
    double
    messageLatencyFor(double txn_latency) const
    {
        return (txn_latency - fixed_) / critical_;
    }

    /** Equation 8: inter-transaction time from inter-message time. */
    double
    interTransactionTime(double inter_message_time) const
    {
        return per_txn_ * inter_message_time;
    }

    /** Inverse of Equation 8. */
    double
    interMessageTime(double inter_transaction_time) const
    {
        return inter_transaction_time / per_txn_;
    }

  private:
    double critical_;
    double per_txn_;
    double fixed_; // network cycles
};

} // namespace model
} // namespace locsim

#endif // LOCSIM_MODEL_TRANSACTION_MODEL_HH_
