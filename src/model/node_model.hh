/**
 * @file
 * The node model (paper Section 2.3): the behavior of one
 * multiprocessor node as seen by the interconnection network,
 * obtained by composing the application and transaction models.
 *
 * Substituting Equations 7 and 8 into Equation 6 gives the
 * "application message curve" (Equation 9):
 *
 *   T_m = (p*g/c) * t_m - (T_r + T_s' + T_f)/c  =  s * t_m - K
 *
 * where s = p*g/c is the latency sensitivity (greater s = less
 * sensitive to message latency) and K = (T_r + T_s' + T_f)/c, with
 * T_s' the per-transaction switch charge (T_s for p > 1, 0 for a
 * single context; see ApplicationModel).
 */

#ifndef LOCSIM_MODEL_NODE_MODEL_HH_
#define LOCSIM_MODEL_NODE_MODEL_HH_

#include "model/application_model.hh"
#include "model/transaction_model.hh"

namespace locsim {
namespace model {

/** The application message curve T_m(t_m) and its inverse. */
class NodeModel
{
  public:
    NodeModel(ApplicationModel application, TransactionModel txn);

    const ApplicationModel &application() const { return app_; }
    const TransactionModel &transaction() const { return txn_; }

    /** s = p*g/c, the latency sensitivity (slope of Equation 9). */
    double latencySensitivity() const;

    /** K = (T_r + T_s' + T_f)/c, intercept magnitude of Equation 9. */
    double fixedTerm() const;

    /**
     * Equation 9: average message latency the node can absorb at a
     * given inter-message injection time (network cycles).
     */
    double messageLatencyFor(double inter_message_time) const;

    /**
     * Inverse of Equation 9: inter-message injection time implied by
     * an observed message latency, including the Equation 4 floor
     * (multithreaded processors cannot issue faster than one
     * transaction per T_r + T_s even at zero latency).
     */
    double interMessageTime(double message_latency) const;

    /** Equation 4 translated to messages: (T_r + T_s)/g. */
    double minInterMessageTime() const;

    /** Message injection rate cap implied by minInterMessageTime. */
    double maxInjectionRate() const;

  private:
    ApplicationModel app_;
    TransactionModel txn_;
};

} // namespace model
} // namespace locsim

#endif // LOCSIM_MODEL_NODE_MODEL_HH_
