/**
 * @file
 * TransactionModel implementation.
 */

#include "model/transaction_model.hh"

#include "util/logging.hh"

namespace locsim {
namespace model {

TransactionModel::TransactionModel(const TransactionParams &params,
                                   double net_clock_ratio)
    : critical_(params.critical_messages),
      per_txn_(params.messages_per_txn),
      fixed_(params.fixed_overhead * net_clock_ratio)
{
    LOCSIM_ASSERT(params.critical_messages > 0.0,
                  "critical path needs at least one message");
    LOCSIM_ASSERT(params.messages_per_txn >= params.critical_messages,
                  "g must be at least c: transactions send at least "
                  "their critical-path messages");
    LOCSIM_ASSERT(params.fixed_overhead >= 0.0,
                  "fixed overhead cannot be negative");
    LOCSIM_ASSERT(net_clock_ratio > 0.0,
                  "clock ratio must be positive");
}

} // namespace model
} // namespace locsim
