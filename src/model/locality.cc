/**
 * @file
 * LocalityAnalysis implementation.
 */

#include "model/locality.hh"

#include "net/topology.hh"
#include "util/logging.hh"

namespace locsim {
namespace model {

LocalityAnalysis::LocalityAnalysis(const StudyConfig &config)
    : config_(config)
{
    LOCSIM_ASSERT(config.machine.processors > 1.0,
                  "locality is meaningless on one processor");
}

NodeModel
LocalityAnalysis::nodeModel() const
{
    const double ratio = config_.machine.net_clock_ratio;
    return NodeModel(ApplicationModel(config_.application, ratio),
                     TransactionModel(config_.transaction, ratio));
}

TorusNetworkModel
LocalityAnalysis::networkModel() const
{
    return TorusNetworkModel(config_.machine.network);
}

double
LocalityAnalysis::mappingDistance(Mapping mapping) const
{
    switch (mapping) {
      case Mapping::Ideal:
        return 1.0;
      case Mapping::Random:
        return net::randomMappingDistanceForSize(
            config_.machine.processors,
            config_.machine.network.dims);
    }
    LOCSIM_PANIC("unknown mapping regime");
}

Prediction
LocalityAnalysis::predictAtDistance(double distance) const
{
    CombinedModel model(nodeModel(), networkModel(), distance,
                        config_.enforce_issue_floor);
    return model.solve();
}

Prediction
LocalityAnalysis::predict(Mapping mapping) const
{
    return predictAtDistance(mappingDistance(mapping));
}

GainResult
LocalityAnalysis::expectedGain() const
{
    GainResult out;
    out.processors = config_.machine.processors;
    out.ideal_distance = mappingDistance(Mapping::Ideal);
    out.random_distance = mappingDistance(Mapping::Random);
    out.ideal = predict(Mapping::Ideal);
    out.random = predict(Mapping::Random);
    out.gain = out.ideal.txn_rate / out.random.txn_rate;
    return out;
}

double
LocalityAnalysis::limitingPerHopLatency() const
{
    return networkModel().limitingPerHopLatency(
        nodeModel().latencySensitivity());
}

std::vector<GainResult>
sweepExpectedGain(const StudyConfig &base,
                  const std::vector<double> &processor_counts)
{
    std::vector<GainResult> out;
    out.reserve(processor_counts.size());
    for (double n : processor_counts) {
        StudyConfig config = base;
        config.machine.processors = n;
        out.push_back(LocalityAnalysis(config).expectedGain());
    }
    return out;
}

std::vector<std::pair<double, double>>
sweepPerHopLatency(const StudyConfig &base,
                   const std::vector<double> &processor_counts)
{
    std::vector<std::pair<double, double>> out;
    out.reserve(processor_counts.size());
    for (double n : processor_counts) {
        StudyConfig config = base;
        config.machine.processors = n;
        LocalityAnalysis analysis(config);
        out.emplace_back(
            n, analysis.predict(Mapping::Random).per_hop_latency);
    }
    return out;
}

StudyConfig
withRelativeNetworkSpeed(const StudyConfig &base, double speed_factor)
{
    LOCSIM_ASSERT(speed_factor > 0.0,
                  "network speed factor must be positive");
    StudyConfig out = base;
    out.machine.net_clock_ratio *= speed_factor;
    return out;
}

} // namespace model
} // namespace locsim
