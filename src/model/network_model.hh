/**
 * @file
 * The network model (paper Section 2.4): Agarwal's contention model
 * for packet-switched, wormhole e-cube routed k-ary n-dimensional
 * torus networks with separate unidirectional channels per direction.
 *
 *   rho = r_m * B * k_d / 2                            (Equation 10)
 *   T_m = n * k_d * T_h + B                            (Equation 11)
 *   k_d = d / n                                        (Equation 13)
 *   T_h = 1 + (rho*B/(1-rho)) * ((k_d-1)/k_d^2)
 *             * ((n+1)/n)                              (Equation 14)
 *
 * with the paper's extensions:
 *  - T_h = 1 for k_d < 1 (well-mapped local traffic sees essentially
 *    no contention);
 *  - optional contention for the node<->network channels, modeled as
 *    M/D/1 queueing at the injection and ejection ports (adds the
 *    "two to five network cycles" observed in Section 2.4).
 *
 * The asymptotic per-hop latency as machines scale (Equation 16,
 * derived through the combined model's feedback) is B*s/(2n).
 */

#ifndef LOCSIM_MODEL_NETWORK_MODEL_HH_
#define LOCSIM_MODEL_NETWORK_MODEL_HH_

#include "model/parameters.hh"

namespace locsim {
namespace model {

/** Agarwal's torus network model with the paper's extensions. */
class TorusNetworkModel
{
  public:
    explicit TorusNetworkModel(const NetworkParams &params);

    int dims() const { return params_.dims; }
    double messageFlits() const { return params_.message_flits; }
    const NetworkParams &params() const { return params_; }

    /** Equation 10: channel utilization. */
    double utilization(double injection_rate,
                       double distance_per_dim) const;

    /**
     * Injection rate at which Equation 10 reaches rho = 1; latencies
     * diverge as this rate is approached.
     */
    double saturationRate(double distance_per_dim) const;

    /**
     * Equation 14 with the k_d < 1 extension: average per-hop latency
     * of a message head at the given channel utilization.
     *
     * @pre 0 <= rho < 1.
     */
    double perHopLatency(double rho, double distance_per_dim) const;

    /**
     * Equation 11 (+ optional node-channel contention): average
     * message latency at a given injection rate and per-dimension
     * distance.
     */
    double messageLatency(double injection_rate,
                          double distance_per_dim) const;

    /**
     * M/D/1 waiting time at one node<->network channel for a node
     * injecting (or receiving) messages of B flits at the given rate:
     * W = rho_ch * B / (2 (1 - rho_ch)) with rho_ch = r_m * B.
     * Returns 0 when node-channel contention modeling is disabled.
     */
    double nodeChannelWait(double injection_rate) const;

    /**
     * Equation 16: the limiting per-hop latency as communication
     * distance grows without bound, for an application with latency
     * sensitivity s: T_h -> B*s/(2n). (The network saturates, rho->1,
     * and the application's negative feedback pins T_h here.)
     */
    double limitingPerHopLatency(double latency_sensitivity) const;

  private:
    NetworkParams params_;
};

} // namespace model
} // namespace locsim

#endif // LOCSIM_MODEL_NETWORK_MODEL_HH_
