/**
 * @file
 * TorusNetworkModel implementation.
 */

#include "model/network_model.hh"

#include "util/logging.hh"

namespace locsim {
namespace model {

TorusNetworkModel::TorusNetworkModel(const NetworkParams &params)
    : params_(params)
{
    LOCSIM_ASSERT(params.dims >= 1, "network dimension must be >= 1");
    LOCSIM_ASSERT(params.message_flits >= 1.0,
                  "messages are at least one flit");
}

double
TorusNetworkModel::utilization(double injection_rate,
                               double distance_per_dim) const
{
    LOCSIM_ASSERT(injection_rate >= 0.0, "negative injection rate");
    LOCSIM_ASSERT(distance_per_dim >= 0.0, "negative distance");
    return injection_rate * params_.message_flits * distance_per_dim /
           2.0;
}

double
TorusNetworkModel::saturationRate(double distance_per_dim) const
{
    LOCSIM_ASSERT(distance_per_dim > 0.0,
                  "saturation undefined for zero distance");
    return 2.0 / (params_.message_flits * distance_per_dim);
}

double
TorusNetworkModel::perHopLatency(double rho,
                                 double distance_per_dim) const
{
    LOCSIM_ASSERT(rho >= 0.0 && rho < 1.0,
                  "utilization must be in [0, 1), got ", rho);
    // Paper extension: well-mapped traffic (k_d < 1) sees essentially
    // no contention delay.
    if (distance_per_dim < 1.0)
        return 1.0;
    const double n = static_cast<double>(params_.dims);
    const double kd = distance_per_dim;
    const double contention = (rho * params_.message_flits /
                               (1.0 - rho)) *
                              ((kd - 1.0) / (kd * kd)) *
                              ((n + 1.0) / n);
    return 1.0 + contention;
}

double
TorusNetworkModel::nodeChannelWait(double injection_rate) const
{
    if (!params_.node_channel_contention)
        return 0.0;
    const double rho_ch = injection_rate * params_.message_flits;
    LOCSIM_ASSERT(rho_ch < 1.0,
                  "node channel saturated: rate ", injection_rate,
                  " x B ", params_.message_flits);
    // M/D/1 mean wait: rho * service / (2 (1 - rho)), deterministic
    // service time of B cycles (one flit per cycle on the 8-bit
    // channel).
    return rho_ch * params_.message_flits / (2.0 * (1.0 - rho_ch));
}

double
TorusNetworkModel::messageLatency(double injection_rate,
                                  double distance_per_dim) const
{
    const double rho = utilization(injection_rate, distance_per_dim);
    LOCSIM_ASSERT(rho < 1.0, "injection rate ", injection_rate,
                  " saturates the network at k_d ", distance_per_dim);
    const double n = static_cast<double>(params_.dims);
    const double base = n * distance_per_dim *
                            perHopLatency(rho, distance_per_dim) +
                        params_.message_flits;
    // Queueing for the shared source channel delays the head; at the
    // destination the ejection channel's drain largely overlaps the
    // B-cycle serialization already counted in `base`, so only the
    // source side is added (this reproduces the paper's observed
    // "two to five network cycles" at the validation operating
    // points).
    return base + nodeChannelWait(injection_rate);
}

double
TorusNetworkModel::limitingPerHopLatency(
    double latency_sensitivity) const
{
    LOCSIM_ASSERT(latency_sensitivity > 0.0,
                  "latency sensitivity must be positive");
    return params_.message_flits * latency_sensitivity /
           (2.0 * static_cast<double>(params_.dims));
}

} // namespace model
} // namespace locsim
