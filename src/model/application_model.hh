/**
 * @file
 * The application model (paper Section 2.1).
 *
 * Describes per-processor behavior as a relationship between the
 * average inter-transaction issue time t_t and the average
 * transaction latency T_t (the "application transaction curve"):
 *
 *   single context (Eq 1/2):   t_t = T_r + T_t
 *   p contexts, masked mode (Eq 3/4):
 *       T_t small enough       =>  t_t = T_r + T_s
 *   p contexts, exposed mode (Eq 5/6):
 *       t_t = (T_t + T_r + T_s) / p
 *
 * Refinement over the paper's Equation 5 (which writes
 * t_t = (T_t + T_r)/p): each transaction also costs the switch-in
 * time T_s of serial processor work, so the exposed-mode period per
 * thread is T_t + T_r + T_s. This makes the two modes continuous at
 * the boundary T_t = (p-1)(T_r + T_s) and matches the cycle-level
 * simulator; it leaves the curve's slope (and hence the latency
 * sensitivity s) unchanged, only shifting the intercept. For a single
 * context no switching occurs and Equation 1 is exact.
 *
 * All quantities here are in network cycles; the constructor converts
 * from the processor-cycle parameter convention.
 */

#ifndef LOCSIM_MODEL_APPLICATION_MODEL_HH_
#define LOCSIM_MODEL_APPLICATION_MODEL_HH_

#include "model/parameters.hh"

namespace locsim {
namespace model {

/** The application transaction curve t_t(T_t) and its inverse. */
class ApplicationModel
{
  public:
    /**
     * @param params application parameters in processor cycles.
     * @param net_clock_ratio network cycles per processor cycle, used
     *        to express the curve in network cycles.
     */
    ApplicationModel(const ApplicationParams &params,
                     double net_clock_ratio);

    /** T_r in network cycles. */
    double runLength() const { return run_length_; }

    /** T_s in network cycles. */
    double switchTime() const { return switch_time_; }

    /** p, the degree of multithreading. */
    double contexts() const { return contexts_; }

    /**
     * Average inter-transaction issue time for a given average
     * transaction latency (network cycles). Includes the masked-mode
     * floor of Equation 4.
     */
    double interTransactionTime(double txn_latency) const;

    /**
     * True if transactions of the given latency are fully masked by
     * multithreading: T_t < (p-1)(T_r + T_s), the continuous form of
     * Equation 3's condition.
     */
    bool latencyMasked(double txn_latency) const;

    /**
     * Switch time charged per transaction in exposed mode: T_s for
     * multithreaded processors, 0 for a single context (which stalls
     * in place rather than switching).
     */
    double exposedSwitchTime() const;

    /**
     * Minimum achievable inter-transaction issue time (Equation 4):
     * T_r + T_s network cycles.
     */
    double minInterTransactionTime() const;

    /**
     * Inverse of the exposed-mode curve: the transaction latency that
     * would produce the given inter-transaction time (Equation 6).
     *
     * @pre issue_time >= minInterTransactionTime() is not required;
     *      this is the raw linear relation T_t = p*t_t - T_r.
     */
    double transactionLatencyFor(double issue_time) const;

    /**
     * Slope of the application transaction curve, dT_t/dt_t = p.
     * Greater slope means less sensitivity to latency increases.
     */
    double transactionCurveSlope() const { return contexts_; }

  private:
    double run_length_;   // network cycles
    double switch_time_;  // network cycles
    double contexts_;
};

} // namespace model
} // namespace locsim

#endif // LOCSIM_MODEL_APPLICATION_MODEL_HH_
