/**
 * @file
 * NodeModel implementation.
 */

#include "model/node_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace locsim {
namespace model {

NodeModel::NodeModel(ApplicationModel application, TransactionModel txn)
    : app_(application), txn_(txn)
{
}

double
NodeModel::latencySensitivity() const
{
    return app_.contexts() * txn_.messagesPerTxn() /
           txn_.criticalMessages();
}

double
NodeModel::fixedTerm() const
{
    return (app_.runLength() + app_.exposedSwitchTime() +
            txn_.fixedOverhead()) /
           txn_.criticalMessages();
}

double
NodeModel::messageLatencyFor(double inter_message_time) const
{
    return latencySensitivity() * inter_message_time - fixedTerm();
}

double
NodeModel::interMessageTime(double message_latency) const
{
    LOCSIM_ASSERT(message_latency >= 0.0, "negative message latency");
    const double linear =
        (message_latency + fixedTerm()) / latencySensitivity();
    if (app_.contexts() > 1.0)
        return std::max(linear, minInterMessageTime());
    return linear;
}

double
NodeModel::minInterMessageTime() const
{
    return app_.minInterTransactionTime() / txn_.messagesPerTxn();
}

double
NodeModel::maxInjectionRate() const
{
    return 1.0 / minInterMessageTime();
}

} // namespace model
} // namespace locsim
