/**
 * @file
 * Parameter structs shared by the analytical models (paper Section 2
 * and Appendix A nomenclature).
 *
 * Convention: user-facing parameters that describe processor/software
 * quantities (run length T_r, context switch time T_s, fixed
 * transaction overhead T_f) are given in *processor* cycles; the
 * models convert to network cycles internally using the machine's
 * network:processor clock ratio. All model outputs (latencies, rates)
 * are in network cycles, matching the paper's figures.
 */

#ifndef LOCSIM_MODEL_PARAMETERS_HH_
#define LOCSIM_MODEL_PARAMETERS_HH_

namespace locsim {
namespace model {

/**
 * Application model parameters (Section 2.1).
 *
 * Characterizes how a processor running its share of an application
 * issues communication transactions.
 */
struct ApplicationParams
{
    /**
     * T_r: average useful work between successive communication
     * transactions by one thread, in processor cycles (the
     * "computational grain").
     */
    double run_length = 8.0;

    /**
     * p: degree of multithreading — the number of hardware contexts,
     * or more generally the average number of outstanding
     * transactions the processor sustains. May be fractional for
     * mechanisms like prefetching that average between integers.
     */
    double contexts = 1.0;

    /** T_s: context switch time in processor cycles (Sparcle: 11). */
    double switch_time = 11.0;
};

/**
 * Transaction model parameters (Section 2.2): the cost of satisfying
 * one communication transaction in terms of network messages.
 */
struct TransactionParams
{
    /**
     * c: messages on the critical path of a transaction (2 for a
     * simple request/response exchange).
     */
    double critical_messages = 2.0;

    /** g: average messages sent per transaction (paper: 3.2). */
    double messages_per_txn = 3.2;

    /**
     * T_f: fixed transaction overhead in processor cycles — send and
     * receive occupancy, memory access, and coherence processing that
     * does not vary with communication distance.
     */
    double fixed_overhead = 40.0;
};

/**
 * Interconnect parameters (Section 2.4): a packet-switched, wormhole
 * e-cube routed k-ary n-dimensional torus.
 */
struct NetworkParams
{
    /** n: mesh dimension. */
    int dims = 2;

    /** B: average message size in flits (paper: 96 bits / 8 = 12). */
    double message_flits = 12.0;

    /**
     * Model contention for the node<->network channels (the paper's
     * second extension, Section 2.4: "added two to five network
     * cycles" in the validation experiments). When enabled, an
     * M/D/1-style queueing delay at the injection and ejection
     * channels is added to the message latency.
     */
    bool node_channel_contention = true;
};

/**
 * Machine-level parameters tying the models together.
 */
struct MachineParams
{
    /** N: number of processors (fractional values allowed in sweeps). */
    double processors = 64.0;

    /**
     * Network cycles per processor cycle. The paper's base
     * architecture clocks switches twice as fast as processors
     * (ratio 2); Table 1 explores ratios down to 0.25 ("8x slower").
     */
    double net_clock_ratio = 2.0;

    NetworkParams network;
};

} // namespace model
} // namespace locsim

#endif // LOCSIM_MODEL_PARAMETERS_HH_
