/**
 * @file
 * The combined model (paper Section 2.5): closing the loop between
 * the node model (how fast nodes inject as a function of observed
 * message latency) and the network model (message latency as a
 * function of injection rate).
 *
 * Equating Equation 9 with Equation 11 yields a quadratic in the
 * injection rate r_m when the network extensions are disabled; the
 * general case (node-channel contention, Equation 4 issue floor) is
 * solved by bisection on the monotone excess-latency function. Both
 * solvers are exposed and tested against each other.
 *
 * This feedback is the paper's key departure from prior open-loop
 * network analyses (Section 5): nodes "back off" as latency rises,
 * which bounds per-hop latency at B*s/(2n) (Equation 16) instead of
 * letting it diverge.
 */

#ifndef LOCSIM_MODEL_COMBINED_MODEL_HH_
#define LOCSIM_MODEL_COMBINED_MODEL_HH_

#include "model/network_model.hh"
#include "model/node_model.hh"

namespace locsim {
namespace model {

/** Everything the combined model predicts for one operating point. */
struct Prediction
{
    double injection_rate = 0.0;      //!< r_m (messages/net cycle)
    double inter_message_time = 0.0;  //!< t_m = 1/r_m
    double message_latency = 0.0;     //!< T_m
    double per_hop_latency = 0.0;     //!< T_h
    double utilization = 0.0;         //!< rho
    double node_channel_wait = 0.0;   //!< W per node channel
    double txn_latency = 0.0;         //!< T_t
    double inter_txn_time = 0.0;      //!< t_t
    double txn_rate = 0.0;            //!< r_t
    /** True if the Equation 4 issue-rate floor bound the solution. */
    bool issue_bound_hit = false;

    /**
     * Equation 18 decomposition of t_t (network cycles), in paper
     * order: variable message overhead c*n*k_d*T_h/p, fixed message
     * overhead (c*B + node channel waits)/p, fixed transaction
     * overhead T_f/p, and CPU cycles T_r/p.
     */
    double comp_variable_msg = 0.0;
    double comp_fixed_msg = 0.0;
    double comp_fixed_txn = 0.0;
    double comp_cpu = 0.0;
};

/**
 * Solves the combined application/transaction/network model for one
 * machine configuration and one amount of exploited physical locality
 * (captured, per Section 2.1, by the average communication distance).
 */
class CombinedModel
{
  public:
    /**
     * @param node the node model (application + transaction).
     * @param network the torus network model.
     * @param avg_distance d: average communication distance in hops
     *        (> 0); k_d = d / n per Equation 13.
     * @param enforce_issue_floor apply the Equation 4 bound
     *        t_t >= T_r + T_s (the paper drops it because its
     *        experiments never approached it; we keep it available).
     */
    CombinedModel(NodeModel node, TorusNetworkModel network,
                  double avg_distance, bool enforce_issue_floor = true);

    double avgDistance() const { return distance_; }
    double distancePerDim() const;
    const NodeModel &node() const { return node_; }
    const TorusNetworkModel &network() const { return network_; }

    /**
     * Solve for the equilibrium operating point by bisection on
     * f(r) = (latency the node tolerates at rate r) - (latency the
     * network delivers at rate r), which is strictly decreasing.
     */
    Prediction solve() const;

    /**
     * Closed-form quadratic solution (Section 2.5) for the base model
     * (requires node-channel contention disabled; ignores the issue
     * floor). Exposed primarily as a cross-check of solve().
     *
     * @pre !network().params().node_channel_contention.
     */
    Prediction solveQuadratic() const;

    /**
     * Network latency seen at a given injection rate (helper shared
     * by the solvers and the open-loop analyses).
     */
    double networkLatencyAt(double injection_rate) const;

  private:
    Prediction predictionAt(double injection_rate,
                            bool issue_bound_hit) const;

    /** Largest injection rate before any modeled resource saturates. */
    double saturationBound() const;

    NodeModel node_;
    TorusNetworkModel network_;
    double distance_;
    bool enforce_floor_;
};

} // namespace model
} // namespace locsim

#endif // LOCSIM_MODEL_COMBINED_MODEL_HH_
