/**
 * @file
 * A network model for indirect multistage (UCL) interconnects, in the
 * style the paper cites for comparison (Section 2.4 notes the
 * framework "can easily accommodate models for other types of
 * packet-switched networks such as that for indirect networks").
 *
 * Models a buffered k-ary butterfly: every message traverses
 * ceil(log_k N) switch stages regardless of source/destination (the
 * defining UCL property — no physical locality to exploit), with an
 * M/D/1-style queueing delay per stage (Kruskal-Snir approximation):
 *
 *   T_m = stages * (1 + W(rho)) + B,
 *   W(rho) = (rho * B / (2 (1 - rho))) * (1 - 1/k),
 *   rho = r_m * B.
 *
 * Combined with the node model via the same closed-loop feedback as
 * the torus (solveIndirectClosedLoop), this lets UCL and NUCL
 * architectures be compared on equal terms — the contrast that
 * motivates the whole paper (Section 1).
 */

#ifndef LOCSIM_MODEL_INDIRECT_NETWORK_HH_
#define LOCSIM_MODEL_INDIRECT_NETWORK_HH_

#include "model/combined_model.hh"
#include "model/node_model.hh"

namespace locsim {
namespace model {

/** Buffered k-ary butterfly (UCL) network model. */
class IndirectNetworkModel
{
  public:
    /**
     * @param processors number of endpoints N (> 1).
     * @param switch_radix k, ports per switch (>= 2).
     * @param message_flits B, average message size in flits.
     */
    IndirectNetworkModel(double processors, int switch_radix,
                         double message_flits);

    /** Number of switch stages, ceil(log_k N). */
    int stages() const { return stages_; }

    int switchRadix() const { return radix_; }
    double messageFlits() const { return flits_; }

    /** Per-link utilization at injection rate r_m: rho = r_m * B. */
    double utilization(double injection_rate) const;

    /** Injection rate at which rho reaches 1. */
    double saturationRate() const { return 1.0 / flits_; }

    /** Kruskal-Snir style per-stage queueing wait at load rho. */
    double perStageWait(double rho) const;

    /**
     * Average message latency at the given injection rate. Identical
     * for all source/destination pairs: the UCL property.
     */
    double messageLatency(double injection_rate) const;

  private:
    int stages_;
    int radix_;
    double flits_;
};

/**
 * Close the loop between a node model and an indirect network: the
 * UCL counterpart of CombinedModel::solve(). Mapping and distance
 * play no role — there is no locality to exploit.
 *
 * @param enforce_issue_floor apply the Equation 4 bound.
 */
Prediction solveIndirectClosedLoop(const NodeModel &node,
                                   const IndirectNetworkModel &network,
                                   bool enforce_issue_floor = true);

} // namespace model
} // namespace locsim

#endif // LOCSIM_MODEL_INDIRECT_NETWORK_HH_
