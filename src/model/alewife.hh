/**
 * @file
 * Canonical parameter sets for the paper's validation platform: the
 * MIT Alewife-like architecture of Section 3 and the synthetic
 * nearest-neighbour application of Section 3.2.
 *
 * Calibration (see DESIGN.md "Equation provenance"): the paper fixes
 * B = 12 flits, g = 3.2 messages/transaction, c = 2 critical
 * messages, network switches at twice the processor clock, and an
 * 11-cycle context switch. The computation grain T_r and fixed
 * overhead T_f are chosen to satisfy the paper's stated anchors:
 * fixed transaction overhead is two-thirds of the total fixed
 * component and corresponds to 1-1.5 us at 33-40 MHz (Section 4.2),
 * reproducing the headline results (gain ~2 at 1,000 processors,
 * ~40 at 10^6 for the single-context application; limiting per-hop
 * latency ~9.8 network cycles at s = 3.26).
 */

#ifndef LOCSIM_MODEL_ALEWIFE_HH_
#define LOCSIM_MODEL_ALEWIFE_HH_

#include "model/locality.hh"
#include "model/parameters.hh"

namespace locsim {
namespace model {

/**
 * Application parameters for the Section 3.2 synthetic application.
 *
 * @param contexts hardware contexts in use (1, 2, or 4 on Sparcle).
 */
ApplicationParams sectionThreeApplication(double contexts);

/** Transaction parameters measured for the LimitLESS-style protocol. */
TransactionParams alewifeTransaction();

/**
 * Machine parameters for an Alewife-like system.
 *
 * @param processors machine size N (64 in the validation runs).
 * @param model_node_channels include the node-channel contention
 *        extension (on for validation against the simulator, where it
 *        contributes the paper's "two to five network cycles"; the
 *        large-scale analyses of Section 4 are insensitive to it).
 */
MachineParams alewifeMachine(double processors,
                             bool model_node_channels = true);

/**
 * A complete study configuration for the Section 3 platform.
 */
StudyConfig alewifeStudy(double contexts, double processors,
                         bool model_node_channels = true);

} // namespace model
} // namespace locsim

#endif // LOCSIM_MODEL_ALEWIFE_HH_
