/**
 * @file
 * ApplicationModel implementation.
 */

#include "model/application_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace locsim {
namespace model {

ApplicationModel::ApplicationModel(const ApplicationParams &params,
                                   double net_clock_ratio)
    : run_length_(params.run_length * net_clock_ratio),
      switch_time_(params.switch_time * net_clock_ratio),
      contexts_(params.contexts)
{
    LOCSIM_ASSERT(params.run_length > 0.0,
                  "run length must be positive");
    LOCSIM_ASSERT(params.switch_time >= 0.0,
                  "switch time cannot be negative");
    LOCSIM_ASSERT(params.contexts >= 1.0,
                  "need at least one context, got ", params.contexts);
    LOCSIM_ASSERT(net_clock_ratio > 0.0,
                  "clock ratio must be positive");
}

double
ApplicationModel::exposedSwitchTime() const
{
    return contexts_ > 1.0 ? switch_time_ : 0.0;
}

bool
ApplicationModel::latencyMasked(double txn_latency) const
{
    // Continuous form of Equation 3: the other p-1 contexts each
    // occupy T_s + T_r of processor time before this thread's turn
    // returns.
    return txn_latency <
           (contexts_ - 1.0) * (run_length_ + switch_time_);
}

double
ApplicationModel::minInterTransactionTime() const
{
    return run_length_ + switch_time_;
}

double
ApplicationModel::interTransactionTime(double txn_latency) const
{
    LOCSIM_ASSERT(txn_latency >= 0.0, "negative transaction latency");
    // Exposed mode (Equation 5 plus the switch-in refinement). For
    // p == 1 this is exactly Equation 1.
    const double exposed =
        (txn_latency + run_length_ + exposedSwitchTime()) / contexts_;
    // The masked-mode floor (Equation 4) meets the exposed line
    // exactly at the latencyMasked() boundary.
    if (contexts_ > 1.0)
        return std::max(exposed, minInterTransactionTime());
    return exposed;
}

double
ApplicationModel::transactionLatencyFor(double issue_time) const
{
    return contexts_ * issue_time - run_length_ -
           exposedSwitchTime();
}

} // namespace model
} // namespace locsim
