/**
 * @file
 * CombinedModel implementation.
 */

#include "model/combined_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/math.hh"

namespace locsim {
namespace model {

CombinedModel::CombinedModel(NodeModel node, TorusNetworkModel network,
                             double avg_distance,
                             bool enforce_issue_floor)
    : node_(node), network_(network), distance_(avg_distance),
      enforce_floor_(enforce_issue_floor)
{
    LOCSIM_ASSERT(avg_distance > 0.0,
                  "average communication distance must be positive");
}

double
CombinedModel::distancePerDim() const
{
    return distance_ / static_cast<double>(network_.dims());
}

double
CombinedModel::networkLatencyAt(double injection_rate) const
{
    return network_.messageLatency(injection_rate, distancePerDim());
}

double
CombinedModel::saturationBound() const
{
    double bound = network_.saturationRate(distancePerDim());
    if (network_.params().node_channel_contention) {
        // The node<->network channel saturates at one message per B
        // cycles.
        bound = std::min(bound, 1.0 / network_.messageFlits());
    }
    return bound;
}

Prediction
CombinedModel::predictionAt(double injection_rate,
                            bool issue_bound_hit) const
{
    const double kd = distancePerDim();
    Prediction out;
    out.injection_rate = injection_rate;
    out.inter_message_time = 1.0 / injection_rate;
    out.utilization = network_.utilization(injection_rate, kd);
    out.per_hop_latency =
        network_.perHopLatency(out.utilization, kd);
    out.node_channel_wait = network_.nodeChannelWait(injection_rate);
    out.message_latency = networkLatencyAt(injection_rate);
    out.issue_bound_hit = issue_bound_hit;

    const TransactionModel &txn = node_.transaction();
    const ApplicationModel &app = node_.application();
    out.txn_latency = txn.transactionLatency(out.message_latency);
    out.inter_txn_time =
        txn.interTransactionTime(out.inter_message_time);
    out.txn_rate = 1.0 / out.inter_txn_time;

    // Equation 18 components. When the issue floor binds, the
    // processor idles less than the curve implies; the decomposition
    // below still reports the latency components actually observed,
    // scaled so they sum to t_t (the CPU component absorbs the slack,
    // which is exactly where the extra time is spent: running other
    // contexts' work).
    const double p = app.contexts();
    const double c = txn.criticalMessages();
    out.comp_variable_msg =
        c * static_cast<double>(network_.dims()) * kd *
        out.per_hop_latency / p;
    out.comp_fixed_msg =
        (c * network_.messageFlits() + c * out.node_channel_wait) / p;
    out.comp_fixed_txn = txn.fixedOverhead() / p;
    out.comp_cpu = out.inter_txn_time - out.comp_variable_msg -
                   out.comp_fixed_msg - out.comp_fixed_txn;
    return out;
}

Prediction
CombinedModel::solve() const
{
    const double kd = distancePerDim();
    const double hi_bound = saturationBound();
    const double eps = 1e-12;

    // f(r) = node-tolerated latency - network-delivered latency.
    // Strictly decreasing in r: the node side falls as 1/r while the
    // network side rises with load.
    auto excess = [&](double r) {
        const double node_side =
            node_.latencySensitivity() / r - node_.fixedTerm();
        return node_side - networkLatencyAt(r);
    };

    double root;
    // Latency diverges as r approaches hi_bound when either the
    // per-hop contention term is active (k_d > 1 strictly: at
    // k_d == 1 the (k_d-1) factor vanishes) or node-channel queueing
    // is modeled.
    const bool diverges =
        network_.params().node_channel_contention || kd > 1.0;
    if (diverges) {
        // Network latency diverges at hi_bound, guaranteeing a
        // bracket: f > 0 near zero, f < 0 near saturation. Drive the
        // bracket to (near) machine precision: close to saturation
        // dT/dr is enormous, so a loose bracket would leave visible
        // latency error.
        double lo = eps;
        double hi = hi_bound * (1.0 - 1e-9);
        while (excess(hi) > 0.0 && hi_bound - hi > 1e-15)
            hi = hi_bound - (hi_bound - hi) * 0.1;
        root = util::bisect(excess, lo, hi, hi * 1e-16, 300);
    } else {
        // k_d <= 1 and no node-channel contention: network latency is
        // the constant n*k_d*T_h + B with T_h = 1, so the node curve
        // gives r directly — unless the node curve asks for more than
        // the channels can carry, in which case the bandwidth bound
        // binds (the model has no contention term to push back with
        // at k_d <= 1, so we pin the operating point just below
        // saturation).
        const double latency =
            static_cast<double>(network_.dims()) * kd +
            network_.messageFlits();
        root = node_.latencySensitivity() /
               (latency + node_.fixedTerm());
        const double sat = network_.saturationRate(kd);
        if (root >= sat)
            root = sat * (1.0 - 1e-9);
    }

    bool floor_hit = false;
    if (enforce_floor_ && node_.application().contexts() > 1.0) {
        const double cap = node_.maxInjectionRate();
        if (root > cap) {
            root = cap;
            floor_hit = true;
        }
    }
    return predictionAt(root, floor_hit);
}

Prediction
CombinedModel::solveQuadratic() const
{
    LOCSIM_ASSERT(!network_.params().node_channel_contention,
                  "closed form requires the base network model");
    const double kd = distancePerDim();
    const double n = static_cast<double>(network_.dims());
    const double big_b = network_.messageFlits();
    const double s = node_.latencySensitivity();
    const double fixed_k = node_.fixedTerm();

    if (kd <= 1.0) {
        // Constant-latency regime (at k_d == 1 the contention factor
        // (k_d - 1) vanishes too); linear, not quadratic. Clamp at
        // the bandwidth bound exactly as solve() does.
        const double latency = n * kd + big_b;
        double r = s / (latency + fixed_k);
        const double sat = network_.saturationRate(kd);
        if (r >= sat)
            r = sat * (1.0 - 1e-9);
        return predictionAt(r, false);
    }

    // s/r - K = n*k_d*(1 + (a r B w)/(1 - a r)) + B
    // with a = B*k_d/2 and w = ((k_d-1)/k_d^2)*((n+1)/n).
    // Multiplying through by r(1 - a r) gives A r^2 + C1 r + C0 = 0:
    const double a = big_b * kd / 2.0;
    const double w = ((kd - 1.0) / (kd * kd)) * ((n + 1.0) / n);
    const double zero_load = n * kd + big_b;
    const double quad_a =
        a * (n * kd * big_b * w - zero_load - fixed_k);
    const double quad_b = zero_load + fixed_k + s * a;
    const double quad_c = -s;

    double roots[2];
    const int count =
        util::solveQuadratic(quad_a, quad_b, quad_c, roots);
    LOCSIM_ASSERT(count >= 1, "combined model quadratic has no roots");
    // The physical root satisfies 0 < r and rho = a r < 1.
    for (int i = 0; i < count; ++i) {
        const double r = roots[i];
        if (r > 0.0 && a * r < 1.0)
            return predictionAt(r, false);
    }
    LOCSIM_PANIC("no physical root of the combined-model quadratic");
}

} // namespace model
} // namespace locsim
