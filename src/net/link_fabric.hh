/**
 * @file
 * Structure-of-arrays storage for the torus fabric's latched links.
 *
 * The previous fabric kept one heap object per link (FlitRing /
 * CreditPipe, arena-packed but still pointer-chased) and registered
 * each with its shard engine as an independent Rotatable, so the
 * rotation phase made one virtual call per dirty link. This file
 * flattens all links of one kind into dense-id SoA arrays:
 *
 *  - FlitLinkStore: every flit link shares one uniform power-of-two
 *    ring capacity. The hot ring cursors live in three parallel
 *    uint32 arrays (head / mid / tail) split from the cold per-channel
 *    metadata (wake binding, owning shard), so the rotation publish
 *    (mid = tail) is a pure data-parallel pass over adjacent words.
 *  - CreditLinkStore: per-VC staged/visible counters in one
 *    contiguous int array with stride = 2 * VC count per channel.
 *  - LinkRotator: one Rotatable per (store, shard). Channels mark
 *    themselves dirty in per-rotator 64-bit words; rotation drains
 *    whole words, handing each word's dirty bitmask to the store's
 *    publishWord(), which runs the lane-vector kernels of
 *    net/kernels.hh (SSE2/AVX2 with a scalar fallback, level resolved
 *    once per store from util::simd::activeLevel()).
 *
 * Rotation order across channels is immaterial (each channel's
 * publish touches only its own state, and cross-shard wake delivery
 * is a commutative fetch_or), so batch rotation is bit-identical to
 * the per-channel scheme. Serialization layouts are byte-identical
 * to the old FlitRing/CreditPipe streams.
 *
 * Every channel belongs to exactly one shard (its producer's); a
 * rotator only ever publishes channels of its own shard, keeping the
 * rotation phase race-free under the sharded driver's barriers. One
 * dirty word may still interleave channels of several shards, so the
 * vector kernels never write a channel whose dirty bit is clear (see
 * the kernels.hh concurrency contract).
 *
 * Batched execution (PR 6) interleaves K independent simulations
 * ("lanes") of the same topology shape in one store. Ids are
 * allocated lane-strided with the stride padded to the next power of
 * two (id = logical * bit_ceil(K) + lane), so the same logical
 * channel of every lane occupies adjacent bits of ONE dirty word
 * (a pow2 stride <= 64 always divides the word) and one word-drain
 * publishes all K lanes of a congested link in a single vector pass.
 * Pad ids (lane slots >= K) are never allocated, marked dirty, bound
 * or serialized: checkpoint bytes and cache keys see only the logical
 * channels, so the stride is invisible to every observable (see
 * DESIGN.md, "Lane striding and vector padding"). A store built with
 * lanes == 1 allocates exactly the dense sequential ids it always
 * did.
 */

#ifndef LOCSIM_NET_LINK_FABRIC_HH_
#define LOCSIM_NET_LINK_FABRIC_HH_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/kernels.hh"
#include "net/message.hh"
#include "sim/channel.hh"
#include "util/logging.hh"
#include "util/serialize.hh"
#include "util/simd.hh"

namespace locsim {
namespace net {

/** Dense index naming one link within a store. */
using ChannelId = std::uint32_t;
inline constexpr ChannelId kNoChannel = 0xffffffffu;

/**
 * The per-shard Rotatable that batch-rotates one store's channels.
 * @tparam Store exposes publishWord(word, bits).
 */
template <typename Store>
class LinkRotator final : public sim::Rotatable
{
  public:
    explicit LinkRotator(Store &store) : store_(store) {}

    /** Grow the dirty bitset to cover channel @p id (build time). */
    void
    ensure(ChannelId id)
    {
        const std::size_t words = (static_cast<std::size_t>(id) >> 6) + 1;
        if (dirty_words_.size() < words)
            dirty_words_.resize(words, 0);
    }

    /** Record a push on channel @p id; enrols this rotator in the
     *  engine's dirty list on the first mark of the cycle. */
    void
    markChannel(ChannelId id)
    {
        const std::size_t word = static_cast<std::size_t>(id) >> 6;
        const std::uint64_t bit = 1ull << (id & 63u);
        if (dirty_words_[word] & bit)
            return;
        if (dirty_words_[word] == 0)
            touched_.push_back(static_cast<std::uint32_t>(word));
        dirty_words_[word] |= bit;
        markDirty();
    }

    void
    rotate() override
    {
        dirty_ = false;
        // First-touch order is the measured optimum for this drain.
        // Two alternatives were tried on the congested 16x16 fabric
        // (interleaved A/B, medians of 5): ascending-id order via
        // sorting touched_ read 6% slower (first-touch already
        // matches the cycle's write order, so the control words are
        // the cache's warmest lines and the sort is pure overhead),
        // and software-prefetching the next touched word's control
        // line read 5% slower (the lines are resident; the hint only
        // added a branch). The drain is not on the 16x16 critical
        // path — per-flit switch traversal is (docs/PERFORMANCE.md).
        for (const std::uint32_t word : touched_) {
            store_.publishWord(word,
                               std::exchange(dirty_words_[word], 0));
        }
        touched_.clear();
    }

  private:
    Store &store_;
    /** One dirty bit per channel id (ids of other shards stay 0). */
    std::vector<std::uint64_t> dirty_words_;
    /** Indices of nonzero dirty words, in first-touch order. */
    std::vector<std::uint32_t> touched_;
};

/**
 * Per-channel wake binding (see sim::Rotatable's wake contract),
 * packed into 12 bytes: one pointer with its low bit tagging whether
 * the target is a plain word (same-shard, written at push time) or an
 * atomic word (cross-shard, fetch_or'd at publish time). Wake words
 * are 4-byte aligned, so the tag bit is free.
 */
struct WakeBinding
{
    std::uintptr_t tagged = 0;
    std::uint32_t bit = 0;

    void
    bindLocal(std::uint32_t *word, std::uint32_t b)
    {
        tagged = reinterpret_cast<std::uintptr_t>(word);
        bit = b;
    }

    void
    bindRemote(std::atomic<std::uint32_t> *word, std::uint32_t b)
    {
        tagged = reinterpret_cast<std::uintptr_t>(word) | 1u;
        bit = b;
    }

    /** Deliver the push-time (same-shard) wake, if bound. */
    void
    wakeOnPush() const
    {
        if (tagged != 0 && (tagged & 1u) == 0)
            *reinterpret_cast<std::uint32_t *>(tagged) |= bit;
    }

    /** Deliver the publish-time (cross-shard) wake, if bound. */
    void
    wakeOnPublish() const
    {
        if ((tagged & 1u) != 0) {
            reinterpret_cast<std::atomic<std::uint32_t> *>(tagged & ~std::uintptr_t{1})
                ->fetch_or(bit, std::memory_order_relaxed);
        }
    }
};

namespace detail {

/** Lane stride for a K-lane store: pow2 so lane groups never straddle
 *  a 64-bit dirty word (any pow2 <= 64 divides the word size). */
inline std::size_t
laneStride(int lanes)
{
    return std::bit_ceil(static_cast<std::size_t>(lanes));
}

/** Ids rounded up to whole dirty words, so the vector kernels can
 *  load full words without running off the cursor arrays. */
inline std::size_t
paddedIds(ChannelId id)
{
    return ((static_cast<std::size_t>(id) >> 6) + 1) << 6;
}

} // namespace detail

/**
 * All flit links of one fabric, flattened. Same latching semantics as
 * the old FlitRing: pushes land in [mid, tail) and become visible
 * ([head, mid)) when the owning shard's rotator publishes the channel.
 */
class FlitLinkStore
{
  public:
    /**
     * @param max_occupancy uniform ring bound per link (credit flow
     *        control bounds occupancy, so one size fits every link).
     * @param shards rotator count; channels name their owner on add().
     * @param lanes simulation-lane count; ids are allocated strided
     *        by lane (see the file comment). 1 = solo store.
     */
    FlitLinkStore(int max_occupancy, int shards, int lanes = 1)
        : lanes_(lanes), stride_(detail::laneStride(lanes)),
          per_lane_next_(static_cast<std::size_t>(lanes), 0),
          level_(util::simd::activeLevel())
    {
        LOCSIM_ASSERT(lanes >= 1, "lane count must be >= 1");
        std::size_t cap = 4;
        while (cap < static_cast<std::size_t>(max_occupancy))
            cap <<= 1;
        cap_ = cap;
        mask_ = static_cast<std::uint32_t>(cap - 1);
        shift_ = static_cast<unsigned>(std::countr_zero(cap));
        rotators_.reserve(static_cast<std::size_t>(shards));
        for (int s = 0; s < shards; ++s) {
            rotators_.push_back(
                std::make_unique<LinkRotator<FlitLinkStore>>(*this));
        }
    }

    /** Direct subsequent add() calls to lane @p lane. */
    void
    beginLane(int lane)
    {
        LOCSIM_ASSERT(lane >= 0 && lane < lanes_, "lane out of range");
        lane_ = lane;
    }

    /** Channels allocated so far by lane @p lane. */
    std::uint32_t
    laneChannels(int lane) const
    {
        return per_lane_next_[static_cast<std::size_t>(lane)];
    }

    /** Create one link owned by shard @p owner; returns its id. */
    ChannelId
    add(int owner)
    {
        const std::size_t logical =
            per_lane_next_[static_cast<std::size_t>(lane_)]++;
        const auto id = static_cast<ChannelId>(
            logical * stride_ + static_cast<std::size_t>(lane_));
        if (ids_ <= id) {
            ids_ = static_cast<std::size_t>(id) + 1;
            const std::size_t padded = detail::paddedIds(id);
            if (head_.size() < padded) {
                head_.resize(padded, 0);
                mid_.resize(padded, 0);
                tail_.resize(padded, 0);
                meta_.resize(padded);
                remote_bits_.resize(padded >> 6, 0);
            }
            buf_.resize(ids_ * cap_);
        }
        head_[id] = mid_[id] = tail_[id] = 0;
        meta_[id] = Meta{};
        meta_[id].owner = static_cast<std::uint16_t>(owner);
        remote_bits_[id >> 6] &= ~(1ull << (id & 63u));
        rotators_[static_cast<std::size_t>(owner)]->ensure(id);
        return id;
    }

    std::size_t channelCount() const { return ids_; }

    /** The Rotatable to register with shard @p s's engine. */
    sim::Rotatable *rotator(int s)
    {
        return rotators_[static_cast<std::size_t>(s)].get();
    }

    void
    bindWake(ChannelId id, std::uint32_t *mask, std::uint32_t bit)
    {
        meta_[id].wake.bindLocal(mask, bit);
        remote_bits_[id >> 6] &= ~(1ull << (id & 63u));
    }

    void
    bindRemoteWake(ChannelId id, std::atomic<std::uint32_t> *mask,
                   std::uint32_t bit)
    {
        meta_[id].wake.bindRemote(mask, bit);
        remote_bits_[id >> 6] |= 1ull << (id & 63u);
    }

    /** True if no flit is currently visible to the consumer. */
    bool
    empty(ChannelId id) const
    {
        return headOf(id) == mid_[id];
    }

    /** Flits currently visible to the consumer. */
    std::uint32_t
    visibleCount(ChannelId id) const
    {
        return mid_[id] - headOf(id);
    }

    /** Enqueue a flit; visible after the owner's next rotation. */
    void
    push(ChannelId id, const Flit &flit)
    {
        stage(id) = flit;
    }

    /**
     * Reserve the next staged slot of @p id and return it for the
     * caller to fill in place (same bookkeeping as push(), minus one
     * 32-byte flit copy on the switch-traversal hot path). The slot
     * stays invisible to the consumer until rotation, so in-place
     * mutation after stage() is race-free.
     */
    Flit &
    stage(ChannelId id)
    {
        LOCSIM_ASSERT(tail_[id] - headOf(id) < cap_,
                      "flit link overflow: credit protocol violated");
        Flit &staged = buf_[slot(id, tail_[id])];
        ++tail_[id];
        const Meta &m = meta_[id];
        rotators_[m.owner]->markChannel(id);
        m.wake.wakeOnPush();
        return staged;
    }

    /** Peek the oldest visible flit. */
    const Flit &
    front(ChannelId id) const
    {
        LOCSIM_ASSERT(!empty(id), "front() on empty link");
        return buf_[slot(id, headOf(id))];
    }

    /**
     * Batch-drain view: snapshot the head cursor, read the visible
     * flits with at(), then retire them all with one consume() — one
     * cursor load and one store per port-drain instead of per flit.
     */
    std::uint32_t headCursor(ChannelId id) const { return headOf(id); }

    const Flit &
    at(ChannelId id, std::uint32_t index) const
    {
        return buf_[slot(id, index)];
    }

    /** Retire @p count flits starting at the current head cursor. */
    void
    consume(ChannelId id, std::uint32_t count)
    {
        const std::uint32_t head = headOf(id);
        LOCSIM_ASSERT(mid_[id] - head >= count,
                      "consume() past the visible region");
        std::atomic_ref<std::uint32_t>(head_[id]).store(
            head + count, std::memory_order_relaxed);
    }

    /** Dequeue the oldest visible flit. */
    Flit
    pop(ChannelId id)
    {
        LOCSIM_ASSERT(!empty(id), "pop() on empty link");
        const std::uint32_t head = headOf(id);
        const Flit flit = buf_[slot(id, head)];
        std::atomic_ref<std::uint32_t>(head_[id]).store(
            head + 1, std::memory_order_relaxed);
        return flit;
    }

    /** Publish staged flits of @p id (rotation phase only). */
    void
    publishChannel(ChannelId id)
    {
        meta_[id].wake.wakeOnPublish();
        mid_[id] = tail_[id];
    }

    /**
     * Publish every dirty channel of one 64-channel word (rotation
     * phase only). Publish-time wakes exist only for cross-shard
     * channels (remote_bits_), handled scalar; the cursor copy for
     * the whole word then runs as one lane-vector pass.
     */
    void
    publishWord(std::uint32_t word, std::uint64_t bits)
    {
        const ChannelId base = static_cast<ChannelId>(word) << 6;
        std::uint64_t remote = bits & remote_bits_[word];
        while (remote != 0) {
            const int b = std::countr_zero(remote);
            remote &= remote - 1;
            meta_[base + static_cast<ChannelId>(b)]
                .wake.wakeOnPublish();
        }
        kernels::flitPublishWord(mid_.data() + base,
                                 tail_.data() + base, bits, level_);
    }

    /**
     * Serialize one channel, byte-identical to the old FlitRing
     * stream: raw monotonic indices plus the occupied flits. The
     * cursors are stored as 32-bit in memory but widen back to the
     * stream's 64-bit fields (a link carries at most one flit per
     * cycle, so cursors stay far below 2^32 for any realistic run).
     */
    void
    saveChannel(util::Serializer &s, ChannelId id) const
    {
        const std::uint32_t head = headOf(id);
        s.put(static_cast<std::uint64_t>(head));
        s.put(static_cast<std::uint64_t>(mid_[id]));
        s.put(static_cast<std::uint64_t>(tail_[id]));
        for (std::uint32_t i = head; i != tail_[id]; ++i)
            saveFlit(s, buf_[slot(id, i)]);
    }

    void
    loadChannel(util::Deserializer &d, ChannelId id)
    {
        head_[id] = static_cast<std::uint32_t>(d.get<std::uint64_t>());
        mid_[id] = static_cast<std::uint32_t>(d.get<std::uint64_t>());
        tail_[id] = static_cast<std::uint32_t>(d.get<std::uint64_t>());
        LOCSIM_ASSERT(tail_[id] - head_[id] <= cap_,
                      "flit ring checkpoint exceeds capacity");
        for (std::uint32_t i = head_[id]; i != tail_[id]; ++i)
            buf_[slot(id, i)] = loadFlit(d);
    }

    /** Resident bytes of control + slab storage (footprint). */
    std::size_t
    memoryBytes() const
    {
        return (head_.capacity() + mid_.capacity() +
                tail_.capacity()) *
                   sizeof(std::uint32_t) +
               meta_.capacity() * sizeof(Meta) +
               remote_bits_.capacity() * sizeof(std::uint64_t) +
               buf_.capacity() * sizeof(Flit) +
               per_lane_next_.capacity() * sizeof(std::uint32_t);
    }

  private:
    /**
     * Cold per-channel metadata, split from the hot ring cursors so
     * the publish kernels stream pure uint32 arrays: the wake binding
     * (touched at push/publish, not copied by the kernels) and the
     * owning shard.
     */
    struct Meta
    {
        WakeBinding wake;
        std::uint16_t owner = 0;
    };

    std::size_t
    slot(ChannelId id, std::uint32_t index) const
    {
        return (static_cast<std::size_t>(id) << shift_) +
               static_cast<std::size_t>(index & mask_);
    }

    /**
     * head is written by the consumer shard while the producer-side
     * overflow assert reads it, so cross-shard accesses go through
     * std::atomic_ref (relaxed), mirroring the old atomic member.
     */
    std::uint32_t
    headOf(ChannelId id) const
    {
        return std::atomic_ref<const std::uint32_t>(head_[id]).load(
            std::memory_order_relaxed);
    }

    std::size_t cap_ = 0;
    std::uint32_t mask_ = 0;
    unsigned shift_ = 0;
    int lanes_ = 1;
    int lane_ = 0;
    std::size_t stride_ = 1;
    std::size_t ids_ = 0; //!< allocated ids (pad slots excluded above)
    std::vector<std::uint32_t> per_lane_next_;
    util::simd::Level level_;

    /**
     * Ring cursors, one hot uint32 per channel per array ([head, mid)
     * visible, [mid, tail) staged; monotonic, differences are wrap-
     * safe), padded to whole 64-channel words for the vector publish.
     * Pad slots are never read or written outside full-word kernel
     * loads.
     */
    std::vector<std::uint32_t> head_;
    std::vector<std::uint32_t> mid_;
    std::vector<std::uint32_t> tail_;
    std::vector<Meta> meta_;
    /** Channels whose wake binding is remote, per dirty word. */
    std::vector<std::uint64_t> remote_bits_;
    std::vector<Flit> buf_;

    std::vector<std::unique_ptr<LinkRotator<FlitLinkStore>>> rotators_;
};

/**
 * All credit-return links, flattened: staged/visible counters per VC
 * in one contiguous array of stride 2 * vcs per channel.
 */
class CreditLinkStore
{
  public:
    static constexpr int kMaxVcs = 8;

    CreditLinkStore(int vcs, int shards, int lanes = 1)
        : vcs_(vcs), lanes_(lanes), stride_(detail::laneStride(lanes)),
          per_lane_next_(static_cast<std::size_t>(lanes), 0),
          level_(util::simd::activeLevel())
    {
        LOCSIM_ASSERT(vcs >= 1 && vcs <= kMaxVcs, "VC count range");
        LOCSIM_ASSERT(lanes >= 1, "lane count must be >= 1");
        rotators_.reserve(static_cast<std::size_t>(shards));
        for (int s = 0; s < shards; ++s) {
            rotators_.push_back(
                std::make_unique<LinkRotator<CreditLinkStore>>(*this));
        }
    }

    /** Direct subsequent add() calls to lane @p lane. */
    void
    beginLane(int lane)
    {
        LOCSIM_ASSERT(lane >= 0 && lane < lanes_, "lane out of range");
        lane_ = lane;
    }

    /** Channels allocated so far by lane @p lane. */
    std::uint32_t
    laneChannels(int lane) const
    {
        return per_lane_next_[static_cast<std::size_t>(lane)];
    }

    ChannelId
    add(int owner)
    {
        const std::size_t logical =
            per_lane_next_[static_cast<std::size_t>(lane_)]++;
        const auto id = static_cast<ChannelId>(
            logical * stride_ + static_cast<std::size_t>(lane_));
        if (ids_ <= id) {
            ids_ = static_cast<std::size_t>(id) + 1;
            const std::size_t padded = detail::paddedIds(id);
            if (meta_.size() < padded) {
                meta_.resize(padded);
                remote_bits_.resize(padded >> 6, 0);
            }
            counts_.resize(ids_ * 2 * static_cast<std::size_t>(vcs_),
                           0);
        }
        meta_[id] = Meta{};
        meta_[id].owner = static_cast<std::uint16_t>(owner);
        remote_bits_[id >> 6] &= ~(1ull << (id & 63u));
        const std::size_t st = stagedBase(id);
        for (int vc = 0; vc < 2 * vcs_; ++vc)
            counts_[st + static_cast<std::size_t>(vc)] = 0;
        rotators_[static_cast<std::size_t>(owner)]->ensure(id);
        return id;
    }

    std::size_t channelCount() const { return ids_; }

    sim::Rotatable *rotator(int s)
    {
        return rotators_[static_cast<std::size_t>(s)].get();
    }

    void
    bindWake(ChannelId id, std::uint32_t *mask, std::uint32_t bit)
    {
        meta_[id].wake.bindLocal(mask, bit);
        remote_bits_[id >> 6] &= ~(1ull << (id & 63u));
    }

    void
    bindRemoteWake(ChannelId id, std::atomic<std::uint32_t> *mask,
                   std::uint32_t bit)
    {
        meta_[id].wake.bindRemote(mask, bit);
        remote_bits_[id >> 6] |= 1ull << (id & 63u);
    }

    /** Return one credit for (id, vc); visible after rotation. */
    void
    push(ChannelId id, int vc)
    {
        ++counts_[stagedBase(id) + static_cast<std::size_t>(vc)];
        const Meta &m = meta_[id];
        rotators_[m.owner]->markChannel(id);
        m.wake.wakeOnPush();
    }

    /** Drain and return all visible credits for (id, vc). */
    int
    take(ChannelId id, int vc)
    {
        int &count =
            counts_[visibleBase(id) + static_cast<std::size_t>(vc)];
        return std::exchange(count, 0);
    }

    /** Drain and return all visible credits of @p id across VCs. */
    int
    takeAll(ChannelId id)
    {
        int total = 0;
        int *vis = counts_.data() + visibleBase(id);
        for (int vc = 0; vc < vcs_; ++vc)
            total += std::exchange(vis[vc], 0);
        return total;
    }

    void
    publishChannel(ChannelId id)
    {
        const Meta &m = meta_[id];
        m.wake.wakeOnPublish();
        int *st = counts_.data() + stagedBase(id);
        int *vis = st + vcs_;
        for (int vc = 0; vc < vcs_; ++vc) {
            vis[vc] += st[vc];
            st[vc] = 0;
        }
    }

    /** Publish every dirty channel of one word (rotation phase only);
     *  see FlitLinkStore::publishWord for the remote/vector split. */
    void
    publishWord(std::uint32_t word, std::uint64_t bits)
    {
        const ChannelId base = static_cast<ChannelId>(word) << 6;
        std::uint64_t remote = bits & remote_bits_[word];
        while (remote != 0) {
            const int b = std::countr_zero(remote);
            remote &= remote - 1;
            meta_[base + static_cast<ChannelId>(b)]
                .wake.wakeOnPublish();
        }
        kernels::creditPublishWord(counts_.data() + stagedBase(base),
                                   bits, vcs_, level_);
    }

    /** Byte-identical to the old CreditPipe stream. */
    void
    saveChannel(util::Serializer &s, ChannelId id) const
    {
        const std::size_t st = stagedBase(id);
        const std::size_t vis = visibleBase(id);
        for (int vc = 0; vc < vcs_; ++vc) {
            s.put(counts_[st + static_cast<std::size_t>(vc)]);
            s.put(counts_[vis + static_cast<std::size_t>(vc)]);
        }
    }

    void
    loadChannel(util::Deserializer &d, ChannelId id)
    {
        const std::size_t st = stagedBase(id);
        const std::size_t vis = visibleBase(id);
        for (int vc = 0; vc < vcs_; ++vc) {
            counts_[st + static_cast<std::size_t>(vc)] = d.get<int>();
            counts_[vis + static_cast<std::size_t>(vc)] = d.get<int>();
        }
    }

    /** Resident bytes of counter + metadata storage (footprint). */
    std::size_t
    memoryBytes() const
    {
        return counts_.capacity() * sizeof(int) +
               meta_.capacity() * sizeof(Meta) +
               remote_bits_.capacity() * sizeof(std::uint64_t) +
               per_lane_next_.capacity() * sizeof(std::uint32_t);
    }

  private:
    struct Meta
    {
        WakeBinding wake;
        std::uint16_t owner = 0;
    };

    /** Per-channel layout: [staged x vcs][visible x vcs], so one
     *  credit operation touches a single cache line of counters. */
    std::size_t
    stagedBase(ChannelId id) const
    {
        return 2 * static_cast<std::size_t>(id) *
               static_cast<std::size_t>(vcs_);
    }

    std::size_t
    visibleBase(ChannelId id) const
    {
        return stagedBase(id) + static_cast<std::size_t>(vcs_);
    }

    int vcs_;
    int lanes_ = 1;
    int lane_ = 0;
    std::size_t stride_ = 1;
    std::size_t ids_ = 0;
    std::vector<std::uint32_t> per_lane_next_;
    util::simd::Level level_;
    std::vector<int> counts_;
    std::vector<Meta> meta_;
    /** Channels whose wake binding is remote, per dirty word. */
    std::vector<std::uint64_t> remote_bits_;

    std::vector<std::unique_ptr<LinkRotator<CreditLinkStore>>>
        rotators_;
};

/**
 * The pair of SoA stores one fabric (or one K-lane batch of fabrics)
 * draws its links from. A solo Network owns one of these; a batch
 * owner (machine::MachineBatch, or a bench harness) constructs one
 * with lanes == K, points each lane's Network at it, and registers
 * the rotators with the shared engines exactly once.
 */
class LinkStores
{
  public:
    LinkStores(int max_occupancy, int vcs, int shards, int lanes = 1)
        : flits(max_occupancy, shards, lanes),
          credits(vcs, shards, lanes)
    {
    }

    /** Direct both stores' subsequent add() calls to lane @p lane. */
    void
    beginLane(int lane)
    {
        flits.beginLane(lane);
        credits.beginLane(lane);
    }

    /**
     * Register each store's per-shard rotator with the matching
     * engine. Call once per batch, not once per lane: the rotator is
     * shared by every lane's channels, and a double registration
     * would rotate it twice per tick in Reference mode.
     */
    template <typename EngineT>
    void
    registerRotators(const std::vector<EngineT *> &engines)
    {
        for (std::size_t s = 0; s < engines.size(); ++s) {
            engines[s]->addChannel(flits.rotator(static_cast<int>(s)));
            engines[s]->addChannel(
                credits.rotator(static_cast<int>(s)));
        }
    }

    FlitLinkStore flits;
    CreditLinkStore credits;
};

} // namespace net
} // namespace locsim

#endif // LOCSIM_NET_LINK_FABRIC_HH_
