/**
 * @file
 * Router implementation.
 */

#include "net/router.hh"

#include <bit>

#include "util/logging.hh"

namespace locsim {
namespace net {

Router::Router(const TorusTopology &topo, sim::NodeId node,
               const RouterConfig &config)
    : topo_(topo), node_(node), config_(config)
{
    LOCSIM_ASSERT(config_.vcs >= 2,
                  "torus wormhole routing needs >= 2 virtual channels");
    LOCSIM_ASSERT(config_.buffer_depth >= 1, "buffer depth must be >= 1");

    const int ports = portCount();
    LOCSIM_ASSERT(ports * config_.vcs < 32,
                  "activity masks hold one bit per input unit");
    LOCSIM_ASSERT(config_.vcs <= CreditPipe::kMaxVcs,
                  "per-port VC state uses fixed-size arrays");
    inputs_.resize(static_cast<std::size_t>(ports * config_.vcs));
    std::size_t vc_cap = 2;
    while (vc_cap < static_cast<std::size_t>(config_.buffer_depth))
        vc_cap <<= 1;
    vc_buf_.resize(vc_cap * inputs_.size());
    for (std::size_t unit = 0; unit < inputs_.size(); ++unit) {
        inputs_[unit].slots = vc_buf_.data() + unit * vc_cap;
        inputs_[unit].mask = static_cast<std::uint32_t>(vc_cap - 1);
    }
    outputs_.resize(static_cast<std::size_t>(ports));
    for (auto &out : outputs_)
        out.owner.fill(-1);
    for (int unit = 0; unit < ports * config_.vcs; ++unit) {
        unit_port_[static_cast<std::size_t>(unit)] =
            static_cast<std::int8_t>(unit / config_.vcs);
        unit_vc_[static_cast<std::size_t>(unit)] =
            static_cast<std::int8_t>(unit % config_.vcs);
    }
    in_links_.assign(static_cast<std::size_t>(ports), nullptr);
    out_links_.assign(static_cast<std::size_t>(ports), nullptr);
    credit_up_.assign(static_cast<std::size_t>(ports), nullptr);
    credit_down_.assign(static_cast<std::size_t>(ports), nullptr);
    output_flits_.resize(static_cast<std::size_t>(ports));
}

void
Router::connect(int port, FlitChannel *in, FlitChannel *out,
                CreditChannel *credit_up, CreditChannel *credit_down)
{
    LOCSIM_ASSERT(port >= 0 && port < portCount(), "bad port index");
    const auto p = static_cast<std::size_t>(port);
    in_links_[p] = in;
    out_links_[p] = out;
    credit_up_[p] = credit_up;
    credit_down_[p] = credit_down;
    // Input channels wake this router at push time so tick() visits
    // only the ports that actually carry something.
    if (in != nullptr)
        in->bindWake(&flit_wake_staged_, 1u << port);
    if (credit_down != nullptr)
        credit_down->bindWake(&credit_wake_staged_, 1u << port);
    // The consumer downstream of `out` exposes buffer_depth slots per
    // VC; start with full credit.
    if (out != nullptr) {
        for (int v = 0; v < config_.vcs; ++v)
            outputs_[p].credits[static_cast<std::size_t>(v)] =
                config_.buffer_depth;
    }
}

Router::InputVc &
Router::inputVc(int port, int vc)
{
    return inputs_[static_cast<std::size_t>(port * config_.vcs + vc)];
}

void
Router::receiveCredits()
{
    // Visit only the ports whose credit pipes woke us; the wake
    // contract guarantees every other credit pipe is empty.
    std::uint32_t ports = std::exchange(credit_wake_, 0u);
    while (ports != 0) {
        const int port = std::countr_zero(ports);
        ports &= ports - 1;
        CreditChannel *ch = credit_down_[static_cast<std::size_t>(port)];
        auto &credits = outputs_[static_cast<std::size_t>(port)].credits;
        for (int vc = 0; vc < config_.vcs; ++vc) {
            const int taken = ch->take(vc);
            if (taken == 0)
                continue;
            int &count = credits[static_cast<std::size_t>(vc)];
            count += taken;
            LOCSIM_ASSERT(count <= config_.buffer_depth,
                          "credit overflow on node ", node_, " port ",
                          port);
        }
    }
}

void
Router::receiveFlits()
{
    std::uint32_t ports = std::exchange(flit_wake_, 0u);
    while (ports != 0) {
        const int port = std::countr_zero(ports);
        ports &= ports - 1;
        FlitChannel *ch = in_links_[static_cast<std::size_t>(port)];
        while (!ch->empty()) {
            Flit flit = ch->pop();
            LOCSIM_ASSERT(flit.vc < config_.vcs, "flit VC range");
            const int unit = port * config_.vcs + flit.vc;
            InputVc &ivc = inputs_[static_cast<std::size_t>(unit)];
            LOCSIM_ASSERT(static_cast<int>(ivc.bufSize()) <
                              config_.buffer_depth,
                          "input buffer overflow: credit protocol "
                          "violated at node ",
                          node_, " port ", port, " vc ",
                          static_cast<int>(flit.vc));
            ivc.bufPush(flit);
            vc_occupied_ |= 1u << unit;
            ++buffered_;
        }
    }
}

void
Router::computeRoute(int port, InputVc &ivc)
{
    const Flit &head = ivc.bufFront();
    LOCSIM_ASSERT(head.head, "routing a non-head flit");

    if (head.dst == node_) {
        ivc.out_port = localPort();
        ivc.out_vc = 0;
        ivc.route_valid = true;
        return;
    }

    const HopStep step = topo_.nextHop(node_, head.dst);
    // Dateline state resets when the packet enters a new dimension.
    bool crossed = false;
    if (port != localPort() && port / 2 == step.dim)
        crossed = head.crossed_dateline;
    ivc.out_port = portFor(step.dim, step.dir);
    ivc.out_vc = (crossed || step.wraps) ? 1 : 0;
    ivc.route_valid = true;
}

void
Router::routeAndAllocate(sim::Tick now)
{
    const int units = portCount() * config_.vcs;
    // Rotate the scan start so no input unit starves under contention.
    // The start advances once per network cycle; deriving it from the
    // tick (routers are clocked at period 1) makes it independent of
    // how many idle cycles were skipped.
    int start;
    if (now == rr_now_ + 1) {
        start = rr_start_ + 1 == units ? 0 : rr_start_ + 1;
    } else {
        start = static_cast<int>(now % static_cast<sim::Tick>(units));
    }
    rr_now_ = now;
    rr_start_ = start;
    // Visit only units with buffered flits, in the same rotated order
    // (start, start+1, ..., wrapping) as a full scan would.
    std::uint32_t pending = vc_occupied_;
    if (start != 0) {
        pending = ((pending >> start) | (pending << (units - start))) &
                  ((1u << units) - 1u);
    }
    while (pending != 0) {
        const int offset = std::countr_zero(pending);
        pending &= pending - 1;
        int unit = start + offset;
        if (unit >= units)
            unit -= units;
        const int port = unit_port_[static_cast<std::size_t>(unit)];
        InputVc &ivc = inputs_[static_cast<std::size_t>(unit)];
        if (ivc.routed)
            continue;
        if (!ivc.route_valid) {
            if (!ivc.bufFront().head) {
                // A body flit can be at the front only if the head
                // already passed, in which case routed would still be
                // true; seeing one here means the wormhole state
                // machine broke.
                LOCSIM_PANIC("body flit with no route at node ", node_);
            }
            computeRoute(port, ivc);
        }
        // Try to claim the output VC (wormhole allocation). On
        // failure the cached route is kept and the claim retried
        // next cycle.
        OutputPort &out =
            outputs_[static_cast<std::size_t>(ivc.out_port)];
        int &owner = out.owner[static_cast<std::size_t>(ivc.out_vc)];
        if (owner == -1) {
            owner = unit;
            owned_ports_ |= 1u << ivc.out_port;
            ivc.routed = true;
        } else {
            // Output VC held by another packet: the head flit stalls
            // in place. Counted both globally and on the flit itself
            // (per-message contention attribution; saturating).
            alloc_stalls_.inc();
            Flit &head = ivc.bufFrontMut();
            if (head.stalls != UINT16_MAX)
                ++head.stalls;
            if (tracer_ != nullptr) {
                tracer_->instant(
                    trace_track_, now, "alloc_stall",
                    obs::Category::Net,
                    std::move(obs::Args()
                                  .add("msg", head.msg)
                                  .add("out_port", ivc.out_port)
                                  .add("out_vc", ivc.out_vc))
                        .str());
            }
        }
    }
}

void
Router::switchTraversal(sim::Tick now)
{
    (void)now; // only read when flit-level tracing is on
    // One bit per input port; ports are bounded well below 32
    // (2 * dims + 1), so a mask avoids a heap allocation per call.
    std::uint32_t input_port_used = 0;

    // Visit only output ports with an owned VC, in ascending port
    // order (the same order a full scan visits them).
    std::uint32_t owned = owned_ports_;
    while (owned != 0) {
        const int port = std::countr_zero(owned);
        owned &= owned - 1;
        OutputPort &out = outputs_[static_cast<std::size_t>(port)];
        FlitChannel *link = out_links_[static_cast<std::size_t>(port)];
        if (link == nullptr)
            continue;
        // One flit per output port per cycle: round-robin over VCs.
        int vc = out.next_vc;
        for (int i = 0; i < config_.vcs;
             ++i, vc = vc + 1 == config_.vcs ? 0 : vc + 1) {
            const int owner = out.owner[static_cast<std::size_t>(vc)];
            if (owner == -1)
                continue;
            const int in_port =
                unit_port_[static_cast<std::size_t>(owner)];
            const int in_vc = unit_vc_[static_cast<std::size_t>(owner)];
            if (input_port_used & (1u << in_port))
                continue;
            InputVc &ivc = inputVc(in_port, in_vc);
            if (ivc.bufEmpty())
                continue;
            if (out.credits[static_cast<std::size_t>(vc)] <= 0)
                continue;

            Flit flit = ivc.bufFront();
            ivc.bufPop();
            --buffered_;
            if (ivc.bufEmpty())
                vc_occupied_ &= ~(1u << owner);
            input_port_used |= 1u << in_port;

            // Return a credit upstream for the freed buffer slot.
            CreditChannel *up =
                credit_up_[static_cast<std::size_t>(in_port)];
            if (up != nullptr)
                up->push(in_vc);

            // Rewrite link-level VC and dateline state.
            const bool to_neighbor = port != localPort();
            if (flit.head && to_neighbor) {
                flit.crossed_dateline = (ivc.out_vc == 1);
                // One more physical link traversed (attribution).
                if (flit.hops != UINT16_MAX)
                    ++flit.hops;
            }
            flit.vc = static_cast<std::uint8_t>(vc);

            --out.credits[static_cast<std::size_t>(vc)];
            link->push(flit);
            output_flits_[static_cast<std::size_t>(port)].inc();
            if (tracer_ != nullptr) {
                tracer_->instant(
                    trace_track_, now, "flit", obs::Category::Net,
                    std::move(obs::Args()
                                  .add("msg", flit.msg)
                                  .add("seq", flit.seq)
                                  .add("port", port)
                                  .add("vc", vc))
                        .str());
                if (up != nullptr) {
                    tracer_->instant(
                        trace_track_, now, "credit",
                        obs::Category::Net,
                        std::move(obs::Args()
                                      .add("port", in_port)
                                      .add("vc", in_vc))
                            .str());
                }
            }

            if (flit.tail) {
                out.owner[static_cast<std::size_t>(vc)] = -1;
                ivc.routed = false;
                ivc.route_valid = false;
                ivc.out_port = -1;
                ivc.out_vc = -1;
                bool any_owner = false;
                for (int v = 0; v < config_.vcs; ++v) {
                    if (out.owner[static_cast<std::size_t>(v)] != -1) {
                        any_owner = true;
                        break;
                    }
                }
                if (!any_owner)
                    owned_ports_ &= ~(1u << port);
            }
            out.next_vc = vc + 1 == config_.vcs ? 0 : vc + 1;
            break;
        }
    }
}

void
Router::tick(sim::Tick now)
{
    if (credit_wake_ != 0)
        receiveCredits();
    if (flit_wake_ != 0)
        receiveFlits();
    // Both remaining phases only act on buffered flits (an output VC
    // owner with an empty input buffer is waiting on upstream body
    // flits and makes no progress), so a router woken only to absorb
    // credits stops here.
    if (buffered_ == 0)
        return;
    routeAndAllocate(now);
    switchTraversal(now);
}

std::size_t
Router::bufferedFlits() const
{
    return buffered_;
}

} // namespace net
} // namespace locsim
