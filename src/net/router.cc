/**
 * @file
 * Router implementation.
 */

#include "net/router.hh"

#include "util/logging.hh"

namespace locsim {
namespace net {

Router::Router(const TorusTopology &topo, sim::NodeId node,
               const RouterConfig &config)
    : topo_(topo), node_(node), config_(config)
{
    LOCSIM_ASSERT(config_.vcs >= 2,
                  "torus wormhole routing needs >= 2 virtual channels");
    LOCSIM_ASSERT(config_.buffer_depth >= 1, "buffer depth must be >= 1");

    const int ports = portCount();
    inputs_.resize(static_cast<std::size_t>(ports * config_.vcs));
    outputs_.resize(static_cast<std::size_t>(ports));
    for (auto &out : outputs_) {
        out.owner.assign(static_cast<std::size_t>(config_.vcs), -1);
        out.credits.assign(static_cast<std::size_t>(config_.vcs), 0);
    }
    in_links_.assign(static_cast<std::size_t>(ports), nullptr);
    out_links_.assign(static_cast<std::size_t>(ports), nullptr);
    credit_up_.assign(static_cast<std::size_t>(ports), nullptr);
    credit_down_.assign(static_cast<std::size_t>(ports), nullptr);
    output_flits_.resize(static_cast<std::size_t>(ports));
}

void
Router::connect(int port, FlitChannel *in, FlitChannel *out,
                CreditChannel *credit_up, CreditChannel *credit_down)
{
    LOCSIM_ASSERT(port >= 0 && port < portCount(), "bad port index");
    const auto p = static_cast<std::size_t>(port);
    in_links_[p] = in;
    out_links_[p] = out;
    credit_up_[p] = credit_up;
    credit_down_[p] = credit_down;
    // The consumer downstream of `out` exposes buffer_depth slots per
    // VC; start with full credit.
    if (out != nullptr) {
        for (int v = 0; v < config_.vcs; ++v)
            outputs_[p].credits[static_cast<std::size_t>(v)] =
                config_.buffer_depth;
    }
}

Router::InputVc &
Router::inputVc(int port, int vc)
{
    return inputs_[static_cast<std::size_t>(port * config_.vcs + vc)];
}

void
Router::receiveCredits()
{
    for (int port = 0; port < portCount(); ++port) {
        CreditChannel *ch = credit_down_[static_cast<std::size_t>(port)];
        if (ch == nullptr)
            continue;
        while (!ch->empty()) {
            const Credit credit = ch->pop();
            auto &credits =
                outputs_[static_cast<std::size_t>(port)].credits;
            LOCSIM_ASSERT(credit.vc < config_.vcs, "credit VC range");
            int &count = credits[credit.vc];
            ++count;
            LOCSIM_ASSERT(count <= config_.buffer_depth,
                          "credit overflow on node ", node_, " port ",
                          port);
        }
    }
}

void
Router::receiveFlits()
{
    for (int port = 0; port < portCount(); ++port) {
        FlitChannel *ch = in_links_[static_cast<std::size_t>(port)];
        if (ch == nullptr)
            continue;
        while (!ch->empty()) {
            Flit flit = ch->pop();
            LOCSIM_ASSERT(flit.vc < config_.vcs, "flit VC range");
            InputVc &ivc = inputVc(port, flit.vc);
            LOCSIM_ASSERT(static_cast<int>(ivc.buffer.size()) <
                              config_.buffer_depth,
                          "input buffer overflow: credit protocol "
                          "violated at node ",
                          node_, " port ", port, " vc ",
                          static_cast<int>(flit.vc));
            ivc.buffer.push_back(flit);
        }
    }
}

void
Router::computeRoute(int port, InputVc &ivc)
{
    const Flit &head = ivc.buffer.front();
    LOCSIM_ASSERT(head.head, "routing a non-head flit");

    if (head.dst == node_) {
        ivc.out_port = localPort();
        ivc.out_vc = 0;
        ivc.routed = true;
        return;
    }

    const HopStep step = topo_.nextHop(node_, head.dst);
    // Dateline state resets when the packet enters a new dimension.
    bool crossed = false;
    if (port != localPort() && port / 2 == step.dim)
        crossed = head.crossed_dateline;
    ivc.out_port = portFor(step.dim, step.dir);
    ivc.out_vc = (crossed || step.wraps) ? 1 : 0;
    ivc.routed = true;
}

void
Router::routeAndAllocate()
{
    const int units = portCount() * config_.vcs;
    // Rotate the scan start so no input unit starves under contention.
    for (int i = 0; i < units; ++i) {
        const int unit = (alloc_rr_ + i) % units;
        const int port = unit / config_.vcs;
        InputVc &ivc = inputs_[static_cast<std::size_t>(unit)];
        if (ivc.buffer.empty() || ivc.routed)
            continue;
        if (!ivc.buffer.front().head) {
            // A body flit can be at the front only if the head already
            // passed, in which case routed would still be true; seeing
            // one here means the wormhole state machine broke.
            LOCSIM_PANIC("body flit with no route at node ", node_);
        }
        computeRoute(port, ivc);
        // Try to claim the output VC (wormhole allocation).
        OutputPort &out =
            outputs_[static_cast<std::size_t>(ivc.out_port)];
        int &owner = out.owner[static_cast<std::size_t>(ivc.out_vc)];
        if (owner == -1) {
            owner = unit;
        } else if (owner != unit) {
            // VC busy: stay routed, retry allocation next cycle.
            ivc.routed = false;
            ivc.out_port = -1;
            ivc.out_vc = -1;
        }
    }
    alloc_rr_ = (alloc_rr_ + 1) % units;
}

void
Router::switchTraversal()
{
    std::vector<bool> input_port_used(
        static_cast<std::size_t>(portCount()), false);

    for (int port = 0; port < portCount(); ++port) {
        OutputPort &out = outputs_[static_cast<std::size_t>(port)];
        FlitChannel *link = out_links_[static_cast<std::size_t>(port)];
        if (link == nullptr)
            continue;
        // One flit per output port per cycle: round-robin over VCs.
        for (int i = 0; i < config_.vcs; ++i) {
            const int vc = (out.next_vc + i) % config_.vcs;
            const int owner = out.owner[static_cast<std::size_t>(vc)];
            if (owner == -1)
                continue;
            const int in_port = owner / config_.vcs;
            const int in_vc = owner % config_.vcs;
            if (input_port_used[static_cast<std::size_t>(in_port)])
                continue;
            InputVc &ivc = inputVc(in_port, in_vc);
            if (ivc.buffer.empty())
                continue;
            if (out.credits[static_cast<std::size_t>(vc)] <= 0)
                continue;

            Flit flit = ivc.buffer.front();
            ivc.buffer.pop_front();
            input_port_used[static_cast<std::size_t>(in_port)] = true;

            // Return a credit upstream for the freed buffer slot.
            CreditChannel *up =
                credit_up_[static_cast<std::size_t>(in_port)];
            if (up != nullptr)
                up->push(Credit{static_cast<std::uint8_t>(in_vc)});

            // Rewrite link-level VC and dateline state.
            const bool to_neighbor = port != localPort();
            if (flit.head && to_neighbor)
                flit.crossed_dateline = (ivc.out_vc == 1);
            flit.vc = static_cast<std::uint8_t>(vc);

            --out.credits[static_cast<std::size_t>(vc)];
            link->push(flit);
            output_flits_[static_cast<std::size_t>(port)].inc();

            if (flit.tail) {
                out.owner[static_cast<std::size_t>(vc)] = -1;
                ivc.routed = false;
                ivc.out_port = -1;
                ivc.out_vc = -1;
            }
            out.next_vc = (vc + 1) % config_.vcs;
            break;
        }
    }
}

void
Router::tick()
{
    receiveCredits();
    receiveFlits();
    routeAndAllocate();
    switchTraversal();
}

std::size_t
Router::bufferedFlits() const
{
    std::size_t total = 0;
    for (const auto &ivc : inputs_)
        total += ivc.buffer.size();
    return total;
}

} // namespace net
} // namespace locsim
