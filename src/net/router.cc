/**
 * @file
 * Router implementation.
 */

#include "net/router.hh"

#include <bit>

#include "util/logging.hh"

namespace locsim {
namespace net {

Router::Router(const TorusTopology &topo, sim::NodeId node,
               const RouterConfig &config, FlitLinkStore &flits,
               CreditLinkStore &credits, const RouterSlices &slices)
    : topo_(topo), node_(node), config_(config), flit_store_(flits),
      credit_store_(credits), inputs_(slices.inputs),
      outputs_(slices.outputs), buffered_(slices.buffered),
      flit_wake_staged_(slices.flit_wake_staged),
      flit_wake_(slices.flit_wake),
      credit_wake_staged_(slices.credit_wake_staged),
      credit_wake_(slices.credit_wake)
{
    LOCSIM_ASSERT(buffered_ != nullptr && flit_wake_ != nullptr,
                  "router wake/occupancy slab words are required");
    LOCSIM_ASSERT(config_.vcs >= 2,
                  "torus wormhole routing needs >= 2 virtual channels");
    LOCSIM_ASSERT(config_.buffer_depth >= 1, "buffer depth must be >= 1");
    LOCSIM_ASSERT(config_.buffer_depth <= 32767,
                  "credit counts are 16-bit");

    const int ports = portCount();
    LOCSIM_ASSERT(ports * config_.vcs < 32,
                  "activity masks hold one bit per input unit");
    LOCSIM_ASSERT(ports <= kMaxPorts, "per-port arrays are fixed-size");
    LOCSIM_ASSERT(config_.vcs <= CreditLinkStore::kMaxVcs,
                  "per-port VC state uses fixed-size arrays");
    const std::size_t vc_cap = vcRingCapacity(config_);
    const int units = unitCount();
    for (int unit = 0; unit < units; ++unit) {
        const auto u = static_cast<std::size_t>(unit);
        inputs_[u] = InputVc{};
        inputs_[u].slots = slices.vc_slots + u * vc_cap;
        inputs_[u].mask = static_cast<std::uint32_t>(vc_cap - 1);
        unit_port_[u] = static_cast<std::int8_t>(unit / config_.vcs);
        unit_vc_[u] = static_cast<std::int8_t>(unit % config_.vcs);
    }
    for (int p = 0; p < ports; ++p) {
        const auto i = static_cast<std::size_t>(p);
        outputs_[i] = OutputPort{};
        outputs_[i].owner.fill(-1);
    }
    in_links_.fill(kNoChannel);
    out_links_.fill(kNoChannel);
    credit_up_.fill(kNoChannel);
    credit_down_.fill(kNoChannel);
}

void
Router::connect(int port, ChannelId in, ChannelId out,
                ChannelId credit_up, ChannelId credit_down)
{
    LOCSIM_ASSERT(port >= 0 && port < portCount(), "bad port index");
    const auto p = static_cast<std::size_t>(port);
    in_links_[p] = in;
    out_links_[p] = out;
    credit_up_[p] = credit_up;
    credit_down_[p] = credit_down;
    // Input channels wake this router at push time so tick() visits
    // only the ports that actually carry something.
    if (in != kNoChannel)
        flit_store_.bindWake(in, flit_wake_staged_, 1u << port);
    if (credit_down != kNoChannel) {
        credit_store_.bindWake(credit_down, credit_wake_staged_,
                               1u << port);
    }
    // The consumer downstream of `out` exposes buffer_depth slots per
    // VC; start with full credit.
    if (out != kNoChannel) {
        for (int v = 0; v < config_.vcs; ++v)
            outputs_[p].credits[static_cast<std::size_t>(v)] =
                static_cast<std::int16_t>(config_.buffer_depth);
    }
}

void
Router::receiveCredits()
{
    // Visit only the ports whose credit links woke us; the wake
    // contract guarantees every other credit link is empty.
    std::uint32_t ports = std::exchange(*credit_wake_, 0u);
    while (ports != 0) {
        const int port = std::countr_zero(ports);
        ports &= ports - 1;
        const ChannelId ch = credit_down_[static_cast<std::size_t>(port)];
        OutputPort &out = outputs_[static_cast<std::size_t>(port)];
        for (int vc = 0; vc < config_.vcs; ++vc) {
            const int taken = credit_store_.take(ch, vc);
            if (taken == 0)
                continue;
            std::int16_t &count =
                out.credits[static_cast<std::size_t>(vc)];
            count = static_cast<std::int16_t>(count + taken);
            LOCSIM_ASSERT(count <= config_.buffer_depth,
                          "credit overflow on node ", node_, " port ",
                          port);
            // Credits for an owned VC may unblock this port (credits
            // for a released VC need no re-arm: a later claim arms it).
            if (out.owner[static_cast<std::size_t>(vc)] != -1)
                ready_ports_ |= 1u << port;
        }
    }
}

void
Router::receiveFlits()
{
    std::uint32_t ports = std::exchange(*flit_wake_, 0u);
    while (ports != 0) {
        const int port = std::countr_zero(ports);
        ports &= ports - 1;
        const ChannelId ch = in_links_[static_cast<std::size_t>(port)];
        // Batch drain: one head-cursor load and one store per port
        // instead of per flit.
        const std::uint32_t n = flit_store_.visibleCount(ch);
        const std::uint32_t head = flit_store_.headCursor(ch);
        for (std::uint32_t i = 0; i < n; ++i) {
            const Flit &flit = flit_store_.at(ch, head + i);
            LOCSIM_ASSERT(flit.vc < config_.vcs, "flit VC range");
            const int unit = port * config_.vcs + flit.vc;
            InputVc &ivc = inputs_[static_cast<std::size_t>(unit)];
            LOCSIM_ASSERT(static_cast<int>(ivc.bufSize()) <
                              config_.buffer_depth,
                          "input buffer overflow: credit protocol "
                          "violated at node ",
                          node_, " port ", port, " vc ",
                          static_cast<int>(flit.vc));
            ivc.bufPush(flit);
            vc_occupied_ |= 1u << unit;
            ++*buffered_;
            if (ivc.routed) {
                // A body flit joined a unit that holds its output VC:
                // that port may forward again.
                ready_ports_ |= 1u << ivc.out_port;
            } else {
                alloc_pending_ |= 1u << unit;
            }
        }
        flit_store_.consume(ch, n);
    }
}

void
Router::computeRoute(int port, InputVc &ivc)
{
    const Flit &head = ivc.bufFront();
    LOCSIM_ASSERT(head.head, "routing a non-head flit");

    if (head.dst == node_) {
        ivc.out_port = static_cast<std::int8_t>(localPort());
        ivc.out_vc = 0;
        ivc.route_valid = true;
        return;
    }

    const HopStep step = topo_.nextHop(node_, head.dst);
    // Dateline state resets when the packet enters a new dimension.
    bool crossed = false;
    if (port != localPort() && port / 2 == step.dim)
        crossed = head.crossed_dateline;
    ivc.out_port = static_cast<std::int8_t>(portFor(step.dim, step.dir));
    ivc.out_vc = (crossed || step.wraps) ? 1 : 0;
    ivc.route_valid = true;
}

void
Router::routeAndAllocate(sim::Tick now)
{
    // The scan start below is a pure function of `now`, so skipping
    // idle cycles entirely (including the rr cache update) leaves
    // arbitration state exactly as if the scan had run and found
    // nothing.
    if (alloc_pending_ == 0)
        return;
    const int units = unitCount();
    // Rotate the scan start so no input unit starves under contention.
    // The start advances once per network cycle; deriving it from the
    // tick (routers are clocked at period 1) makes it independent of
    // how many idle cycles were skipped.
    int start;
    if (now == rr_now_ + 1) {
        start = rr_start_ + 1 == units ? 0 : rr_start_ + 1;
    } else {
        start = static_cast<int>(now % static_cast<sim::Tick>(units));
    }
    rr_now_ = now;
    rr_start_ = start;
    // Visit only units whose head packet still needs an output VC, in
    // the same rotated order (start, start+1, ..., wrapping) as a full
    // scan would; routed and empty units are no-ops in that scan, so
    // pruning them cannot change the allocation outcome.
    std::uint32_t pending = alloc_pending_;
    if (start != 0) {
        pending = ((pending >> start) | (pending << (units - start))) &
                  ((1u << units) - 1u);
    }
    while (pending != 0) {
        const int offset = std::countr_zero(pending);
        pending &= pending - 1;
        int unit = start + offset;
        if (unit >= units)
            unit -= units;
        const int port = unit_port_[static_cast<std::size_t>(unit)];
        InputVc &ivc = inputs_[static_cast<std::size_t>(unit)];
        if (ivc.routed)
            continue;
        if (!ivc.route_valid) {
            if (!ivc.bufFront().head) {
                // A body flit can be at the front only if the head
                // already passed, in which case routed would still be
                // true; seeing one here means the wormhole state
                // machine broke.
                LOCSIM_PANIC("body flit with no route at node ", node_);
            }
            computeRoute(port, ivc);
        }
        // Try to claim the output VC (wormhole allocation). On
        // failure the cached route is kept and the claim retried
        // next cycle.
        OutputPort &out =
            outputs_[static_cast<std::size_t>(ivc.out_port)];
        std::int8_t &owner =
            out.owner[static_cast<std::size_t>(ivc.out_vc)];
        if (owner == -1) {
            owner = static_cast<std::int8_t>(unit);
            owned_ports_ |= 1u << ivc.out_port;
            ready_ports_ |= 1u << ivc.out_port;
            alloc_pending_ &= ~(1u << unit);
            ivc.routed = true;
        } else {
            // Output VC held by another packet: the head flit stalls
            // in place. Counted both globally and on the flit itself
            // (per-message contention attribution; saturating).
            alloc_stalls_.inc();
            Flit &head = ivc.bufFrontMut();
            if (head.stalls != UINT16_MAX)
                ++head.stalls;
            if (tracer_ != nullptr) {
                tracer_->instant(
                    trace_track_, now, "alloc_stall",
                    obs::Category::Net,
                    std::move(obs::Args()
                                  .add("msg", head.msg)
                                  .add("out_port", ivc.out_port)
                                  .add("out_vc", ivc.out_vc))
                        .str());
            }
        }
    }
}

void
Router::switchTraversal(sim::Tick now)
{
    (void)now; // only read when flit-level tracing is on
    // One bit per input port; ports are bounded well below 32
    // (2 * dims + 1), so a mask avoids a heap allocation per call.
    std::uint32_t input_port_used = 0;

    // Visit only output ports that might forward, in ascending port
    // order (the same order a full scan visits them). A port whose
    // owned VCs are all blocked on credits or upstream flits is
    // dropped from the ready set until one of those events re-arms it;
    // skipped ports forward nothing and mark nothing, so pruning them
    // cannot change which flits move.
    std::uint32_t scan = owned_ports_ & ready_ports_;
    if (scan == 0)
        return;
    while (scan != 0) {
        const int port = std::countr_zero(scan);
        scan &= scan - 1;
        OutputPort &out = outputs_[static_cast<std::size_t>(port)];
        const ChannelId link = out_links_[static_cast<std::size_t>(port)];
        if (link == kNoChannel)
            continue;
        bool forwarded = false;
        // Blocked only by the one-flit-per-input-port rule this cycle;
        // could forward next cycle without any new event, so the port
        // must stay armed.
        bool retry = false;
        // One flit per output port per cycle: round-robin over VCs.
        int vc = out.next_vc;
        for (int i = 0; i < config_.vcs;
             ++i, vc = vc + 1 == config_.vcs ? 0 : vc + 1) {
            const int owner = out.owner[static_cast<std::size_t>(vc)];
            if (owner == -1)
                continue;
            const int in_port =
                unit_port_[static_cast<std::size_t>(owner)];
            const int in_vc = unit_vc_[static_cast<std::size_t>(owner)];
            if (input_port_used & (1u << in_port)) {
                retry = true;
                continue;
            }
            InputVc &ivc = inputVc(in_port, in_vc);
            if (ivc.bufEmpty())
                continue; // re-armed by receiveFlits
            if (out.credits[static_cast<std::size_t>(vc)] <= 0)
                continue; // re-armed by receiveCredits

            // Copy the flit straight into its staged link slot and
            // rewrite link-level fields in place (one 32-byte copy per
            // hop instead of buffer -> stack -> link).
            Flit &flit = flit_store_.stage(link);
            flit = ivc.bufFront();
            ivc.bufPop();
            --*buffered_;
            if (ivc.bufEmpty())
                vc_occupied_ &= ~(1u << owner);
            input_port_used |= 1u << in_port;

            // Return a credit upstream for the freed buffer slot.
            const ChannelId up =
                credit_up_[static_cast<std::size_t>(in_port)];
            if (up != kNoChannel)
                credit_store_.push(up, in_vc);

            // Rewrite link-level VC and dateline state.
            const bool to_neighbor = port != localPort();
            if (flit.head && to_neighbor) {
                flit.crossed_dateline = (ivc.out_vc == 1);
                // One more physical link traversed (attribution).
                if (flit.hops != UINT16_MAX)
                    ++flit.hops;
            }
            flit.vc = static_cast<std::uint8_t>(vc);

            --out.credits[static_cast<std::size_t>(vc)];
            output_flits_[static_cast<std::size_t>(port)].inc();
            if (tracer_ != nullptr) {
                tracer_->instant(
                    trace_track_, now, "flit", obs::Category::Net,
                    std::move(obs::Args()
                                  .add("msg", flit.msg)
                                  .add("seq", flit.seq)
                                  .add("port", port)
                                  .add("vc", vc))
                        .str());
                if (up != kNoChannel) {
                    tracer_->instant(
                        trace_track_, now, "credit",
                        obs::Category::Net,
                        std::move(obs::Args()
                                      .add("port", in_port)
                                      .add("vc", in_vc))
                            .str());
                }
            }

            if (flit.tail) {
                out.owner[static_cast<std::size_t>(vc)] = -1;
                ivc.routed = false;
                ivc.route_valid = false;
                ivc.out_port = -1;
                ivc.out_vc = -1;
                // The next packet's head flit (if already buffered)
                // needs an output VC of its own.
                if (!ivc.bufEmpty())
                    alloc_pending_ |= 1u << owner;
                bool any_owner = false;
                for (int v = 0; v < config_.vcs; ++v) {
                    if (out.owner[static_cast<std::size_t>(v)] != -1) {
                        any_owner = true;
                        break;
                    }
                }
                if (!any_owner)
                    owned_ports_ &= ~(1u << port);
            }
            out.next_vc = static_cast<std::int8_t>(
                vc + 1 == config_.vcs ? 0 : vc + 1);
            forwarded = true;
            break;
        }
        if (!forwarded && !retry)
            ready_ports_ &= ~(1u << port);
    }
}

void
Router::tick(sim::Tick now)
{
    if (*credit_wake_ != 0)
        receiveCredits();
    if (*flit_wake_ != 0)
        receiveFlits();
    // Both remaining phases only act on buffered flits (an output VC
    // owner with an empty input buffer is waiting on upstream body
    // flits and makes no progress), so a router woken only to absorb
    // credits stops here.
    if (*buffered_ == 0)
        return;
    routeAndAllocate(now);
    switchTraversal(now);
}

std::size_t
Router::bufferedFlits() const
{
    return *buffered_;
}

} // namespace net
} // namespace locsim
