/**
 * @file
 * TorusTopology implementation.
 */

#include "net/topology.hh"

#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace locsim {
namespace net {

TorusTopology::TorusTopology(int radix, int dims, bool wraparound)
    : radix_(radix), dims_(dims), wraparound_(wraparound)
{
    LOCSIM_ASSERT(radix >= 2, "torus radix must be >= 2, got ", radix);
    LOCSIM_ASSERT(dims >= 1, "torus dims must be >= 1, got ", dims);

    stride_.resize(static_cast<std::size_t>(dims_));
    sim::NodeId stride = 1;
    for (int d = 0; d < dims_; ++d) {
        stride_[static_cast<std::size_t>(d)] = stride;
        const sim::NodeId next = stride * static_cast<sim::NodeId>(radix_);
        LOCSIM_ASSERT(next / static_cast<sim::NodeId>(radix_) == stride,
                      "torus too large for NodeId");
        stride = next;
    }
    node_count_ = stride;
}

int
TorusTopology::coord(sim::NodeId node, int dim) const
{
    LOCSIM_ASSERT(node < node_count_, "node id out of range");
    LOCSIM_ASSERT(dim >= 0 && dim < dims_, "dimension out of range");
    return static_cast<int>(
        (node / stride_[static_cast<std::size_t>(dim)]) %
        static_cast<sim::NodeId>(radix_));
}

std::vector<int>
TorusTopology::coords(sim::NodeId node) const
{
    std::vector<int> out(static_cast<std::size_t>(dims_));
    for (int d = 0; d < dims_; ++d)
        out[static_cast<std::size_t>(d)] = coord(node, d);
    return out;
}

sim::NodeId
TorusTopology::nodeAt(const std::vector<int> &coords) const
{
    LOCSIM_ASSERT(coords.size() == static_cast<std::size_t>(dims_),
                  "coordinate arity mismatch");
    sim::NodeId id = 0;
    for (int d = 0; d < dims_; ++d) {
        const int c = coords[static_cast<std::size_t>(d)];
        LOCSIM_ASSERT(c >= 0 && c < radix_, "coordinate out of range: ",
                      c);
        id += static_cast<sim::NodeId>(c) *
              stride_[static_cast<std::size_t>(d)];
    }
    return id;
}

int
TorusTopology::ringOffset(int from, int to) const
{
    if (!wraparound_)
        return to - from;
    int delta = (to - from) % radix_;
    if (delta < 0)
        delta += radix_;
    // delta in [0, k); map to (-k/2, k/2], ties to positive.
    if (delta * 2 > radix_)
        delta -= radix_;
    return delta;
}

int
TorusTopology::distance(sim::NodeId a, sim::NodeId b) const
{
    int total = 0;
    for (int d = 0; d < dims_; ++d)
        total += std::abs(ringOffset(coord(a, d), coord(b, d)));
    return total;
}

HopStep
TorusTopology::nextHop(sim::NodeId at, sim::NodeId dst) const
{
    LOCSIM_ASSERT(at != dst, "nextHop called at destination");
    for (int d = 0; d < dims_; ++d) {
        const int here = coord(at, d);
        const int there = coord(dst, d);
        const int offset = ringOffset(here, there);
        if (offset == 0)
            continue;
        HopStep step;
        step.dim = d;
        step.dir = offset > 0 ? 1 : -1;
        const int next = here + step.dir;
        step.wraps =
            wraparound_ && (next < 0 || next >= radix_);
        return step;
    }
    LOCSIM_PANIC("nextHop: nodes ", at, " and ", dst,
                 " identical in all dimensions");
}

sim::NodeId
TorusTopology::neighbor(sim::NodeId node, int dim, int dir) const
{
    LOCSIM_ASSERT(dir == 1 || dir == -1, "dir must be +/-1");
    std::vector<int> c = coords(node);
    int &x = c[static_cast<std::size_t>(dim)];
    const int next = x + dir;
    if (!wraparound_ && (next < 0 || next >= radix_))
        return sim::kNodeNone;
    x = (next + radix_) % radix_;
    return nodeAt(c);
}

double
TorusTopology::averageRandomDistance() const
{
    // Exact expectation for uniform src/dst pairs with src != dst.
    const double k = static_cast<double>(radix_);
    const double n = static_cast<double>(dims_);
    const double total_nodes = static_cast<double>(node_count_);
    double per_dim_mean;
    if (wraparound_) {
        // Torus: by symmetry each coordinate delta is uniform over
        // [0, k); sum the shortest-way distances.
        double per_dim_sum = 0.0;
        for (int delta = 0; delta < radix_; ++delta) {
            int off = delta;
            if (off * 2 > radix_)
                off -= radix_;
            per_dim_sum += std::abs(off);
        }
        per_dim_mean = per_dim_sum / k;
    } else {
        // Mesh: E|i - j| over uniform i, j in [0, k) is
        // (k^2 - 1) / (3k).
        per_dim_mean = (k * k - 1.0) / (3.0 * k);
    }
    // E[dist over all pairs incl. self] = n * per_dim_mean;
    // excluding self-messages rescales by k^n / (k^n - 1).
    return n * per_dim_mean * total_nodes / (total_nodes - 1.0);
}

double
TorusTopology::averageRandomDistancePerDim() const
{
    return averageRandomDistance() / static_cast<double>(dims_);
}

double
randomMappingDistance(int radix, int dims)
{
    LOCSIM_ASSERT(radix >= 2 && dims >= 1, "bad torus parameters");
    const double k = radix;
    const double n = dims;
    const double kn = std::pow(k, n);
    return n * std::pow(k, n + 1.0) / (4.0 * (kn - 1.0));
}

double
randomMappingDistanceForSize(double processors, int dims)
{
    LOCSIM_ASSERT(processors > 1.0, "need more than one processor");
    LOCSIM_ASSERT(dims >= 1, "bad dimension count");
    const double n = dims;
    const double k = std::pow(processors, 1.0 / n);
    return n * std::pow(k, n + 1.0) / (4.0 * (processors - 1.0));
}

} // namespace net
} // namespace locsim
