/**
 * @file
 * k-ary n-dimensional torus (and mesh) topology.
 *
 * The paper's machines are organized as k-ary n-dimensional tori with
 * separate unidirectional channels in both directions of every ring
 * (Section 3.1); the physical Alewife machine was a mesh (no
 * wraparound). This class provides the coordinate arithmetic for
 * both variants, used by the flit-level simulator (routing) and the
 * analytical model (distance statistics, Equation 17).
 */

#ifndef LOCSIM_NET_TOPOLOGY_HH_
#define LOCSIM_NET_TOPOLOGY_HH_

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace locsim {
namespace net {

/** A per-dimension routing step: direction and wrap flag. */
struct HopStep
{
    int dim;        //!< dimension to move in
    int dir;        //!< +1 or -1 along the ring
    bool wraps;     //!< true if this hop traverses the wrap-around link
};

/**
 * Torus coordinate math for a k-ary n-dimensional network.
 *
 * Node ids are mixed-radix encodings: id = sum coord[d] * k^d.
 */
class TorusTopology
{
  public:
    /**
     * @param radix nodes per ring (k >= 2)
     * @param dims number of dimensions (n >= 1)
     * @param wraparound true for a torus (the paper's networks),
     *        false for a mesh (no edge-to-edge links, as in the
     *        physical Alewife machine)
     */
    TorusTopology(int radix, int dims, bool wraparound = true);

    int radix() const { return radix_; }
    int dims() const { return dims_; }

    /** True for a torus, false for a mesh. */
    bool wraparound() const { return wraparound_; }

    /** Total number of nodes, k^n. */
    sim::NodeId nodeCount() const { return node_count_; }

    /** Coordinate of @p node in dimension @p dim. */
    int coord(sim::NodeId node, int dim) const;

    /** All coordinates of @p node. */
    std::vector<int> coords(sim::NodeId node) const;

    /** Node id for a coordinate vector. */
    sim::NodeId nodeAt(const std::vector<int> &coords) const;

    /**
     * Shortest signed offset from @p from to @p to along one
     * dimension. On a torus this is the value in (-k/2, k/2] whose
     * traversal reaches @p to, with ties (|offset| == k/2) resolving
     * to the positive direction so routing decisions are consistent
     * hop to hop; on a mesh it is simply to - from.
     */
    int ringOffset(int from, int to) const;

    /** Minimal hop distance between two nodes (torus metric). */
    int distance(sim::NodeId a, sim::NodeId b) const;

    /**
     * The next e-cube hop from @p at toward @p dst: lowest unresolved
     * dimension first, shortest way around the ring.
     *
     * @pre at != dst.
     */
    HopStep nextHop(sim::NodeId at, sim::NodeId dst) const;

    /**
     * Neighbor of @p node one step along @p dim in direction @p dir.
     * On a mesh, stepping off the edge returns sim::kNodeNone.
     */
    sim::NodeId neighbor(sim::NodeId node, int dim, int dir) const;

    /**
     * Expected distance of a uniformly random message that never
     * targets its own source (paper Equation 17):
     *   d = n * k^(n+1) / (4 * (k^n - 1))   for even k.
     *
     * For odd radix the per-ring average differs; this method computes
     * the exact expectation for any k by enumeration of ring offsets.
     */
    double averageRandomDistance() const;

    /** Mean hops per dimension for random traffic, d / n (Eq 13). */
    double averageRandomDistancePerDim() const;

  private:
    int radix_;
    int dims_;
    bool wraparound_;
    sim::NodeId node_count_;
    std::vector<sim::NodeId> stride_; // k^d for each dimension
};

/**
 * Closed form of paper Equation 17 (valid for even radix):
 * d = n * k^(n+1) / (4 * (k^n - 1)).
 */
double randomMappingDistance(int radix, int dims);

/**
 * Machine-size form used in the paper's sweeps: given total processor
 * count N and dimension n, assume a square torus with radix
 * k = N^(1/n) and return the Equation 17 distance. N need not be a
 * perfect power; the (possibly fractional) radix is used directly,
 * matching how the paper plots continuous machine-size axes.
 */
double randomMappingDistanceForSize(double processors, int dims);

} // namespace net
} // namespace locsim

#endif // LOCSIM_NET_TOPOLOGY_HH_
