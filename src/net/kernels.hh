/**
 * @file
 * Lane-vector kernels for the link-fabric and router hot paths.
 *
 * Three data-parallel passes dominate the fabric's per-cycle fixed
 * cost once the stores are lane-striped SoA (link_fabric.hh):
 *
 *  - flit publish: mid = tail for every channel of one 64-bit dirty
 *    word (rotation phase),
 *  - credit publish: visible += staged, staged = 0 per VC for every
 *    channel of one dirty word (rotation phase),
 *  - router latch/busy scan: wake |= staged, staged = 0 per router
 *    word, plus the busy test (buffered | wakes) != 0, for a shard's
 *    contiguous node range (start of every network cycle).
 *
 * Each kernel is compiled at scalar, SSE2 and AVX2 levels in one
 * binary (the AVX2 bodies carry gnu::target attributes) and selected
 * by the util::simd::Level the caller resolved at construction. All
 * levels compute bit-identical results; the vector bodies only ever
 * differ in how many elements one instruction touches.
 *
 * Concurrency contract (sharded rotation runs one rotator per shard
 * over a shared id space, and shard node ranges share cache lines at
 * their boundaries):
 *
 *  - flit publish: full-width loads of tail are safe (tail is only
 *    written during the tick phase, barrier-separated from rotation),
 *    but stores to mid MUST touch only the dirty channels — other
 *    channels of the word may belong to a concurrently publishing
 *    shard. The AVX2 body uses vpmaskmov stores (element-exact by
 *    ISA contract); the SSE2 body uses full 128-bit stores only when
 *    all four channels of the group are dirty (dirty implies owned)
 *    and falls back to scalar stores otherwise.
 *  - credit publish: each channel's counters are updated with one
 *    128-bit load/store confined to that channel's [staged x2,
 *    visible x2] block, so neighboring channels are never written.
 *  - latch/busy: the caller peels the range to absolute multiples of
 *    the group size; partial boundary groups (which may share a
 *    vector with another shard's nodes) take the scalar path in the
 *    caller.
 */

#ifndef LOCSIM_NET_KERNELS_HH_
#define LOCSIM_NET_KERNELS_HH_

#include <cstddef>
#include <cstdint>

#include "util/simd.hh"

namespace locsim {
namespace net {
namespace kernels {

/**
 * Publish one dirty word of flit channels: mid[b] = tail[b] for every
 * set bit b of @p bits. @p mid and @p tail point at the word's first
 * channel; the store pads its cursor arrays to whole words, so all 64
 * slots are readable (only dirty ones are written).
 */
void flitPublishWord(std::uint32_t *mid, const std::uint32_t *tail,
                     std::uint64_t bits, util::simd::Level level);

/**
 * Publish one dirty word of credit channels: for every set bit b,
 * visible[vc] += staged[vc]; staged[vc] = 0 over the channel's
 * @p vcs VCs. @p counts points at the first channel's staged base;
 * each channel occupies 2 * vcs ints ([staged x vcs][visible x vcs]).
 * The vector body covers vcs == 2 (the torus default); other VC
 * counts take the scalar path at any level.
 */
void creditPublishWord(int *counts, std::uint64_t bits, int vcs,
                       util::simd::Level level);

/**
 * Latch staged router wakes and evaluate busy flags for the absolute
 * node range [first, last): wake |= exchange(staged, 0) for both wake
 * pairs, then busy = (buffered | flit_wake | credit_wake) != 0.
 * @p first and @p last must be multiples of 8 (the caller peels
 * boundary nodes scalar); busy bits land in @p busy_bytes, one byte
 * per group of 8 nodes, indexed by (node - first) / 8, bit (node % 8).
 */
void routerLatchBusy(std::uint32_t *flit_staged,
                     std::uint32_t *flit_wake,
                     std::uint32_t *credit_staged,
                     std::uint32_t *credit_wake,
                     const std::uint32_t *buffered, std::size_t first,
                     std::size_t last, std::uint8_t *busy_bytes,
                     util::simd::Level level);

} // namespace kernels
} // namespace net
} // namespace locsim

#endif // LOCSIM_NET_KERNELS_HH_
