/**
 * @file
 * Open-loop traffic generator implementation.
 */

#include "net/traffic.hh"

#include "util/logging.hh"

namespace locsim {
namespace net {

TrafficGenerator::TrafficGenerator(Network &network,
                                   const TrafficConfig &config)
    : network_(network), config_(config), rng_(config.seed)
{
    LOCSIM_ASSERT(config_.injection_rate >= 0.0 &&
                      config_.injection_rate <= 1.0,
                  "injection rate must be a probability");
    LOCSIM_ASSERT(config_.message_flits >= 1, "empty messages");
}

sim::NodeId
TrafficGenerator::pickDestination(sim::NodeId src)
{
    const TorusTopology &topo = network_.topology();
    switch (config_.pattern) {
      case TrafficPattern::UniformRandom: {
        // Uniform over all nodes except self.
        auto dst = static_cast<sim::NodeId>(
            rng_.nextBounded(topo.nodeCount() - 1));
        if (dst >= src)
            ++dst;
        return dst;
      }
      case TrafficPattern::NearestNeighbor: {
        for (;;) {
            const int dim =
                static_cast<int>(rng_.nextBounded(
                    static_cast<std::uint64_t>(topo.dims())));
            const int dir = rng_.nextBool() ? 1 : -1;
            const sim::NodeId nbr = topo.neighbor(src, dim, dir);
            if (nbr != sim::kNodeNone)
                return nbr; // mesh edges have fewer neighbors
        }
      }
    }
    LOCSIM_PANIC("unknown traffic pattern");
}

void
TrafficGenerator::tick(sim::Tick now)
{
    const sim::NodeId n = network_.topology().nodeCount();
    for (sim::NodeId node = 0; node < n; ++node) {
        while (network_.receive(node).has_value())
            ++received_;
        if (enabled_ && rng_.nextBool(config_.injection_rate)) {
            Message msg;
            msg.src = node;
            msg.dst = pickDestination(node);
            msg.flits = config_.message_flits;
            msg.submit_tick = now;
            network_.send(msg);
            ++generated_;
        }
    }
}

} // namespace net
} // namespace locsim
