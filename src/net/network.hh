/**
 * @file
 * The torus network fabric: routers, channels, per-node injection and
 * ejection interfaces, and network-level statistics.
 *
 * Sequential machines register the Network as a single Clocked
 * component ticking at the network clock (period 1). Sharded machines
 * partition the nodes into contiguous spatial shards, each driven by
 * its own engine: every router, endpoint, and channel belongs to
 * exactly one shard, and the per-shard adapter returned by
 * shardClocked() ticks just that shard's slice of the fabric. Clients
 * (coherence controllers, traffic generators) interact only through
 * send()/receive() on a node's interface; the fabric handles
 * flitization, wormhole transport, and reassembly.
 *
 * Data layout: all link channels live in two structure-of-arrays
 * stores (FlitLinkStore / CreditLinkStore) indexed by dense channel
 * ids, all router input-VC / output-port state lives in Network-owned
 * slabs sliced per router, and message accounting records live in
 * per-shard generation-checked pools indexed by a flat hash map. The
 * steady-state loop therefore walks contiguous arrays and recycles
 * pooled records without touching the allocator.
 *
 * Cross-shard state is limited to three mechanisms, all designed so
 * results are bit-identical to the sequential fabric for any shard
 * count (see docs/SHARDING.md for the full argument):
 *
 *  - Latched channels crossing a shard boundary deliver their consumer
 *    wake bits atomically during the rotation phase (see
 *    Rotatable::bindRemoteWake), never at push time.
 *  - Message accounting records migrate from the source shard to the
 *    destination shard through parity-double-buffered mailboxes
 *    (by value: pool handles never cross shards), posted at injection
 *    and drained one tick later in fixed source order.
 *  - Statistics accumulate per shard in exactly-summable form and
 *    merge at serial points (Accumulator's exact sums make the merge
 *    grouping-independent).
 */

#ifndef LOCSIM_NET_NETWORK_HH_
#define LOCSIM_NET_NETWORK_HH_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "obs/trace.hh"
#include "sim/engine.hh"
#include "net/link_fabric.hh"
#include "net/router.hh"
#include "stats/stats.hh"
#include "util/arena.hh"
#include "util/flat_map.hh"
#include "util/pool.hh"
#include "util/ring_queue.hh"
#include "util/serialize.hh"
#include "util/simd.hh"

namespace locsim {

namespace obs {
class PhaseSlot;
class Profiler;
}

namespace net {

/** Network-wide configuration. */
struct NetworkConfig
{
    int radix = 8;           //!< k
    int dims = 2;            //!< n
    /** Torus (paper) or mesh (physical Alewife) edges. */
    bool wraparound = true;
    RouterConfig router;     //!< per-router knobs
};

/**
 * Spatial partition of the nodes into contiguous shards.
 *
 * Shard s owns the node-id range [bounds[s], bounds[s+1]); row-major
 * node ids make each shard a contiguous band of torus rows, so only
 * the band-boundary links cross shards.
 */
struct ShardPlan
{
    int shards = 1;
    /** shards+1 node-id boundaries; empty means the trivial plan. */
    std::vector<sim::NodeId> bounds;

    /** Evenly split @p nodes into @p shards contiguous ranges. */
    static ShardPlan
    contiguous(sim::NodeId nodes, int shards)
    {
        ShardPlan plan;
        plan.shards = shards;
        plan.bounds.resize(static_cast<std::size_t>(shards) + 1);
        for (int s = 0; s <= shards; ++s) {
            plan.bounds[static_cast<std::size_t>(s)] =
                static_cast<sim::NodeId>(
                    (static_cast<std::uint64_t>(nodes) *
                     static_cast<std::uint64_t>(s)) /
                    static_cast<std::uint64_t>(shards));
        }
        return plan;
    }

    sim::NodeId first(int s) const
    {
        return bounds[static_cast<std::size_t>(s)];
    }
    sim::NodeId last(int s) const
    {
        return bounds[static_cast<std::size_t>(s) + 1];
    }

    int
    shardOf(sim::NodeId node) const
    {
        for (int s = 0; s < shards; ++s) {
            if (node < last(s))
                return s;
        }
        return shards - 1;
    }
};

/** Per-message accounting snapshot (also used by tests). */
struct MessageRecord
{
    Message message;
    sim::Tick inject_start = sim::kTickNever; //!< first flit offered
    sim::Tick delivered = sim::kTickNever;    //!< tail flit ejected
    int hops = 0;
    /** Counters harvested from the head flit at ejection. */
    std::uint16_t head_hops = 0;
    std::uint16_t head_stalls = 0;
};

/**
 * Per-class sums of the paper's latency decomposition: network latency
 * T = B (serialization) + h (hops) + 1 (ejection) + contention. The
 * contention term is measured as the residual T - B - h - 1 of each
 * delivered message (h from the head flit's link counter), clamped at
 * zero; at zero load it is identically zero.
 */
struct ClassAttribution
{
    std::uint64_t count = 0;
    double latency = 0.0;       //!< sum of T per message
    double serialization = 0.0; //!< sum of B (length in flits)
    double hops = 0.0;          //!< sum of measured link traversals
    double contention = 0.0;    //!< sum of the clamped residual
    double stalls = 0.0;        //!< sum of router allocation stalls
};

/** Aggregate network statistics. */
struct NetworkStats
{
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_delivered = 0;
    /** Network latency: head offered to tail ejected, per message. */
    stats::Accumulator latency;
    /**
     * Latency distribution (2-cycle buckets to 1024 cycles) for tail
     * percentiles; means alone hide contention tails.
     */
    stats::Histogram latency_hist{0.0, 1024.0, 512};
    /** Source queueing delay: submit to first flit offered. */
    stats::Accumulator source_queue;
    /** Hop count per delivered message. */
    stats::Accumulator hops;
    /** Message size in flits, per submitted message. */
    stats::Accumulator flits;
    /** Latency decomposition sums, indexed by MessageClass. */
    std::array<ClassAttribution, kMessageClassCount> attribution{};

    /**
     * Merge another shard's statistics into this one. All fields are
     * counts or exact sums, so merging the per-shard blocks in shard
     * order reproduces the sequential accumulation bit-for-bit.
     */
    void merge(const NetworkStats &other);

    void reset();

    void saveState(util::Serializer &s) const;
    void loadState(util::Deserializer &d);
};

/**
 * The full fabric for one machine.
 *
 * Construction wires every router and registers each store's per-shard
 * rotator with its shard engine. For a sequential machine the caller
 * registers the Network itself as a Clocked component with period 1; a
 * sharded machine registers shardClocked(s) with each shard engine
 * instead.
 */
class Network : public sim::Clocked
{
  public:
    /**
     * Sequential fabric: one engine, trivial shard plan. A non-null
     * @p shared points at an externally owned lane-striped LinkStores
     * (batched execution); the caller must have selected this fabric's
     * lane with beginLane() and registers the rotators itself.
     */
    Network(sim::Engine &engine, const NetworkConfig &config,
            LinkStores *shared = nullptr);

    /**
     * Sharded fabric: engines[s] drives shard s of @p plan. All
     * engines must share one timeline (equal now() at every barrier).
     */
    Network(const NetworkConfig &config,
            const std::vector<sim::Engine *> &engines,
            const ShardPlan &plan, LinkStores *shared = nullptr);

    ~Network() override;

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    const TorusTopology &topology() const { return topo_; }
    const NetworkConfig &config() const { return config_; }
    const ShardPlan &shardPlan() const { return plan_; }

    /**
     * Submit a message from node @p msg.src.
     *
     * The source queue is unbounded (the closed-loop clients bound
     * their own outstanding transactions); the message id is assigned
     * by the fabric and returned. Ids are per-source-endpoint
     * sequences (source node in the high bits), so assignment is
     * deterministic for any shard count.
     *
     * @pre msg.src != msg.dst (local transactions never enter the
     *      network, mirroring the machine being modeled).
     */
    MessageId send(Message msg);

    /** Pop the next delivered message for @p node, if any. */
    std::optional<Message> receive(sim::NodeId node);

    /** Number of delivered-but-unclaimed messages at @p node. */
    std::size_t pendingAt(sim::NodeId node) const;

    /** Delivered-but-unclaimed messages across all nodes. */
    std::uint64_t pendingDeliveries() const;

    /** True if no message is in flight anywhere in the fabric. */
    bool idle() const;

    /** Sequential stepping: tick every shard in order. */
    void tick(sim::Tick now) override;

    /**
     * Advance shard @p s one network cycle: latch its routers' wakes,
     * drain its record mailboxes, then eject/inject/route its nodes.
     * Called concurrently for distinct shards by the sharded driver
     * (phase A of a tick window).
     */
    void tickShard(int s, sim::Tick now);

    /**
     * The per-shard Clocked adapter the sharded machine registers
     * with shard engine @p s (period 1, before any node components).
     */
    sim::Clocked *shardClocked(int s);

    /**
     * The fabric has work while any message is between send() and tail
     * ejection. Credits still propagating after the last delivery are
     * deliberately not counted: receiveCredits() runs at the start of
     * every router tick, so deferred absorption is observationally
     * identical to eager absorption.
     */
    bool busy() const override { return inFlight() > 0; }

    /**
     * Aggregate statistics. With one shard this is a reference to the
     * live block; with several the per-shard blocks are merged (in
     * shard order; bit-identical to sequential accumulation) into a
     * cached block. Call only at serial points.
     */
    const NetworkStats &stats() const;

    /** Reset statistics (e.g. after warmup), keeping in-flight state. */
    void resetStats();

    /**
     * Average utilization of the neighbor (network) channels since the
     * last stats reset: flit-hops / (cycles * channel count). This is
     * the quantity the model calls rho.
     */
    double channelUtilization() const;

    /** Look up accounting for a message (test/diagnostic hook). */
    const MessageRecord *record(MessageId id) const;

    /**
     * Cumulative flits forwarded over neighbor (network) channels
     * since construction (sampler probe; resets never).
     */
    std::uint64_t totalNeighborFlitHops() const;

    /** Cumulative failed output-VC claims across all routers. */
    std::uint64_t totalAllocStalls() const;

    /** Cumulative cross-shard wake drains (0 on sequential runs). */
    std::uint64_t totalRemoteWakes() const;

    /** Flits currently buffered in all routers (sampler probe). */
    std::uint64_t bufferedFlits() const;

    /** Resident bytes of fabric storage (footprint accounting). */
    std::size_t memoryBytes() const;

    /**
     * Attach a tracer for every shard (nullptr to detach; not owned).
     * Allocates one "net.<node>" track per node on first attach:
     * message lifetimes run as async spans from send() to tail
     * ejection, with "inject" instants when the head flit is first
     * offered. Routers share the tracks for flit-level detail.
     */
    void setTracer(obs::Tracer *tracer);

    /**
     * Attach shard @p s's tracer (sharded machines give each shard an
     * independent tracer so emission stays thread-local; the spans for
     * a cross-shard message begin on the source shard's tracer and end
     * on the destination's).
     */
    void setShardTracer(int s, obs::Tracer *tracer);

    /**
     * Attach a phase profiler (nullptr to detach; not owned). Each
     * shard's router scan (tickShard) records Phase::RouterScan on
     * slot (shard, @p lane) — per-component attribution, so batched
     * lanes separate even though they share engines.
     */
    void setProfiler(obs::Profiler *profiler, int lane);

    /**
     * Serialize the complete fabric state: every channel and router in
     * construction order, endpoint queues, in-flight accounting and
     * statistics. The byte stream is independent of the shard count
     * (records are sorted by id, per-shard statistics are merged, and
     * cross-shard wake words fold into their sequential equivalents),
     * so a checkpoint taken at any K restores at any other K. Requires
     * no attached tracer (span ids would dangle across a restore).
     */
    void saveState(util::Serializer &s) const;

    /** Restore state saved by saveState() on an identically configured
     *  fabric (any shard count on either side). */
    void loadState(util::Deserializer &d);

  private:
    struct NodeEndpoint
    {
        // Injection side.
        util::RingQueue<Message> source_queue;
        std::uint32_t flits_sent = 0;    //!< of the current message
        int inject_credits = 0;          //!< VC0 credits into router
        /** Message-id sequence for this source endpoint. */
        std::uint64_t next_seq = 0;
        // Ejection side.
        util::RingQueue<Message> delivered;
        /**
         * Reassembly cursor. Ejection drains a single FIFO whose
         * flits are pushed by a single output VC owned head-to-tail
         * by one packet, so at most one message is ever mid-ejection
         * at a node: two scalars replace the per-message map
         * (arrived_count == 0 means no message is in progress).
         */
        MessageId arrived_msg = 0;
        std::uint32_t arrived_count = 0;
    };

    using RecordPool = util::Pool<MessageRecord>;
    using RecordHandle = RecordPool::Handle;

    /**
     * State owned by one shard: accounting records for messages whose
     * current "location" (source before injection, destination after)
     * is in the shard, plus this shard's statistics slice. Records
     * live in a per-shard pool (recycled across messages; the id map
     * holds handles, so rehashing never moves a record). The
     * in-flight / pending counters are signed because a message's
     * increment and decrement may land on different shards; only the
     * serial-point sums are meaningful.
     */
    struct ShardState
    {
        RecordPool record_pool;
        util::FlatMap<MessageId, RecordHandle> records;
        NetworkStats stats;
        std::int64_t in_flight = 0;
        std::int64_t pending_deliveries = 0;
    };

    /** Clocked adapter driving one shard (see shardClocked()). */
    class ShardTick : public sim::Clocked
    {
      public:
        ShardTick(Network &net, int shard) : net_(net), shard_(shard) {}
        void tick(sim::Tick now) override
        {
            net_.tickShard(shard_, now);
        }
        /** Global: quiescence decisions are whole-fabric decisions. */
        bool busy() const override { return net_.busy(); }

      private:
        Network &net_;
        int shard_;
    };

    void tickInjection(sim::NodeId node, sim::Tick now);
    void tickEjection(sim::NodeId node, sim::Tick now);
    void drainRecordMail(int dst_shard, sim::Tick now);

    int shardOf(sim::NodeId node) const { return plan_.shardOf(node); }
    std::int64_t inFlight() const;
    obs::Tracer *tracerFor(int shard) const
    {
        return tracers_.empty()
                   ? nullptr
                   : tracers_[static_cast<std::size_t>(shard)];
    }

    NetworkConfig config_;
    TorusTopology topo_;
    ShardPlan plan_;
    std::vector<sim::Engine *> engines_; //!< engines_[s] drives shard s

    /**
     * The SoA link fabric: all flit and credit links, indexed by the
     * dense ChannelIds recorded in the id vectors below (construction
     * order, which the serialization stream follows). A solo fabric
     * owns its stores and registers one batch rotator per shard with
     * that shard's engine; a batched fabric borrows the batch owner's
     * lane-striped stores (owned_stores_ stays null) and leaves
     * rotator registration to the owner.
     */
    std::unique_ptr<LinkStores> owned_stores_;
    FlitLinkStore &flit_store_;
    CreditLinkStore &credit_store_;

    /**
     * Backing store for the routers. One fabric allocates many small
     * objects with identical lifetime; bump allocation packs them
     * contiguously (construction-order locality matches tick-order
     * traversal) and frees them in one sweep. Declared before the
     * pointer vector so it outlives it.
     */
    util::Arena arena_;

    std::vector<Router *> routers_;
    std::vector<ChannelId> flit_channels_;
    std::vector<ChannelId> credit_channels_;

    /**
     * Fabric-wide router state slabs, sliced per router (see
     * Router::RouterSlices). Sized once before router construction;
     * routers hold raw pointers into them.
     */
    std::vector<Router::InputVc> input_units_;
    std::vector<Router::OutputPort> output_ports_;
    std::vector<Flit> vc_slab_;

    /**
     * Per-node wake and occupancy words, one uint32 per router per
     * slab (indexed by node id). Hoisting these out of the Router
     * objects lets tickShard latch wakes and evaluate per-node busy
     * masks as a lane-vector kernel over 8 contiguous nodes at a time
     * (kernels::routerLatchBusy). Padded to a multiple of 8 words so
     * full-width vector loads/stores on the last group stay in
     * bounds; pad words are never staged and always read as idle.
     */
    std::vector<std::uint32_t> flit_wake_staged_;
    std::vector<std::uint32_t> flit_wake_;
    std::vector<std::uint32_t> credit_wake_staged_;
    std::vector<std::uint32_t> credit_wake_;
    std::vector<std::uint32_t> buffered_slab_;

    /**
     * Per-shard list of nodes with cross-shard producers. The kernel
     * path drains their remote wake atomics into the staged words
     * before the vector latch; every other node's staged words are
     * only written by its own shard, so the vector pass is race-free.
     */
    std::vector<std::vector<sim::NodeId>> remote_nodes_;

    /**
     * Per-shard busy-byte scratch for the latch kernel: one byte per
     * group of 8 nodes, bit b = node (group*8 + b) had work at latch
     * time. Sized at construction; the steady-state loop never
     * allocates.
     */
    std::vector<std::vector<std::uint8_t>> busy_scratch_;

    /** Lane-vector kernel level, resolved once at construction. */
    util::simd::Level simd_level_ = util::simd::Level::Off;

    // Per-node endpoint channels (indexed by node).
    std::vector<ChannelId> inject_link_;
    std::vector<ChannelId> inject_credit_;
    std::vector<ChannelId> eject_link_;
    std::vector<ChannelId> eject_credit_;

    std::vector<NodeEndpoint> endpoints_;

    std::vector<ShardState> shards_;
    std::vector<std::unique_ptr<ShardTick>> shard_ticks_;

    /**
     * Record-migration mailboxes, indexed [tick parity][dst * K + src].
     * A record posted during tick t (parity t&1) is drained by the
     * destination shard at the start of tick t+1 — the parities
     * alternate, so posts and drains never touch the same cell in the
     * same phase, and barrier separation orders them without atomics.
     * A pending record implies its message is in flight, so quiescence
     * skips (which would break the parity arithmetic) cannot occur
     * with mail outstanding. Records travel by value: pool handles
     * are shard-local names and never cross shards.
     */
    std::array<std::vector<std::vector<MessageRecord>>, 2> record_mail_;

    /** Merge target for stats() on sharded fabrics (serial use only). */
    mutable NetworkStats merged_stats_;

    sim::Tick stats_start_ = 0;
    std::uint64_t stats_flit_hops_base_ = 0;

    /** Per-shard tracers (empty when tracing is off). */
    std::vector<obs::Tracer *> tracers_;
    std::vector<int> node_tracks_;

    /** Per-shard profiler slots (all null when profiling is off). */
    std::vector<obs::PhaseSlot *> profile_slots_;
};

} // namespace net
} // namespace locsim

#endif // LOCSIM_NET_NETWORK_HH_
