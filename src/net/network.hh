/**
 * @file
 * The torus network fabric: routers, channels, per-node injection and
 * ejection interfaces, and network-level statistics.
 *
 * The Network is a single Clocked component ticking at the network
 * clock (period 1). Clients (coherence controllers, traffic
 * generators) interact only through send()/receive() on a node's
 * interface; the fabric handles flitization, wormhole transport, and
 * reassembly.
 */

#ifndef LOCSIM_NET_NETWORK_HH_
#define LOCSIM_NET_NETWORK_HH_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/trace.hh"
#include "sim/engine.hh"
#include "net/router.hh"
#include "stats/stats.hh"
#include "util/arena.hh"
#include "util/serialize.hh"

namespace locsim {
namespace net {

/** Network-wide configuration. */
struct NetworkConfig
{
    int radix = 8;           //!< k
    int dims = 2;            //!< n
    /** Torus (paper) or mesh (physical Alewife) edges. */
    bool wraparound = true;
    RouterConfig router;     //!< per-router knobs
};

/** Per-message accounting snapshot (also used by tests). */
struct MessageRecord
{
    Message message;
    sim::Tick inject_start = sim::kTickNever; //!< first flit offered
    sim::Tick delivered = sim::kTickNever;    //!< tail flit ejected
    int hops = 0;
    /** Counters harvested from the head flit at ejection. */
    std::uint16_t head_hops = 0;
    std::uint16_t head_stalls = 0;
};

/**
 * Per-class sums of the paper's latency decomposition: network latency
 * T = B (serialization) + h (hops) + 1 (ejection) + contention. The
 * contention term is measured as the residual T - B - h - 1 of each
 * delivered message (h from the head flit's link counter), clamped at
 * zero; at zero load it is identically zero.
 */
struct ClassAttribution
{
    std::uint64_t count = 0;
    double latency = 0.0;       //!< sum of T per message
    double serialization = 0.0; //!< sum of B (length in flits)
    double hops = 0.0;          //!< sum of measured link traversals
    double contention = 0.0;    //!< sum of the clamped residual
    double stalls = 0.0;        //!< sum of router allocation stalls
};

/** Aggregate network statistics. */
struct NetworkStats
{
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_delivered = 0;
    /** Network latency: head offered to tail ejected, per message. */
    stats::Accumulator latency;
    /**
     * Latency distribution (2-cycle buckets to 1024 cycles) for tail
     * percentiles; means alone hide contention tails.
     */
    stats::Histogram latency_hist{0.0, 1024.0, 512};
    /** Source queueing delay: submit to first flit offered. */
    stats::Accumulator source_queue;
    /** Hop count per delivered message. */
    stats::Accumulator hops;
    /** Message size in flits, per submitted message. */
    stats::Accumulator flits;
    /** Latency decomposition sums, indexed by MessageClass. */
    std::array<ClassAttribution, kMessageClassCount> attribution{};

    void saveState(util::Serializer &s) const;
    void loadState(util::Deserializer &d);
};

/**
 * The full fabric for one machine.
 *
 * Construction wires every router and registers all channels with the
 * engine; the caller registers the Network itself as a Clocked
 * component with period 1 (the network clock).
 */
class Network : public sim::Clocked
{
  public:
    Network(sim::Engine &engine, const NetworkConfig &config);
    ~Network() override;

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    const TorusTopology &topology() const { return topo_; }
    const NetworkConfig &config() const { return config_; }

    /**
     * Submit a message from node @p msg.src.
     *
     * The source queue is unbounded (the closed-loop clients bound
     * their own outstanding transactions); the message id is assigned
     * by the fabric and returned.
     *
     * @pre msg.src != msg.dst (local transactions never enter the
     *      network, mirroring the machine being modeled).
     */
    MessageId send(Message msg);

    /** Pop the next delivered message for @p node, if any. */
    std::optional<Message> receive(sim::NodeId node);

    /** Number of delivered-but-unclaimed messages at @p node. */
    std::size_t pendingAt(sim::NodeId node) const;

    /** Delivered-but-unclaimed messages across all nodes. */
    std::uint64_t pendingDeliveries() const { return pending_deliveries_; }

    /** True if no message is in flight anywhere in the fabric. */
    bool idle() const;

    void tick(sim::Tick now) override;

    /**
     * The fabric has work while any message is between send() and tail
     * ejection. Credits still propagating after the last delivery are
     * deliberately not counted: receiveCredits() runs at the start of
     * every router tick, so deferred absorption is observationally
     * identical to eager absorption.
     */
    bool busy() const override { return in_flight_ > 0; }

    const NetworkStats &stats() const { return stats_; }

    /** Reset statistics (e.g. after warmup), keeping in-flight state. */
    void resetStats();

    /**
     * Average utilization of the neighbor (network) channels since the
     * last stats reset: flit-hops / (cycles * channel count). This is
     * the quantity the model calls rho.
     */
    double channelUtilization() const;

    /** Look up accounting for a message (test/diagnostic hook). */
    const MessageRecord *record(MessageId id) const;

    /**
     * Cumulative flits forwarded over neighbor (network) channels
     * since construction (sampler probe; resets never).
     */
    std::uint64_t totalNeighborFlitHops() const;

    /** Cumulative failed output-VC claims across all routers. */
    std::uint64_t totalAllocStalls() const;

    /** Flits currently buffered in all routers (sampler probe). */
    std::uint64_t bufferedFlits() const;

    /**
     * Attach a tracer (nullptr to detach; not owned). Allocates one
     * "net.<node>" track per node on first attach: message lifetimes
     * run as async spans from send() to tail ejection on the source
     * node's track, with "inject" instants when the head flit is first
     * offered. Routers share the tracks for flit-level detail.
     */
    void setTracer(obs::Tracer *tracer);

    /**
     * Serialize the complete fabric state: every channel and router in
     * construction order, endpoint queues, in-flight accounting and
     * statistics. Requires no attached tracer (span ids would dangle
     * across a restore).
     */
    void saveState(util::Serializer &s) const;

    /** Restore state saved by saveState() on an identically configured
     *  fabric. */
    void loadState(util::Deserializer &d);

  private:
    struct NodeEndpoint
    {
        // Injection side.
        std::deque<Message> source_queue;
        std::uint32_t flits_sent = 0;    //!< of the current message
        int inject_credits = 0;          //!< VC0 credits into router
        // Ejection side.
        std::deque<Message> delivered;
        std::unordered_map<MessageId, std::uint32_t> arrived_flits;
    };

    void tickInjection(sim::NodeId node);
    void tickEjection(sim::NodeId node);

    sim::Engine &engine_;
    NetworkConfig config_;
    TorusTopology topo_;

    /**
     * Backing store for all routers and channels. One fabric allocates
     * thousands of small objects with identical lifetime; bump
     * allocation packs them contiguously (construction-order locality
     * matches tick-order traversal) and frees them in one sweep.
     * Declared before the pointer vectors so it outlives them.
     */
    util::Arena arena_;

    std::vector<Router *> routers_;
    std::vector<FlitRing *> flit_channels_;
    std::vector<CreditPipe *> credit_channels_;

    // Per-node endpoint channels (indexed by node).
    std::vector<FlitRing *> inject_link_;
    std::vector<CreditPipe *> inject_credit_;
    std::vector<FlitRing *> eject_link_;
    std::vector<CreditPipe *> eject_credit_;

    std::vector<NodeEndpoint> endpoints_;

    std::unordered_map<MessageId, MessageRecord> records_;
    MessageId next_id_ = 1;
    std::uint64_t in_flight_ = 0;
    std::uint64_t pending_deliveries_ = 0;

    NetworkStats stats_;
    sim::Tick stats_start_ = 0;
    std::uint64_t stats_flit_hops_base_ = 0;

    obs::Tracer *tracer_ = nullptr;
    std::vector<int> node_tracks_;
};

} // namespace net
} // namespace locsim

#endif // LOCSIM_NET_NETWORK_HH_
