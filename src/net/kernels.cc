/**
 * @file
 * Scalar, SSE2 and AVX2 bodies of the lane-vector kernels.
 *
 * Every body of one kernel computes the same result; see kernels.hh
 * for the concurrency contract that shapes the store widths. The
 * compile-time ceiling (LOCSIM_SIMD_MAX) drops bodies the configure
 * option excluded, and non-x86 targets compile only the scalar ones.
 */

#include "net/kernels.hh"

#include <bit>

#if defined(__x86_64__) && LOCSIM_SIMD_MAX >= 1
#include <immintrin.h>
#define LOCSIM_KERNELS_X86 1
#else
#define LOCSIM_KERNELS_X86 0
#endif

namespace locsim {
namespace net {
namespace kernels {

namespace {

using util::simd::Level;

// --- scalar bodies ---------------------------------------------------

void
flitPublishScalar(std::uint32_t *mid, const std::uint32_t *tail,
                  std::uint64_t bits)
{
    while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        mid[b] = tail[b];
    }
}

void
creditPublishScalar(int *counts, std::uint64_t bits, int vcs)
{
    while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        int *st = counts + static_cast<std::size_t>(2 * vcs) *
                               static_cast<std::size_t>(b);
        int *vis = st + vcs;
        for (int vc = 0; vc < vcs; ++vc) {
            vis[vc] += st[vc];
            st[vc] = 0;
        }
    }
}

void
latchBusyScalar(std::uint32_t *fws, std::uint32_t *fw,
                std::uint32_t *cws, std::uint32_t *cw,
                const std::uint32_t *buffered, std::size_t first,
                std::size_t last, std::uint8_t *out)
{
    for (std::size_t i = first; i < last; i += 8) {
        unsigned byte = 0;
        for (std::size_t j = 0; j < 8; ++j) {
            const std::size_t n = i + j;
            fw[n] |= fws[n];
            fws[n] = 0;
            cw[n] |= cws[n];
            cws[n] = 0;
            if ((buffered[n] | fw[n] | cw[n]) != 0)
                byte |= 1u << j;
        }
        out[(i - first) >> 3] = static_cast<std::uint8_t>(byte);
    }
}

#if LOCSIM_KERNELS_X86

// --- SSE2 bodies (x86-64 baseline, no target attribute needed) -------

void
flitPublishSse2(std::uint32_t *mid, const std::uint32_t *tail,
                std::uint64_t bits)
{
    // SSE2 has no element-exact masked store, so full 128-bit stores
    // are only safe when all four channels of the group are dirty
    // (dirty implies owned by the publishing rotator); mixed groups
    // publish scalar. Batched lanes make the all-dirty case the
    // common one: a congested logical link dirties all K lanes of
    // its pow2-padded group together.
    for (int g = 0; bits != 0; ++g, bits >>= 4) {
        const auto m = static_cast<unsigned>(bits & 0xfu);
        if (m == 0)
            continue;
        if (m == 0xfu) {
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(mid + 4 * g),
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(tail + 4 * g)));
        } else {
            unsigned mm = m;
            while (mm != 0) {
                const int b = std::countr_zero(mm);
                mm &= mm - 1;
                mid[4 * g + b] = tail[4 * g + b];
            }
        }
    }
}

void
creditPublish2Sse2(int *counts, std::uint64_t bits)
{
    // vcs == 2: each channel is 4 ints [s0, s1, v0, v1]. One shifted
    // add computes [_, _, v0+s0, v1+s1]; the mask zeroes the staged
    // half. A single 16-byte store stays inside the channel's own
    // counter block, so neighboring channels (possibly another
    // shard's) are never written.
    const __m128i keep = _mm_setr_epi32(0, 0, -1, -1);
    while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        int *p = counts + 4 * static_cast<std::size_t>(b);
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        const __m128i sum = _mm_add_epi32(v, _mm_slli_si128(v, 8));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p),
                         _mm_and_si128(sum, keep));
    }
}

void
latchBusySse2(std::uint32_t *fws, std::uint32_t *fw,
              std::uint32_t *cws, std::uint32_t *cw,
              const std::uint32_t *buffered, std::size_t first,
              std::size_t last, std::uint8_t *out)
{
    const __m128i zero = _mm_setzero_si128();
    for (std::size_t i = first; i < last; i += 8) {
        unsigned byte = 0;
        for (std::size_t h = 0; h < 8; h += 4) {
            const std::size_t n = i + h;
            __m128i f = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(fw + n));
            f = _mm_or_si128(
                f, _mm_loadu_si128(
                       reinterpret_cast<const __m128i *>(fws + n)));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(fw + n), f);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(fws + n),
                             zero);
            __m128i c = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(cw + n));
            c = _mm_or_si128(
                c, _mm_loadu_si128(
                       reinterpret_cast<const __m128i *>(cws + n)));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(cw + n), c);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(cws + n),
                             zero);
            const __m128i b = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(buffered + n));
            const __m128i idle = _mm_cmpeq_epi32(
                _mm_or_si128(_mm_or_si128(f, c), b), zero);
            const auto idle_mask = static_cast<unsigned>(
                _mm_movemask_ps(_mm_castsi128_ps(idle)));
            byte |= (~idle_mask & 0xfu) << h;
        }
        out[(i - first) >> 3] = static_cast<std::uint8_t>(byte);
    }
}

#if LOCSIM_SIMD_MAX >= 2

// --- AVX2 bodies -----------------------------------------------------

[[gnu::target("avx2")]] void
flitPublishAvx2(std::uint32_t *mid, const std::uint32_t *tail,
                std::uint64_t bits)
{
    // vpmaskmov stores are element-exact: channels of the word owned
    // by another shard's rotator are never written, whatever the
    // dirty pattern. Full-width tail loads are safe (rotation never
    // writes tail) and in-bounds (cursor arrays are word-padded).
    const __m256i sel =
        _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    for (int g = 0; bits != 0; ++g, bits >>= 8) {
        const auto m = static_cast<int>(bits & 0xffu);
        if (m == 0)
            continue;
        const __m256i mv = _mm256_cmpeq_epi32(
            _mm256_and_si256(_mm256_set1_epi32(m), sel), sel);
        const __m256i t = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tail + 8 * g));
        _mm256_maskstore_epi32(
            reinterpret_cast<int *>(mid + 8 * g), mv, t);
    }
}

[[gnu::target("avx2")]] void
latchBusyAvx2(std::uint32_t *fws, std::uint32_t *fw,
              std::uint32_t *cws, std::uint32_t *cw,
              const std::uint32_t *buffered, std::size_t first,
              std::size_t last, std::uint8_t *out)
{
    const __m256i zero = _mm256_setzero_si256();
    for (std::size_t i = first; i < last; i += 8) {
        __m256i f = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(fw + i));
        f = _mm256_or_si256(
            f, _mm256_loadu_si256(
                   reinterpret_cast<const __m256i *>(fws + i)));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(fw + i), f);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(fws + i),
                            zero);
        __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(cw + i));
        c = _mm256_or_si256(
            c, _mm256_loadu_si256(
                   reinterpret_cast<const __m256i *>(cws + i)));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(cw + i), c);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(cws + i),
                            zero);
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(buffered + i));
        const __m256i idle = _mm256_cmpeq_epi32(
            _mm256_or_si256(_mm256_or_si256(f, c), b), zero);
        const auto idle_mask = static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(idle)));
        out[(i - first) >> 3] =
            static_cast<std::uint8_t>(~idle_mask & 0xffu);
    }
}

#endif // LOCSIM_SIMD_MAX >= 2
#endif // LOCSIM_KERNELS_X86

} // namespace

void
flitPublishWord(std::uint32_t *mid, const std::uint32_t *tail,
                std::uint64_t bits, Level level)
{
#if LOCSIM_KERNELS_X86
#if LOCSIM_SIMD_MAX >= 2
    if (level == Level::Avx2) {
        flitPublishAvx2(mid, tail, bits);
        return;
    }
#endif
    if (level >= Level::Sse2) {
        flitPublishSse2(mid, tail, bits);
        return;
    }
#else
    (void)level;
#endif
    flitPublishScalar(mid, tail, bits);
}

void
creditPublishWord(int *counts, std::uint64_t bits, int vcs,
                  Level level)
{
#if LOCSIM_KERNELS_X86
    // The 128-bit body serves both vector levels: a credit publish is
    // one shifted add per channel, which AVX2 cannot widen without
    // writing across channel boundaries.
    if (level >= Level::Sse2 && vcs == 2) {
        creditPublish2Sse2(counts, bits);
        return;
    }
#else
    (void)level;
#endif
    creditPublishScalar(counts, bits, vcs);
}

void
routerLatchBusy(std::uint32_t *flit_staged, std::uint32_t *flit_wake,
                std::uint32_t *credit_staged,
                std::uint32_t *credit_wake,
                const std::uint32_t *buffered, std::size_t first,
                std::size_t last, std::uint8_t *busy_bytes,
                Level level)
{
#if LOCSIM_KERNELS_X86
#if LOCSIM_SIMD_MAX >= 2
    if (level == Level::Avx2) {
        latchBusyAvx2(flit_staged, flit_wake, credit_staged,
                      credit_wake, buffered, first, last, busy_bytes);
        return;
    }
#endif
    if (level >= Level::Sse2) {
        latchBusySse2(flit_staged, flit_wake, credit_staged,
                      credit_wake, buffered, first, last, busy_bytes);
        return;
    }
#else
    (void)level;
#endif
    latchBusyScalar(flit_staged, flit_wake, credit_staged,
                    credit_wake, buffered, first, last, busy_bytes);
}

} // namespace kernels
} // namespace net
} // namespace locsim
