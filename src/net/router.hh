/**
 * @file
 * A virtual-channel wormhole router for k-ary n-dimensional tori.
 *
 * Microarchitecture (one network cycle per hop when uncontended,
 * matching Section 3.1's "base delay through a network switch is a
 * single network cycle"):
 *
 *  - 2n neighbor ports (one per dimension and direction, separate
 *    unidirectional physical channels) plus an injection input and an
 *    ejection output.
 *  - V virtual channels per physical channel, each with a private
 *    flit buffer of fixed depth; credit-based flow control returns one
 *    credit upstream per flit drained.
 *  - Dimension-order (e-cube) routing; within a ring, deadlock freedom
 *    comes from Dally's dateline scheme: packets use VC 0 until they
 *    traverse the wrap-around link, VC 1 from the wrap link onward.
 *  - Per-packet output VC ownership (wormhole): a head flit claims an
 *    output VC; the tail releases it.
 *
 * All ports communicate through latched sim::Channel objects, so the
 * order in which routers tick within a cycle is immaterial.
 */

#ifndef LOCSIM_NET_ROUTER_HH_
#define LOCSIM_NET_ROUTER_HH_

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/channel.hh"
#include "net/message.hh"
#include "net/topology.hh"
#include "stats/stats.hh"

namespace locsim {
namespace net {

/** Configuration knobs for the router fabric. */
struct RouterConfig
{
    /** Virtual channels per physical channel (>= 2 for torus). */
    int vcs = 2;
    /**
     * Flit buffer depth per virtual channel ("a moderate amount of
     * buffering is provided on each switch", Section 3.1).
     */
    int buffer_depth = 8;
};

/**
 * One switch of the torus fabric.
 *
 * The Network wires up channels between routers; the router itself
 * only knows its node id, the topology, and its port channels.
 */
class Router
{
  public:
    using FlitChannel = sim::Channel<Flit>;
    using CreditChannel = sim::Channel<Credit>;

    Router(const TorusTopology &topo, sim::NodeId node,
           const RouterConfig &config);

    /** Number of ports including injection/ejection. */
    int portCount() const { return 2 * topo_.dims() + 1; }

    /** Port index for (dim, dir): outgoing or incoming neighbor. */
    static int
    portFor(int dim, int dir)
    {
        return 2 * dim + (dir > 0 ? 0 : 1);
    }

    /** The local (injection input / ejection output) port index. */
    int localPort() const { return 2 * topo_.dims(); }

    /**
     * Connect the channels for one port.
     *
     * @param port port index.
     * @param in flits arriving into this router (may be null for the
     *        ejection side of the local port pair; the local port uses
     *        @p in for injection and @p out for ejection).
     * @param out flits leaving this router.
     * @param credit_up credits this router returns to whoever feeds
     *        @p in.
     * @param credit_down credits arriving for @p out.
     */
    void connect(int port, FlitChannel *in, FlitChannel *out,
                 CreditChannel *credit_up, CreditChannel *credit_down);

    /** Advance one network cycle. */
    void tick();

    /** Flits forwarded per neighbor output port (for utilization). */
    const std::vector<stats::Counter> &outputFlits() const
    {
        return output_flits_;
    }

    /** Total flits currently buffered (for drain/idle detection). */
    std::size_t bufferedFlits() const;

    const RouterConfig &config() const { return config_; }
    sim::NodeId node() const { return node_; }

  private:
    struct InputVc
    {
        std::deque<Flit> buffer;
        bool routed = false;       //!< head at front has a route
        int out_port = -1;
        int out_vc = -1;
    };

    struct OutputPort
    {
        /** Encoded owner input (port * vcs + vc), or -1 if free. */
        std::vector<int> owner;
        /** Credits available per output VC. */
        std::vector<int> credits;
        /** Round-robin pointer over output VCs. */
        int next_vc = 0;
    };

    void receiveCredits();
    void receiveFlits();
    void routeAndAllocate();
    void switchTraversal();

    /** Compute route for the head flit of (port, vc). */
    void computeRoute(int port, InputVc &ivc);

    InputVc &inputVc(int port, int vc);

    const TorusTopology &topo_;
    sim::NodeId node_;
    RouterConfig config_;

    std::vector<InputVc> inputs_;        // [port][vc] flattened
    std::vector<OutputPort> outputs_;    // [port]

    std::vector<FlitChannel *> in_links_;
    std::vector<FlitChannel *> out_links_;
    std::vector<CreditChannel *> credit_up_;
    std::vector<CreditChannel *> credit_down_;

    /** Rotating arbitration start for VC allocation fairness. */
    int alloc_rr_ = 0;

    std::vector<stats::Counter> output_flits_;
};

} // namespace net
} // namespace locsim

#endif // LOCSIM_NET_ROUTER_HH_
