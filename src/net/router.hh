/**
 * @file
 * A virtual-channel wormhole router for k-ary n-dimensional tori.
 *
 * Microarchitecture (one network cycle per hop when uncontended,
 * matching Section 3.1's "base delay through a network switch is a
 * single network cycle"):
 *
 *  - 2n neighbor ports (one per dimension and direction, separate
 *    unidirectional physical channels) plus an injection input and an
 *    ejection output.
 *  - V virtual channels per physical channel, each with a private
 *    flit buffer of fixed depth; credit-based flow control returns one
 *    credit upstream per flit drained.
 *  - Dimension-order (e-cube) routing; within a ring, deadlock freedom
 *    comes from Dally's dateline scheme: packets use VC 0 until they
 *    traverse the wrap-around link, VC 1 from the wrap link onward.
 *  - Per-packet output VC ownership (wormhole): a head flit claims an
 *    output VC; the tail releases it.
 *
 * All ports communicate through latched links, so the order in which
 * routers tick within a cycle is immaterial. Links live in the
 * Network's FlitLinkStore/CreditLinkStore and are named by dense
 * ChannelIds; the router's own input-VC and output-port state lives
 * in Network-owned slabs (one contiguous array per kind across all
 * routers), handed to each router as a RouterSlices view. The router
 * object itself is just wiring, masks and statistics.
 */

#ifndef LOCSIM_NET_ROUTER_HH_
#define LOCSIM_NET_ROUTER_HH_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <utility>

#include "obs/trace.hh"
#include "sim/channel.hh"
#include "net/link_fabric.hh"
#include "net/message.hh"
#include "net/topology.hh"
#include "stats/stats.hh"

namespace locsim {
namespace net {

/** Configuration knobs for the router fabric. */
struct RouterConfig
{
    /** Virtual channels per physical channel (>= 2 for torus). */
    int vcs = 2;
    /**
     * Flit buffer depth per virtual channel ("a moderate amount of
     * buffering is provided on each switch", Section 3.1).
     */
    int buffer_depth = 8;
};

/**
 * One switch of the torus fabric.
 *
 * The Network wires up link channels between routers and owns the
 * flat state slabs; the router itself only knows its node id, the
 * topology, its slab slices and its channel ids.
 */
class Router
{
  public:
    /** The activity masks hold one bit per input unit (port * vc). */
    static constexpr int kMaxPorts = 16;

    /**
     * One input VC: a private flit buffer (a slice of the fabric-wide
     * contiguous ring slab, power-of-two sized for buffer_depth;
     * credit flow control guarantees it never overflows) plus the
     * wormhole routing state of the packet at its head. Ring indices
     * are monotonic and masked on access.
     */
    struct InputVc
    {
        Flit *slots = nullptr;       //!< into the Network's vc slab
        std::uint32_t mask = 0;      //!< ring capacity - 1
        std::uint32_t head = 0;
        std::uint32_t tail = 0;

        bool bufEmpty() const { return head == tail; }
        std::uint32_t bufSize() const { return tail - head; }
        const Flit &bufFront() const { return slots[head & mask]; }
        Flit &bufFrontMut() { return slots[head & mask]; }
        void bufPush(const Flit &flit)
        {
            slots[tail & mask] = flit;
            ++tail;
        }
        void bufPop() { ++head; }

        bool routed = false;      //!< head holds its output VC
        /**
         * out_port/out_vc hold a valid route for the head packet.
         * The route is a pure function of the head flit and the input
         * port, so it stays cached across failed allocation retries
         * and is only invalidated when the tail flit departs.
         *
         * Narrow types throughout (ports and VC indices are bounded
         * well below 127): the switch phases walk every unit's state
         * each busy cycle, so InputVc packs into 24 bytes.
         */
        bool route_valid = false;
        std::int8_t out_port = -1;
        std::int8_t out_vc = -1;
    };

    /** Packed like InputVc: all of a router's output-port state fits
     *  in about two cache lines. Checkpoint streams still carry the
     *  original int-width fields. */
    struct OutputPort
    {
        /** Encoded owner input (port * vcs + vc), or -1 if free. */
        std::array<std::int8_t, CreditLinkStore::kMaxVcs> owner{};
        /** Credits available per output VC. */
        std::array<std::int16_t, CreditLinkStore::kMaxVcs> credits{};
        /** Round-robin pointer over output VCs. */
        std::int8_t next_vc = 0;
    };

    /**
     * This router's views into the Network-owned state slabs:
     * @p inputs has unitCount() entries, @p outputs portCount()
     * entries, and @p vc_slots unitCount() * vcRingCapacity() flits.
     * The wake/occupancy words live in per-node uint32 slabs (one
     * word per router per slab) so the start-of-cycle latch and busy
     * scan stream contiguous arrays — and vectorize (see
     * kernels::routerLatchBusy) — instead of striding across router
     * objects; each pointer names this router's single word.
     */
    struct RouterSlices
    {
        InputVc *inputs = nullptr;
        OutputPort *outputs = nullptr;
        Flit *vc_slots = nullptr;
        std::uint32_t *flit_wake_staged = nullptr;
        std::uint32_t *flit_wake = nullptr;
        std::uint32_t *credit_wake_staged = nullptr;
        std::uint32_t *credit_wake = nullptr;
        std::uint32_t *buffered = nullptr;
    };

    Router(const TorusTopology &topo, sim::NodeId node,
           const RouterConfig &config, FlitLinkStore &flits,
           CreditLinkStore &credits, const RouterSlices &slices);

    /** Number of ports including injection/ejection. */
    int portCount() const { return 2 * topo_.dims() + 1; }

    /** Input units (port, vc pairs) of one router. */
    int unitCount() const { return portCount() * config_.vcs; }

    /** Per-input-VC ring slots (power of two >= buffer_depth). */
    static std::size_t
    vcRingCapacity(const RouterConfig &config)
    {
        std::size_t cap = 2;
        while (cap < static_cast<std::size_t>(config.buffer_depth))
            cap <<= 1;
        return cap;
    }

    /** Port index for (dim, dir): outgoing or incoming neighbor. */
    static int
    portFor(int dim, int dir)
    {
        return 2 * dim + (dir > 0 ? 0 : 1);
    }

    /** The local (injection input / ejection output) port index. */
    int localPort() const { return 2 * topo_.dims(); }

    /**
     * Connect the channels for one port.
     *
     * @param port port index.
     * @param in flits arriving into this router (kNoChannel for the
     *        ejection side of the local port pair; the local port uses
     *        @p in for injection and @p out for ejection).
     * @param out flits leaving this router.
     * @param credit_up credits this router returns to whoever feeds
     *        @p in.
     * @param credit_down credits arriving for @p out.
     */
    void connect(int port, ChannelId in, ChannelId out,
                 ChannelId credit_up, ChannelId credit_down);

    /**
     * Advance one network cycle. @p now is the engine tick; internal
     * round-robin pointers are derived from it so that skipping ticks
     * while idle leaves arbitration state exactly as if the router
     * had been polled every cycle.
     */
    void tick(sim::Tick now);

    /**
     * Latch the wake bits staged by last cycle's channel pushes into
     * the masks tick() consumes. The Network calls this on every
     * router at the start of a network cycle, before anything pushes:
     * pushes made during the current cycle stage wakes for the next
     * one, mirroring the channels' one-cycle latching delay.
     */
    void
    latchWakes()
    {
        *flit_wake_ |= std::exchange(*flit_wake_staged_, 0u);
        *credit_wake_ |= std::exchange(*credit_wake_staged_, 0u);
        if (has_remote_wakes_) {
            const std::uint32_t flits = remote_flit_wake_.exchange(
                0u, std::memory_order_relaxed);
            const std::uint32_t credits = remote_credit_wake_.exchange(
                0u, std::memory_order_relaxed);
            *flit_wake_ |= flits;
            *credit_wake_ |= credits;
            remote_wakes_ += static_cast<std::uint64_t>(
                std::popcount(flits) + std::popcount(credits));
        }
    }

    /**
     * Kernel-path variant of the remote half of latchWakes(): fold
     * pending cross-shard wakes into the *staged* words, which the
     * lane-vector latch (kernels::routerLatchBusy) then ORs into the
     * wake words exactly as latchWakes() would have — same final
     * state, same remote_wakes_ accounting. The Network calls this
     * for its per-shard remote-node list before running the kernel.
     */
    void
    drainRemoteWakes()
    {
        const std::uint32_t flits =
            remote_flit_wake_.exchange(0u, std::memory_order_relaxed);
        const std::uint32_t credits = remote_credit_wake_.exchange(
            0u, std::memory_order_relaxed);
        *flit_wake_staged_ |= flits;
        *credit_wake_staged_ |= credits;
        remote_wakes_ += static_cast<std::uint64_t>(
            std::popcount(flits) + std::popcount(credits));
    }

    /** True once any channel bound a cross-shard wake to this router. */
    bool hasRemoteWakes() const { return has_remote_wakes_; }

    /**
     * Cross-shard wake words. In sharded runs, an input channel whose
     * producer router lives on another shard delivers its wake here
     * (atomically, during the rotation phase) instead of into the
     * plain staged words; latchWakes() then drains both. The extra
     * exchange is gated on has_remote_wakes_ so the sequential path
     * pays nothing. The Network performs the binding.
     */
    std::atomic<std::uint32_t> &
    remoteFlitWakeWord()
    {
        has_remote_wakes_ = true;
        return remote_flit_wake_;
    }

    std::atomic<std::uint32_t> &
    remoteCreditWakeWord()
    {
        has_remote_wakes_ = true;
        return remote_credit_wake_;
    }

    /**
     * Activity report: true if any flit is buffered in this router or
     * a latched wake says a flit/credit became visible on an input
     * channel. An idle router's tick() is a no-op, so the fabric may
     * skip it entirely. Only meaningful after latchWakes().
     */
    bool
    busy() const
    {
        return *buffered_ > 0 || *flit_wake_ != 0 ||
               *credit_wake_ != 0;
    }

    /** Flits forwarded through output @p port (for utilization). */
    const stats::Counter &
    outputFlits(int port) const
    {
        return output_flits_[static_cast<std::size_t>(port)];
    }

    /** Failed output-VC claims (head flit blocked this cycle). */
    const stats::Counter &allocStalls() const { return alloc_stalls_; }

    /**
     * Cross-shard wake bits drained by latchWakes() (popcount of the
     * remote wake words). An execution diagnostic for the counter
     * registry — 0 in sequential runs, shard-count-dependent and not
     * part of the simulated result, hence never serialized.
     */
    std::uint64_t remoteWakes() const { return remote_wakes_; }

    /**
     * Attach a tracer for flit-level detail (nullptr to detach; not
     * owned). Events are only emitted when the tracer is configured
     * with TraceDetail::Flit: "flit" per link/ejection traversal and
     * "alloc_stall" per failed output-VC claim, all on @p track.
     */
    void
    setTracer(obs::Tracer *tracer, int track)
    {
        tracer_ = (tracer != nullptr && tracer->flitDetail())
                      ? tracer
                      : nullptr;
        trace_track_ = track;
    }

    /** Total flits currently buffered (for drain/idle detection). */
    std::size_t bufferedFlits() const;

    const RouterConfig &config() const { return config_; }
    sim::NodeId node() const { return node_; }

    /**
     * Serialize the router's dynamic state: input-VC buffers with
     * their wormhole routing state, output VC ownership and credits,
     * all wake/occupancy masks (staged wakes can be nonzero at a run
     * boundary), arbitration cache, and per-port statistics. Channel
     * wiring and decode tables are reconstructed at build time.
     */
    void
    saveState(util::Serializer &s) const
    {
        const int units = unitCount();
        s.put<std::uint64_t>(static_cast<std::uint64_t>(units));
        for (int u = 0; u < units; ++u) {
            const InputVc &ivc = inputs_[static_cast<std::size_t>(u)];
            s.put(ivc.head);
            s.put(ivc.tail);
            for (std::uint32_t i = ivc.head; i != ivc.tail; ++i)
                saveFlit(s, ivc.slots[i & ivc.mask]);
            s.put(ivc.routed);
            s.put(ivc.route_valid);
            s.put(static_cast<int>(ivc.out_port));
            s.put(static_cast<int>(ivc.out_vc));
        }
        const int ports = portCount();
        s.put<std::uint64_t>(static_cast<std::uint64_t>(ports));
        for (int p = 0; p < ports; ++p) {
            const OutputPort &op = outputs_[static_cast<std::size_t>(p)];
            for (int vc = 0; vc < config_.vcs; ++vc) {
                const auto v = static_cast<std::size_t>(vc);
                s.put(static_cast<int>(op.owner[v]));
                s.put(static_cast<int>(op.credits[v]));
            }
            s.put(static_cast<int>(op.next_vc));
        }
        // The slab word is 32-bit in memory; the stream keeps its
        // original 64-bit field.
        s.put<std::uint64_t>(*buffered_);
        // Fold pending cross-shard wakes into the staged words: the
        // two are drained identically by latchWakes(), and folding
        // keeps checkpoint bytes independent of the shard count.
        s.put(*flit_wake_staged_ |
              remote_flit_wake_.load(std::memory_order_relaxed));
        s.put(*flit_wake_);
        s.put(*credit_wake_staged_ |
              remote_credit_wake_.load(std::memory_order_relaxed));
        s.put(*credit_wake_);
        s.put(vc_occupied_);
        s.put(owned_ports_);
        s.put(rr_now_);
        s.put(rr_start_);
        for (int p = 0; p < ports; ++p)
            output_flits_[static_cast<std::size_t>(p)].saveState(s);
        alloc_stalls_.saveState(s);
    }

    void
    loadState(util::Deserializer &d)
    {
        const int units = unitCount();
        if (d.get<std::uint64_t>() !=
            static_cast<std::uint64_t>(units)) {
            throw std::runtime_error(
                "Router::loadState: input unit count mismatch");
        }
        for (int u = 0; u < units; ++u) {
            InputVc &ivc = inputs_[static_cast<std::size_t>(u)];
            ivc.head = d.get<std::uint32_t>();
            ivc.tail = d.get<std::uint32_t>();
            for (std::uint32_t i = ivc.head; i != ivc.tail; ++i)
                ivc.slots[i & ivc.mask] = loadFlit(d);
            ivc.routed = d.getBool();
            ivc.route_valid = d.getBool();
            ivc.out_port = static_cast<std::int8_t>(d.get<int>());
            ivc.out_vc = static_cast<std::int8_t>(d.get<int>());
        }
        const int ports = portCount();
        if (d.get<std::uint64_t>() !=
            static_cast<std::uint64_t>(ports)) {
            throw std::runtime_error(
                "Router::loadState: output port count mismatch");
        }
        for (int p = 0; p < ports; ++p) {
            OutputPort &op = outputs_[static_cast<std::size_t>(p)];
            for (int vc = 0; vc < config_.vcs; ++vc) {
                const auto v = static_cast<std::size_t>(vc);
                op.owner[v] = static_cast<std::int8_t>(d.get<int>());
                op.credits[v] =
                    static_cast<std::int16_t>(d.get<int>());
            }
            op.next_vc = static_cast<std::int8_t>(d.get<int>());
        }
        *buffered_ =
            static_cast<std::uint32_t>(d.get<std::uint64_t>());
        *flit_wake_staged_ = d.get<std::uint32_t>();
        *flit_wake_ = d.get<std::uint32_t>();
        *credit_wake_staged_ = d.get<std::uint32_t>();
        *credit_wake_ = d.get<std::uint32_t>();
        remote_flit_wake_.store(0u, std::memory_order_relaxed);
        remote_credit_wake_.store(0u, std::memory_order_relaxed);
        vc_occupied_ = d.get<std::uint32_t>();
        owned_ports_ = d.get<std::uint32_t>();
        // Rebuild the derived scan masks. ready_ports_ may be a
        // superset of what a never-checkpointed run would hold;
        // scanning an extra blocked port forwards nothing and marks
        // nothing, so the superset is observationally identical and
        // self-corrects on the first traversal.
        ready_ports_ = owned_ports_;
        alloc_pending_ = 0;
        for (int u = 0; u < units; ++u) {
            const InputVc &ivc = inputs_[static_cast<std::size_t>(u)];
            if (!ivc.routed && !ivc.bufEmpty())
                alloc_pending_ |= 1u << u;
        }
        rr_now_ = d.get<sim::Tick>();
        rr_start_ = d.get<int>();
        for (int p = 0; p < ports; ++p)
            output_flits_[static_cast<std::size_t>(p)].loadState(d);
        alloc_stalls_.loadState(d);
    }

  private:
    void receiveCredits();
    void receiveFlits();
    void routeAndAllocate(sim::Tick now);
    void switchTraversal(sim::Tick now);

    /** Compute route for the head flit of (port, vc). */
    void computeRoute(int port, InputVc &ivc);

    InputVc &
    inputVc(int port, int vc)
    {
        return inputs_[static_cast<std::size_t>(
            port * config_.vcs + vc)];
    }

    const TorusTopology &topo_;
    sim::NodeId node_;
    RouterConfig config_;

    FlitLinkStore &flit_store_;
    CreditLinkStore &credit_store_;

    InputVc *inputs_ = nullptr;     // [port][vc] flattened slab slice
    OutputPort *outputs_ = nullptr; // [port] slab slice

    /**
     * Channel ids per port. portCount() is bounded by kMaxPorts (the
     * constructor asserts ports * vcs < 32 with vcs >= 2), so fixed
     * arrays avoid four heap vectors per router.
     */
    std::array<ChannelId, kMaxPorts> in_links_;
    std::array<ChannelId, kMaxPorts> out_links_;
    std::array<ChannelId, kMaxPorts> credit_up_;
    std::array<ChannelId, kMaxPorts> credit_down_;

    /** Flits currently held in input VC buffers (kept incrementally;
     *  slab word, see RouterSlices). */
    std::uint32_t *buffered_ = nullptr;

    /**
     * Activity bitmasks, one bit per port (wake words) or per input
     * unit / output port (occupancy). The wake words are written by
     * the input channels at push time (store wake bindings) and
     * latched by latchWakes(); tick() then visits only ports whose
     * channels actually carry something, and the allocation /
     * traversal phases visit only units with buffered flits / ports
     * with owned VCs. The constructor asserts port * VC counts fit in
     * 32 bits. All four words live in Network-owned per-node slabs
     * (RouterSlices) so the start-of-cycle latch is a contiguous —
     * and vectorizable — sweep; these pointers name this router's
     * words.
     */
    std::uint32_t *flit_wake_staged_ = nullptr;
    std::uint32_t *flit_wake_ = nullptr;
    std::uint32_t *credit_wake_staged_ = nullptr;
    std::uint32_t *credit_wake_ = nullptr;
    /** Cross-shard wake words; see remoteFlitWakeWord(). */
    std::atomic<std::uint32_t> remote_flit_wake_{0};
    std::atomic<std::uint32_t> remote_credit_wake_{0};
    bool has_remote_wakes_ = false;
    /** See remoteWakes(); host diagnostic, excluded from saveState. */
    std::uint64_t remote_wakes_ = 0;
    /** Input units (port * vcs + vc) with a non-empty flit buffer. */
    std::uint32_t vc_occupied_ = 0;
    /** Output ports with at least one owned (allocated) VC. */
    std::uint32_t owned_ports_ = 0;

    /**
     * Event-armed scan pruning. Under congestion most owned output
     * VCs are blocked on credits or upstream body flits for many
     * cycles, so re-scanning them every cycle dominates the traversal
     * phase. Instead, a port is scanned only while its ready bit is
     * set; the bit is cleared when a scan proves the port cannot
     * forward until new input arrives, and re-armed by exactly the
     * events that could unblock it: a credit arrival (receiveCredits),
     * a flit arrival into a routed unit (receiveFlits), or a fresh VC
     * claim (routeAndAllocate). alloc_pending_ likewise narrows the
     * allocation scan to units whose head packet still needs an
     * output VC. Both masks are derived state: they are never
     * serialized (checkpoint bytes are unchanged) and are rebuilt
     * conservatively in loadState().
     */
    std::uint32_t ready_ports_ = 0;
    std::uint32_t alloc_pending_ = 0;

    /**
     * Unit index -> (port, vc) decode tables: the hot phases decode
     * owner units every cycle, and a table lookup beats dividing by
     * the runtime VC count.
     */
    std::array<std::int8_t, 32> unit_port_{};
    std::array<std::int8_t, 32> unit_vc_{};

    /**
     * Cache for the allocation scan's rotating start position, which
     * is a pure function of the tick (start = now mod units). Ticks
     * usually arrive consecutively, so the common case is an
     * increment instead of a 64-bit division.
     */
    sim::Tick rr_now_ = 0;
    int rr_start_ = 0;

    std::array<stats::Counter, kMaxPorts> output_flits_;
    stats::Counter alloc_stalls_;

    /** Non-null only when flit-level tracing is on (null sink). */
    obs::Tracer *tracer_ = nullptr;
    int trace_track_ = 0;
};

} // namespace net
} // namespace locsim

#endif // LOCSIM_NET_ROUTER_HH_
