/**
 * @file
 * A virtual-channel wormhole router for k-ary n-dimensional tori.
 *
 * Microarchitecture (one network cycle per hop when uncontended,
 * matching Section 3.1's "base delay through a network switch is a
 * single network cycle"):
 *
 *  - 2n neighbor ports (one per dimension and direction, separate
 *    unidirectional physical channels) plus an injection input and an
 *    ejection output.
 *  - V virtual channels per physical channel, each with a private
 *    flit buffer of fixed depth; credit-based flow control returns one
 *    credit upstream per flit drained.
 *  - Dimension-order (e-cube) routing; within a ring, deadlock freedom
 *    comes from Dally's dateline scheme: packets use VC 0 until they
 *    traverse the wrap-around link, VC 1 from the wrap link onward.
 *  - Per-packet output VC ownership (wormhole): a head flit claims an
 *    output VC; the tail releases it.
 *
 * All ports communicate through latched sim::Channel objects, so the
 * order in which routers tick within a cycle is immaterial.
 */

#ifndef LOCSIM_NET_ROUTER_HH_
#define LOCSIM_NET_ROUTER_HH_

#include <array>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/trace.hh"
#include "sim/channel.hh"
#include "net/link.hh"
#include "net/message.hh"
#include "net/topology.hh"
#include "stats/stats.hh"

namespace locsim {
namespace net {

/** Configuration knobs for the router fabric. */
struct RouterConfig
{
    /** Virtual channels per physical channel (>= 2 for torus). */
    int vcs = 2;
    /**
     * Flit buffer depth per virtual channel ("a moderate amount of
     * buffering is provided on each switch", Section 3.1).
     */
    int buffer_depth = 8;
};

/**
 * One switch of the torus fabric.
 *
 * The Network wires up channels between routers; the router itself
 * only knows its node id, the topology, and its port channels.
 */
class Router
{
  public:
    using FlitChannel = FlitRing;
    using CreditChannel = CreditPipe;

    Router(const TorusTopology &topo, sim::NodeId node,
           const RouterConfig &config);

    /** Number of ports including injection/ejection. */
    int portCount() const { return 2 * topo_.dims() + 1; }

    /** Port index for (dim, dir): outgoing or incoming neighbor. */
    static int
    portFor(int dim, int dir)
    {
        return 2 * dim + (dir > 0 ? 0 : 1);
    }

    /** The local (injection input / ejection output) port index. */
    int localPort() const { return 2 * topo_.dims(); }

    /**
     * Connect the channels for one port.
     *
     * @param port port index.
     * @param in flits arriving into this router (may be null for the
     *        ejection side of the local port pair; the local port uses
     *        @p in for injection and @p out for ejection).
     * @param out flits leaving this router.
     * @param credit_up credits this router returns to whoever feeds
     *        @p in.
     * @param credit_down credits arriving for @p out.
     */
    void connect(int port, FlitChannel *in, FlitChannel *out,
                 CreditChannel *credit_up, CreditChannel *credit_down);

    /**
     * Advance one network cycle. @p now is the engine tick; internal
     * round-robin pointers are derived from it so that skipping ticks
     * while idle leaves arbitration state exactly as if the router
     * had been polled every cycle.
     */
    void tick(sim::Tick now);

    /**
     * Latch the wake bits staged by last cycle's channel pushes into
     * the masks tick() consumes. The Network calls this on every
     * router at the start of a network cycle, before anything pushes:
     * pushes made during the current cycle stage wakes for the next
     * one, mirroring the channels' one-cycle latching delay.
     */
    void
    latchWakes()
    {
        flit_wake_ |= std::exchange(flit_wake_staged_, 0u);
        credit_wake_ |= std::exchange(credit_wake_staged_, 0u);
        if (has_remote_wakes_) {
            flit_wake_ |= remote_flit_wake_.exchange(
                0u, std::memory_order_relaxed);
            credit_wake_ |= remote_credit_wake_.exchange(
                0u, std::memory_order_relaxed);
        }
    }

    /**
     * Cross-shard wake words. In sharded runs, an input channel whose
     * producer router lives on another shard delivers its wake here
     * (atomically, during the rotation phase) instead of into the
     * plain staged words; latchWakes() then drains both. The extra
     * exchange is gated on has_remote_wakes_ so the sequential path
     * pays nothing. The Network performs the binding.
     */
    std::atomic<std::uint32_t> &
    remoteFlitWakeWord()
    {
        has_remote_wakes_ = true;
        return remote_flit_wake_;
    }

    std::atomic<std::uint32_t> &
    remoteCreditWakeWord()
    {
        has_remote_wakes_ = true;
        return remote_credit_wake_;
    }

    /**
     * Activity report: true if any flit is buffered in this router or
     * a latched wake says a flit/credit became visible on an input
     * channel. An idle router's tick() is a no-op, so the fabric may
     * skip it entirely. Only meaningful after latchWakes().
     */
    bool
    busy() const
    {
        return buffered_ > 0 || flit_wake_ != 0 || credit_wake_ != 0;
    }

    /** Flits forwarded per neighbor output port (for utilization). */
    const std::vector<stats::Counter> &outputFlits() const
    {
        return output_flits_;
    }

    /** Failed output-VC claims (head flit blocked this cycle). */
    const stats::Counter &allocStalls() const { return alloc_stalls_; }

    /**
     * Attach a tracer for flit-level detail (nullptr to detach; not
     * owned). Events are only emitted when the tracer is configured
     * with TraceDetail::Flit: "flit" per link/ejection traversal and
     * "alloc_stall" per failed output-VC claim, all on @p track.
     */
    void
    setTracer(obs::Tracer *tracer, int track)
    {
        tracer_ = (tracer != nullptr && tracer->flitDetail())
                      ? tracer
                      : nullptr;
        trace_track_ = track;
    }

    /** Total flits currently buffered (for drain/idle detection). */
    std::size_t bufferedFlits() const;

    const RouterConfig &config() const { return config_; }
    sim::NodeId node() const { return node_; }

    /**
     * Serialize the router's dynamic state: input-VC buffers with
     * their wormhole routing state, output VC ownership and credits,
     * all wake/occupancy masks (staged wakes can be nonzero at a run
     * boundary), arbitration cache, and per-port statistics. Channel
     * wiring and decode tables are reconstructed at build time.
     */
    void
    saveState(util::Serializer &s) const
    {
        s.put<std::uint64_t>(inputs_.size());
        for (const InputVc &ivc : inputs_) {
            s.put(ivc.head);
            s.put(ivc.tail);
            for (std::uint32_t i = ivc.head; i != ivc.tail; ++i)
                saveFlit(s, ivc.slots[i & ivc.mask]);
            s.put(ivc.routed);
            s.put(ivc.route_valid);
            s.put(ivc.out_port);
            s.put(ivc.out_vc);
        }
        s.put<std::uint64_t>(outputs_.size());
        for (const OutputPort &op : outputs_) {
            for (int vc = 0; vc < config_.vcs; ++vc) {
                const auto v = static_cast<std::size_t>(vc);
                s.put(op.owner[v]);
                s.put(op.credits[v]);
            }
            s.put(op.next_vc);
        }
        s.put<std::uint64_t>(buffered_);
        // Fold pending cross-shard wakes into the staged words: the
        // two are drained identically by latchWakes(), and folding
        // keeps checkpoint bytes independent of the shard count.
        s.put(flit_wake_staged_ |
              remote_flit_wake_.load(std::memory_order_relaxed));
        s.put(flit_wake_);
        s.put(credit_wake_staged_ |
              remote_credit_wake_.load(std::memory_order_relaxed));
        s.put(credit_wake_);
        s.put(vc_occupied_);
        s.put(owned_ports_);
        s.put(rr_now_);
        s.put(rr_start_);
        for (const stats::Counter &counter : output_flits_)
            counter.saveState(s);
        alloc_stalls_.saveState(s);
    }

    void
    loadState(util::Deserializer &d)
    {
        if (d.get<std::uint64_t>() != inputs_.size())
            throw std::runtime_error(
                "Router::loadState: input unit count mismatch");
        for (InputVc &ivc : inputs_) {
            ivc.head = d.get<std::uint32_t>();
            ivc.tail = d.get<std::uint32_t>();
            for (std::uint32_t i = ivc.head; i != ivc.tail; ++i)
                ivc.slots[i & ivc.mask] = loadFlit(d);
            ivc.routed = d.getBool();
            ivc.route_valid = d.getBool();
            ivc.out_port = d.get<int>();
            ivc.out_vc = d.get<int>();
        }
        if (d.get<std::uint64_t>() != outputs_.size())
            throw std::runtime_error(
                "Router::loadState: output port count mismatch");
        for (OutputPort &op : outputs_) {
            for (int vc = 0; vc < config_.vcs; ++vc) {
                const auto v = static_cast<std::size_t>(vc);
                op.owner[v] = d.get<int>();
                op.credits[v] = d.get<int>();
            }
            op.next_vc = d.get<int>();
        }
        buffered_ = static_cast<std::size_t>(d.get<std::uint64_t>());
        flit_wake_staged_ = d.get<std::uint32_t>();
        flit_wake_ = d.get<std::uint32_t>();
        credit_wake_staged_ = d.get<std::uint32_t>();
        credit_wake_ = d.get<std::uint32_t>();
        remote_flit_wake_.store(0u, std::memory_order_relaxed);
        remote_credit_wake_.store(0u, std::memory_order_relaxed);
        vc_occupied_ = d.get<std::uint32_t>();
        owned_ports_ = d.get<std::uint32_t>();
        rr_now_ = d.get<sim::Tick>();
        rr_start_ = d.get<int>();
        for (stats::Counter &counter : output_flits_)
            counter.loadState(d);
        alloc_stalls_.loadState(d);
    }

  private:
    /**
     * One input VC: a private flit buffer (a slice of the router's
     * contiguous ring storage, power-of-two sized for buffer_depth;
     * credit flow control guarantees it never overflows) plus the
     * wormhole routing state of the packet at its head. Ring indices
     * are monotonic and masked on access.
     */
    struct InputVc
    {
        Flit *slots = nullptr;       //!< into Router::vc_buf_
        std::uint32_t mask = 0;      //!< ring capacity - 1
        std::uint32_t head = 0;
        std::uint32_t tail = 0;

        bool bufEmpty() const { return head == tail; }
        std::uint32_t bufSize() const { return tail - head; }
        const Flit &bufFront() const { return slots[head & mask]; }
        Flit &bufFrontMut() { return slots[head & mask]; }
        void bufPush(const Flit &flit)
        {
            slots[tail & mask] = flit;
            ++tail;
        }
        void bufPop() { ++head; }

        bool routed = false;      //!< head holds its output VC
        /**
         * out_port/out_vc hold a valid route for the head packet.
         * The route is a pure function of the head flit and the input
         * port, so it stays cached across failed allocation retries
         * and is only invalidated when the tail flit departs.
         */
        bool route_valid = false;
        int out_port = -1;
        int out_vc = -1;
    };

    struct OutputPort
    {
        /** Encoded owner input (port * vcs + vc), or -1 if free. */
        std::array<int, CreditPipe::kMaxVcs> owner{};
        /** Credits available per output VC. */
        std::array<int, CreditPipe::kMaxVcs> credits{};
        /** Round-robin pointer over output VCs. */
        int next_vc = 0;
    };

    void receiveCredits();
    void receiveFlits();
    void routeAndAllocate(sim::Tick now);
    void switchTraversal(sim::Tick now);

    /** Compute route for the head flit of (port, vc). */
    void computeRoute(int port, InputVc &ivc);

    InputVc &inputVc(int port, int vc);

    const TorusTopology &topo_;
    sim::NodeId node_;
    RouterConfig config_;

    std::vector<InputVc> inputs_;        // [port][vc] flattened
    std::vector<OutputPort> outputs_;    // [port]
    std::vector<Flit> vc_buf_;           // all input VC rings, contiguous

    std::vector<FlitChannel *> in_links_;
    std::vector<FlitChannel *> out_links_;
    std::vector<CreditChannel *> credit_up_;
    std::vector<CreditChannel *> credit_down_;

    /** Flits currently held in input VC buffers (kept incrementally). */
    std::size_t buffered_ = 0;

    /**
     * Activity bitmasks, one bit per port (wake words) or per input
     * unit / output port (occupancy). The wake words are written by
     * the input channels at push time (Channel::bindWake) and latched
     * by latchWakes(); tick() then visits only ports whose channels
     * actually carry something, and the allocation / traversal phases
     * visit only units with buffered flits / ports with owned VCs.
     * The constructor asserts port * VC counts fit in 32 bits.
     */
    std::uint32_t flit_wake_staged_ = 0;
    std::uint32_t flit_wake_ = 0;
    std::uint32_t credit_wake_staged_ = 0;
    std::uint32_t credit_wake_ = 0;
    /** Cross-shard wake words; see remoteFlitWakeWord(). */
    std::atomic<std::uint32_t> remote_flit_wake_{0};
    std::atomic<std::uint32_t> remote_credit_wake_{0};
    bool has_remote_wakes_ = false;
    /** Input units (port * vcs + vc) with a non-empty flit buffer. */
    std::uint32_t vc_occupied_ = 0;
    /** Output ports with at least one owned (allocated) VC. */
    std::uint32_t owned_ports_ = 0;

    /**
     * Unit index -> (port, vc) decode tables: the hot phases decode
     * owner units every cycle, and a table lookup beats dividing by
     * the runtime VC count.
     */
    std::array<std::int8_t, 32> unit_port_{};
    std::array<std::int8_t, 32> unit_vc_{};

    /**
     * Cache for the allocation scan's rotating start position, which
     * is a pure function of the tick (start = now mod units). Ticks
     * usually arrive consecutively, so the common case is an
     * increment instead of a 64-bit division.
     */
    sim::Tick rr_now_ = 0;
    int rr_start_ = 0;

    std::vector<stats::Counter> output_flits_;
    stats::Counter alloc_stalls_;

    /** Non-null only when flit-level tracing is on (null sink). */
    obs::Tracer *tracer_ = nullptr;
    int trace_track_ = 0;
};

} // namespace net
} // namespace locsim

#endif // LOCSIM_NET_ROUTER_HH_
