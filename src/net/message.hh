/**
 * @file
 * Network message and flit definitions.
 *
 * Messages are the unit of communication between nodes; the fabric
 * breaks them into flits (one flit per 8-bit channel cycle, so a
 * 96-bit coherence message is B = 12 flits, matching Section 3.2).
 */

#ifndef LOCSIM_NET_MESSAGE_HH_
#define LOCSIM_NET_MESSAGE_HH_

#include <array>
#include <cstdint>

#include "sim/types.hh"
#include "util/serialize.hh"

namespace locsim {
namespace net {

/** Monotonically assigned message identifier. */
using MessageId = std::uint64_t;

/**
 * Coarse message class for latency attribution. The fabric treats all
 * classes identically; the network only groups its per-message latency
 * decomposition (serialization + hops + contention) by this tag.
 */
enum class MessageClass : std::uint8_t {
    Generic,   //!< synthetic traffic / unclassified
    Request,   //!< cache miss requests (GetS/GetX/Fetch...)
    Reply,     //!< data replies
    Inv,       //!< invalidations and their acks
    Writeback, //!< dirty-data writebacks
};

constexpr std::size_t kMessageClassCount = 5;

/** Stable lower-case class name for report columns. */
const char *messageClassName(MessageClass cls);

/** Inline payload words carried by a Message (see below). */
using MessagePayload = std::array<std::uint64_t, 4>;

/**
 * A network message as submitted by a node.
 *
 * The payload is opaque to the fabric; the coherence layer packs its
 * protocol message into the inline words. Carrying the payload by
 * value (rather than as an index into a shared side table) keeps each
 * message's state local to whichever spatial shard currently owns it,
 * which the sharded execution mode requires.
 */
struct Message
{
    MessageId id = 0;
    sim::NodeId src = sim::kNodeNone;
    sim::NodeId dst = sim::kNodeNone;
    /** Message length in flits (>= 1). */
    std::uint32_t flits = 1;
    /** Opaque payload words for the client protocol layer. */
    MessagePayload payload{};
    /** Tick at which the client submitted the message. */
    sim::Tick submit_tick = 0;
    /** Attribution class; does not affect routing or arbitration. */
    MessageClass cls = MessageClass::Generic;
};

/**
 * One flit on a physical channel.
 *
 * Head flits carry the routing information; body/tail flits simply
 * follow the wormhole path their head opened. The vc field names the
 * virtual channel assigned on the link the flit is currently
 * traversing (rewritten at every hop).
 */
/**
 * Packed to 24 bytes (flags and VC share one byte, the sequence
 * number is 16-bit): flits are copied and buffered on every link
 * traversal, so the struct size directly scales the fabric's
 * cache footprint. The checkpoint wire format is unchanged
 * (saveFlit/loadFlit widen back to the original field types).
 */
struct Flit
{
    MessageId msg = 0;
    sim::NodeId src = sim::kNodeNone;
    sim::NodeId dst = sim::kNodeNone;
    /** Flit index within the message (length asserted <= 65535). */
    std::uint16_t seq = 0;
    /**
     * Head-flit counters for latency attribution: network links
     * traversed and router cycles spent waiting for an output VC.
     * Carried on the head only (body flits follow the opened path).
     */
    std::uint16_t hops = 0;
    std::uint16_t stalls = 0;
    bool head : 1 = false;
    bool tail : 1 = false;
    /**
     * Dateline state for the head flit: true once the packet has
     * crossed the wrap-around link of the ring it is currently
     * traversing (forces the high virtual channel; Dally's dateline
     * scheme for deadlock-free wormhole tori).
     */
    bool crossed_dateline : 1 = false;
    std::uint8_t vc : 5 = 0;  //!< VC on the current link
};

/** A credit returned upstream: one buffer slot freed on (port, vc). */
struct Credit
{
    std::uint8_t vc = 0;
};

// Checkpoint serialization for the wire-level value types. Free
// functions (not members) so the structs stay plain aggregates.

inline void
saveMessage(util::Serializer &s, const Message &m)
{
    s.put(m.id);
    s.put(m.src);
    s.put(m.dst);
    s.put(m.flits);
    for (std::uint64_t word : m.payload)
        s.put(word);
    s.put(m.submit_tick);
    s.put(m.cls);
}

inline Message
loadMessage(util::Deserializer &d)
{
    Message m;
    m.id = d.get<MessageId>();
    m.src = d.get<sim::NodeId>();
    m.dst = d.get<sim::NodeId>();
    m.flits = d.get<std::uint32_t>();
    for (std::uint64_t &word : m.payload)
        word = d.get<std::uint64_t>();
    m.submit_tick = d.get<sim::Tick>();
    m.cls = d.get<MessageClass>();
    return m;
}

inline void
saveFlit(util::Serializer &s, const Flit &f)
{
    s.put(f.msg);
    s.put(f.src);
    s.put(f.dst);
    s.put(static_cast<std::uint32_t>(f.seq));
    s.put(static_cast<bool>(f.head));
    s.put(static_cast<bool>(f.tail));
    s.put(static_cast<std::uint8_t>(f.vc));
    s.put(static_cast<bool>(f.crossed_dateline));
    s.put(f.hops);
    s.put(f.stalls);
}

inline Flit
loadFlit(util::Deserializer &d)
{
    Flit f;
    f.msg = d.get<MessageId>();
    f.src = d.get<sim::NodeId>();
    f.dst = d.get<sim::NodeId>();
    f.seq = static_cast<std::uint16_t>(d.get<std::uint32_t>());
    f.head = d.getBool();
    f.tail = d.getBool();
    f.vc = d.get<std::uint8_t>() & 0x1fu;
    f.crossed_dateline = d.getBool();
    f.hops = d.get<std::uint16_t>();
    f.stalls = d.get<std::uint16_t>();
    return f;
}

inline void
saveCredit(util::Serializer &s, const Credit &c)
{
    s.put(c.vc);
}

inline Credit
loadCredit(util::Deserializer &d)
{
    Credit c;
    c.vc = d.get<std::uint8_t>();
    return c;
}

} // namespace net
} // namespace locsim

#endif // LOCSIM_NET_MESSAGE_HH_
