/**
 * @file
 * Open-loop synthetic traffic driver for network-only experiments.
 *
 * Each node generates fixed-size messages as a Bernoulli process with
 * a configurable per-cycle injection probability, addressed either
 * uniformly at random (never to self; the assumption behind paper
 * Equation 17) or to a fixed set of neighbors at a target distance.
 * This is exactly the fixed-message-rate regime Agarwal's network
 * model assumes, so it is used to validate our network model
 * implementation and to demonstrate why open-loop analysis mispredicts
 * closed-loop machines (Section 5's critique).
 */

#ifndef LOCSIM_NET_TRAFFIC_HH_
#define LOCSIM_NET_TRAFFIC_HH_

#include <cstdint>

#include "net/network.hh"
#include "util/random.hh"

namespace locsim {
namespace net {

/** Traffic pattern selector. */
enum class TrafficPattern {
    UniformRandom,      //!< uniform over all other nodes
    NearestNeighbor,    //!< one of the 2n torus neighbors
};

/** Open-loop generator configuration. */
struct TrafficConfig
{
    TrafficPattern pattern = TrafficPattern::UniformRandom;
    /** Per-node, per-network-cycle message injection probability. */
    double injection_rate = 0.01;
    /** Message size in flits (paper: B = 12). */
    std::uint32_t message_flits = 12;
    std::uint64_t seed = 1;
};

/**
 * Drives a Network with open-loop traffic and swallows deliveries.
 *
 * Register after the Network with the same period so deliveries are
 * drained every cycle.
 */
class TrafficGenerator : public sim::Clocked
{
  public:
    TrafficGenerator(Network &network, const TrafficConfig &config);

    void tick(sim::Tick now) override;

    /**
     * Stop generating new messages (deliveries are still drained).
     * Used by tests and benches to let the network run dry.
     */
    void stop() { enabled_ = false; }

    /** Resume generation after stop(). */
    void start() { enabled_ = true; }

    /**
     * While enabled the generator draws randomness every cycle, so it
     * can never be skipped without perturbing the Bernoulli stream.
     * After stop() it only needs ticks while deliveries remain
     * undrained.
     */
    bool busy() const override
    {
        return enabled_ || network_.pendingDeliveries() > 0;
    }

    /** Messages injected so far. */
    std::uint64_t generated() const { return generated_; }

    /** Messages drained from the delivery queues so far. */
    std::uint64_t received() const { return received_; }

  private:
    sim::NodeId pickDestination(sim::NodeId src);

    Network &network_;
    TrafficConfig config_;
    util::Rng rng_;
    bool enabled_ = true;
    std::uint64_t generated_ = 0;
    std::uint64_t received_ = 0;
};

} // namespace net
} // namespace locsim

#endif // LOCSIM_NET_TRAFFIC_HH_
