/**
 * @file
 * Specialised latched links for the torus fabric.
 *
 * Both types keep the two-phase contract of sim::Channel (a value
 * pushed during cycle t becomes visible at t+1, via the engine's
 * rotation) but exploit fabric invariants the generic deque-backed
 * channel cannot:
 *
 *  - FlitRing: credit flow control bounds link occupancy to the
 *    downstream buffer depth, so a fixed power-of-two ring replaces
 *    the deque and rotation collapses to publishing one index.
 *  - CreditPipe: credits are fungible per-VC tokens — only their
 *    count matters, never their order — so the queue collapses to a
 *    staged/visible counter pair per VC.
 *
 * Profiling showed the per-flit deque traffic of the generic channels
 * (push, pop, rotate, and the credit round-trip per hop) dominating
 * the router's switch-traversal phase; these links remove it.
 */

#ifndef LOCSIM_NET_LINK_HH_
#define LOCSIM_NET_LINK_HH_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/message.hh"
#include "sim/channel.hh"
#include "util/logging.hh"

namespace locsim {
namespace net {

/**
 * A latched flit link backed by a power-of-two ring buffer.
 *
 * FIFO, same visibility semantics as sim::Channel<Flit>. The ring is
 * sized for the caller-declared occupancy bound; a push beyond it
 * asserts (it would mean the credit protocol was violated).
 */
class FlitRing : public sim::Rotatable
{
  public:
    /** @param max_occupancy most flits ever simultaneously in flight. */
    explicit FlitRing(int max_occupancy)
    {
        std::size_t cap = 4;
        while (cap < static_cast<std::size_t>(max_occupancy))
            cap <<= 1;
        buf_.resize(cap);
        mask_ = cap - 1;
    }

    /** True if no flit is currently visible to the consumer. */
    bool
    empty() const
    {
        return head_.load(std::memory_order_relaxed) == mid_;
    }

    /** Enqueue a flit; becomes visible after the next rotate(). */
    void
    push(const Flit &flit)
    {
        LOCSIM_ASSERT(tail_ - head_.load(std::memory_order_relaxed) <
                          buf_.size(),
                      "flit link overflow: credit protocol violated");
        buf_[tail_ & mask_] = flit;
        ++tail_;
        markDirty();
        notifyWake();
    }

    /** Peek the oldest visible flit. */
    const Flit &
    front() const
    {
        LOCSIM_ASSERT(!empty(), "front() on empty link");
        return buf_[head_.load(std::memory_order_relaxed) & mask_];
    }

    /** Dequeue the oldest visible flit. */
    Flit
    pop()
    {
        LOCSIM_ASSERT(!empty(), "pop() on empty link");
        const std::uint64_t head =
            head_.load(std::memory_order_relaxed);
        const Flit flit = buf_[head & mask_];
        head_.store(head + 1, std::memory_order_relaxed);
        return flit;
    }

    /** Number of flits currently visible to the consumer. */
    std::size_t visibleSize() const
    {
        return static_cast<std::size_t>(
            mid_ - head_.load(std::memory_order_relaxed));
    }

    void
    rotate() override
    {
        notifyRemoteWake();
        dirty_ = false;
        mid_ = tail_;
    }

    /**
     * Serialize the occupied region with its raw monotonic indices,
     * so a restored ring is index-for-index identical (required for
     * save -> load -> save byte equality).
     */
    void
    saveState(util::Serializer &s) const
    {
        const std::uint64_t head =
            head_.load(std::memory_order_relaxed);
        s.put(head);
        s.put(mid_);
        s.put(tail_);
        for (std::uint64_t i = head; i != tail_; ++i)
            saveFlit(s, buf_[i & mask_]);
    }

    void
    loadState(util::Deserializer &d)
    {
        const auto head = d.get<std::uint64_t>();
        head_.store(head, std::memory_order_relaxed);
        mid_ = d.get<std::uint64_t>();
        tail_ = d.get<std::uint64_t>();
        LOCSIM_ASSERT(tail_ - head <= buf_.size(),
                      "flit ring checkpoint exceeds capacity");
        for (std::uint64_t i = head; i != tail_; ++i)
            buf_[i & mask_] = loadFlit(d);
    }

  private:
    std::vector<Flit> buf_;
    std::size_t mask_ = 0;
    // Monotonic indices into the ring (masked on access): the ranges
    // [head_, mid_) and [mid_, tail_) are the visible and staged
    // regions respectively. head_ is atomic (relaxed) because on a
    // shard-crossing link the producer's overflow assert reads it
    // while the consumer shard is popping; mid_ is safe plain — it is
    // written only during the producer's rotation phase, which the
    // driver's barrier separates from all consumer reads.
    std::atomic<std::uint64_t> head_{0};
    std::uint64_t mid_ = 0;
    std::uint64_t tail_ = 0;
};

/**
 * A latched credit return path: staged/visible counters per VC.
 *
 * Equivalent to a sim::Channel<Credit> whose consumer drains it
 * completely whenever it holds anything — which is how the router and
 * the injection endpoints use credits — because per-VC counts are the
 * only observable property of a batch of credits.
 */
class CreditPipe : public sim::Rotatable
{
  public:
    static constexpr int kMaxVcs = 8;

    explicit CreditPipe(int vcs) : vcs_(vcs)
    {
        LOCSIM_ASSERT(vcs >= 1 && vcs <= kMaxVcs, "VC count range");
    }

    /** Return one credit for @p vc; visible after the next rotate(). */
    void
    push(int vc)
    {
        ++staged_[static_cast<std::size_t>(vc)];
        markDirty();
        notifyWake();
    }

    /** Drain and return all visible credits for @p vc. */
    int
    take(int vc)
    {
        const auto v = static_cast<std::size_t>(vc);
        const int count = visible_[v];
        visible_[v] = 0;
        return count;
    }

    /** Drain and return all visible credits across every VC. */
    int
    takeAll()
    {
        int total = 0;
        for (int vc = 0; vc < vcs_; ++vc) {
            const auto v = static_cast<std::size_t>(vc);
            total += visible_[v];
            visible_[v] = 0;
        }
        return total;
    }

    void
    rotate() override
    {
        notifyRemoteWake();
        dirty_ = false;
        for (int vc = 0; vc < vcs_; ++vc) {
            const auto v = static_cast<std::size_t>(vc);
            visible_[v] += staged_[v];
            staged_[v] = 0;
        }
    }

    void
    saveState(util::Serializer &s) const
    {
        for (int vc = 0; vc < vcs_; ++vc) {
            const auto v = static_cast<std::size_t>(vc);
            s.put(staged_[v]);
            s.put(visible_[v]);
        }
    }

    void
    loadState(util::Deserializer &d)
    {
        for (int vc = 0; vc < vcs_; ++vc) {
            const auto v = static_cast<std::size_t>(vc);
            staged_[v] = d.get<int>();
            visible_[v] = d.get<int>();
        }
    }

  private:
    int vcs_;
    std::array<int, kMaxVcs> staged_{};
    std::array<int, kMaxVcs> visible_{};
};

} // namespace net
} // namespace locsim

#endif // LOCSIM_NET_LINK_HH_
