/**
 * @file
 * Network fabric implementation.
 */

#include "net/network.hh"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hh"

namespace locsim {
namespace net {

const char *
messageClassName(MessageClass cls)
{
    switch (cls) {
      case MessageClass::Generic:
        return "generic";
      case MessageClass::Request:
        return "request";
      case MessageClass::Reply:
        return "reply";
      case MessageClass::Inv:
        return "inv";
      case MessageClass::Writeback:
        return "writeback";
    }
    return "?";
}

Network::Network(sim::Engine &engine, const NetworkConfig &config)
    : engine_(engine), config_(config),
      topo_(config.radix, config.dims, config.wraparound)
{
    const sim::NodeId n = topo_.nodeCount();
    routers_.reserve(n);
    endpoints_.resize(n);
    inject_link_.resize(n);
    inject_credit_.resize(n);
    eject_link_.resize(n);
    eject_credit_.resize(n);

    // Credit flow control bounds link occupancy to the downstream
    // buffer depth; +2 leaves slack for the cycle of latching delay
    // on each side of the credit loop.
    auto make_flit_channel = [&]() {
        flit_channels_.push_back(
            arena_.make<FlitRing>(config_.router.buffer_depth + 2));
        engine_.addChannel(flit_channels_.back());
        return flit_channels_.back();
    };
    auto make_credit_channel = [&]() {
        credit_channels_.push_back(
            arena_.make<CreditPipe>(config_.router.vcs));
        engine_.addChannel(credit_channels_.back());
        return credit_channels_.back();
    };

    for (sim::NodeId node = 0; node < n; ++node) {
        routers_.push_back(
            arena_.make<Router>(topo_, node, config_.router));
    }

    // Wire neighbor links. For each node and each (dim, dir) we create
    // the unidirectional flit channel node -> neighbor and its credit
    // return channel. The channel leaving `node` on port p arrives at
    // the neighbor on the port of the opposite direction.
    struct PortWiring
    {
        FlitRing *in = nullptr;
        FlitRing *out = nullptr;
        CreditPipe *credit_up = nullptr;
        CreditPipe *credit_down = nullptr;
    };
    std::vector<std::vector<PortWiring>> wiring(
        n, std::vector<PortWiring>(
               static_cast<std::size_t>(2 * config_.dims + 1)));

    for (sim::NodeId node = 0; node < n; ++node) {
        for (int dim = 0; dim < config_.dims; ++dim) {
            for (int dir : {+1, -1}) {
                const sim::NodeId nbr = topo_.neighbor(node, dim, dir);
                if (nbr == sim::kNodeNone)
                    continue; // mesh edge: no link in this direction
                auto *flits = make_flit_channel();
                auto *credits = make_credit_channel();
                const auto out_port =
                    static_cast<std::size_t>(Router::portFor(dim, dir));
                const auto in_port = static_cast<std::size_t>(
                    Router::portFor(dim, -dir));
                wiring[node][out_port].out = flits;
                wiring[node][out_port].credit_down = credits;
                wiring[nbr][in_port].in = flits;
                wiring[nbr][in_port].credit_up = credits;
            }
        }
        // Local (node <-> router) channels.
        const auto local =
            static_cast<std::size_t>(2 * config_.dims);
        inject_link_[node] = make_flit_channel();
        inject_credit_[node] = make_credit_channel();
        eject_link_[node] = make_flit_channel();
        eject_credit_[node] = make_credit_channel();
        wiring[node][local].in = inject_link_[node];
        wiring[node][local].credit_up = inject_credit_[node];
        wiring[node][local].out = eject_link_[node];
        wiring[node][local].credit_down = eject_credit_[node];

        endpoints_[node].inject_credits = config_.router.buffer_depth;
    }

    for (sim::NodeId node = 0; node < n; ++node) {
        for (int port = 0; port < 2 * config_.dims + 1; ++port) {
            const auto &w =
                wiring[node][static_cast<std::size_t>(port)];
            routers_[node]->connect(port, w.in, w.out, w.credit_up,
                                    w.credit_down);
        }
    }
}

Network::~Network() = default;

MessageId
Network::send(Message msg)
{
    LOCSIM_ASSERT(msg.src < topo_.nodeCount(), "bad source node");
    LOCSIM_ASSERT(msg.dst < topo_.nodeCount(), "bad destination node");
    LOCSIM_ASSERT(msg.src != msg.dst,
                  "local transactions must not enter the network");
    LOCSIM_ASSERT(msg.flits >= 1, "message needs at least one flit");

    msg.id = next_id_++;
    msg.submit_tick = engine_.now();

    MessageRecord record;
    record.message = msg;
    record.hops = topo_.distance(msg.src, msg.dst);
    records_.emplace(msg.id, record);

    endpoints_[msg.src].source_queue.push_back(msg);
    ++stats_.messages_sent;
    stats_.flits.add(static_cast<double>(msg.flits));
    ++in_flight_;
    if (tracer_ != nullptr) {
        tracer_->asyncBegin(
            node_tracks_[msg.src], msg.submit_tick, msg.id, "msg",
            obs::Category::Net,
            std::move(obs::Args()
                          .add("dst", static_cast<std::int64_t>(msg.dst))
                          .add("flits", msg.flits)
                          .add("class", messageClassName(msg.cls)))
                .str());
    }
    return msg.id;
}

std::optional<Message>
Network::receive(sim::NodeId node)
{
    auto &delivered = endpoints_[node].delivered;
    if (delivered.empty())
        return std::nullopt;
    Message msg = delivered.front();
    delivered.pop_front();
    --pending_deliveries_;
    // Accounting for this message is complete; drop the record so
    // long runs do not accumulate unbounded history.
    records_.erase(msg.id);
    return msg;
}

std::size_t
Network::pendingAt(sim::NodeId node) const
{
    return endpoints_[node].delivered.size();
}

bool
Network::idle() const
{
    return in_flight_ == 0;
}

void
Network::tickInjection(sim::NodeId node)
{
    NodeEndpoint &ep = endpoints_[node];

    if (ep.source_queue.empty())
        return;

    // Collect returned injection credits. Credits bank up in the pipe
    // while the node has nothing to send, so collecting them lazily
    // (only when a message wants to inject) is equivalent to
    // collecting every cycle.
    ep.inject_credits += inject_credit_[node]->takeAll();
    LOCSIM_ASSERT(ep.inject_credits <= config_.router.buffer_depth,
                  "injection credit overflow at node ", node);

    if (ep.inject_credits == 0)
        return;

    Message &msg = ep.source_queue.front();
    if (ep.flits_sent == 0) {
        auto it = records_.find(msg.id);
        LOCSIM_ASSERT(it != records_.end(), "missing message record");
        if (it->second.inject_start == sim::kTickNever) {
            it->second.inject_start = engine_.now();
            if (tracer_ != nullptr) {
                tracer_->instant(
                    node_tracks_[node], engine_.now(), "inject",
                    obs::Category::Net,
                    std::move(obs::Args().add("msg", msg.id)).str());
            }
        }
    }

    Flit flit;
    flit.msg = msg.id;
    flit.src = msg.src;
    flit.dst = msg.dst;
    flit.seq = ep.flits_sent;
    flit.head = ep.flits_sent == 0;
    flit.tail = ep.flits_sent + 1 == msg.flits;
    flit.vc = 0;
    inject_link_[node]->push(flit);
    --ep.inject_credits;
    ++ep.flits_sent;

    if (ep.flits_sent == msg.flits) {
        ep.source_queue.pop_front();
        ep.flits_sent = 0;
    }
}

void
Network::tickEjection(sim::NodeId node)
{
    NodeEndpoint &ep = endpoints_[node];
    FlitRing *link = eject_link_[node];

    // The node drains one flit per network cycle (an 8-bit channel
    // delivers one flit per cycle, Section 3.1).
    if (link->empty())
        return;
    Flit flit = link->pop();
    eject_credit_[node]->push(flit.vc);

    auto &arrived = ep.arrived_flits[flit.msg];
    LOCSIM_ASSERT(flit.seq == arrived,
                  "flit reordering within a wormhole message: msg ",
                  flit.msg, " expected seq ", arrived, " got ",
                  flit.seq);
    ++arrived;

    if (flit.head) {
        // Harvest the head flit's attribution counters; body flits
        // follow the opened path and carry none.
        auto hit = records_.find(flit.msg);
        LOCSIM_ASSERT(hit != records_.end(), "head for unknown message");
        hit->second.head_hops = flit.hops;
        hit->second.head_stalls = flit.stalls;
    }

    if (!flit.tail)
        return;

    auto it = records_.find(flit.msg);
    LOCSIM_ASSERT(it != records_.end(), "tail for unknown message");
    MessageRecord &rec = it->second;
    LOCSIM_ASSERT(arrived == rec.message.flits,
                  "tail arrived before all flits: msg ", flit.msg);
    LOCSIM_ASSERT(rec.message.dst == node, "message misrouted: msg ",
                  flit.msg, " for node ", rec.message.dst,
                  " ejected at ", node);

    rec.delivered = engine_.now();
    ep.arrived_flits.erase(flit.msg);
    ep.delivered.push_back(rec.message);
    ++pending_deliveries_;

    ++stats_.messages_delivered;
    --in_flight_;
    const double latency =
        static_cast<double>(rec.delivered - rec.inject_start);
    stats_.latency.add(latency);
    stats_.latency_hist.add(latency);
    stats_.source_queue.add(static_cast<double>(rec.inject_start -
                                                rec.message.submit_tick));
    stats_.hops.add(static_cast<double>(rec.hops));

    // Latency decomposition (see ClassAttribution): the network_test
    // zero-load identity is T = B + h + 1, so the contention residual
    // is exactly zero on an uncontended path.
    const double serialization =
        static_cast<double>(rec.message.flits);
    const double measured_hops = static_cast<double>(rec.head_hops);
    const double contention = std::max(
        0.0, latency - serialization - measured_hops - 1.0);
    ClassAttribution &attr =
        stats_.attribution[static_cast<std::size_t>(rec.message.cls)];
    ++attr.count;
    attr.latency += latency;
    attr.serialization += serialization;
    attr.hops += measured_hops;
    attr.contention += contention;
    attr.stalls += static_cast<double>(rec.head_stalls);

    if (tracer_ != nullptr) {
        tracer_->asyncEnd(
            node_tracks_[rec.message.src], rec.delivered, flit.msg,
            "msg", obs::Category::Net,
            std::move(obs::Args()
                          .add("latency", latency)
                          .add("hops", static_cast<int>(rec.head_hops))
                          .add("stalls",
                               static_cast<int>(rec.head_stalls)))
                .str());
    }
}

void
Network::tick(sim::Tick now)
{
    // Latch the wake bits staged by last cycle's channel pushes
    // before anything pushes this cycle: injection, ejection credits
    // and router traversal below all stage wakes for the NEXT cycle,
    // matching the channels' one-cycle latching delay.
    for (auto &router : routers_)
        router->latchWakes();
    const sim::NodeId n = topo_.nodeCount();
    for (sim::NodeId node = 0; node < n; ++node)
        tickEjection(node);
    for (sim::NodeId node = 0; node < n; ++node)
        tickInjection(node);
    // An idle router's tick is a no-op (no buffered flits, nothing
    // visible on its channels, and its arbitration state is derived
    // from `now`), so skipping it cannot change behavior.
    for (auto &router : routers_) {
        if (router->busy())
            router->tick(now);
    }
}

void
Network::resetStats()
{
    stats_.messages_sent = 0;
    stats_.messages_delivered = 0;
    stats_.latency.reset();
    stats_.latency_hist.reset();
    stats_.source_queue.reset();
    stats_.hops.reset();
    stats_.flits.reset();
    stats_.attribution.fill({});
    stats_start_ = engine_.now();

    std::uint64_t hops = 0;
    for (const auto &router : routers_) {
        const auto &counts = router->outputFlits();
        for (std::size_t p = 0; p + 1 < counts.size(); ++p)
            hops += counts[p].value();
    }
    stats_flit_hops_base_ = hops;
}

double
Network::channelUtilization() const
{
    const sim::Tick elapsed = engine_.now() - stats_start_;
    if (elapsed == 0)
        return 0.0;
    std::uint64_t hops = 0;
    for (const auto &router : routers_) {
        const auto &counts = router->outputFlits();
        // Exclude the local (ejection) port: model rho covers network
        // channels only.
        for (std::size_t p = 0; p + 1 < counts.size(); ++p)
            hops += counts[p].value();
    }
    hops -= stats_flit_hops_base_;
    const double channels = static_cast<double>(topo_.nodeCount()) *
                            2.0 * static_cast<double>(config_.dims);
    return static_cast<double>(hops) /
           (static_cast<double>(elapsed) * channels);
}

const MessageRecord *
Network::record(MessageId id) const
{
    auto it = records_.find(id);
    return it == records_.end() ? nullptr : &it->second;
}

std::uint64_t
Network::totalNeighborFlitHops() const
{
    std::uint64_t hops = 0;
    for (const auto &router : routers_) {
        const auto &counts = router->outputFlits();
        for (std::size_t p = 0; p + 1 < counts.size(); ++p)
            hops += counts[p].value();
    }
    return hops;
}

std::uint64_t
Network::totalAllocStalls() const
{
    std::uint64_t stalls = 0;
    for (const auto &router : routers_)
        stalls += router->allocStalls().value();
    return stalls;
}

std::uint64_t
Network::bufferedFlits() const
{
    std::uint64_t flits = 0;
    for (const auto &router : routers_)
        flits += router->bufferedFlits();
    return flits;
}

namespace {

void
saveAttribution(util::Serializer &s, const ClassAttribution &attr)
{
    s.put(attr.count);
    s.putDouble(attr.latency);
    s.putDouble(attr.serialization);
    s.putDouble(attr.hops);
    s.putDouble(attr.contention);
    s.putDouble(attr.stalls);
}

void
loadAttribution(util::Deserializer &d, ClassAttribution &attr)
{
    attr.count = d.get<std::uint64_t>();
    attr.latency = d.getDouble();
    attr.serialization = d.getDouble();
    attr.hops = d.getDouble();
    attr.contention = d.getDouble();
    attr.stalls = d.getDouble();
}

} // namespace

void
NetworkStats::saveState(util::Serializer &s) const
{
    s.put(messages_sent);
    s.put(messages_delivered);
    latency.saveState(s);
    latency_hist.saveState(s);
    source_queue.saveState(s);
    hops.saveState(s);
    flits.saveState(s);
    for (const ClassAttribution &attr : attribution)
        saveAttribution(s, attr);
}

void
NetworkStats::loadState(util::Deserializer &d)
{
    messages_sent = d.get<std::uint64_t>();
    messages_delivered = d.get<std::uint64_t>();
    latency.loadState(d);
    latency_hist.loadState(d);
    source_queue.loadState(d);
    hops.loadState(d);
    flits.loadState(d);
    for (ClassAttribution &attr : attribution)
        loadAttribution(d, attr);
}

void
Network::saveState(util::Serializer &s) const
{
    LOCSIM_ASSERT(tracer_ == nullptr,
                  "cannot checkpoint a traced network");

    for (const FlitRing *ring : flit_channels_)
        ring->saveState(s);
    for (const CreditPipe *pipe : credit_channels_)
        pipe->saveState(s);
    for (const Router *router : routers_)
        router->saveState(s);

    for (const NodeEndpoint &ep : endpoints_) {
        s.put<std::uint64_t>(ep.source_queue.size());
        for (const Message &msg : ep.source_queue)
            saveMessage(s, msg);
        s.put(ep.flits_sent);
        s.put(ep.inject_credits);
        s.put<std::uint64_t>(ep.delivered.size());
        for (const Message &msg : ep.delivered)
            saveMessage(s, msg);
        std::vector<std::pair<MessageId, std::uint32_t>> arrived(
            ep.arrived_flits.begin(), ep.arrived_flits.end());
        std::sort(arrived.begin(), arrived.end());
        s.put<std::uint64_t>(arrived.size());
        for (const auto &[id, count] : arrived) {
            s.put(id);
            s.put(count);
        }
    }

    std::vector<const MessageRecord *> records;
    records.reserve(records_.size());
    for (const auto &[id, rec] : records_)
        records.push_back(&rec);
    std::sort(records.begin(), records.end(),
              [](const MessageRecord *a, const MessageRecord *b) {
                  return a->message.id < b->message.id;
              });
    s.put<std::uint64_t>(records.size());
    for (const MessageRecord *rec : records) {
        saveMessage(s, rec->message);
        s.put(rec->inject_start);
        s.put(rec->delivered);
        s.put(rec->hops);
        s.put(rec->head_hops);
        s.put(rec->head_stalls);
    }

    s.put(next_id_);
    s.put(in_flight_);
    s.put(pending_deliveries_);
    stats_.saveState(s);
    s.put(stats_start_);
    s.put(stats_flit_hops_base_);
}

void
Network::loadState(util::Deserializer &d)
{
    for (FlitRing *ring : flit_channels_)
        ring->loadState(d);
    for (CreditPipe *pipe : credit_channels_)
        pipe->loadState(d);
    for (Router *router : routers_)
        router->loadState(d);

    for (NodeEndpoint &ep : endpoints_) {
        ep.source_queue.clear();
        auto count = d.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < count; ++i)
            ep.source_queue.push_back(loadMessage(d));
        ep.flits_sent = d.get<std::uint32_t>();
        ep.inject_credits = d.get<int>();
        ep.delivered.clear();
        count = d.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < count; ++i)
            ep.delivered.push_back(loadMessage(d));
        ep.arrived_flits.clear();
        count = d.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < count; ++i) {
            const auto id = d.get<MessageId>();
            ep.arrived_flits[id] = d.get<std::uint32_t>();
        }
    }

    records_.clear();
    const auto record_count = d.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < record_count; ++i) {
        MessageRecord rec;
        rec.message = loadMessage(d);
        rec.inject_start = d.get<sim::Tick>();
        rec.delivered = d.get<sim::Tick>();
        rec.hops = d.get<int>();
        rec.head_hops = d.get<std::uint16_t>();
        rec.head_stalls = d.get<std::uint16_t>();
        records_.emplace(rec.message.id, rec);
    }

    next_id_ = d.get<MessageId>();
    in_flight_ = d.get<std::uint64_t>();
    pending_deliveries_ = d.get<std::uint64_t>();
    stats_.loadState(d);
    stats_start_ = d.get<sim::Tick>();
    stats_flit_hops_base_ = d.get<std::uint64_t>();
}

void
Network::setTracer(obs::Tracer *tracer)
{
    tracer_ = tracer;
    if (tracer_ != nullptr && node_tracks_.empty()) {
        node_tracks_.reserve(routers_.size());
        for (sim::NodeId node = 0; node < topo_.nodeCount(); ++node)
            node_tracks_.push_back(
                tracer_->newTrack("net." + std::to_string(node)));
    }
    for (sim::NodeId node = 0; node < topo_.nodeCount(); ++node) {
        routers_[node]->setTracer(
            tracer_, tracer_ != nullptr ? node_tracks_[node] : 0);
    }
}

} // namespace net
} // namespace locsim
