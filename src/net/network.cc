/**
 * @file
 * Network fabric implementation.
 */

#include "net/network.hh"

#include <algorithm>
#include <bit>

#include "net/kernels.hh"
#include "obs/profiler.hh"
#include "util/logging.hh"

namespace locsim {
namespace net {

const char *
messageClassName(MessageClass cls)
{
    switch (cls) {
      case MessageClass::Generic:
        return "generic";
      case MessageClass::Request:
        return "request";
      case MessageClass::Reply:
        return "reply";
      case MessageClass::Inv:
        return "inv";
      case MessageClass::Writeback:
        return "writeback";
    }
    return "?";
}

namespace {

sim::NodeId
nodeCountFor(const NetworkConfig &config)
{
    sim::NodeId nodes = 1;
    for (int d = 0; d < config.dims; ++d)
        nodes *= static_cast<sim::NodeId>(config.radix);
    return nodes;
}

} // namespace

Network::Network(sim::Engine &engine, const NetworkConfig &config,
                 LinkStores *shared)
    : Network(config, std::vector<sim::Engine *>{&engine},
              ShardPlan::contiguous(nodeCountFor(config), 1), shared)
{
}

Network::Network(const NetworkConfig &config,
                 const std::vector<sim::Engine *> &engines,
                 const ShardPlan &plan, LinkStores *shared)
    : config_(config),
      topo_(config.radix, config.dims, config.wraparound),
      plan_(plan), engines_(engines),
      // Credit flow control bounds link occupancy to the downstream
      // buffer depth; +2 leaves slack for the cycle of latching delay
      // on each side of the credit loop.
      owned_stores_(shared != nullptr
                        ? nullptr
                        : std::make_unique<LinkStores>(
                              config.router.buffer_depth + 2,
                              config.router.vcs, plan.shards)),
      flit_store_(shared != nullptr ? shared->flits
                                    : owned_stores_->flits),
      credit_store_(shared != nullptr ? shared->credits
                                      : owned_stores_->credits)
{
    const sim::NodeId n = topo_.nodeCount();
    const int K = plan_.shards;
    LOCSIM_ASSERT(static_cast<int>(engines_.size()) == K,
                  "shard plan needs one engine per shard");
    LOCSIM_ASSERT(plan_.bounds.size() ==
                          static_cast<std::size_t>(K) + 1 &&
                      plan_.first(0) == 0 && plan_.last(K - 1) == n,
                  "shard plan does not cover the fabric");

    // Each shard engine rotates its slice of the link stores through
    // one batch rotator per store: channels register with the rotator
    // of the shard that PUSHES into them, so publication happens on
    // the producer's thread; cross-shard consumers learn about new
    // content through the remote wake words bound below. A batched
    // fabric's rotators are shared across lanes, so the batch owner
    // registers them exactly once itself.
    if (shared == nullptr) {
        for (int s = 0; s < K; ++s) {
            engines_[static_cast<std::size_t>(s)]->addChannel(
                flit_store_.rotator(s));
            engines_[static_cast<std::size_t>(s)]->addChannel(
                credit_store_.rotator(s));
        }
    }

    routers_.reserve(n);
    endpoints_.resize(n);
    // Pre-size the endpoint rings and per-shard accounting containers
    // past the typical stochastic high-water mark so uncongested runs
    // reach a zero-allocation steady state quickly instead of paying
    // rare capacity doublings deep into a run. Capacity growth is
    // amortized state only — checkpoint bytes serialize contents, not
    // capacity — so this changes no observable behavior.
    for (NodeEndpoint &ep : endpoints_) {
        ep.source_queue.reserve(32);
        ep.delivered.reserve(32);
    }
    inject_link_.resize(n);
    inject_credit_.resize(n);
    eject_link_.resize(n);
    eject_credit_.resize(n);
    shards_.resize(static_cast<std::size_t>(K));
    for (ShardState &shard : shards_)
        shard.records.reserve(static_cast<std::size_t>(n) * 8);
    for (auto &parity : record_mail_)
        parity.resize(static_cast<std::size_t>(K) *
                      static_cast<std::size_t>(K));
    tracers_.assign(static_cast<std::size_t>(K), nullptr);
    node_tracks_.assign(n, -1);
    profile_slots_.assign(static_cast<std::size_t>(K), nullptr);
    for (int s = 0; s < K; ++s)
        shard_ticks_.push_back(std::make_unique<ShardTick>(*this, s));

    auto make_flit_channel = [&](int owner_shard) {
        const ChannelId id = flit_store_.add(owner_shard);
        flit_channels_.push_back(id);
        return id;
    };
    auto make_credit_channel = [&](int owner_shard) {
        const ChannelId id = credit_store_.add(owner_shard);
        credit_channels_.push_back(id);
        return id;
    };

    // Router state slabs, sized once before router construction (the
    // routers keep raw pointers into them).
    const int ports = 2 * config_.dims + 1;
    const int units = ports * config_.router.vcs;
    const std::size_t vc_cap = Router::vcRingCapacity(config_.router);
    input_units_.resize(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(units));
    output_ports_.resize(static_cast<std::size_t>(n) *
                         static_cast<std::size_t>(ports));
    vc_slab_.resize(static_cast<std::size_t>(n) *
                    static_cast<std::size_t>(units) * vc_cap);
    // Wake/occupancy slabs, padded to whole groups of 8 so the latch
    // kernel's full-width accesses on the last group stay in bounds.
    // Pad words start zero and are never staged, so they always read
    // as idle.
    const std::size_t padded_nodes =
        (static_cast<std::size_t>(n) + 7u) & ~std::size_t{7};
    flit_wake_staged_.assign(padded_nodes, 0u);
    flit_wake_.assign(padded_nodes, 0u);
    credit_wake_staged_.assign(padded_nodes, 0u);
    credit_wake_.assign(padded_nodes, 0u);
    buffered_slab_.assign(padded_nodes, 0u);

    for (sim::NodeId node = 0; node < n; ++node) {
        Router::RouterSlices slices;
        slices.inputs = input_units_.data() +
                        static_cast<std::size_t>(node) *
                            static_cast<std::size_t>(units);
        slices.outputs = output_ports_.data() +
                         static_cast<std::size_t>(node) *
                             static_cast<std::size_t>(ports);
        slices.vc_slots = vc_slab_.data() +
                          static_cast<std::size_t>(node) *
                              static_cast<std::size_t>(units) * vc_cap;
        slices.flit_wake_staged = flit_wake_staged_.data() + node;
        slices.flit_wake = flit_wake_.data() + node;
        slices.credit_wake_staged = credit_wake_staged_.data() + node;
        slices.credit_wake = credit_wake_.data() + node;
        slices.buffered = buffered_slab_.data() + node;
        routers_.push_back(arena_.make<Router>(topo_, node,
                                               config_.router,
                                               flit_store_,
                                               credit_store_, slices));
    }

    // Wire neighbor links. For each node and each (dim, dir) we create
    // the unidirectional flit channel node -> neighbor and its credit
    // return channel. The channel leaving `node` on port p arrives at
    // the neighbor on the port of the opposite direction.
    struct PortWiring
    {
        ChannelId in = kNoChannel;
        ChannelId out = kNoChannel;
        ChannelId credit_up = kNoChannel;
        ChannelId credit_down = kNoChannel;
    };
    std::vector<std::vector<PortWiring>> wiring(
        n, std::vector<PortWiring>(static_cast<std::size_t>(ports)));

    for (sim::NodeId node = 0; node < n; ++node) {
        for (int dim = 0; dim < config_.dims; ++dim) {
            for (int dir : {+1, -1}) {
                const sim::NodeId nbr = topo_.neighbor(node, dim, dir);
                if (nbr == sim::kNodeNone)
                    continue; // mesh edge: no link in this direction
                // Flits are pushed by node's router; credits are
                // returned by the neighbor's.
                const ChannelId flits = make_flit_channel(shardOf(node));
                const ChannelId credits =
                    make_credit_channel(shardOf(nbr));
                const auto out_port =
                    static_cast<std::size_t>(Router::portFor(dim, dir));
                const auto in_port = static_cast<std::size_t>(
                    Router::portFor(dim, -dir));
                wiring[node][out_port].out = flits;
                wiring[node][out_port].credit_down = credits;
                wiring[nbr][in_port].in = flits;
                wiring[nbr][in_port].credit_up = credits;
            }
        }
        // Local (node <-> router) channels; endpoint and router are
        // always co-sharded.
        const auto local =
            static_cast<std::size_t>(2 * config_.dims);
        inject_link_[node] = make_flit_channel(shardOf(node));
        inject_credit_[node] = make_credit_channel(shardOf(node));
        eject_link_[node] = make_flit_channel(shardOf(node));
        eject_credit_[node] = make_credit_channel(shardOf(node));
        wiring[node][local].in = inject_link_[node];
        wiring[node][local].credit_up = inject_credit_[node];
        wiring[node][local].out = eject_link_[node];
        wiring[node][local].credit_down = eject_credit_[node];

        endpoints_[node].inject_credits = config_.router.buffer_depth;
    }

    for (sim::NodeId node = 0; node < n; ++node) {
        for (int port = 0; port < ports; ++port) {
            const auto &w =
                wiring[node][static_cast<std::size_t>(port)];
            routers_[node]->connect(port, w.in, w.out, w.credit_up,
                                    w.credit_down);
        }
    }

    // Re-bind the wakes of shard-crossing channels to the consumer
    // router's atomic remote words (connect() above bound them to the
    // plain staged words, which are only safe within one shard). The
    // bit is the consumer-side port, mirroring Router::connect.
    if (K > 1) {
        for (sim::NodeId node = 0; node < n; ++node) {
            for (int dim = 0; dim < config_.dims; ++dim) {
                for (int dir : {+1, -1}) {
                    const sim::NodeId nbr =
                        topo_.neighbor(node, dim, dir);
                    if (nbr == sim::kNodeNone ||
                        shardOf(nbr) == shardOf(node)) {
                        continue;
                    }
                    const auto out_port = static_cast<std::size_t>(
                        Router::portFor(dim, dir));
                    const auto in_port = static_cast<std::size_t>(
                        Router::portFor(dim, -dir));
                    // Flit channel node -> nbr wakes nbr's router.
                    flit_store_.bindRemoteWake(
                        wiring[node][out_port].out,
                        &routers_[nbr]->remoteFlitWakeWord(),
                        1u << in_port);
                    // Its credit return wakes node's router.
                    credit_store_.bindRemoteWake(
                        wiring[node][out_port].credit_down,
                        &routers_[node]->remoteCreditWakeWord(),
                        1u << out_port);
                }
            }
        }
    }

    // Kernel-path metadata, fixed once all remote wake bindings are
    // known: each shard's list of routers with cross-shard producers
    // (their atomics are drained scalar before the vector latch) and
    // its busy-byte scratch, one byte per group of 8 nodes the latch
    // kernel can touch (shard boundaries round outward to group
    // boundaries; the kernel itself peels the shared edge groups to
    // scalar). Sized here so the steady-state loop never allocates.
    simd_level_ = util::simd::activeLevel();
    remote_nodes_.resize(static_cast<std::size_t>(K));
    busy_scratch_.resize(static_cast<std::size_t>(K));
    for (int s = 0; s < K; ++s) {
        const sim::NodeId lo = plan_.first(s);
        const sim::NodeId hi = plan_.last(s);
        for (sim::NodeId node = lo; node < hi; ++node) {
            if (routers_[node]->hasRemoteWakes()) {
                remote_nodes_[static_cast<std::size_t>(s)].push_back(
                    node);
            }
        }
        const std::size_t groups =
            hi > lo ? (static_cast<std::size_t>(hi - 1) / 8 -
                       static_cast<std::size_t>(lo) / 8 + 1)
                    : 0;
        busy_scratch_[static_cast<std::size_t>(s)].assign(groups, 0u);
    }
}

Network::~Network() = default;

sim::Clocked *
Network::shardClocked(int s)
{
    return shard_ticks_[static_cast<std::size_t>(s)].get();
}

std::int64_t
Network::inFlight() const
{
    std::int64_t total = 0;
    for (const ShardState &shard : shards_)
        total += shard.in_flight;
    return total;
}

std::uint64_t
Network::pendingDeliveries() const
{
    std::int64_t total = 0;
    for (const ShardState &shard : shards_)
        total += shard.pending_deliveries;
    return static_cast<std::uint64_t>(total);
}

MessageId
Network::send(Message msg)
{
    LOCSIM_ASSERT(msg.src < topo_.nodeCount(), "bad source node");
    LOCSIM_ASSERT(msg.dst < topo_.nodeCount(), "bad destination node");
    LOCSIM_ASSERT(msg.src != msg.dst,
                  "local transactions must not enter the network");
    LOCSIM_ASSERT(msg.flits >= 1, "message needs at least one flit");
    LOCSIM_ASSERT(msg.flits <= 65535,
                  "flit sequence numbers are 16-bit");

    const int s = shardOf(msg.src);
    ShardState &shard = shards_[static_cast<std::size_t>(s)];
    NodeEndpoint &ep = endpoints_[msg.src];

    // Ids are per-source sequences with the source node in the high
    // bits: assignment touches only source-shard state and yields the
    // same id for the same message at any shard count.
    msg.id = (static_cast<MessageId>(msg.src) << 40) | ++ep.next_seq;
    msg.submit_tick = engines_[static_cast<std::size_t>(s)]->now();

    // Pool slots are recycled without destruction; reset every field.
    const RecordHandle h = shard.record_pool.alloc();
    MessageRecord &record = shard.record_pool.get(h);
    record = MessageRecord{};
    record.message = msg;
    record.hops = topo_.distance(msg.src, msg.dst);
    shard.records.insert(msg.id, h);

    ep.source_queue.push_back(msg);
    ++shard.stats.messages_sent;
    shard.stats.flits.add(static_cast<double>(msg.flits));
    ++shard.in_flight;
    if (obs::Tracer *tracer = tracerFor(s)) {
        tracer->asyncBegin(
            node_tracks_[msg.src], msg.submit_tick, msg.id, "msg",
            obs::Category::Net,
            std::move(obs::Args()
                          .add("dst", static_cast<std::int64_t>(msg.dst))
                          .add("flits", msg.flits)
                          .add("class", messageClassName(msg.cls)))
                .str());
    }
    return msg.id;
}

std::optional<Message>
Network::receive(sim::NodeId node)
{
    auto &delivered = endpoints_[node].delivered;
    if (delivered.empty())
        return std::nullopt;
    Message msg = delivered.front();
    delivered.pop_front();
    ShardState &shard =
        shards_[static_cast<std::size_t>(shardOf(node))];
    --shard.pending_deliveries;
    // Accounting for this message is complete; drop the record so
    // long runs do not accumulate unbounded history.
    if (const RecordHandle *hp = shard.records.find(msg.id)) {
        const RecordHandle h = *hp;
        shard.records.erase(msg.id);
        shard.record_pool.free(h);
    }
    return msg;
}

std::size_t
Network::pendingAt(sim::NodeId node) const
{
    return endpoints_[node].delivered.size();
}

bool
Network::idle() const
{
    return inFlight() == 0;
}

void
Network::tickInjection(sim::NodeId node, sim::Tick now)
{
    NodeEndpoint &ep = endpoints_[node];

    if (ep.source_queue.empty())
        return;

    // Collect returned injection credits. Credits bank up in the link
    // while the node has nothing to send, so collecting them lazily
    // (only when a message wants to inject) is equivalent to
    // collecting every cycle.
    ep.inject_credits += credit_store_.takeAll(inject_credit_[node]);
    LOCSIM_ASSERT(ep.inject_credits <= config_.router.buffer_depth,
                  "injection credit overflow at node ", node);

    if (ep.inject_credits == 0)
        return;

    Message &msg = ep.source_queue.front();
    if (ep.flits_sent == 0) {
        const int s = shardOf(node);
        ShardState &shard = shards_[static_cast<std::size_t>(s)];
        RecordHandle *hp = shard.records.find(msg.id);
        LOCSIM_ASSERT(hp != nullptr, "missing message record");
        MessageRecord &rec = shard.record_pool.get(*hp);
        if (rec.inject_start == sim::kTickNever) {
            rec.inject_start = now;
            if (obs::Tracer *tracer = tracerFor(s)) {
                tracer->instant(
                    node_tracks_[node], now, "inject",
                    obs::Category::Net,
                    std::move(obs::Args().add("msg", msg.id)).str());
            }
            // Hand the record to the destination shard (it harvests
            // the head counters and closes out the message). Posted
            // into this tick's parity; drained by the destination at
            // the start of the next tick, at least one cycle before
            // the head flit can eject there. The record travels by
            // value and its source-shard pool slot is recycled.
            const int ds = shardOf(msg.dst);
            if (ds != s) {
                auto &box = record_mail_[now & 1][static_cast<
                    std::size_t>(ds * plan_.shards + s)];
                box.push_back(rec);
                const RecordHandle h = *hp;
                shard.records.erase(msg.id);
                shard.record_pool.free(h);
            }
        }
    }

    Flit flit;
    flit.msg = msg.id;
    flit.src = msg.src;
    flit.dst = msg.dst;
    flit.seq = static_cast<std::uint16_t>(ep.flits_sent);
    flit.head = ep.flits_sent == 0;
    flit.tail = ep.flits_sent + 1 == msg.flits;
    flit.vc = 0;
    flit_store_.push(inject_link_[node], flit);
    --ep.inject_credits;
    ++ep.flits_sent;

    if (ep.flits_sent == msg.flits) {
        ep.source_queue.pop_front();
        ep.flits_sent = 0;
    }
}

void
Network::tickEjection(sim::NodeId node, sim::Tick now)
{
    NodeEndpoint &ep = endpoints_[node];
    const ChannelId link = eject_link_[node];

    // The node drains one flit per network cycle (an 8-bit channel
    // delivers one flit per cycle, Section 3.1).
    if (flit_store_.empty(link))
        return;
    Flit flit = flit_store_.pop(link);
    credit_store_.push(eject_credit_[node], flit.vc);

    // Wormhole ejection delivers one message head-to-tail at a time
    // (the ejection output VC is owned until the tail), so the
    // reassembly cursor is two scalars rather than a map.
    if (ep.arrived_count == 0)
        ep.arrived_msg = flit.msg;
    LOCSIM_ASSERT(ep.arrived_msg == flit.msg,
                  "interleaved ejection at node ", node, ": msg ",
                  flit.msg, " while reassembling ", ep.arrived_msg);
    LOCSIM_ASSERT(flit.seq == ep.arrived_count,
                  "flit reordering within a wormhole message: msg ",
                  flit.msg, " expected seq ", ep.arrived_count,
                  " got ", flit.seq);
    ++ep.arrived_count;

    const int s = shardOf(node);
    ShardState &shard = shards_[static_cast<std::size_t>(s)];

    if (flit.head) {
        // Harvest the head flit's attribution counters; body flits
        // follow the opened path and carry none.
        RecordHandle *hp = shard.records.find(flit.msg);
        LOCSIM_ASSERT(hp != nullptr, "head for unknown message");
        MessageRecord &hrec = shard.record_pool.get(*hp);
        hrec.head_hops = flit.hops;
        hrec.head_stalls = flit.stalls;
    }

    if (!flit.tail)
        return;

    RecordHandle *hp = shard.records.find(flit.msg);
    LOCSIM_ASSERT(hp != nullptr, "tail for unknown message");
    MessageRecord &rec = shard.record_pool.get(*hp);
    LOCSIM_ASSERT(ep.arrived_count == rec.message.flits,
                  "tail arrived before all flits: msg ", flit.msg);
    LOCSIM_ASSERT(rec.message.dst == node, "message misrouted: msg ",
                  flit.msg, " for node ", rec.message.dst,
                  " ejected at ", node);

    rec.delivered = now;
    ep.arrived_count = 0;
    ep.delivered.push_back(rec.message);
    ++shard.pending_deliveries;

    ++shard.stats.messages_delivered;
    --shard.in_flight;
    const double latency =
        static_cast<double>(rec.delivered - rec.inject_start);
    shard.stats.latency.add(latency);
    shard.stats.latency_hist.add(latency);
    shard.stats.source_queue.add(static_cast<double>(
        rec.inject_start - rec.message.submit_tick));
    shard.stats.hops.add(static_cast<double>(rec.hops));

    // Latency decomposition (see ClassAttribution): the network_test
    // zero-load identity is T = B + h + 1, so the contention residual
    // is exactly zero on an uncontended path.
    const double serialization =
        static_cast<double>(rec.message.flits);
    const double measured_hops = static_cast<double>(rec.head_hops);
    const double contention = std::max(
        0.0, latency - serialization - measured_hops - 1.0);
    ClassAttribution &attr = shard.stats.attribution[
        static_cast<std::size_t>(rec.message.cls)];
    ++attr.count;
    attr.latency += latency;
    attr.serialization += serialization;
    attr.hops += measured_hops;
    attr.contention += contention;
    attr.stalls += static_cast<double>(rec.head_stalls);

    if (obs::Tracer *tracer = tracerFor(s)) {
        // Cross-shard message lifetimes end on the destination
        // shard's tracer (emission must stay thread-local), so the
        // span lands on the destination's track there.
        const int track = shardOf(rec.message.src) == s
                              ? node_tracks_[rec.message.src]
                              : node_tracks_[node];
        tracer->asyncEnd(
            track, rec.delivered, flit.msg, "msg", obs::Category::Net,
            std::move(obs::Args()
                          .add("latency", latency)
                          .add("hops", static_cast<int>(rec.head_hops))
                          .add("stalls",
                               static_cast<int>(rec.head_stalls)))
                .str());
    }
}

void
Network::drainRecordMail(int dst_shard, sim::Tick now)
{
    // Records posted during tick t live in parity t&1; at tick t+1
    // that is the opposite parity from the one being posted into, so
    // this drain and concurrent posts never touch the same cell.
    const int K = plan_.shards;
    auto &parity = record_mail_[(now + 1) & 1];
    ShardState &shard = shards_[static_cast<std::size_t>(dst_shard)];
    for (int src = 0; src < K; ++src) {
        auto &box =
            parity[static_cast<std::size_t>(dst_shard * K + src)];
        if (box.empty())
            continue;
        for (MessageRecord &rec : box) {
            const RecordHandle h = shard.record_pool.alloc();
            shard.record_pool.get(h) = rec;
            shard.records.insert(rec.message.id, h);
        }
        box.clear();
    }
}

void
Network::tickShard(int s, sim::Tick now)
{
    obs::ScopedPhase profile(
        profile_slots_[static_cast<std::size_t>(s)],
        obs::Phase::RouterScan);

    const sim::NodeId lo = plan_.first(s);
    const sim::NodeId hi = plan_.last(s);

    if (simd_level_ == util::simd::Level::Off) {
        // Scalar reference path (LOCSIM_SIMD=off): the kernel path
        // below must stay bit-identical to this one — CI diffs the
        // two builds byte-for-byte.
        //
        // Latch the wake bits staged by last cycle's channel pushes
        // (including cross-shard pushes, via the routers' remote
        // words) before anything pushes this cycle: injection,
        // ejection credits and router traversal below all stage wakes
        // for the NEXT cycle, matching the channels' one-cycle
        // latching delay.
        for (sim::NodeId node = lo; node < hi; ++node)
            routers_[node]->latchWakes();
        if (plan_.shards > 1)
            drainRecordMail(s, now);
        for (sim::NodeId node = lo; node < hi; ++node)
            tickEjection(node, now);
        for (sim::NodeId node = lo; node < hi; ++node)
            tickInjection(node, now);
        // An idle router's tick is a no-op (no buffered flits,
        // nothing visible on its channels, and its arbitration state
        // is derived from `now`), so skipping it cannot change
        // behavior.
        for (sim::NodeId node = lo; node < hi; ++node) {
            if (routers_[node]->busy())
                routers_[node]->tick(now);
        }
        return;
    }

    // Lane-vector path: the same latch / eject / inject / dispatch
    // sequence, but the start-of-cycle latch and busy evaluation run
    // as a vector kernel over groups of 8 contiguous nodes. Busy is
    // computed at latch time rather than after injection; the two are
    // identical because ejection and injection only *stage* wakes for
    // the next cycle (and buffered counts change only inside router
    // ticks), so nothing a dispatch decision depends on moves in
    // between.
    auto &busy = busy_scratch_[static_cast<std::size_t>(s)];
    const auto lo_s = static_cast<std::size_t>(lo);
    const auto hi_s = static_cast<std::size_t>(hi);
    const std::size_t gfirst = lo_s / 8;
    // Vector range [vlo, vhi): whole groups of 8 at absolute offsets.
    // The last shard rounds up into the slab padding (pad words are
    // never staged, so they always evaluate idle); every other shard
    // rounds inward and peels its edge nodes to scalar — a boundary
    // group can be shared with a neighboring shard ticking
    // concurrently, and only whole-group ownership makes the vector
    // read-modify-write race-free.
    const std::size_t vlo = (lo_s + 7u) & ~std::size_t{7};
    std::size_t vhi = hi_s == routers_.size()
                          ? (hi_s + 7u) & ~std::size_t{7}
                          : hi_s & ~std::size_t{7};
    if (vhi < vlo)
        vhi = vlo;
    {
        obs::ScopedPhase kernel(
            profile_slots_[static_cast<std::size_t>(s)],
            obs::Phase::RouterKernel);
        // Cross-shard wakes fold into the staged words first, so the
        // vector latch picks them up exactly as latchWakes() would
        // have (rotation is barrier-separated from this phase, so the
        // remote atomics are quiescent here).
        for (const sim::NodeId node :
             remote_nodes_[static_cast<std::size_t>(s)])
            routers_[node]->drainRemoteWakes();
        std::fill(busy.begin(), busy.end(), std::uint8_t{0});
        for (std::size_t node = lo_s; node < vlo && node < hi_s;
             ++node) {
            routers_[node]->latchWakes();
            if (routers_[node]->busy())
                busy[node / 8 - gfirst] |=
                    static_cast<std::uint8_t>(1u << (node & 7));
        }
        if (vhi > vlo) {
            kernels::routerLatchBusy(
                flit_wake_staged_.data(), flit_wake_.data(),
                credit_wake_staged_.data(), credit_wake_.data(),
                buffered_slab_.data(), vlo, vhi,
                busy.data() + (vlo / 8 - gfirst), simd_level_);
        }
        for (std::size_t node = vhi; node < hi_s; ++node) {
            routers_[node]->latchWakes();
            if (routers_[node]->busy())
                busy[node / 8 - gfirst] |=
                    static_cast<std::uint8_t>(1u << (node & 7));
        }
    }
    if (plan_.shards > 1)
        drainRecordMail(s, now);
    for (sim::NodeId node = lo; node < hi; ++node)
        tickEjection(node, now);
    for (sim::NodeId node = lo; node < hi; ++node)
        tickInjection(node, now);
    // Dispatch straight off the busy bytes, ascending — the same
    // node order as the scalar scan, without re-deriving busy per
    // node.
    for (std::size_t g = 0; g < busy.size(); ++g) {
        std::uint32_t bits = busy[g];
        while (bits != 0) {
            const int b = std::countr_zero(bits);
            bits &= bits - 1;
            const auto node = static_cast<sim::NodeId>(
                (gfirst + g) * 8 + static_cast<std::size_t>(b));
            routers_[node]->tick(now);
        }
    }
}

void
Network::tick(sim::Tick now)
{
    for (int s = 0; s < plan_.shards; ++s)
        tickShard(s, now);
}

void
NetworkStats::reset()
{
    messages_sent = 0;
    messages_delivered = 0;
    latency.reset();
    latency_hist.reset();
    source_queue.reset();
    hops.reset();
    flits.reset();
    attribution.fill({});
}

void
NetworkStats::merge(const NetworkStats &other)
{
    messages_sent += other.messages_sent;
    messages_delivered += other.messages_delivered;
    latency.merge(other.latency);
    latency_hist.merge(other.latency_hist);
    source_queue.merge(other.source_queue);
    hops.merge(other.hops);
    flits.merge(other.flits);
    for (std::size_t i = 0; i < attribution.size(); ++i) {
        const ClassAttribution &o = other.attribution[i];
        ClassAttribution &a = attribution[i];
        a.count += o.count;
        a.latency += o.latency;
        a.serialization += o.serialization;
        a.hops += o.hops;
        a.contention += o.contention;
        a.stalls += o.stalls;
    }
}

const NetworkStats &
Network::stats() const
{
    if (plan_.shards == 1)
        return shards_[0].stats;
    // Every per-shard field is a count or an exact sum (integer-valued
    // samples, see stats::Accumulator), so merging in shard order
    // reproduces the sequential accumulation bit-for-bit.
    merged_stats_.reset();
    for (const ShardState &shard : shards_)
        merged_stats_.merge(shard.stats);
    return merged_stats_;
}

void
Network::resetStats()
{
    for (ShardState &shard : shards_)
        shard.stats.reset();
    stats_start_ = engines_[0]->now();
    stats_flit_hops_base_ = totalNeighborFlitHops();
}

double
Network::channelUtilization() const
{
    const sim::Tick elapsed = engines_[0]->now() - stats_start_;
    if (elapsed == 0)
        return 0.0;
    // Exclude the local (ejection) port: model rho covers network
    // channels only.
    const std::uint64_t hops =
        totalNeighborFlitHops() - stats_flit_hops_base_;
    const double channels = static_cast<double>(topo_.nodeCount()) *
                            2.0 * static_cast<double>(config_.dims);
    return static_cast<double>(hops) /
           (static_cast<double>(elapsed) * channels);
}

const MessageRecord *
Network::record(MessageId id) const
{
    for (const ShardState &shard : shards_) {
        if (const RecordHandle *hp = shard.records.find(id))
            return &shard.record_pool.get(*hp);
    }
    for (const auto &parity : record_mail_) {
        for (const auto &box : parity) {
            for (const MessageRecord &rec : box) {
                if (rec.message.id == id)
                    return &rec;
            }
        }
    }
    return nullptr;
}

std::uint64_t
Network::totalNeighborFlitHops() const
{
    // Exclude the local (ejection) port: model rho covers network
    // channels only.
    const int neighbor_ports = 2 * config_.dims;
    std::uint64_t hops = 0;
    for (const Router *router : routers_) {
        for (int p = 0; p < neighbor_ports; ++p)
            hops += router->outputFlits(p).value();
    }
    return hops;
}

std::uint64_t
Network::totalAllocStalls() const
{
    std::uint64_t stalls = 0;
    for (const auto &router : routers_)
        stalls += router->allocStalls().value();
    return stalls;
}

std::uint64_t
Network::totalRemoteWakes() const
{
    std::uint64_t wakes = 0;
    for (const auto &router : routers_)
        wakes += router->remoteWakes();
    return wakes;
}

std::uint64_t
Network::bufferedFlits() const
{
    std::uint64_t flits = 0;
    for (const auto &router : routers_)
        flits += router->bufferedFlits();
    return flits;
}

std::size_t
Network::memoryBytes() const
{
    // Routers, input/output units and the vc slab are arena-backed;
    // arena_.bytesAllocated() covers them. Lane-striped stores owned
    // by a batch are counted once by the owner, not per lane.
    std::size_t bytes = sizeof(*this) + arena_.bytesAllocated() +
                        input_units_.capacity() *
                            sizeof(Router::InputVc) +
                        output_ports_.capacity() *
                            sizeof(Router::OutputPort) +
                        vc_slab_.capacity() * sizeof(Flit);
    bytes += (flit_wake_staged_.capacity() + flit_wake_.capacity() +
              credit_wake_staged_.capacity() + credit_wake_.capacity() +
              buffered_slab_.capacity()) *
             sizeof(std::uint32_t);
    for (const auto &scratch : busy_scratch_)
        bytes += scratch.capacity();
    if (owned_stores_ != nullptr) {
        bytes += flit_store_.memoryBytes() +
                 credit_store_.memoryBytes();
    }
    for (const NodeEndpoint &ep : endpoints_) {
        bytes += ep.source_queue.memoryBytes() +
                 ep.delivered.memoryBytes();
    }
    bytes += endpoints_.capacity() * sizeof(NodeEndpoint);
    for (const ShardState &shard : shards_) {
        bytes += shard.record_pool.memoryBytes() +
                 shard.records.memoryBytes();
    }
    bytes += shards_.capacity() * sizeof(ShardState);
    return bytes;
}

namespace {

void
saveAttribution(util::Serializer &s, const ClassAttribution &attr)
{
    s.put(attr.count);
    s.putDouble(attr.latency);
    s.putDouble(attr.serialization);
    s.putDouble(attr.hops);
    s.putDouble(attr.contention);
    s.putDouble(attr.stalls);
}

void
loadAttribution(util::Deserializer &d, ClassAttribution &attr)
{
    attr.count = d.get<std::uint64_t>();
    attr.latency = d.getDouble();
    attr.serialization = d.getDouble();
    attr.hops = d.getDouble();
    attr.contention = d.getDouble();
    attr.stalls = d.getDouble();
}

} // namespace

void
NetworkStats::saveState(util::Serializer &s) const
{
    s.put(messages_sent);
    s.put(messages_delivered);
    latency.saveState(s);
    latency_hist.saveState(s);
    source_queue.saveState(s);
    hops.saveState(s);
    flits.saveState(s);
    for (const ClassAttribution &attr : attribution)
        saveAttribution(s, attr);
}

void
NetworkStats::loadState(util::Deserializer &d)
{
    messages_sent = d.get<std::uint64_t>();
    messages_delivered = d.get<std::uint64_t>();
    latency.loadState(d);
    latency_hist.loadState(d);
    source_queue.loadState(d);
    hops.loadState(d);
    flits.loadState(d);
    for (ClassAttribution &attr : attribution)
        loadAttribution(d, attr);
}

void
Network::saveState(util::Serializer &s) const
{
    for (const obs::Tracer *tracer : tracers_) {
        LOCSIM_ASSERT(tracer == nullptr,
                      "cannot checkpoint a traced network");
    }

    // Channels and routers serialize in construction order, which
    // depends only on the topology (never on the shard plan); router
    // state folds cross-shard wake words into their sequential
    // staged-word equivalents. The stream is therefore identical for
    // any shard count and restores at any other.
    for (const ChannelId id : flit_channels_)
        flit_store_.saveChannel(s, id);
    for (const ChannelId id : credit_channels_)
        credit_store_.saveChannel(s, id);
    for (const Router *router : routers_)
        router->saveState(s);

    for (const NodeEndpoint &ep : endpoints_) {
        s.put<std::uint64_t>(ep.source_queue.size());
        for (std::size_t i = 0; i < ep.source_queue.size(); ++i)
            saveMessage(s, ep.source_queue[i]);
        s.put(ep.flits_sent);
        s.put(ep.inject_credits);
        s.put(ep.next_seq);
        s.put<std::uint64_t>(ep.delivered.size());
        for (std::size_t i = 0; i < ep.delivered.size(); ++i)
            saveMessage(s, ep.delivered[i]);
        // The reassembly cursor serializes as the (sorted) list of
        // in-progress messages it replaces: zero or one entry.
        const std::uint64_t arrived = ep.arrived_count > 0 ? 1 : 0;
        s.put<std::uint64_t>(arrived);
        if (arrived != 0) {
            s.put(ep.arrived_msg);
            s.put(ep.arrived_count);
        }
    }

    // Records: the union over shard pools and in-transit mailboxes,
    // sorted by id so the ordering is shard-count independent.
    std::vector<const MessageRecord *> records;
    for (const ShardState &shard : shards_) {
        shard.records.forEach(
            [&](const MessageId &, const RecordHandle &h) {
                records.push_back(&shard.record_pool.get(h));
            });
    }
    for (const auto &parity : record_mail_) {
        for (const auto &box : parity) {
            for (const MessageRecord &rec : box)
                records.push_back(&rec);
        }
    }
    std::sort(records.begin(), records.end(),
              [](const MessageRecord *a, const MessageRecord *b) {
                  return a->message.id < b->message.id;
              });
    s.put<std::uint64_t>(records.size());
    for (const MessageRecord *rec : records) {
        saveMessage(s, rec->message);
        s.put(rec->inject_start);
        s.put(rec->delivered);
        s.put(rec->hops);
        s.put(rec->head_hops);
        s.put(rec->head_stalls);
    }

    s.put<std::uint64_t>(static_cast<std::uint64_t>(inFlight()));
    s.put(pendingDeliveries());
    stats().saveState(s);
    s.put(stats_start_);
    s.put(stats_flit_hops_base_);
}

void
Network::loadState(util::Deserializer &d)
{
    for (const ChannelId id : flit_channels_)
        flit_store_.loadChannel(d, id);
    for (const ChannelId id : credit_channels_)
        credit_store_.loadChannel(d, id);
    for (Router *router : routers_)
        router->loadState(d);

    for (NodeEndpoint &ep : endpoints_) {
        ep.source_queue.clear();
        auto count = d.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < count; ++i)
            ep.source_queue.push_back(loadMessage(d));
        ep.flits_sent = d.get<std::uint32_t>();
        ep.inject_credits = d.get<int>();
        ep.next_seq = d.get<std::uint64_t>();
        ep.delivered.clear();
        count = d.get<std::uint64_t>();
        for (std::uint64_t i = 0; i < count; ++i)
            ep.delivered.push_back(loadMessage(d));
        count = d.get<std::uint64_t>();
        if (count > 1) {
            throw std::runtime_error(
                "Network::loadState: more than one message "
                "mid-ejection at a node");
        }
        ep.arrived_msg = 0;
        ep.arrived_count = 0;
        if (count == 1) {
            ep.arrived_msg = d.get<MessageId>();
            ep.arrived_count = d.get<std::uint32_t>();
        }
    }

    for (ShardState &shard : shards_) {
        shard.records.clear();
        shard.record_pool.clear();
        shard.in_flight = 0;
        shard.pending_deliveries = 0;
        shard.stats.reset();
    }
    for (auto &parity : record_mail_) {
        for (auto &box : parity)
            box.clear();
    }

    // Place each record where the current shard plan expects it: a
    // message not yet injected belongs to its source shard, anything
    // later to its destination shard. Records that were in-transit
    // mailbox mail at save time restore directly into the destination
    // map; the next drain simply finds the mailboxes empty.
    const auto record_count = d.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < record_count; ++i) {
        MessageRecord rec;
        rec.message = loadMessage(d);
        rec.inject_start = d.get<sim::Tick>();
        rec.delivered = d.get<sim::Tick>();
        rec.hops = d.get<int>();
        rec.head_hops = d.get<std::uint16_t>();
        rec.head_stalls = d.get<std::uint16_t>();
        const int s = rec.inject_start == sim::kTickNever
                          ? shardOf(rec.message.src)
                          : shardOf(rec.message.dst);
        ShardState &shard = shards_[static_cast<std::size_t>(s)];
        const RecordHandle h = shard.record_pool.alloc();
        shard.record_pool.get(h) = rec;
        shard.records.insert(rec.message.id, h);
    }

    // Global accounting and statistics restore into shard 0; the
    // serial-point sums (and the shard-ordered stats merge) are then
    // identical to the values saved.
    shards_[0].in_flight =
        static_cast<std::int64_t>(d.get<std::uint64_t>());
    shards_[0].pending_deliveries =
        static_cast<std::int64_t>(d.get<std::uint64_t>());
    shards_[0].stats.loadState(d);
    stats_start_ = d.get<sim::Tick>();
    stats_flit_hops_base_ = d.get<std::uint64_t>();
}

void
Network::setTracer(obs::Tracer *tracer)
{
    for (int s = 0; s < plan_.shards; ++s)
        setShardTracer(s, tracer);
}

void
Network::setProfiler(obs::Profiler *profiler, int lane)
{
    for (int s = 0; s < plan_.shards; ++s) {
        profile_slots_[static_cast<std::size_t>(s)] =
            profiler != nullptr ? &profiler->slot(s, lane) : nullptr;
    }
}

void
Network::setShardTracer(int s, obs::Tracer *tracer)
{
    tracers_[static_cast<std::size_t>(s)] = tracer;
    for (sim::NodeId node = plan_.first(s); node < plan_.last(s);
         ++node) {
        if (tracer != nullptr && node_tracks_[node] < 0) {
            node_tracks_[node] =
                tracer->newTrack("net." + std::to_string(node));
        }
        routers_[node]->setTracer(
            tracer, tracer != nullptr ? node_tracks_[node] : 0);
    }
}

} // namespace net
} // namespace locsim
