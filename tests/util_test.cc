/**
 * @file
 * Unit tests for the util library: RNG, math helpers, tables, CSV,
 * option parsing, and the allocation-free steady-state containers
 * (Pool, RingQueue, FlatMap).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/arena.hh"
#include "util/csv.hh"
#include "util/flat_map.hh"
#include "util/logging.hh"
#include "util/math.hh"
#include "util/options.hh"
#include "util/pool.hh"
#include "util/random.hh"
#include "util/ring_queue.hh"
#include "util/serialize.hh"
#include "util/sha256.hh"
#include "util/table.hh"

namespace locsim {
namespace util {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.nextBounded(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveEndpoints)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(23);
    const double p = 0.25;
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    // Mean of failures-before-success geometric is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, GeometricWithPOneIsZero)
{
    Rng rng(29);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextGeometric(1.0), 0u);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(31);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(10.0);
    EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(37);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(99);
    Rng child = a.split();
    EXPECT_NE(a.next(), child.next());
}

TEST(MathFitLine, RecoversExactLine)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(3.5 * x - 2.0);
    const LineFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.slope, 3.5, 1e-12);
    EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(MathFitLine, NoisyDataReasonableR2)
{
    Rng rng(41);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        const double x = static_cast<double>(i);
        xs.push_back(x);
        ys.push_back(2.0 * x + 5.0 + (rng.nextDouble() - 0.5));
    }
    const LineFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 0.01);
    EXPECT_NEAR(fit.intercept, 5.0, 0.5);
    EXPECT_GT(fit.r2, 0.999);
}

TEST(MathNearlyEqual, Basics)
{
    EXPECT_TRUE(nearlyEqual(1.0, 1.0));
    EXPECT_TRUE(nearlyEqual(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(nearlyEqual(1.0, 1.1));
    EXPECT_TRUE(nearlyEqual(0.0, 0.0));
    EXPECT_TRUE(nearlyEqual(1e8, 1e8 * (1 + 1e-10)));
}

TEST(MathBisect, FindsSqrtTwo)
{
    const double root = bisect(
        [](double x) { return x * x - 2.0; }, 0.0, 2.0, 1e-12);
    EXPECT_NEAR(root, std::sqrt(2.0), 1e-10);
}

TEST(MathBisect, HandlesDecreasingFunction)
{
    const double root = bisect(
        [](double x) { return 5.0 - x; }, 0.0, 10.0, 1e-12);
    EXPECT_NEAR(root, 5.0, 1e-10);
}

TEST(MathQuadratic, TwoRootsSorted)
{
    double roots[2];
    // (x-1)(x-3) = x^2 -4x +3
    ASSERT_EQ(solveQuadratic(1.0, -4.0, 3.0, roots), 2);
    EXPECT_NEAR(roots[0], 1.0, 1e-12);
    EXPECT_NEAR(roots[1], 3.0, 1e-12);
}

TEST(MathQuadratic, LinearFallback)
{
    double roots[2];
    ASSERT_EQ(solveQuadratic(0.0, 2.0, -8.0, roots), 1);
    EXPECT_NEAR(roots[0], 4.0, 1e-12);
}

TEST(MathQuadratic, NoRealRoots)
{
    double roots[2];
    EXPECT_EQ(solveQuadratic(1.0, 0.0, 1.0, roots), 0);
}

TEST(MathQuadratic, NumericallyStableForSmallRoot)
{
    double roots[2];
    // Roots 1e-8 and 1e8: naive formula loses the small root.
    ASSERT_EQ(solveQuadratic(1.0, -(1e8 + 1e-8), 1.0, roots), 2);
    EXPECT_NEAR(roots[0], 1e-8, 1e-14);
    EXPECT_NEAR(roots[1], 1e8, 1.0);
}

TEST(MathMean, EmptyAndSimple)
{
    EXPECT_EQ(mean({}), 0.0);
    std::vector<double> xs{1.0, 2.0, 3.0};
    EXPECT_NEAR(mean(xs), 2.0, 1e-12);
}

TEST(TextTable, AlignsColumnsAndCountsRows)
{
    TextTable table({"name", "value"});
    table.newRow().cell("alpha").cell(1.25, 2);
    table.newRow().cell("b").cell(42ll);
    EXPECT_EQ(table.rows(), 2u);
    const std::string out = table.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.25"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Csv, EscapesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("q\"uote"), "\"q\"\"uote\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows)
{
    const std::string path = ::testing::TempDir() + "/locsim_csv_test.csv";
    {
        CsvWriter csv(path);
        csv.header({"x", "y"});
        csv.rowDoubles({1.0, 2.5}, 1);
        csv.row({"3", "4"});
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "x,y");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "1.0,2.5");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "3,4");
    std::remove(path.c_str());
}

TEST(Options, ParsesTypedValues)
{
    OptionParser opts("prog", "test");
    opts.addInt("count", "a count", 5);
    opts.addDouble("rate", "a rate", 0.5);
    opts.addString("name", "a name", "default");
    opts.addFlag("verbose", "chatty");

    const char *argv[] = {"prog", "--count", "10", "--rate=0.25",
                          "--verbose", "positional"};
    const auto rest = opts.parse(6, argv);

    EXPECT_EQ(opts.getInt("count"), 10);
    EXPECT_DOUBLE_EQ(opts.getDouble("rate"), 0.25);
    EXPECT_EQ(opts.getString("name"), "default");
    EXPECT_TRUE(opts.getFlag("verbose"));
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0], "positional");
}

TEST(Logging, LevelsGateMessages)
{
    const LogLevel original = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    LOCSIM_WARN("suppressed warning");   // must not crash
    LOCSIM_INFORM("suppressed info");
    LOCSIM_DEBUG("suppressed debug");
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(original);
}

TEST(LoggingDeathTest, AssertPanicsWithMessage)
{
    EXPECT_DEATH(LOCSIM_ASSERT(1 == 2, "math broke: ", 42),
                 "assertion failed.*math broke: 42");
}

TEST(MathDeathTest, BisectRequiresBracket)
{
    EXPECT_DEATH(bisect([](double) { return 1.0; }, 0.0, 1.0),
                 "opposite signs");
}

TEST(MathDeathTest, FitLineRejectsDegenerateInput)
{
    std::vector<double> one_x{1.0}, one_y{2.0};
    EXPECT_DEATH(fitLine(one_x, one_y), "at least two");
    std::vector<double> flat_x{3.0, 3.0}, ys{1.0, 2.0};
    EXPECT_DEATH(fitLine(flat_x, ys), "degenerate");
}

TEST(OptionsDeathTest, RejectsBadInput)
{
    auto parse = [](std::vector<const char *> argv) {
        OptionParser opts("prog", "test");
        opts.addInt("count", "a count", 5);
        opts.addFlag("fast", "go fast");
        opts.parse(static_cast<int>(argv.size()), argv.data());
    };
    EXPECT_DEATH(parse({"prog", "--bogus", "1"}), "unknown option");
    EXPECT_DEATH(parse({"prog", "--count", "abc"}),
                 "expects an integer");
    EXPECT_DEATH(parse({"prog", "--count"}), "requires a value");
    EXPECT_DEATH(parse({"prog", "--fast=1"}), "takes no value");
}

TEST(Options, UsageMentionsAllOptions)
{
    OptionParser opts("prog", "test");
    opts.addInt("count", "a count", 5);
    opts.addFlag("fast", "go fast");
    const std::string usage = opts.usage();
    EXPECT_NE(usage.find("--count"), std::string::npos);
    EXPECT_NE(usage.find("--fast"), std::string::npos);
    EXPECT_NE(usage.find("default: 5"), std::string::npos);
}

TEST(Serialize, IntegralWidthsRoundTrip)
{
    Serializer s;
    s.put(std::uint8_t{0xab});
    s.put(std::uint16_t{0xbeef});
    s.put(std::uint32_t{0xdeadbeef});
    s.put(std::uint64_t{0x0123456789abcdefull});
    s.put(std::int32_t{-12345});
    s.put(std::int64_t{-1});
    s.put(true);
    s.put(false);
    Deserializer d(s.buffer());
    EXPECT_EQ(d.get<std::uint8_t>(), 0xab);
    EXPECT_EQ(d.get<std::uint16_t>(), 0xbeef);
    EXPECT_EQ(d.get<std::uint32_t>(), 0xdeadbeefu);
    EXPECT_EQ(d.get<std::uint64_t>(), 0x0123456789abcdefull);
    EXPECT_EQ(d.get<std::int32_t>(), -12345);
    EXPECT_EQ(d.get<std::int64_t>(), -1);
    EXPECT_TRUE(d.getBool());
    EXPECT_FALSE(d.getBool());
    EXPECT_TRUE(d.atEnd());
}

TEST(Serialize, EnumsRoundTripViaUnderlyingType)
{
    enum class Color : std::uint16_t { Red = 1, Blue = 700 };
    Serializer s;
    s.put(Color::Blue);
    s.put(Color::Red);
    EXPECT_EQ(s.buffer().size(), 4u); // two uint16 payloads
    Deserializer d(s.buffer());
    EXPECT_EQ(d.get<Color>(), Color::Blue);
    EXPECT_EQ(d.get<Color>(), Color::Red);
}

TEST(Serialize, DoublesAreBitExact)
{
    const double values[] = {0.0, -0.0, 1.0 / 3.0, 6.02214076e23,
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::denorm_min()};
    Serializer s;
    for (double v : values)
        s.putDouble(v);
    Deserializer d(s.buffer());
    for (double v : values) {
        const double got = d.getDouble();
        std::uint64_t vb, gb;
        std::memcpy(&vb, &v, sizeof vb);
        std::memcpy(&gb, &got, sizeof gb);
        EXPECT_EQ(gb, vb);
    }
}

TEST(Serialize, StringsRoundTrip)
{
    Serializer s;
    s.putString("");
    s.putString("hello");
    s.putString(std::string("nul\0inside", 10));
    Deserializer d(s.buffer());
    EXPECT_EQ(d.getString(), "");
    EXPECT_EQ(d.getString(), "hello");
    EXPECT_EQ(d.getString(), std::string("nul\0inside", 10));
    EXPECT_TRUE(d.atEnd());
}

TEST(Serialize, TruncatedBufferThrows)
{
    Serializer s;
    s.put(std::uint64_t{7});
    std::vector<std::uint8_t> bytes = s.buffer();
    bytes.pop_back();
    Deserializer d(bytes);
    EXPECT_THROW(d.get<std::uint64_t>(), std::runtime_error);
}

TEST(Sha256, KnownVectors)
{
    // FIPS 180-2 test vectors.
    EXPECT_EQ(Sha256::hashHex({}),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    const std::vector<std::uint8_t> abc = {'a', 'b', 'c'};
    EXPECT_EQ(Sha256::hashHex(abc),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    // Incremental absorption matches one-shot hashing.
    Sha256 h;
    h.update("a", 1);
    h.update("bc", 2);
    EXPECT_EQ(h.hexDigest(), Sha256::hashHex(abc));
}

TEST(Arena, MakeConstructsAndCountsObjects)
{
    Arena arena;
    int *a = arena.make<int>(41);
    double *b = arena.make<double>(2.5);
    EXPECT_EQ(*a, 41);
    EXPECT_EQ(*b, 2.5);
    *a += 1;
    EXPECT_EQ(*a, 42);
    EXPECT_EQ(arena.objectCount(), 2u);
    EXPECT_GE(arena.bytesAllocated(), sizeof(int) + sizeof(double));
}

TEST(Arena, RunsFinalizersInReverseOrder)
{
    struct Tracked
    {
        explicit Tracked(std::vector<int> &log, int id)
            : log_(log), id_(id)
        {
        }
        ~Tracked() { log_.push_back(id_); }
        std::vector<int> &log_;
        int id_;
    };
    std::vector<int> destroyed;
    {
        Arena arena;
        arena.make<Tracked>(destroyed, 1);
        arena.make<Tracked>(destroyed, 2);
        arena.make<Tracked>(destroyed, 3);
        EXPECT_TRUE(destroyed.empty());
    }
    EXPECT_EQ(destroyed, (std::vector<int>{3, 2, 1}));
}

TEST(Arena, GrowsNewSlabsForLargeAllocations)
{
    Arena arena(64); // tiny slabs force chaining
    for (int i = 0; i < 32; ++i)
        arena.make<std::uint64_t>(static_cast<std::uint64_t>(i));
    // An allocation bigger than the slab size gets its own slab.
    struct Big
    {
        std::byte bytes[256];
    };
    Big *big = arena.make<Big>();
    EXPECT_NE(big, nullptr);
    EXPECT_GT(arena.slabCount(), 1u);
}

TEST(Rng, SaveLoadResumesIdenticalStream)
{
    Rng original(1234);
    for (int i = 0; i < 17; ++i)
        original.next();
    Serializer s;
    original.saveState(s);
    Rng restored(0);
    Deserializer d(s.buffer());
    restored.loadState(d);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(restored.next(), original.next());
}

TEST(Pool, AllocGetFreeRoundTrips)
{
    Pool<int> pool;
    auto a = pool.alloc();
    auto b = pool.alloc();
    pool.get(a) = 17;
    pool.get(b) = 42;
    EXPECT_EQ(pool.get(a), 17);
    EXPECT_EQ(pool.get(b), 42);
    EXPECT_EQ(pool.liveCount(), 2u);
    EXPECT_TRUE(pool.valid(a));
    pool.free(a);
    EXPECT_FALSE(pool.valid(a));
    EXPECT_TRUE(pool.valid(b));
    EXPECT_EQ(pool.liveCount(), 1u);
}

TEST(Pool, RecyclesSlotsWithoutGrowingCapacity)
{
    Pool<std::vector<int>> pool;
    auto h = pool.alloc();
    pool.get(h).resize(100);
    pool.free(h);
    const std::size_t cap = pool.capacity();
    for (int i = 0; i < 1000; ++i) {
        auto r = pool.alloc();
        // Recycle-without-destroy: the previous user's capacity
        // survives, so warm slots never reallocate.
        EXPECT_GE(pool.get(r).capacity(), 100u) << "iteration " << i;
        pool.free(r);
    }
    EXPECT_EQ(pool.capacity(), cap);
}

TEST(Pool, StaleHandleIsInvalidAfterRecycle)
{
    Pool<int> pool;
    auto h = pool.alloc();
    pool.free(h);
    auto r = pool.alloc();
    // The freelist hands the same slot back with a bumped generation.
    EXPECT_EQ(r.index, h.index);
    EXPECT_NE(r.gen, h.gen);
    EXPECT_FALSE(pool.valid(h));
    EXPECT_TRUE(pool.valid(r));
}

TEST(Pool, ReferencesSurviveGrowthAcrossChunks)
{
    Pool<int> pool;
    auto first = pool.alloc();
    pool.get(first) = 7;
    int *addr = &pool.get(first);
    // Force several chunk allocations (512 slots per chunk).
    std::vector<Pool<int>::Handle> handles;
    for (int i = 0; i < 2000; ++i)
        handles.push_back(pool.alloc());
    EXPECT_EQ(&pool.get(first), addr);
    EXPECT_EQ(pool.get(first), 7);
    EXPECT_EQ(pool.liveCount(), 2001u);
}

TEST(PoolDeathTest, StaleHandleGetAsserts)
{
    Pool<int> pool;
    auto h = pool.alloc();
    pool.free(h);
    pool.alloc();
    EXPECT_DEATH(pool.get(h), "stale pool handle");
}

TEST(RingQueue, FifoOrderAndIndexedAccess)
{
    RingQueue<int> q;
    for (int i = 0; i < 10; ++i)
        q.push_back(i);
    EXPECT_EQ(q.size(), 10u);
    for (std::size_t i = 0; i < q.size(); ++i)
        EXPECT_EQ(q[i], static_cast<int>(i));
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, DequeSemanticsAtBothEnds)
{
    RingQueue<int> q;
    q.push_back(2);
    q.push_front(1);
    q.push_back(3);
    EXPECT_EQ(q.front(), 1);
    EXPECT_EQ(q.back(), 3);
    q.pop_back();
    EXPECT_EQ(q.back(), 2);
    q.pop_front();
    EXPECT_EQ(q.front(), 2);
}

TEST(RingQueue, WrapsWithoutReallocatingWhenWarm)
{
    RingQueue<int> q;
    q.reserve(16);
    const std::size_t cap = q.capacity();
    EXPECT_GE(cap, 16u);
    // Stream far more elements than capacity through the warm ring;
    // occupancy never exceeds 4, so the buffer must not grow.
    int next_in = 0, next_out = 0;
    for (int i = 0; i < 1000; ++i) {
        q.push_back(next_in++);
        if (q.size() > 4) {
            EXPECT_EQ(q.front(), next_out++);
            q.pop_front();
        }
    }
    EXPECT_EQ(q.capacity(), cap);
}

TEST(RingQueue, ReserveGrowsButNeverShrinks)
{
    RingQueue<int> q;
    q.push_back(1);
    q.push_back(2);
    q.reserve(100);
    const std::size_t cap = q.capacity();
    EXPECT_GE(cap, 100u);
    // Contents survive the grow.
    EXPECT_EQ(q.front(), 1);
    EXPECT_EQ(q.back(), 2);
    q.reserve(10);
    EXPECT_EQ(q.capacity(), cap);
}

TEST(RingQueue, ClearRetainsCapacity)
{
    RingQueue<int> q;
    for (int i = 0; i < 50; ++i)
        q.push_back(i);
    const std::size_t cap = q.capacity();
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.capacity(), cap);
    q.push_back(9);
    EXPECT_EQ(q.front(), 9);
}

TEST(FlatMap, InsertFindEraseRoundTrips)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(1), nullptr);
    map.insert(1, 10);
    map.insert(2, 20);
    ASSERT_NE(map.find(1), nullptr);
    EXPECT_EQ(*map.find(1), 10);
    EXPECT_EQ(*map.find(2), 20);
    EXPECT_EQ(map.size(), 2u);
    EXPECT_TRUE(map.erase(1));
    EXPECT_EQ(map.find(1), nullptr);
    EXPECT_FALSE(map.erase(1));
    EXPECT_EQ(*map.find(2), 20);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, SurvivesRandomizedInsertEraseChurn)
{
    // Backward-shift deletion is the subtle part: compare against a
    // reference map across a long random insert/erase interleaving.
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::set<std::uint64_t> reference;
    Rng rng(99);
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t key = rng.nextBounded(512);
        if (reference.count(key)) {
            EXPECT_TRUE(map.erase(key));
            reference.erase(key);
        } else {
            map.insert(key, key * 3);
            reference.insert(key);
        }
        EXPECT_EQ(map.size(), reference.size());
    }
    for (std::uint64_t key = 0; key < 512; ++key) {
        auto *found = map.find(key);
        if (reference.count(key)) {
            ASSERT_NE(found, nullptr) << "key " << key;
            EXPECT_EQ(*found, key * 3);
        } else {
            EXPECT_EQ(found, nullptr) << "key " << key;
        }
    }
}

TEST(FlatMap, ForEachVisitsEveryEntryOnce)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t key = 0; key < 100; ++key)
        map.insert(key, static_cast<int>(key));
    std::set<std::uint64_t> seen;
    map.forEach([&](std::uint64_t key, int value) {
        EXPECT_EQ(value, static_cast<int>(key));
        EXPECT_TRUE(seen.insert(key).second) << "duplicate " << key;
    });
    EXPECT_EQ(seen.size(), 100u);
}

TEST(FlatMap, ReservePreventsRehashUpToExpected)
{
    FlatMap<std::uint64_t, int> map;
    map.insert(1000, 1);
    int *before = map.find(1000);
    map.reserve(64);
    // reserve() itself may rehash (invalidate), but inserts up to the
    // reserved count afterwards must not.
    int *stable = map.find(1000);
    for (std::uint64_t key = 0; key < 63; ++key)
        map.insert(key, static_cast<int>(key));
    EXPECT_EQ(map.find(1000), stable);
    EXPECT_EQ(*map.find(1000), 1);
    (void)before;
}

TEST(FlatMapDeathTest, DuplicateInsertAsserts)
{
    FlatMap<std::uint64_t, int> map;
    map.insert(5, 1);
    EXPECT_DEATH(map.insert(5, 2), "already present");
}

} // namespace
} // namespace util
} // namespace locsim
