/**
 * @file
 * Tests for the analytical model library: each model equation, the
 * combined-model solvers, the paper's numeric anchors, and structural
 * properties (monotonicity, asymptotics, solver agreement).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/alewife.hh"
#include "model/application_model.hh"
#include "model/combined_model.hh"
#include "model/indirect_network.hh"
#include "model/locality.hh"
#include "model/network_model.hh"
#include "model/node_model.hh"
#include "model/transaction_model.hh"

namespace locsim {
namespace model {
namespace {

constexpr double kRatio = 2.0; // network cycles per processor cycle

ApplicationParams
app(double contexts, double run_length = 8.0, double switch_time = 11.0)
{
    ApplicationParams params;
    params.contexts = contexts;
    params.run_length = run_length;
    params.switch_time = switch_time;
    return params;
}

TEST(ApplicationModel, SingleContextIsEquation1)
{
    ApplicationModel model(app(1), kRatio);
    // t_t = T_r + T_t; T_r = 8 proc cycles = 16 network cycles.
    EXPECT_DOUBLE_EQ(model.interTransactionTime(0.0), 16.0);
    EXPECT_DOUBLE_EQ(model.interTransactionTime(100.0), 116.0);
    EXPECT_DOUBLE_EQ(model.transactionCurveSlope(), 1.0);
}

TEST(ApplicationModel, ExposedModeSlopeIsP)
{
    ApplicationModel model(app(4), kRatio);
    const double t1 = model.interTransactionTime(1000.0);
    const double t2 = model.interTransactionTime(2000.0);
    EXPECT_NEAR((2000.0 - 1000.0) / (t2 - t1), 4.0, 1e-12);
}

TEST(ApplicationModel, MaskedModeFloorsAtRunPlusSwitch)
{
    ApplicationModel model(app(4), kRatio);
    // Boundary (continuous Eq 3): (p-1)(T_r + T_s) = 3*38 = 114.
    EXPECT_TRUE(model.latencyMasked(113.0));
    EXPECT_FALSE(model.latencyMasked(115.0));
    // In masked mode t_t = T_r + T_s = 38 network cycles (Eq 4).
    EXPECT_DOUBLE_EQ(model.interTransactionTime(50.0), 38.0);
    EXPECT_DOUBLE_EQ(model.minInterTransactionTime(), 38.0);
    // Continuity at the boundary.
    EXPECT_NEAR(model.interTransactionTime(114.0), 38.0, 1e-9);
    EXPECT_GT(model.interTransactionTime(115.0), 38.0);
}

TEST(ApplicationModel, InverseRoundTrips)
{
    ApplicationModel model(app(2), kRatio);
    const double latency = 500.0;
    const double issue = model.interTransactionTime(latency);
    EXPECT_NEAR(model.transactionLatencyFor(issue), latency, 1e-9);
}

TEST(TransactionModel, Equations7And8)
{
    TransactionModel model(alewifeTransaction(), kRatio);
    // T_f = 40 proc cycles = 80 network cycles.
    EXPECT_DOUBLE_EQ(model.fixedOverhead(), 80.0);
    EXPECT_DOUBLE_EQ(model.transactionLatency(50.0),
                     2.0 * 50.0 + 80.0);
    EXPECT_DOUBLE_EQ(model.messageLatencyFor(180.0), 50.0);
    EXPECT_DOUBLE_EQ(model.interTransactionTime(10.0), 32.0);
    EXPECT_DOUBLE_EQ(model.interMessageTime(32.0), 10.0);
}

NodeModel
makeNode(double contexts)
{
    return NodeModel(
        ApplicationModel(sectionThreeApplication(contexts), kRatio),
        TransactionModel(alewifeTransaction(), kRatio));
}

TEST(NodeModel, LatencySensitivityIsPGOverC)
{
    // s = p*g/c (paper: s(p=2) = 3.2, measured 3.26).
    EXPECT_NEAR(makeNode(1).latencySensitivity(), 1.6, 1e-12);
    EXPECT_NEAR(makeNode(2).latencySensitivity(), 3.2, 1e-12);
    EXPECT_NEAR(makeNode(4).latencySensitivity(), 6.4, 1e-12);
}

TEST(NodeModel, Equation9Intercept)
{
    // Single context: K = (T_r + T_f)/c = (16 + 80)/2 = 48.
    EXPECT_NEAR(makeNode(1).fixedTerm(), 48.0, 1e-12);
    // Multithreaded: the per-transaction switch charge joins the
    // intercept, K = (T_r + T_s + T_f)/c = (16 + 22 + 80)/2 = 59.
    const NodeModel node = makeNode(2);
    EXPECT_NEAR(node.fixedTerm(), 59.0, 1e-12);
    // T_m = s*t_m - K.
    EXPECT_NEAR(node.messageLatencyFor(100.0), 3.2 * 100.0 - 59.0,
                1e-12);
}

TEST(NodeModel, InverseIncludesIssueFloor)
{
    const NodeModel node = makeNode(4);
    // Floor: (T_r + T_s)/g = 38/3.2 = 11.875 network cycles.
    EXPECT_NEAR(node.minInterMessageTime(), 11.875, 1e-12);
    EXPECT_NEAR(node.interMessageTime(0.0), 11.875, 1e-9);
    // Far from the floor the linear relation holds.
    const double t_m = node.interMessageTime(1000.0);
    EXPECT_NEAR(node.messageLatencyFor(t_m), 1000.0, 1e-9);
}

NetworkParams
netParams(bool node_channels = false, int dims = 2, double flits = 12.0)
{
    NetworkParams params;
    params.dims = dims;
    params.message_flits = flits;
    params.node_channel_contention = node_channels;
    return params;
}

TEST(NetworkModel, Equation10Utilization)
{
    TorusNetworkModel net(netParams());
    // rho = r * B * k_d / 2.
    EXPECT_NEAR(net.utilization(0.01, 8.0), 0.01 * 12.0 * 8.0 / 2.0,
                1e-12);
    EXPECT_NEAR(net.saturationRate(8.0), 2.0 / (12.0 * 8.0), 1e-12);
}

TEST(NetworkModel, Equation14PerHopLatency)
{
    TorusNetworkModel net(netParams());
    // k_d < 1 extension.
    EXPECT_DOUBLE_EQ(net.perHopLatency(0.5, 0.5), 1.0);
    // Zero load -> unit latency.
    EXPECT_DOUBLE_EQ(net.perHopLatency(0.0, 8.0), 1.0);
    // Hand-computed: rho=0.5, k_d=8, n=2:
    // 1 + (0.5*12/0.5)*((7)/64)*(3/2) = 1 + 12*0.109375*1.5.
    EXPECT_NEAR(net.perHopLatency(0.5, 8.0),
                1.0 + 12.0 * (7.0 / 64.0) * 1.5, 1e-12);
}

TEST(NetworkModel, PerHopLatencyIncreasesWithLoad)
{
    TorusNetworkModel net(netParams());
    double last = 0.0;
    for (double rho : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
        const double t_h = net.perHopLatency(rho, 4.0);
        EXPECT_GT(t_h, last);
        last = t_h;
    }
}

TEST(NetworkModel, Equation11MessageLatency)
{
    TorusNetworkModel net(netParams());
    // Zero load: n*k_d*1 + B.
    EXPECT_NEAR(net.messageLatency(0.0, 8.0), 2.0 * 8.0 + 12.0,
                1e-12);
}

TEST(NetworkModel, NodeChannelWaitIsMD1)
{
    TorusNetworkModel net(netParams(true));
    EXPECT_DOUBLE_EQ(net.nodeChannelWait(0.0), 0.0);
    // rho_ch = 0.5 -> W = 0.5*12/(2*0.5) = 6.
    EXPECT_NEAR(net.nodeChannelWait(0.5 / 12.0), 6.0, 1e-12);
    TorusNetworkModel off(netParams(false));
    EXPECT_DOUBLE_EQ(off.nodeChannelWait(0.5 / 12.0), 0.0);
}

TEST(NetworkModel, Equation16PaperAnchor)
{
    // s = 3.26, B = 12, n = 2 -> limiting T_h ~ 9.8 network cycles
    // (Section 4.1's quoted value for the two-context application).
    TorusNetworkModel net(netParams());
    EXPECT_NEAR(net.limitingPerHopLatency(3.26), 9.78, 0.01);
}

CombinedModel
makeCombined(double contexts, double distance,
             bool node_channels = false, bool floor = true)
{
    return CombinedModel(makeNode(contexts),
                         TorusNetworkModel(netParams(node_channels)),
                         distance, floor);
}

TEST(CombinedModel, QuadraticAndBisectionAgree)
{
    for (double contexts : {1.0, 2.0, 4.0}) {
        for (double distance : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
            CombinedModel model =
                makeCombined(contexts, distance, false, false);
            const Prediction a = model.solve();
            const Prediction b = model.solveQuadratic();
            EXPECT_NEAR(a.injection_rate, b.injection_rate,
                        1e-9 * b.injection_rate)
                << "p=" << contexts << " d=" << distance;
            EXPECT_NEAR(a.message_latency, b.message_latency,
                        1e-6 * std::max(1.0, b.message_latency));
        }
    }
}

TEST(CombinedModel, SelfConsistentSolution)
{
    const CombinedModel model = makeCombined(2, 8.0);
    const Prediction p = model.solve();
    // The solution must lie on both curves.
    const NodeModel node = makeNode(2);
    EXPECT_NEAR(node.messageLatencyFor(p.inter_message_time),
                p.message_latency, 1e-6);
    EXPECT_NEAR(model.networkLatencyAt(p.injection_rate),
                p.message_latency, 1e-6);
    EXPECT_LT(p.utilization, 1.0);
    EXPECT_GT(p.utilization, 0.0);
}

TEST(CombinedModel, ComponentsSumToInterTransactionTime)
{
    for (double contexts : {1.0, 2.0, 4.0}) {
        for (double distance : {1.0, 4.0, 16.0}) {
            const Prediction p =
                makeCombined(contexts, distance, true).solve();
            EXPECT_NEAR(p.comp_variable_msg + p.comp_fixed_msg +
                            p.comp_fixed_txn + p.comp_cpu,
                        p.inter_txn_time, 1e-6);
        }
    }
}

TEST(CombinedModel, LatencyIncreasesWithDistance)
{
    double last = 0.0;
    for (double distance : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
        const Prediction p = makeCombined(1, distance).solve();
        EXPECT_GT(p.message_latency, last);
        last = p.message_latency;
    }
}

TEST(CombinedModel, RateDecreasesWithDistance)
{
    double last = 1.0;
    for (double distance : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
        const Prediction p = makeCombined(1, distance).solve();
        EXPECT_LT(p.injection_rate, last);
        last = p.injection_rate;
    }
}

TEST(CombinedModel, MoreContextsToleratesMoreLatency)
{
    const Prediction p1 = makeCombined(1, 16.0).solve();
    const Prediction p2 = makeCombined(2, 16.0).solve();
    const Prediction p4 = makeCombined(4, 16.0).solve();
    // More outstanding transactions -> higher rates and higher
    // utilization at the same distance.
    EXPECT_GT(p2.injection_rate, p1.injection_rate);
    EXPECT_GE(p4.injection_rate, p2.injection_rate);
    EXPECT_GT(p2.utilization, p1.utilization);
}

TEST(CombinedModel, IssueFloorBindsForManyContextsAtShortDistance)
{
    // Four contexts at a single hop would issue faster than one
    // transaction per T_r + T_s; the Equation 4 floor must bind when
    // enforced (the base network model has nothing else to stop it).
    const Prediction with_floor =
        makeCombined(4, 1.0, false, true).solve();
    EXPECT_TRUE(with_floor.issue_bound_hit);
    EXPECT_NEAR(with_floor.inter_txn_time, 38.0, 1e-9);
    const Prediction without =
        makeCombined(4, 1.0, false, false).solve();
    EXPECT_FALSE(without.issue_bound_hit);
    EXPECT_LT(without.inter_txn_time, 38.0);
}

TEST(CombinedModel, PerHopLatencyApproachesEquation16Limit)
{
    // As distance grows the per-hop latency must approach (and never
    // wildly exceed) B*s/(2n); feedback pins it there (Section 4.1).
    const TorusNetworkModel net((netParams()));
    const double limit =
        net.limitingPerHopLatency(makeNode(2).latencySensitivity());
    double last = 0.0;
    for (double distance : {32.0, 128.0, 512.0, 2048.0, 8192.0}) {
        const Prediction p = makeCombined(2, distance).solve();
        EXPECT_GT(p.per_hop_latency, last * 0.999);
        last = p.per_hop_latency;
    }
    EXPECT_NEAR(last, limit, 0.05 * limit);
}

TEST(CombinedModel, UtilizationApproachesOneAtScale)
{
    const Prediction p = makeCombined(2, 8192.0).solve();
    EXPECT_GT(p.utilization, 0.95);
    EXPECT_LT(p.utilization, 1.0);
}

TEST(CombinedModel, SmallGrainApproachesLimitFasterThanLargeGrain)
{
    // Figure 6: increasing the computation grain tenfold slows the
    // approach to the same limiting value.
    auto perHopAt = [](double run_length, double distance) {
        NodeModel node(
            ApplicationModel(app(2, run_length), kRatio),
            TransactionModel(alewifeTransaction(), kRatio));
        CombinedModel model(node, TorusNetworkModel(netParams()),
                            distance, true);
        return model.solve().per_hop_latency;
    };
    const double small_grain = perHopAt(8.0, 64.0);
    const double large_grain = perHopAt(80.0, 64.0);
    EXPECT_GT(small_grain, large_grain);
    // Both approach the same limit eventually.
    EXPECT_NEAR(perHopAt(8.0, 50000.0), perHopAt(80.0, 500000.0),
                0.5);
}

TEST(CombinedModel, NodeChannelContentionAddsFewCycles)
{
    // Section 2.4: for the validation experiments this contention
    // added two to five network cycles to the average message
    // latency. Check the window at the validation operating points
    // (one and two contexts); at four contexts and short distances
    // the source channel genuinely approaches saturation, so only
    // positivity is required there.
    for (double contexts : {1.0, 2.0, 4.0}) {
        for (double distance : {2.0, 4.0, 6.0}) {
            const Prediction off =
                makeCombined(contexts, distance, false).solve();
            const Prediction on =
                makeCombined(contexts, distance, true).solve();
            const double delta =
                on.message_latency - off.message_latency;
            EXPECT_GT(delta, 0.1) << "p=" << contexts;
            if (contexts < 4.0) {
                EXPECT_LT(delta, 8.0)
                    << "p=" << contexts << " d=" << distance;
            }
        }
    }
}

TEST(LocalityAnalysis, RandomDistanceMatchesEquation17)
{
    LocalityAnalysis analysis(alewifeStudy(1, 64, false));
    EXPECT_NEAR(analysis.mappingDistance(Mapping::Random), 4.063,
                0.001);
    EXPECT_DOUBLE_EQ(analysis.mappingDistance(Mapping::Ideal), 1.0);
}

TEST(LocalityAnalysis, PaperAnchorGainAtThousandProcessors)
{
    // Section 4.2 / Table 1: for the one-context application on the
    // base architecture, expected gain ~2 at N = 1000.
    LocalityAnalysis analysis(alewifeStudy(1, 1000, false));
    const GainResult result = analysis.expectedGain();
    EXPECT_NEAR(result.gain, 2.0, 0.25);
    EXPECT_NEAR(result.random_distance, 15.8, 0.3);
}

TEST(LocalityAnalysis, PaperAnchorGainAtMillionProcessors)
{
    // Table 1 base row: ~41 at 10^6 processors (one context).
    LocalityAnalysis analysis(alewifeStudy(1, 1e6, false));
    const GainResult result = analysis.expectedGain();
    EXPECT_GT(result.gain, 35.0);
    EXPECT_LT(result.gain, 50.0);
}

TEST(LocalityAnalysis, GainIsMonotoneInMachineSize)
{
    const StudyConfig base = alewifeStudy(1, 64, false);
    const auto sweep = sweepExpectedGain(
        base, {10, 100, 1000, 10000, 100000, 1000000});
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GT(sweep[i].gain, sweep[i - 1].gain);
    // Unity gain at ten processors (Figure 7).
    EXPECT_NEAR(sweep.front().gain, 1.0, 0.15);
}

TEST(LocalityAnalysis, GainBoundedByDistanceReductionTimesPerHop)
{
    // Section 4.1's headline: gain is at most linear in the factor by
    // which communication distance is reduced, scaled by the per-hop
    // latency ratio. Verify gain <= (d_rand/d_ideal) *
    // (T_h_rand/T_h_ideal) with slack for fixed terms.
    for (double n : {100.0, 10000.0, 1000000.0}) {
        LocalityAnalysis analysis(alewifeStudy(1, n, false));
        const GainResult r = analysis.expectedGain();
        const double bound = (r.random_distance / r.ideal_distance) *
                             (r.random.per_hop_latency /
                              r.ideal.per_hop_latency);
        EXPECT_LE(r.gain, bound * 1.01) << "N=" << n;
    }
}

TEST(LocalityAnalysis, FixedTxnOverheadIsTwoThirdsOfFixedComponent)
{
    // Figure 8 discussion: fixed transaction overhead is about
    // two-thirds of the total fixed component, in all six cases.
    // Figure 8 uses the pure Equation 18 decomposition (the paper
    // drops the issue floor), so disable the floor here.
    for (double contexts : {1.0, 2.0, 4.0}) {
        StudyConfig cfg = alewifeStudy(contexts, 1000, false);
        cfg.enforce_issue_floor = false;
        LocalityAnalysis analysis(cfg);
        for (Mapping m : {Mapping::Ideal, Mapping::Random}) {
            const Prediction p = analysis.predict(m);
            const double fixed_total = p.comp_fixed_msg +
                                       p.comp_fixed_txn +
                                       p.comp_cpu;
            EXPECT_NEAR(p.comp_fixed_txn / fixed_total, 2.0 / 3.0,
                        0.12)
                << "contexts=" << contexts;
        }
    }
}

TEST(LocalityAnalysis, VariableOverheadOnParWithFixedAtThousand)
{
    // Figure 8: for random mappings at N = 1000 the variable message
    // overhead lands "on par" with the fixed components (one
    // context).
    LocalityAnalysis analysis(alewifeStudy(1, 1000, false));
    const Prediction p = analysis.predict(Mapping::Random);
    const double fixed_total =
        p.comp_fixed_msg + p.comp_fixed_txn + p.comp_cpu;
    EXPECT_GT(p.comp_variable_msg / fixed_total, 0.6);
    EXPECT_LT(p.comp_variable_msg / fixed_total, 1.8);
}

TEST(LocalityAnalysis, SlowerNetworksIncreaseGain)
{
    // Table 1's trend: decreasing relative network speed increases
    // the expected gain, at both machine sizes.
    const StudyConfig base = alewifeStudy(1, 1000, false);
    double last = 0.0;
    for (double speed : {1.0, 0.5, 0.25, 0.125}) {
        const StudyConfig scaled =
            withRelativeNetworkSpeed(base, speed);
        const double gain =
            LocalityAnalysis(scaled).expectedGain().gain;
        EXPECT_GT(gain, last) << "speed factor " << speed;
        last = gain;
    }
}

TEST(LocalityAnalysis, EightTimesSlowerNetworkTriplesGain)
{
    // Section 4 summary: slowing the network 8x increases the upper
    // bounds by roughly a factor of three.
    for (double n : {1000.0, 1e6}) {
        const StudyConfig base = alewifeStudy(1, n, false);
        const double g1 = LocalityAnalysis(base).expectedGain().gain;
        const double g8 =
            LocalityAnalysis(withRelativeNetworkSpeed(base, 0.125))
                .expectedGain()
                .gain;
        EXPECT_NEAR(g8 / g1, 3.0, 1.0) << "N=" << n;
    }
}

TEST(LocalityAnalysis, HigherDimensionalNetworksReduceGain)
{
    // Section 4.2 closing remark: higher-dimensional networks lower
    // the impact of exploiting physical locality.
    StudyConfig cfg2 = alewifeStudy(1, 4096, false);
    StudyConfig cfg3 = cfg2;
    cfg3.machine.network.dims = 3;
    const double gain2 = LocalityAnalysis(cfg2).expectedGain().gain;
    const double gain3 = LocalityAnalysis(cfg3).expectedGain().gain;
    EXPECT_GT(gain2, gain3);
}

TEST(LocalityAnalysis, PerHopSweepApproachesLimit)
{
    // Figure 6 anchor: the two-context application reaches over 80%
    // of its limiting per-hop latency within a few thousand
    // processors.
    const StudyConfig base = alewifeStudy(2, 64, false);
    LocalityAnalysis analysis(base);
    const double limit = analysis.limitingPerHopLatency();
    EXPECT_NEAR(limit, 9.6, 0.01); // B*s/(2n) with s = 3.2
    const auto sweep = sweepPerHopLatency(base, {4096});
    EXPECT_GT(sweep[0].second, 0.8 * limit);
}

/**
 * Broad property sweep: for every (dims, flits, grain, contexts,
 * distance) combination the combined model must produce a
 * self-consistent, physical operating point, and the quadratic and
 * bisection solvers must agree whenever both apply.
 */
class SolverSweep
    : public ::testing::TestWithParam<
          std::tuple<int, double, double, double>>
{
};

TEST_P(SolverSweep, SelfConsistentAndPhysicalEverywhere)
{
    const auto [dims, flits, grain, contexts] = GetParam();

    ApplicationParams app_params;
    app_params.run_length = grain;
    app_params.contexts = contexts;
    app_params.switch_time = 11.0;
    NodeModel node(ApplicationModel(app_params, kRatio),
                   TransactionModel(alewifeTransaction(), kRatio));

    NetworkParams net_params;
    net_params.dims = dims;
    net_params.message_flits = flits;
    net_params.node_channel_contention = false;

    for (double distance : {0.5, 1.0, 3.0, 10.0, 100.0, 10000.0}) {
        CombinedModel model(node, TorusNetworkModel(net_params),
                            distance, false);
        const Prediction p = model.solve();
        ASSERT_GT(p.injection_rate, 0.0);
        ASSERT_LT(p.utilization, 1.0);
        ASSERT_GE(p.per_hop_latency, 1.0);
        ASSERT_GT(p.message_latency, 0.0);
        // On both curves (skip the node-curve check where the
        // bandwidth bound binds in the contention-free k_d <= 1
        // regime: the operating point is pinned at saturation, below
        // the node curve).
        const bool bandwidth_clamped = p.utilization > 0.999;
        if (!bandwidth_clamped) {
            EXPECT_NEAR(node.messageLatencyFor(p.inter_message_time),
                        p.message_latency,
                        1e-4 * std::max(1.0, p.message_latency));
        }
        EXPECT_NEAR(model.networkLatencyAt(p.injection_rate),
                    p.message_latency,
                    1e-4 * std::max(1.0, p.message_latency));
        // Components always reassemble t_t.
        EXPECT_NEAR(p.comp_variable_msg + p.comp_fixed_msg +
                        p.comp_fixed_txn + p.comp_cpu,
                    p.inter_txn_time, 1e-6 * p.inter_txn_time);
        // Closed form agrees where defined.
        const Prediction q = model.solveQuadratic();
        EXPECT_NEAR(p.injection_rate, q.injection_rate,
                    1e-6 * q.injection_rate);
        // Per-hop latency respects the Equation 16 ceiling (with
        // slack for the approach from above at moderate sizes).
        const double limit =
            TorusNetworkModel(net_params).limitingPerHopLatency(
                node.latencySensitivity());
        EXPECT_LT(p.per_hop_latency, std::max(limit * 1.5, 4.0));
    }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, SolverSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(4.0, 12.0, 32.0),
                       ::testing::Values(2.0, 8.0, 64.0),
                       ::testing::Values(1.0, 2.0, 4.0)));

TEST(IndirectNetwork, StageCountIsCeilLogKN)
{
    EXPECT_EQ(IndirectNetworkModel(64, 2, 12).stages(), 6);
    EXPECT_EQ(IndirectNetworkModel(64, 4, 12).stages(), 3);
    EXPECT_EQ(IndirectNetworkModel(65, 4, 12).stages(), 4);
    EXPECT_EQ(IndirectNetworkModel(2, 4, 12).stages(), 1);
    EXPECT_EQ(IndirectNetworkModel(1e6, 4, 12).stages(), 10);
}

TEST(IndirectNetwork, ZeroLoadLatencyIsStagesPlusSerialization)
{
    IndirectNetworkModel net(256, 4, 12);
    EXPECT_NEAR(net.messageLatency(0.0), 4.0 + 12.0, 1e-12);
}

TEST(IndirectNetwork, LatencyMonotoneInLoadAndDivergesAtSaturation)
{
    IndirectNetworkModel net(1024, 4, 12);
    double last = 0.0;
    for (double r : {0.0, 0.02, 0.04, 0.06, 0.08}) {
        const double latency = net.messageLatency(r);
        EXPECT_GT(latency, last);
        last = latency;
    }
    EXPECT_GT(net.messageLatency(net.saturationRate() * 0.999),
              100.0);
}

TEST(IndirectNetwork, ClosedLoopIsSelfConsistent)
{
    const NodeModel node = makeNode(2);
    IndirectNetworkModel net(4096, 4, 12.0);
    const Prediction p = solveIndirectClosedLoop(node, net);
    EXPECT_NEAR(node.messageLatencyFor(p.inter_message_time),
                p.message_latency, 1e-6);
    EXPECT_NEAR(net.messageLatency(p.injection_rate),
                p.message_latency, 1e-6);
    EXPECT_LT(p.utilization, 1.0);
    EXPECT_NEAR(p.comp_variable_msg + p.comp_fixed_msg +
                    p.comp_fixed_txn + p.comp_cpu,
                p.inter_txn_time, 1e-6);
}

TEST(IndirectNetwork, UclDegradesLogarithmically)
{
    // Latency grows ~log N: quadrupling N with radix-4 switches adds
    // exactly one stage at zero load.
    const NodeModel node = makeNode(1);
    const Prediction small =
        solveIndirectClosedLoop(node,
                                IndirectNetworkModel(256, 4, 12.0));
    const Prediction large =
        solveIndirectClosedLoop(node,
                                IndirectNetworkModel(1024, 4, 12.0));
    EXPECT_GT(large.message_latency, small.message_latency);
    EXPECT_LT(large.message_latency, small.message_latency + 4.0);
}

TEST(IndirectNetwork, IdealTorusBeatsUclIncreasinglyWithScale)
{
    // The paper's Section 1 argument: NUCL + locality wins, and the
    // margin grows with machine size.
    double last_ratio = 0.0;
    for (double n : {256.0, 4096.0, 65536.0, 1048576.0}) {
        StudyConfig config = alewifeStudy(1, n, false);
        LocalityAnalysis analysis(config);
        const Prediction ideal = analysis.predict(Mapping::Ideal);
        const Prediction ucl = solveIndirectClosedLoop(
            analysis.nodeModel(),
            IndirectNetworkModel(n, 4, 12.0));
        const double ratio = ideal.txn_rate / ucl.txn_rate;
        EXPECT_GT(ratio, last_ratio) << "N=" << n;
        last_ratio = ratio;
    }
    EXPECT_GT(last_ratio, 1.1);
}

class GainSweepParam : public ::testing::TestWithParam<double>
{
};

TEST_P(GainSweepParam, GainCurveShapeHoldsForAllContexts)
{
    // Figure 7 qualitative shape for every context count: near unity
    // at 10 processors, and growing by orders of magnitude by 10^6.
    const double contexts = GetParam();
    const StudyConfig base = alewifeStudy(contexts, 64, false);
    const auto sweep =
        sweepExpectedGain(base, {10, 1000, 1000000});
    EXPECT_LT(sweep[0].gain, 1.6);
    EXPECT_GT(sweep[1].gain, 1.5);
    EXPECT_GT(sweep[2].gain, 25.0);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GT(sweep[i].gain, sweep[i - 1].gain);
}

INSTANTIATE_TEST_SUITE_P(Contexts, GainSweepParam,
                         ::testing::Values(1.0, 2.0, 4.0));

} // namespace
} // namespace model
} // namespace locsim
