/**
 * @file
 * Tests for the host-side introspection layer: phase-profiler
 * transparency (profiling must not change simulated results or
 * checkpoint bytes), nesting and attribution invariants, the counter
 * registry, run-manifest JSON validity and its determinism contract
 * (everything nondeterministic lives under "profile"), early output-
 * path validation, and build-info provenance.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "obs/build_info.hh"
#include "obs/counters.hh"
#include "obs/profiler.hh"
#include "obs/report.hh"
#include "util/options.hh"
#include "util/serialize.hh"
#include "workload/mapping.hh"

#include "json_checker.hh"

namespace locsim {
namespace obs {
namespace {

using locsim::testing::JsonChecker;

std::vector<std::uint8_t>
measurementBytes(const machine::Measurement &m)
{
    util::Serializer s;
    machine::saveMeasurement(s, m);
    return s.takeBuffer();
}

/**
 * Run one small machine, optionally profiled, and return the
 * serialized measurement plus a post-run checkpoint.
 */
struct RunArtifacts
{
    std::vector<std::uint8_t> measurement;
    std::vector<std::uint8_t> checkpoint;
};

RunArtifacts
runSmallMachine(Profiler *profiler, int shards)
{
    machine::MachineConfig config;
    config.contexts = 2;
    config.shards = shards;
    config.profiler = profiler;
    machine::Machine machine(config,
                             workload::Mapping::random(64, 7));
    RunArtifacts out;
    out.measurement = measurementBytes(machine.run(500, 1500));
    out.checkpoint = machine.saveCheckpoint();
    return out;
}

TEST(Profiler, ProfiledRunIsByteIdenticalToUnprofiled)
{
    const RunArtifacts plain = runSmallMachine(nullptr, 1);
    Profiler profiler(1, 1);
    const RunArtifacts profiled = runSmallMachine(&profiler, 1);
    EXPECT_EQ(plain.measurement, profiled.measurement);
    EXPECT_EQ(plain.checkpoint, profiled.checkpoint);
    // And the profiler actually saw the run.
    EXPECT_GT(profiler.totals().totalNs(), 0u);
}

TEST(Profiler, ShardedProfiledRunMatchesSequential)
{
    const RunArtifacts sequential = runSmallMachine(nullptr, 1);
    Profiler profiler(4, 1);
    const RunArtifacts sharded = runSmallMachine(&profiler, 4);
    EXPECT_EQ(sequential.measurement, sharded.measurement);
    // Barrier waits only exist under lockstep; every shard arrives.
    const auto barrier = static_cast<std::size_t>(Phase::BarrierWait);
    for (int s = 0; s < 4; ++s) {
        EXPECT_GT(profiler.shardTotals(s).count[barrier], 0u)
            << "shard " << s << " never hit the lockstep barrier";
    }
}

TEST(Profiler, NestingChildrenDoNotExceedEngineDispatch)
{
    Profiler profiler(1, 1);
    (void)runSmallMachine(&profiler, 1);
    const PhaseTotals t = profiler.totals();
    const auto ns = [&](Phase p) {
        return t.ns[static_cast<std::size_t>(p)];
    };
    // EngineDispatch spans the clocked scan that dispatches the
    // router and coherence ticks, so it is inclusive of both.
    EXPECT_GE(ns(Phase::EngineDispatch),
              ns(Phase::RouterScan) + ns(Phase::Coherence));
    EXPECT_GT(ns(Phase::EngineDispatch), 0u);
    EXPECT_GT(ns(Phase::RouterScan), 0u);
}

TEST(Profiler, CheckpointPhasesAttributedToSaveRestore)
{
    Profiler profiler(1, 1);
    machine::MachineConfig config;
    config.profiler = &profiler;
    const workload::Mapping mapping = workload::Mapping::random(64, 7);
    machine::Machine machine(config, mapping);
    machine.advance(200);
    const auto bytes = machine.saveCheckpoint();
    // Restoring requires a fresh machine; profile it separately.
    machine::Machine restored(config, mapping);
    restored.restoreCheckpoint(bytes);
    const PhaseTotals t = profiler.totals();
    EXPECT_EQ(t.count[static_cast<std::size_t>(Phase::CheckpointSave)],
              1u);
    EXPECT_EQ(
        t.count[static_cast<std::size_t>(Phase::CheckpointRestore)],
        1u);
}

TEST(Profiler, SlotIndicesClampIntoGrid)
{
    Profiler profiler(2, 3);
    EXPECT_EQ(&profiler.slot(-1, -5), &profiler.slot(0, 0));
    EXPECT_EQ(&profiler.slot(99, 99), &profiler.slot(1, 2));
    EXPECT_EQ(&profiler.hostSlot(), &profiler.slot(0, 0));
}

TEST(Profiler, ScopedPhaseOverNullSlotRecordsNothing)
{
    Profiler profiler(1, 1);
    {
        ScopedPhase scope(nullptr, Phase::RouterScan);
    }
    EXPECT_EQ(profiler.totals().totalNs(), 0u);
    {
        ScopedPhase scope(&profiler.slot(0, 0), Phase::RouterScan);
    }
    EXPECT_EQ(profiler.totals()
                  .count[static_cast<std::size_t>(Phase::RouterScan)],
              1u);
}

TEST(Counters, AddSetSnapshotReset)
{
    CounterRegistry registry;
    registry.add("b.second", 2);
    registry.add("a.first", 1);
    registry.add("a.first", 3);
    registry.set("c.third", 10);
    registry.set("c.third", 7);
    const auto snap = registry.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].first, "a.first"); // sorted by name
    EXPECT_EQ(snap[0].second, 4u);
    EXPECT_EQ(snap[1].first, "b.second");
    EXPECT_EQ(snap[1].second, 2u);
    EXPECT_EQ(snap[2].second, 7u);
    registry.reset();
    EXPECT_TRUE(registry.snapshot().empty());
}

TEST(Counters, MachineRunPublishesFabricCounters)
{
    CounterRegistry::process().reset();
    {
        machine::MachineConfig config;
        machine::Machine machine(config,
                                 workload::Mapping::random(64, 7));
        machine.advance(500);
    }
    bool found = false;
    bool found_footprint = false;
    for (const auto &[name, value] :
         CounterRegistry::process().snapshot()) {
        if (name == "net.remote_wakes") {
            found = true;
            // Sequential execution never crosses shard boundaries.
            EXPECT_EQ(value, 0u);
        }
        if (name == "mem.bytes_per_node") {
            found_footprint = true;
            // Every node owns at least a controller and queues; a
            // zero value means the accounting broke. The upper bound
            // guards the compaction: the seed representation cost
            // ~290KB per node warm.
            EXPECT_GT(value, 1000u);
            EXPECT_LT(value, 96u * 1024u);
        }
    }
    EXPECT_TRUE(found);
    EXPECT_TRUE(found_footprint);
}

/** Render a manifest for a tiny profiled run. */
std::string
renderManifest(bool with_profiler)
{
    CounterRegistry::process().reset();
    auto profiler = std::make_unique<Profiler>(1, 1);
    (void)runSmallMachine(with_profiler ? profiler.get() : nullptr, 1);
    RunReport report("profiler_test");
    report.setArgv(std::vector<std::string>{"profiler_test",
                                            "--window", "1500"});
    report.addConfig("mapping", "random");
    report.addConfig("contexts", static_cast<long long>(2));
    report.addConfig("quick", false);
    report.addConfig("ratio", 0.5);
    report.addSimulation("random.p2", "0123abc");
    report.setCounters(CounterRegistry::process().snapshot());
    report.setProfile(with_profiler ? profiler.get() : nullptr, 1.25);
    std::ostringstream os;
    report.write(os);
    return os.str();
}

TEST(RunReport, EmitsValidJsonWithRequiredSections)
{
    for (const bool profiled : {false, true}) {
        const std::string text = renderManifest(profiled);
        EXPECT_TRUE(JsonChecker(text).valid()) << text;
        for (const char *key :
             {"\"schema\": \"locsim-run-report-v1\"", "\"tool\":",
              "\"argv\":", "\"build\":", "\"git_sha\":", "\"host\":",
              "\"config\":", "\"simulations\":", "\"counters\":",
              "\"profile\":", "\"sim.skipped_ticks\"",
              "\"net.remote_wakes\""}) {
            EXPECT_NE(text.find(key), std::string::npos)
                << "missing " << key << " in:\n"
                << text;
        }
        EXPECT_NE(
            text.find(profiled ? "\"enabled\": true"
                               : "\"enabled\": false"),
            std::string::npos);
        if (profiled) {
            for (const char *key :
                 {"\"phases\":", "\"shards\":", "\"lanes\":",
                  "\"imbalance\":", "\"barrier_wait_share\":",
                  "\"engine_dispatch\"", "\"router_scan\""}) {
                EXPECT_NE(text.find(key), std::string::npos)
                    << "missing " << key;
            }
        }
    }
}

/**
 * Remove the top-level "profile" object (string-aware balanced-brace
 * scan) — the remainder is the manifest's deterministic core.
 */
std::string
stripProfile(const std::string &text)
{
    const std::size_t start = text.find("\"profile\":");
    if (start == std::string::npos)
        return text;
    std::size_t i = text.find('{', start);
    if (i == std::string::npos)
        return text;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{')
            ++depth;
        else if (c == '}' && --depth == 0)
            break;
    }
    return text.substr(0, start) + text.substr(i + 1);
}

TEST(RunReport, DeterministicExceptProfileSubtree)
{
    const std::string first = renderManifest(true);
    const std::string second = renderManifest(true);
    // Wall-clock fields make full manifests differ...
    // ...but everything outside "profile" is byte-stable.
    EXPECT_EQ(stripProfile(first), stripProfile(second));
    // The strip really removed the nondeterministic fields.
    EXPECT_EQ(stripProfile(first).find("wall_seconds"),
              std::string::npos);
}

TEST(Options, MissingParentDirectoryIsFatalEarly)
{
    EXPECT_EXIT(util::requireWritableParent(
                    "/nonexistent-locsim-dir/report.json",
                    "--run-report"),
                ::testing::ExitedWithCode(1),
                "parent directory");
    // A bare filename (current directory) is fine.
    util::requireWritableParent("report.json", "--run-report");
}

TEST(BuildInfo, FieldsAreNonEmpty)
{
    EXPECT_FALSE(std::string(buildGitSha()).empty());
    EXPECT_FALSE(std::string(buildCompiler()).empty());
    EXPECT_FALSE(std::string(buildType()).empty());
    std::ostringstream os;
    printBuildInfo(os);
    EXPECT_NE(os.str().find("git_sha"), std::string::npos);
    EXPECT_NE(os.str().find("compiler"), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace locsim
