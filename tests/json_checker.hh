/**
 * @file
 * Minimal recursive-descent JSON syntax validator shared by the
 * observability tests — enough to reject malformed output (unbalanced
 * structure, bad escapes, raw control bytes, trailing garbage)
 * without a JSON library. Both the tracer and the run-report writer
 * emit ASCII-only JSON, so bytes >= 0x80 are rejected outright rather
 * than UTF-8-validated.
 */

#ifndef LOCSIM_TESTS_JSON_CHECKER_HH_
#define LOCSIM_TESTS_JSON_CHECKER_HH_

#include <cctype>
#include <cstddef>
#include <string>

namespace locsim {
namespace testing {

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            const unsigned char c =
                static_cast<unsigned char>(s_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                const char esc = s_[pos_];
                if (esc == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= s_.size() ||
                            std::isxdigit(static_cast<unsigned char>(
                                s_[pos_ + i])) == 0)
                            return false;
                    }
                    pos_ += 4;
                } else if (std::string("\"\\/bfnrt").find(esc) ==
                           std::string::npos) {
                    return false;
                }
                ++pos_;
                continue;
            }
            // Raw control bytes are invalid; bytes >= 0x80 would need
            // UTF-8 validation, so reject them outright — see the
            // file comment.
            if (c < 0x20 || c >= 0x80)
                return false;
            ++pos_;
        }
        return false;
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) !=
                    0 ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (s_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace testing
} // namespace locsim

#endif // LOCSIM_TESTS_JSON_CHECKER_HH_
