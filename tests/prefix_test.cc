/**
 * @file
 * Prefix-checkpoint cache tests.
 *
 * Three layers, matching the feature's structure:
 *
 *  - key.hh: prefixKey semantics (late-binding fields never enter the
 *    hash, behavioral fields and the clock always do) and the
 *    config-field coverage tripwire — compile-time aggregate field
 *    counts pinned against key.hh's constants, so adding a config
 *    field without deciding its cache-key status breaks the build
 *    here with instructions;
 *
 *  - PrefixPlanner: a prefix produced once serves every measurement
 *    window bit-identically, across shard counts, batch sizes, rung
 *    ladders, and corrupt stored images;
 *
 *  - bench harness: --warmup/--window validation and --quick
 *    precedence, sampled runs bypassing the prefix cache, and the
 *    run manifest's deterministic core.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <unistd.h>

#include "bench/common.hh"
#include "cache/key.hh"
#include "cache/prefix.hh"
#include "cache/store.hh"
#include "machine/batch.hh"
#include "machine/machine.hh"
#include "obs/counters.hh"
#include "obs/profiler.hh"
#include "util/serialize.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace cache {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Config-field coverage tripwire.
//
// countFields<T>() computes an aggregate's member count at compile
// time: AnyField converts to any member type, so T can be brace-
// initialized with exactly as many initializers as it has members (an
// AnyField always initializes a whole member, never elides into a
// nested aggregate). If one of the static_asserts below fires, a
// config struct gained or lost a field: decide whether the new field
// is behavioral (add it to putBehavioralConfig in key.cc, so both
// simKey and prefixKey hash it) or late-binding/execution-only (add it
// to the whitelist comment in key.hh), then update the pinned count.
// ---------------------------------------------------------------------

struct AnyField
{
    template <class T>
    constexpr operator T() const;
};

template <class T, std::size_t... I>
constexpr auto
aggregateAccepts(std::index_sequence<I...>)
    -> decltype(T{(static_cast<void>(I), AnyField{})...}, true)
{
    return true;
}

template <class T>
constexpr bool
aggregateAccepts(...)
{
    return false;
}

template <class T, std::size_t N = 0>
constexpr std::size_t
countFields()
{
    if constexpr (aggregateAccepts<T>(std::make_index_sequence<N + 1>{}))
        return countFields<T, N + 1>();
    else
        return N;
}

static_assert(countFields<machine::MachineConfig>() ==
                  kMachineConfigFields,
              "MachineConfig changed: hash the new field in "
              "cache/key.cc or whitelist it in cache/key.hh, then "
              "re-pin kMachineConfigFields");
static_assert(countFields<proc::ProcessorConfig>() ==
                  kProcessorConfigFields,
              "ProcessorConfig changed: update putBehavioralConfig "
              "in cache/key.cc and re-pin kProcessorConfigFields");
static_assert(countFields<coher::ProtocolConfig>() ==
                  kProtocolConfigFields,
              "ProtocolConfig changed: update putBehavioralConfig "
              "in cache/key.cc and re-pin kProtocolConfigFields");
static_assert(countFields<net::RouterConfig>() == kRouterConfigFields,
              "RouterConfig changed: update putBehavioralConfig "
              "in cache/key.cc and re-pin kRouterConfigFields");
static_assert(countFields<workload::TorusAppConfig>() ==
                  kTorusAppConfigFields,
              "TorusAppConfig changed: update putBehavioralConfig "
              "in cache/key.cc and re-pin kTorusAppConfigFields");
static_assert(countFields<workload::UniformAppConfig>() ==
                  kUniformAppConfigFields,
              "UniformAppConfig changed: update putBehavioralConfig "
              "in cache/key.cc and re-pin kUniformAppConfigFields");

// Sanity-check the counter itself against a known shape, so a
// compiler quirk can't silently turn the tripwire into a no-op.
struct ThreeFields
{
    int a;
    double b;
    ThreeFields *c;
};
static_assert(countFields<ThreeFields>() == 3);

TEST(FieldTripwire, CountsAreCheckedAtCompileTime)
{
    // The static_asserts above are the test; this body just records
    // their presence in the test report.
    SUCCEED();
}

// ---------------------------------------------------------------------
// Shared fixtures.
// ---------------------------------------------------------------------

machine::MachineConfig
baseConfig()
{
    machine::MachineConfig config;
    config.radix = 4;
    config.dims = 2;
    config.contexts = 2;
    return config;
}

workload::Mapping
baseMapping()
{
    return workload::Mapping::identity(16);
}

/** Unique fresh directory under the system temp dir. */
fs::path
freshDir(const std::string &tag)
{
    static std::atomic<int> serial{0};
    const fs::path dir = fs::temp_directory_path() /
                         ("locsim_prefix_test_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(serial++));
    fs::remove_all(dir);
    return dir;
}

std::vector<std::uint8_t>
measurementBytes(const machine::Measurement &m)
{
    util::Serializer s;
    machine::saveMeasurement(s, m);
    return s.takeBuffer();
}

/** Fresh-machine oracle: what an uncached run reports. */
machine::Measurement
oracleRun(const machine::MachineConfig &config,
          const workload::Mapping &mapping, std::uint64_t warmup,
          std::uint64_t window)
{
    machine::Machine machine(config, mapping);
    return machine.run(warmup, window);
}

std::size_t
countEntries(const fs::path &dir, const std::string &suffix)
{
    std::size_t n = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            ++n;
    }
    return n;
}

// ---------------------------------------------------------------------
// prefixKey semantics.
// ---------------------------------------------------------------------

TEST(PrefixKey, IsDeterministicHex)
{
    const std::string key = prefixKey(baseConfig(), baseMapping(), 500);
    EXPECT_EQ(key, prefixKey(baseConfig(), baseMapping(), 500));
    EXPECT_EQ(key.size(), 64u);
    EXPECT_EQ(key.find_first_not_of("0123456789abcdef"),
              std::string::npos);
}

/**
 * The point of the whole feature: every field that merely observes or
 * partitions execution is invisible to the prefix address, so sweep
 * points differing only in those fields share one warmup image.
 */
TEST(PrefixKey, IgnoresLateBindingFields)
{
    const std::string base =
        prefixKey(baseConfig(), baseMapping(), 500);
    {
        auto c = baseConfig();
        c.shards = 4;
        EXPECT_EQ(prefixKey(c, baseMapping(), 500), base) << "shards";
    }
    {
        auto c = baseConfig();
        c.trace.enabled = true;
        c.trace.detail = obs::TraceDetail::Flit;
        EXPECT_EQ(prefixKey(c, baseMapping(), 500), base) << "trace";
    }
    {
        auto c = baseConfig();
        c.sample_period = 25;
        EXPECT_EQ(prefixKey(c, baseMapping(), 500), base)
            << "sample_period";
    }
    {
        obs::Profiler profiler(1, 1);
        auto c = baseConfig();
        c.profiler = &profiler;
        EXPECT_EQ(prefixKey(c, baseMapping(), 500), base)
            << "profiler";
    }
    // And unlike simKey there is no window input at all: the same
    // image serves every measurement length by construction.
}

TEST(PrefixKey, ChangesWithBehavioralFieldsAndClock)
{
    const std::string base =
        prefixKey(baseConfig(), baseMapping(), 500);
    std::vector<std::string> keys;
    {
        auto c = baseConfig();
        c.contexts = 4;
        keys.push_back(prefixKey(c, baseMapping(), 500));
    }
    {
        auto c = baseConfig();
        c.protocol.mem_latency = 99;
        keys.push_back(prefixKey(c, baseMapping(), 500));
    }
    {
        auto c = baseConfig();
        c.reference_stepping = !c.reference_stepping;
        keys.push_back(prefixKey(c, baseMapping(), 500));
    }
    keys.push_back(
        prefixKey(baseConfig(), workload::Mapping::random(16, 3), 500));
    keys.push_back(prefixKey(baseConfig(), baseMapping(), 501));

    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_NE(keys[i], base) << "variant " << i;
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j])
                << "variants " << i << " and " << j;
    }
}

// ---------------------------------------------------------------------
// PrefixPlanner.
// ---------------------------------------------------------------------

TEST(PrefixPlanner, RungClocksDescendBelowWarmup)
{
    SimCache store(freshDir("rung-clocks"));
    {
        PrefixPlanner planner(store, PrefixOptions{});
        EXPECT_TRUE(planner.rungClocks(5000).empty());
    }
    PrefixPlanner planner(store, PrefixOptions{100});
    EXPECT_EQ(planner.rungClocks(350),
              (std::vector<std::uint64_t>{300, 200, 100}));
    // An exact multiple is not its own rung.
    EXPECT_EQ(planner.rungClocks(300),
              (std::vector<std::uint64_t>{200, 100}));
    EXPECT_TRUE(planner.rungClocks(100).empty());
    EXPECT_TRUE(planner.rungClocks(1).empty());
    fs::remove_all(store.dir());
}

TEST(PrefixPlanner, DistinctPrefixesCollapseDuplicates)
{
    SimCache store(freshDir("distinct"));
    PrefixPlanner planner(store, PrefixOptions{});
    const auto config_a = baseConfig();
    auto config_b = baseConfig();
    config_b.contexts = 4;
    const auto mapping = baseMapping();
    // Three windows over one warmup → one prefix; a second config →
    // a second; a differing warmup → a third.
    std::vector<PrefixPoint> points = {
        {&config_a, &mapping, 500}, {&config_a, &mapping, 500},
        {&config_a, &mapping, 500}, {&config_b, &mapping, 500},
        {&config_a, &mapping, 700},
    };
    const auto keys = planner.distinctPrefixes(points);
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], prefixKey(config_a, mapping, 500));
    EXPECT_EQ(keys[1], prefixKey(config_b, mapping, 500));
    EXPECT_EQ(keys[2], prefixKey(config_a, mapping, 700));
    fs::remove_all(store.dir());
}

/**
 * The tentpole contract end to end: the first sweep point produces
 * and stores the warmup image; every later point differing only in
 * measurement window restores it and reports a Measurement
 * bit-identical to a fresh uncached run.
 */
TEST(PrefixPlanner, OneWarmupServesEveryWindowBitIdentically)
{
    const fs::path dir = freshDir("cross-window");
    SimCache store(dir);
    PrefixPlanner planner(store, PrefixOptions{});
    const auto config = baseConfig();
    const auto mapping = baseMapping();
    constexpr std::uint64_t kWarmup = 600;

    const auto first = planner.warmMachine(config, mapping, kWarmup);
    EXPECT_EQ(measurementBytes(first->measure(300)),
              measurementBytes(oracleRun(config, mapping, kWarmup,
                                         300)));

    const auto second = planner.warmMachine(config, mapping, kWarmup);
    EXPECT_EQ(measurementBytes(second->measure(700)),
              measurementBytes(oracleRun(config, mapping, kWarmup,
                                         700)));

    const CacheStats s = store.stats();
    EXPECT_EQ(s.prefix_misses, 1u);
    EXPECT_EQ(s.prefix_stores, 1u);
    EXPECT_EQ(s.prefix_hits, 1u);
    EXPECT_EQ(countEntries(dir, ".ckpt"), 1u);
    fs::remove_all(dir);
}

/**
 * Cross-shard restore, both directions: an image produced
 * sequentially warms a 2-shard machine and vice versa, with
 * bit-identical measurements (shard-invariant checkpoints are a
 * checkpoint_test guarantee; this pins the planner path).
 */
TEST(PrefixPlanner, RestoresAcrossShardCounts)
{
    for (const auto &[produce_shards, restore_shards] :
         {std::pair<int, int>{1, 2}, std::pair<int, int>{2, 1}}) {
        const fs::path dir = freshDir("cross-shard");
        SimCache store(dir);
        PrefixPlanner planner(store, PrefixOptions{});
        const auto mapping = baseMapping();
        constexpr std::uint64_t kWarmup = 600;

        auto producer_config = baseConfig();
        producer_config.shards = produce_shards;
        planner.warmMachine(producer_config, mapping, kWarmup);

        auto restorer_config = baseConfig();
        restorer_config.shards = restore_shards;
        const auto machine =
            planner.warmMachine(restorer_config, mapping, kWarmup);
        EXPECT_EQ(measurementBytes(machine->measure(400)),
                  measurementBytes(oracleRun(baseConfig(), mapping,
                                             kWarmup, 400)))
            << produce_shards << " -> " << restore_shards
            << " shards";

        const CacheStats s = store.stats();
        EXPECT_EQ(s.prefix_stores, 1u)
            << "shard count leaked into the prefix key";
        EXPECT_EQ(s.prefix_hits, 1u);
        fs::remove_all(dir);
    }
}

/**
 * Batched restore (K = 4): lanes of one MachineBatch restored from
 * solo-produced images measure bit-identically to fresh solo runs.
 * Together with OneWarmupServesEveryWindowBitIdentically (K = 1) this
 * covers the harness's batch matrix.
 */
TEST(PrefixPlanner, BatchRestoreMatchesSoloOracles)
{
    const fs::path dir = freshDir("batch-restore");
    SimCache store(dir);
    PrefixPlanner planner(store, PrefixOptions{});
    constexpr std::uint64_t kWarmup = 600;
    constexpr std::uint64_t kWindow = 400;

    std::vector<machine::BatchLaneSpec> specs;
    for (const int contexts : {1, 2, 4}) {
        auto config = baseConfig();
        config.contexts = contexts;
        specs.push_back({config, baseMapping()});
    }
    {
        auto config = baseConfig();
        specs.push_back({config, workload::Mapping::random(16, 7)});
    }

    // Produce each lane's image solo, as a prior sweep would have.
    std::vector<std::vector<std::uint8_t>> images;
    for (const auto &spec : specs) {
        planner.warmMachine(spec.config, spec.mapping, kWarmup);
        auto image =
            planner.lookupImage(spec.config, spec.mapping, kWarmup);
        ASSERT_TRUE(image.has_value());
        images.push_back(std::move(*image));
    }

    machine::MachineBatch batch(specs);
    batch.restoreCheckpoints(images);
    const std::vector<machine::Measurement> results =
        batch.measure(kWindow);
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(measurementBytes(results[i]),
                  measurementBytes(oracleRun(specs[i].config,
                                             specs[i].mapping,
                                             kWarmup, kWindow)))
            << "lane " << i;
    }
    fs::remove_all(dir);
}

TEST(PrefixPlanner, CorruptImageIsDroppedAndRecomputed)
{
    const fs::path dir = freshDir("corrupt");
    SimCache store(dir);
    PrefixPlanner planner(store, PrefixOptions{});
    const auto config = baseConfig();
    const auto mapping = baseMapping();
    constexpr std::uint64_t kWarmup = 600;

    planner.warmMachine(config, mapping, kWarmup);
    const std::string key = prefixKey(config, mapping, kWarmup);
    {
        std::ofstream os(dir / (key + ".ckpt"),
                         std::ios::binary | std::ios::trunc);
        os << "these are not checkpoint bytes";
    }

    const auto machine = planner.warmMachine(config, mapping, kWarmup);
    EXPECT_EQ(
        measurementBytes(machine->measure(400)),
        measurementBytes(oracleRun(config, mapping, kWarmup, 400)));

    // The recompute left a good image behind.
    auto repaired = store.lookupCheckpoint(key);
    ASSERT_TRUE(repaired.has_value());
    machine::Machine check(config, mapping);
    EXPECT_NO_THROW(check.restoreCheckpoint(*repaired));
    fs::remove_all(dir);
}

/**
 * Rung ladder: with a stride, producing a 500-cycle prefix also
 * stores 200- and 400-cycle rungs; a later 700-cycle warmup restores
 * the 400 rung (never re-simulating it), materializes 600, and still
 * measures bit-identically to a fresh run.
 */
TEST(PrefixPlanner, RungLadderIsStoredAndReused)
{
    const fs::path dir = freshDir("rungs");
    SimCache store(dir);
    PrefixPlanner planner(store, PrefixOptions{200});
    const auto config = baseConfig();
    const auto mapping = baseMapping();

    const auto first = planner.warmMachine(config, mapping, 500);
    EXPECT_EQ(
        measurementBytes(first->measure(300)),
        measurementBytes(oracleRun(config, mapping, 500, 300)));
    // Rungs 200 and 400 plus the 500 boundary image.
    EXPECT_EQ(countEntries(dir, ".ckpt"), 3u);
    EXPECT_TRUE(store
                    .lookupCheckpoint(
                        prefixKey(config, mapping, 200))
                    .has_value());
    EXPECT_TRUE(store
                    .lookupCheckpoint(
                        prefixKey(config, mapping, 400))
                    .has_value());

    const auto second = planner.warmMachine(config, mapping, 700);
    EXPECT_EQ(
        measurementBytes(second->measure(300)),
        measurementBytes(oracleRun(config, mapping, 700, 300)));
    // +600 rung and the 700 boundary image.
    EXPECT_EQ(countEntries(dir, ".ckpt"), 5u);
    EXPECT_TRUE(store
                    .lookupCheckpoint(
                        prefixKey(config, mapping, 600))
                    .has_value());
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Harness integration (bench/common.hh).
// ---------------------------------------------------------------------

bench::HarnessOptions
cachedOptions(const fs::path &dir)
{
    bench::HarnessOptions options;
    options.tool = "prefix_test";
    options.argv = {"prefix_test"};
    options.start_time = std::chrono::steady_clock::now();
    options.warmup = 600;
    options.window = 400;
    options.cache_dir = dir.string();
    options.sim_cache = std::make_shared<SimCache>(dir.string());
    options.prefix_planner = std::make_shared<PrefixPlanner>(
        *options.sim_cache, PrefixOptions{});
    return options;
}

/**
 * Sampled runs bypass the prefix cache entirely (a restore would
 * silently drop the warmup's samples): prefixUsable() is false, the
 * run touches no cache entries, and both the Measurement and the
 * sampler series are byte-equal to a plain uncached run.
 */
TEST(Harness, SampledRunsBypassThePrefixCache)
{
    const fs::path dir = freshDir("sampler-bypass");
    bench::HarnessOptions options = cachedOptions(dir);
    // Warm the cache with the unsampled twin so a wrongly-keyed or
    // wrongly-gated sampled run would have something to hit.
    auto config = baseConfig();
    (void)bench::runCachedMeasurement(options, config, baseMapping());
    ASSERT_EQ(countEntries(dir, ".ckpt"), 1u);
    ASSERT_EQ(countEntries(dir, ".simcache"), 1u);

    options.obs.sample_period = 50;
    EXPECT_TRUE(options.cacheUsable() == false);
    EXPECT_FALSE(options.prefixUsable());
    config.sample_period = 50;
    const machine::Measurement via_harness =
        bench::runCachedMeasurement(options, config, baseMapping());

    machine::Machine plain(config, baseMapping());
    const machine::Measurement direct =
        plain.run(options.warmup, options.window);
    EXPECT_EQ(measurementBytes(via_harness),
              measurementBytes(direct));

    // The sampled run's series is the full-trajectory one (warmup
    // included), identical to a machine that never saw a cache.
    machine::Machine sampled_twin(config, baseMapping());
    sampled_twin.run(options.warmup, options.window);
    std::ostringstream a, b;
    ASSERT_NE(plain.sampler(), nullptr);
    plain.sampler()->writeJson(a);
    sampled_twin.sampler()->writeJson(b);
    EXPECT_EQ(a.str(), b.str());

    // And no new cache entries appeared.
    EXPECT_EQ(countEntries(dir, ".ckpt"), 1u);
    EXPECT_EQ(countEntries(dir, ".simcache"), 1u);
    fs::remove_all(dir);
}

/** stripProfile from profiler_test: drop the one wall-clock-bearing
 *  subtree, keeping the manifest's deterministic core. */
std::string
stripProfile(const std::string &text)
{
    const std::size_t start = text.find("\"profile\":");
    if (start == std::string::npos)
        return text;
    std::size_t i = text.find('{', start);
    if (i == std::string::npos)
        return text;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{')
            ++depth;
        else if (c == '}' && --depth == 0)
            break;
    }
    return text.substr(0, start) + text.substr(i + 1);
}

std::string
manifestForRun(const fs::path &cache_dir, const fs::path &report)
{
    obs::CounterRegistry::process().reset();
    bench::HarnessOptions options = cachedOptions(cache_dir);
    options.obs.run_report = report.string();
    (void)bench::runCachedMeasurement(options, baseConfig(),
                                      baseMapping());
    bench::maybeWriteRunReport(options);
    std::ifstream is(report);
    std::ostringstream text;
    text << is.rdbuf();
    return text.str();
}

/**
 * Run-manifest determinism, minus the profile subtree, on both sides
 * of the prefix cache: cold-vs-cold manifests are byte-equal, and
 * warm-vs-warm manifests (prefix restore path, prefix_hits > 0) are
 * byte-equal — so CI can diff manifests across reruns.
 */
TEST(Harness, ManifestCoreIsDeterministicColdAndWarm)
{
    const fs::path dir = freshDir("manifest");
    const fs::path report = freshDir("manifest-report");
    fs::create_directories(report);

    const std::string cold_a =
        manifestForRun(dir, report / "cold_a.json");
    const fs::path dir2 = freshDir("manifest-second");
    // Same cache_dir string must be recorded for byte-equality, so
    // rerun cold into the same path after clearing it.
    fs::remove_all(dir);
    const std::string cold_b =
        manifestForRun(dir, report / "cold_b.json");
    EXPECT_EQ(stripProfile(cold_a), stripProfile(cold_b));
    EXPECT_NE(cold_a.find("\"cache.prefix_stores\": 1"),
              std::string::npos)
        << cold_a;

    const std::string warm_a =
        manifestForRun(dir, report / "warm_a.json");
    const std::string warm_b =
        manifestForRun(dir, report / "warm_b.json");
    EXPECT_EQ(stripProfile(warm_a), stripProfile(warm_b));
    // Warm runs hit the result cache before the prefix cache ever
    // gets probed, so prefix counters are zero and result hits one.
    EXPECT_NE(warm_a.find("\"cache.hits\": 1"), std::string::npos)
        << warm_a;
    EXPECT_NE(warm_a.find("\"prefix_cache_enabled\": true"),
              std::string::npos);

    fs::remove_all(dir);
    fs::remove_all(dir2);
    fs::remove_all(report);
}

/** A run that misses the result cache but hits the prefix cache
 *  records prefix_hits in its manifest (the CI determinism assert). */
TEST(Harness, PrefixHitsAppearInManifestCounters)
{
    const fs::path dir = freshDir("manifest-prefix-hit");
    const fs::path report = freshDir("manifest-prefix-report");
    fs::create_directories(report);

    obs::CounterRegistry::process().reset();
    bench::HarnessOptions options = cachedOptions(dir);
    (void)bench::runCachedMeasurement(options, baseConfig(),
                                      baseMapping());

    // Same warmup, new window: result-cache miss, prefix-cache hit.
    obs::CounterRegistry::process().reset();
    options.window = 800;
    options.obs.run_report = (report / "hit.json").string();
    (void)bench::runCachedMeasurement(options, baseConfig(),
                                      baseMapping());
    bench::maybeWriteRunReport(options);
    std::ifstream is(options.obs.run_report);
    std::ostringstream text;
    text << is.rdbuf();
    EXPECT_NE(text.str().find("\"cache.prefix_hits\": 1"),
              std::string::npos)
        << text.str();

    fs::remove_all(dir);
    fs::remove_all(report);
}

// ---------------------------------------------------------------------
// Option validation (satellite: fatal --warmup/--window checks and
// --quick precedence).
// ---------------------------------------------------------------------

bench::HarnessOptions
parseArgs(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prefix_test");
    return bench::parseHarnessOptions(static_cast<int>(argv.size()),
                                      argv.data(), "prefix_test",
                                      "test harness");
}

TEST(Options, ZeroOrNegativeCycleBudgetsAreFatalEarly)
{
    EXPECT_EXIT(parseArgs({"--warmup", "0"}),
                ::testing::ExitedWithCode(1), "--warmup");
    EXPECT_EXIT(parseArgs({"--warmup", "-3"}),
                ::testing::ExitedWithCode(1), "--warmup");
    EXPECT_EXIT(parseArgs({"--window", "0"}),
                ::testing::ExitedWithCode(1), "--window");
    EXPECT_EXIT(parseArgs({"--window", "-20000"}),
                ::testing::ExitedWithCode(1), "--window");
    EXPECT_EXIT(parseArgs({"--quick", "--window", "0"}),
                ::testing::ExitedWithCode(1), "--window");
    EXPECT_EXIT(parseArgs({"--prefix-rung-stride", "0"}),
                ::testing::ExitedWithCode(1), "--prefix-rung-stride");
    EXPECT_EXIT(parseArgs({"--prefix-rung-stride", "-5"}),
                ::testing::ExitedWithCode(1), "--prefix-rung-stride");
}

TEST(Options, ExplicitBudgetsWinOverQuick)
{
    {
        const auto options = parseArgs({"--quick"});
        EXPECT_EQ(options.warmup, 2000u);
        EXPECT_EQ(options.window, 6000u);
    }
    {
        const auto options =
            parseArgs({"--quick", "--warmup", "3000"});
        EXPECT_EQ(options.warmup, 3000u) << "--quick overwrote an "
                                            "explicit --warmup";
        EXPECT_EQ(options.window, 6000u);
    }
    {
        const auto options =
            parseArgs({"--quick", "--window", "9000"});
        EXPECT_EQ(options.warmup, 2000u);
        EXPECT_EQ(options.window, 9000u) << "--quick overwrote an "
                                            "explicit --window";
    }
    {
        const auto options = parseArgs(
            {"--quick", "--warmup", "3000", "--window", "9000"});
        EXPECT_EQ(options.warmup, 3000u);
        EXPECT_EQ(options.window, 9000u);
    }
}

TEST(Options, NoPrefixCacheDisablesThePlanner)
{
    const fs::path dir = freshDir("flag-gate");
    const std::string dir_arg = dir.string();
    {
        const auto options =
            parseArgs({"--cache-dir", dir_arg.c_str()});
        EXPECT_NE(options.sim_cache, nullptr);
        EXPECT_NE(options.prefix_planner, nullptr)
            << "prefix cache should default on with --cache-dir";
        EXPECT_TRUE(options.prefixUsable());
    }
    {
        const auto options = parseArgs(
            {"--cache-dir", dir_arg.c_str(), "--no-prefix-cache"});
        EXPECT_NE(options.sim_cache, nullptr);
        EXPECT_EQ(options.prefix_planner, nullptr);
        EXPECT_FALSE(options.prefixUsable());
    }
    {
        const auto options = parseArgs({});
        EXPECT_EQ(options.sim_cache, nullptr);
        EXPECT_EQ(options.prefix_planner, nullptr);
    }
    fs::remove_all(dir);
}

} // namespace
} // namespace cache
} // namespace locsim
