/**
 * @file
 * Checkpoint/restore tests: saving a machine mid-run and restoring it
 * into a fresh machine must be invisible — extending the restored run
 * produces bit-for-bit the same measurements as never having stopped.
 * This is the property that lets the simulation cache extend a cached
 * run instead of recomputing it from cycle zero.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "machine/machine.hh"
#include "util/serialize.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace machine {
namespace {

MachineConfig
smallConfig()
{
    MachineConfig config;
    config.radix = 4;
    config.dims = 2; // 16 nodes
    return config;
}

workload::Mapping
identityMapping(const MachineConfig &config)
{
    std::uint32_t n = 1;
    for (int d = 0; d < config.dims; ++d)
        n *= static_cast<std::uint32_t>(config.radix);
    return workload::Mapping::identity(n);
}

/** Field-by-field bitwise comparison of two measurements via their
 *  serialized images (doubles compare by bit pattern, so NaN-safe and
 *  strict). */
::testing::AssertionResult
bitIdentical(const Measurement &a, const Measurement &b)
{
    util::Serializer sa, sb;
    saveMeasurement(sa, a);
    saveMeasurement(sb, b);
    if (sa.buffer() == sb.buffer())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "measurements differ: transactions " << a.transactions
           << " vs " << b.transactions << ", messages " << a.messages
           << " vs " << b.messages << ", txn_latency "
           << a.txn_latency << " vs " << b.txn_latency
           << ", iterations " << a.iterations << " vs "
           << b.iterations;
}

/**
 * The core property, parameterized over the machine configuration:
 *
 *   D (oracle):  advance(pre); measure(w); Md2 = measure(w)
 *   E (saver):   advance(pre); measure(w); save checkpoint
 *   F (resumer): fresh machine; restore; Mf = measure(w)
 *
 * Mf must equal Md2 bit for bit. The odd pre/window lengths land the
 * save point mid-transaction, with flits in router buffers and
 * completions pending, so the full state actually round-trips.
 */
void
expectRestoreExtendsBitIdentically(const MachineConfig &config,
                                   std::uint64_t pre,
                                   std::uint64_t window)
{
    const workload::Mapping mapping = identityMapping(config);

    Machine oracle(config, mapping);
    oracle.advance(pre);
    oracle.measure(window);
    const Measurement expected = oracle.measure(window);

    Machine saver(config, mapping);
    saver.advance(pre);
    saver.measure(window);
    const std::vector<std::uint8_t> image = saver.saveCheckpoint();

    Machine resumer(config, mapping);
    resumer.restoreCheckpoint(image);
    const Measurement resumed = resumer.measure(window);

    EXPECT_TRUE(bitIdentical(resumed, expected));
    EXPECT_EQ(resumed.violations, 0u);
}

TEST(Checkpoint, RestoreThenExtendMatchesStraightRun)
{
    expectRestoreExtendsBitIdentically(smallConfig(), 501, 1503);
}

TEST(Checkpoint, MultithreadedMachineRoundTrips)
{
    MachineConfig config = smallConfig();
    config.contexts = 2;
    expectRestoreExtendsBitIdentically(config, 777, 1111);
}

TEST(Checkpoint, UniformWorkloadRngRoundTrips)
{
    // The uniform-random workload carries live RNG streams; a restore
    // that loses or resets them diverges immediately.
    MachineConfig config = smallConfig();
    config.workload = WorkloadKind::UniformRandom;
    config.uniform_app.seed = 99;
    expectRestoreExtendsBitIdentically(config, 601, 1201);
}

TEST(Checkpoint, ReferenceSteppingRoundTrips)
{
    MachineConfig config = smallConfig();
    config.reference_stepping = true;
    expectRestoreExtendsBitIdentically(config, 333, 901);
}

TEST(Checkpoint, PrefetchingWorkloadRoundTrips)
{
    // Prefetches create reply-less transactions (wants_reply ==
    // false) whose MSHRs must survive the round trip.
    MachineConfig config = smallConfig();
    config.app.prefetch_depth = 2;
    expectRestoreExtendsBitIdentically(config, 455, 1357);
}

/**
 * Checkpoints are shard-count invariant in both directions: the image
 * a 4-shard machine writes mid-run is byte-identical to the image the
 * sequential machine writes at the same tick, and restoring it into
 * machines with other shard counts then extending matches an
 * uninterrupted sequential run bit for bit. The odd save point lands
 * mid-transaction, so cross-shard flits are in flight and migrating
 * message records may be sitting in the parity mailboxes.
 */
TEST(Checkpoint, ShardedImageRestoresAtAnyShardCount)
{
    MachineConfig config = smallConfig();
    config.contexts = 2;
    config.shards = 1;
    const workload::Mapping mapping = identityMapping(config);

    Machine oracle(config, mapping); // sequential, uninterrupted
    oracle.advance(701);
    const Measurement expected = oracle.measure(1203);

    Machine seq_saver(config, mapping);
    seq_saver.advance(701);
    const std::vector<std::uint8_t> seq_image =
        seq_saver.saveCheckpoint();

    MachineConfig sharded = config;
    sharded.shards = 4;
    Machine saver(sharded, mapping);
    saver.advance(701);
    const std::vector<std::uint8_t> image = saver.saveCheckpoint();
    EXPECT_EQ(image, seq_image)
        << "4-shard image differs from the sequential image";

    for (int restore_shards : {1, 2}) {
        MachineConfig restore_config = config;
        restore_config.shards = restore_shards;
        Machine resumer(restore_config, mapping);
        resumer.restoreCheckpoint(image);
        const Measurement resumed = resumer.measure(1203);
        EXPECT_TRUE(bitIdentical(resumed, expected))
            << "restored at " << restore_shards << " shards";
        EXPECT_EQ(resumed.violations, 0u);
    }
}

TEST(Checkpoint, SaveLoadSaveIsByteStable)
{
    // Restoring and immediately re-saving must reproduce the image
    // byte for byte: nothing in the state is lost, reordered, or
    // regenerated differently.
    const MachineConfig config = smallConfig();
    const workload::Mapping mapping = identityMapping(config);

    Machine first(config, mapping);
    first.advance(1234);
    const std::vector<std::uint8_t> image = first.saveCheckpoint();

    Machine second(config, mapping);
    second.restoreCheckpoint(image);
    EXPECT_EQ(second.saveCheckpoint(), image);
}

TEST(Checkpoint, RestoredMachineContinuesCoherently)
{
    // Beyond statistics: the restored machine keeps satisfying the
    // workload's built-in coherence check over a long extension.
    const MachineConfig config = smallConfig();
    const workload::Mapping mapping = identityMapping(config);

    Machine saver(config, mapping);
    saver.advance(2000);
    const std::vector<std::uint8_t> image = saver.saveCheckpoint();

    Machine resumer(config, mapping);
    resumer.restoreCheckpoint(image);
    const Measurement m = resumer.measure(5000);
    EXPECT_EQ(m.violations, 0u);
    EXPECT_GT(m.transactions, 0u);
    EXPECT_GT(m.iterations, 0u);
}

TEST(Checkpoint, RejectsCorruptImages)
{
    const MachineConfig config = smallConfig();
    const workload::Mapping mapping = identityMapping(config);

    Machine saver(config, mapping);
    saver.advance(100);
    std::vector<std::uint8_t> image = saver.saveCheckpoint();

    {
        Machine fresh(config, mapping);
        std::vector<std::uint8_t> truncated(
            image.begin(), image.begin() + image.size() / 2);
        EXPECT_THROW(fresh.restoreCheckpoint(truncated),
                     std::runtime_error);
    }
    {
        Machine fresh(config, mapping);
        std::vector<std::uint8_t> bad_magic = image;
        bad_magic[0] ^= 0xff;
        EXPECT_THROW(fresh.restoreCheckpoint(bad_magic),
                     std::runtime_error);
    }
    {
        Machine fresh(config, mapping);
        std::vector<std::uint8_t> trailing = image;
        trailing.push_back(0);
        EXPECT_THROW(fresh.restoreCheckpoint(trailing),
                     std::runtime_error);
    }
}

TEST(Measurement, SerializationRoundTripsBitExactly)
{
    Measurement m;
    m.window = 4096.0;
    m.transactions = 123456;
    m.messages = 654321;
    m.txn_latency = 1.0 / 3.0; // not exactly representable in decimal
    m.message_latency = 17.25;
    m.utilization = 0.087312991;
    m.hit_rate = 0.999999999999;
    m.iterations = 42;
    m.attribution[1].count = 7;
    m.attribution[1].contention = 3.5e-17;

    util::Serializer s;
    saveMeasurement(s, m);
    util::Deserializer d(s.buffer());
    const Measurement out = loadMeasurement(d);
    EXPECT_TRUE(d.atEnd());
    EXPECT_TRUE(bitIdentical(out, m));
}

} // namespace
} // namespace machine
} // namespace locsim
