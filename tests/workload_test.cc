/**
 * @file
 * Workload tests: mapping family properties and the synthetic
 * application's op stream.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "net/topology.hh"
#include "workload/mapping.hh"
#include "workload/torus_app.hh"
#include "workload/trace_app.hh"
#include "workload/uniform_app.hh"

namespace locsim {
namespace workload {
namespace {

TEST(Mapping, IdentityDistanceIsOne)
{
    net::TorusTopology topo(8, 2);
    const Mapping mapping = Mapping::identity(64);
    EXPECT_DOUBLE_EQ(mapping.averageNeighborDistance(topo), 1.0);
    EXPECT_EQ(mapping.node(17), 17u);
    EXPECT_EQ(mapping.threadAt(17), 17u);
}

TEST(Mapping, RandomIsBijective)
{
    const Mapping mapping = Mapping::random(64, 99);
    std::vector<bool> seen(64, false);
    for (std::uint32_t t = 0; t < 64; ++t) {
        const sim::NodeId node = mapping.node(t);
        EXPECT_FALSE(seen[node]);
        seen[node] = true;
        EXPECT_EQ(mapping.threadAt(node), t);
    }
}

TEST(Mapping, RandomDistanceNearEquation17)
{
    net::TorusTopology topo(8, 2);
    // Averaged over several seeds, the random mapping's neighbour
    // distance approaches the Equation 17 expectation (4.06).
    double total = 0.0;
    const int seeds = 20;
    for (int s = 0; s < seeds; ++s) {
        total += Mapping::random(64, 1000 + s)
                     .averageNeighborDistance(topo);
    }
    EXPECT_NEAR(total / seeds, net::randomMappingDistance(8, 2), 0.35);
}

TEST(Mapping, Linear2dKnownDistances)
{
    net::TorusTopology topo(8, 2);
    // identity
    EXPECT_DOUBLE_EQ(
        Mapping::linear2d(topo, 1, 0, 0, 1)
            .averageNeighborDistance(topo),
        1.0);
    // shear by 1: x-nbrs at 1, y-nbrs at 2 -> 1.5
    EXPECT_DOUBLE_EQ(
        Mapping::linear2d(topo, 1, 1, 0, 1)
            .averageNeighborDistance(topo),
        1.5);
    // dilate x by 3: x-nbrs at 3, y-nbrs at 1 -> 2
    EXPECT_DOUBLE_EQ(
        Mapping::linear2d(topo, 3, 0, 0, 1)
            .averageNeighborDistance(topo),
        2.0);
    // dilate both by 3 -> 3
    EXPECT_DOUBLE_EQ(
        Mapping::linear2d(topo, 3, 0, 0, 3)
            .averageNeighborDistance(topo),
        3.0);
    // cross shear by 4: both neighbour kinds at 5 -> 5
    EXPECT_DOUBLE_EQ(
        Mapping::linear2d(topo, 1, 4, 4, 1)
            .averageNeighborDistance(topo),
        5.0);
}

TEST(Mapping, ExperimentFamilySpansOneToSix)
{
    net::TorusTopology topo(8, 2);
    const auto family = experimentMappings(topo);
    ASSERT_EQ(family.size(), 9u); // paper: nine mappings
    EXPECT_DOUBLE_EQ(family.front().avg_distance, 1.0);
    EXPECT_GE(family.back().avg_distance, 5.4);
    for (std::size_t i = 1; i < family.size(); ++i) {
        EXPECT_GE(family[i].avg_distance,
                  family[i - 1].avg_distance); // sorted
    }
    // Every mapping's recorded distance matches a recomputation.
    for (const auto &named : family) {
        EXPECT_DOUBLE_EQ(
            named.mapping.averageNeighborDistance(topo),
            named.avg_distance)
            << named.name;
    }
}

TEST(StateWordAddr, HomedAtTheThreadsNode)
{
    const Mapping mapping = Mapping::random(64, 5);
    for (std::uint32_t t : {0u, 7u, 33u, 63u}) {
        for (std::uint32_t j : {0u, 3u}) {
            const coher::Addr addr = stateWordAddr(mapping, j, t);
            EXPECT_EQ(coher::homeOf(addr), mapping.node(t));
        }
    }
}

TEST(StateWordAddr, DistinctLinesAcrossInstancesAndThreads)
{
    const Mapping mapping = Mapping::identity(64);
    std::set<coher::Addr> seen;
    for (std::uint32_t t = 0; t < 64; ++t) {
        for (std::uint32_t j = 0; j < 4; ++j) {
            const coher::Addr addr = stateWordAddr(mapping, j, t);
            EXPECT_TRUE(seen.insert(coher::lineOf(addr)).second)
                << "line aliasing at t=" << t << " j=" << j;
        }
    }
}

TEST(TorusApp, OpSequenceIsLoadsThenStore)
{
    net::TorusTopology topo(8, 2);
    const Mapping mapping = Mapping::identity(64);
    TorusAppConfig config;
    config.compute_cycles = 8;
    TorusNeighborProgram program(topo, mapping, 0, 9, config);

    proc::Op op = program.start();
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(op.kind, proc::Op::Kind::Load) << "op " << i;
        EXPECT_EQ(op.compute_cycles, 8u);
        EXPECT_NE(coher::homeOf(op.addr), 9u)
            << "neighbour loads are remote under identity";
        op = program.next((1ull << 16)); // pretend value
    }
    EXPECT_EQ(op.kind, proc::Op::Kind::Store);
    EXPECT_EQ(coher::homeOf(op.addr), 9u) << "own word is local";
    EXPECT_EQ(program.iterations(), 0u);
    op = program.next(op.store_value);
    EXPECT_EQ(program.iterations(), 1u);
    EXPECT_EQ(op.kind, proc::Op::Kind::Load);
}

TEST(TorusApp, StoreValueEncodesIterationAndThread)
{
    net::TorusTopology topo(8, 2);
    const Mapping mapping = Mapping::identity(64);
    TorusNeighborProgram program(topo, mapping, 0, 42, {});
    proc::Op op = program.start();
    while (op.kind != proc::Op::Kind::Store)
        op = program.next(0);
    EXPECT_EQ(op.store_value & 0xffff, 42u);
    EXPECT_EQ(op.store_value >> 16, 1u);
}

TEST(TorusApp, ViolationDetectorFiresOnRegression)
{
    net::TorusTopology topo(8, 2);
    const Mapping mapping = Mapping::identity(64);
    TorusNeighborProgram program(topo, mapping, 0, 0, {});
    program.start();
    // First neighbour read returns counter 5, later counter 3:
    // a coherence regression the program must flag.
    program.next(5ull << 16);
    // Complete the iteration (3 more loads + the store)...
    program.next(0);
    program.next(0);
    program.next(0);
    program.next(0); // store done
    EXPECT_EQ(program.violations(), 0u);
    program.next(3ull << 16); // first neighbour again, counter went back
    EXPECT_EQ(program.violations(), 1u);
}

TEST(UniformApp, NeverTargetsSelfAndMixesLoadsStores)
{
    net::TorusTopology topo(8, 2);
    const Mapping mapping = Mapping::identity(64);
    UniformAppConfig config;
    config.loads_per_store = 4;
    config.seed = 9;
    UniformRemoteProgram program(topo, mapping, 0, 21, config);

    int loads = 0, stores = 0;
    proc::Op op = program.start();
    for (int i = 0; i < 500; ++i) {
        if (op.kind == proc::Op::Kind::Load) {
            ++loads;
            EXPECT_NE(coher::homeOf(op.addr), mapping.node(21))
                << "uniform loads never target the own node";
        } else {
            ++stores;
            EXPECT_EQ(op.addr, stateWordAddr(mapping, 0, 21));
        }
        op = program.next(0);
    }
    // 4 loads per store.
    EXPECT_NEAR(static_cast<double>(loads) / stores, 4.0, 0.05);
    EXPECT_EQ(program.operations(), 500u);
}

TEST(UniformApp, LoadTargetsCoverAllThreads)
{
    net::TorusTopology topo(8, 2);
    const Mapping mapping = Mapping::identity(64);
    UniformRemoteProgram program(topo, mapping, 0, 0, {});
    std::set<sim::NodeId> targets;
    proc::Op op = program.start();
    for (int i = 0; i < 3000; ++i) {
        if (op.kind == proc::Op::Kind::Load)
            targets.insert(coher::homeOf(op.addr));
        op = program.next(0);
    }
    EXPECT_EQ(targets.size(), 63u); // everyone but self
}

TEST(TorusApp, PrefetchSequenceInterleavesCorrectly)
{
    net::TorusTopology topo(8, 2);
    const Mapping mapping = Mapping::identity(64);
    TorusAppConfig config;
    config.prefetch_depth = 2;
    TorusNeighborProgram program(topo, mapping, 0, 9, config);

    // Expected per-iteration kinds: P L P L L L P S.
    const proc::Op::Kind expected[] = {
        proc::Op::Kind::Prefetch, proc::Op::Kind::Load,
        proc::Op::Kind::Prefetch, proc::Op::Kind::Load,
        proc::Op::Kind::Load,     proc::Op::Kind::Load,
        proc::Op::Kind::Prefetch, proc::Op::Kind::Store,
    };
    proc::Op op = program.start();
    for (int round = 0; round < 2; ++round) {
        for (const proc::Op::Kind kind : expected) {
            EXPECT_EQ(op.kind, kind);
            if (kind == proc::Op::Kind::Prefetch) {
                EXPECT_EQ(op.compute_cycles, 0u);
            }
            op = program.next(op.kind == proc::Op::Kind::Store
                                  ? op.store_value
                                  : 0);
        }
        EXPECT_EQ(program.iterations(),
                  static_cast<std::uint64_t>(round + 1));
    }
}

TEST(TraceApp, ParsesKindsCommentsAndBlanks)
{
    std::istringstream input(
        "# header comment\n"
        "L 3 17 8\n"
        "\n"
        "S 0 2 4   # trailing comment\n"
        "P 5 9 0\n");
    const auto ops = parseTrace(input);
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].kind, proc::Op::Kind::Load);
    EXPECT_EQ(coher::homeOf(ops[0].addr), 3u);
    EXPECT_EQ(coher::lineIndexOf(ops[0].addr), 17u);
    EXPECT_EQ(ops[0].compute_cycles, 8u);
    EXPECT_EQ(ops[1].kind, proc::Op::Kind::Store);
    EXPECT_EQ(ops[2].kind, proc::Op::Kind::Prefetch);
    EXPECT_EQ(ops[2].compute_cycles, 0u);
}

TEST(TraceApp, MalformedInputIsFatal)
{
    auto parse = [](const char *text) {
        std::istringstream input(text);
        parseTrace(input);
    };
    EXPECT_DEATH(parse("X 1 2 3\n"), "unknown op kind");
    EXPECT_DEATH(parse("L 1 2\n"), "expected");
    EXPECT_DEATH(parse("L 1 2 3 4\n"), "trailing field");
}

TEST(TraceApp, ReplayLoopsForever)
{
    std::istringstream input("L 1 0 2\nS 2 0 3\n");
    TraceProgram program(parseTrace(input));
    proc::Op op = program.start();
    EXPECT_EQ(op.kind, proc::Op::Kind::Load);
    op = program.next(0);
    EXPECT_EQ(op.kind, proc::Op::Kind::Store);
    EXPECT_EQ(program.loops(), 0u);
    op = program.next(0);
    EXPECT_EQ(op.kind, proc::Op::Kind::Load);
    EXPECT_EQ(program.loops(), 1u);
}

TEST(TraceApp, LoadTraceFileRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "/locsim_trace_test.txt";
    {
        std::ofstream out(path);
        out << "L 0 1 5\nS 1 0 6\n";
    }
    const auto ops = loadTraceFile(path);
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(coher::homeOf(ops[1].addr), 1u);
    std::remove(path.c_str());
}

TEST(TorusApp, MeshBoundaryThreadsHaveFewerNeighbors)
{
    net::TorusTopology mesh(8, 2, false);
    const Mapping mapping = Mapping::identity(64);
    // Corner thread (0,0): two neighbours instead of four.
    TorusNeighborProgram corner(mesh, mapping, 0,
                                mesh.nodeAt({0, 0}), {});
    int loads = 0;
    proc::Op op = corner.start();
    while (op.kind == proc::Op::Kind::Load) {
        ++loads;
        op = corner.next(0);
    }
    EXPECT_EQ(loads, 2);
}

} // namespace
} // namespace workload
} // namespace locsim
