/**
 * @file
 * Unit tests for the simulation kernel: channels, event queue, engine
 * clock domains, and two-phase ordering guarantees.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.hh"
#include "sim/engine.hh"
#include "sim/event_queue.hh"

namespace locsim {
namespace sim {
namespace {

TEST(Channel, PushNotVisibleUntilRotate)
{
    Channel<int> ch;
    ch.push(1);
    EXPECT_TRUE(ch.empty());
    EXPECT_EQ(ch.size(), 1u);
    ch.rotate();
    EXPECT_FALSE(ch.empty());
    EXPECT_EQ(ch.front(), 1);
    EXPECT_EQ(ch.pop(), 1);
    EXPECT_TRUE(ch.empty());
}

TEST(Channel, FifoOrderAcrossRotations)
{
    Channel<int> ch;
    ch.push(1);
    ch.push(2);
    ch.rotate();
    ch.push(3);
    ch.rotate();
    EXPECT_EQ(ch.pop(), 1);
    EXPECT_EQ(ch.pop(), 2);
    EXPECT_EQ(ch.pop(), 3);
}

TEST(Channel, CapacityEnforced)
{
    Channel<int> ch(2);
    EXPECT_TRUE(ch.canPush());
    ch.push(1);
    ch.push(2);
    EXPECT_FALSE(ch.canPush());
    ch.rotate();
    EXPECT_FALSE(ch.canPush()); // rotation does not free space
    ch.pop();
    EXPECT_TRUE(ch.canPush());
}

TEST(Channel, ClearEmptiesBothQueues)
{
    Channel<int> ch;
    ch.push(1);
    ch.rotate();
    ch.push(2);
    ch.clear();
    EXPECT_TRUE(ch.empty());
    EXPECT_EQ(ch.size(), 0u);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(2); });
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(3); });
    EXPECT_EQ(q.nextTick(), 5u);
    EXPECT_EQ(q.runUntil(15), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.runUntil(25), 1u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTick(), kTickNever);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.runUntil(7);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackCanScheduleMore)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.schedule(1, [&] { ++fired; });
        q.schedule(5, [&] { ++fired; });
    });
    EXPECT_EQ(q.runUntil(1), 2u);
    EXPECT_EQ(fired, 2);
    q.runUntil(10);
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] { ++fired; });
    q.clear();
    q.runUntil(100);
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, DuplicateTimestampsInterleavedWithOthers)
{
    // Schedule a jumbled mix of ticks with heavy duplication; firing
    // order must be (tick, scheduling order) regardless of the heap's
    // internal layout.
    EventQueue q;
    std::vector<std::pair<Tick, int>> order;
    const Tick ticks[] = {9, 3, 9, 1, 3, 9, 1, 20, 3, 9};
    for (int i = 0; i < 10; ++i)
        q.schedule(ticks[i],
                   [&order, t = ticks[i], i] {
                       order.push_back({t, i});
                   });
    q.runUntil(30);
    const std::vector<std::pair<Tick, int>> expected = {
        {1, 3}, {1, 6}, {3, 1}, {3, 4}, {3, 8},
        {9, 0}, {9, 2}, {9, 5}, {9, 9}, {20, 7}};
    EXPECT_EQ(order, expected);
}

TEST(EventQueue, EqualKeyPopOrderStableAtScale)
{
    // Enough same-tick events to force many sift-down paths through
    // the binary heap; the sequence number must keep them FIFO.
    EventQueue q;
    std::vector<int> order;
    constexpr int kEvents = 1000;
    for (int i = 0; i < kEvents; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    EXPECT_EQ(q.size(), static_cast<std::size_t>(kEvents));
    EXPECT_EQ(q.runUntil(5), static_cast<std::size_t>(kEvents));
    for (int i = 0; i < kEvents; ++i)
        ASSERT_EQ(order[i], i);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder)
{
    // Drain in stages, pushing between stages — including pushing a
    // tick equal to one already pending. Later-scheduled events at an
    // equal tick fire after the earlier-scheduled ones.
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(30, [&] { order.push_back(5); });
    EXPECT_EQ(q.runUntil(10), 1u);
    q.schedule(30, [&] { order.push_back(6); });
    q.schedule(20, [&] { order.push_back(3); });
    q.schedule(20, [&] { order.push_back(4); });
    q.schedule(15, [&] { order.push_back(2); });
    EXPECT_EQ(q.runUntil(29), 3u);
    EXPECT_EQ(q.runUntil(30), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SurvivesFastForwardOverLargeGaps)
{
    // The engine's fast-forward path jumps now() straight to
    // nextTick() while the machine is quiescent; events separated by
    // huge gaps must still fire exactly once, in order, and nextTick()
    // must always report the true next deadline for the skip.
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(1, [&] { fired.push_back(1); });
    q.schedule(1'000'000, [&] { fired.push_back(1'000'000); });
    q.schedule(1'000'000'000, [&] { fired.push_back(1'000'000'000); });
    EXPECT_EQ(q.runUntil(1), 1u);
    EXPECT_EQ(q.nextTick(), 1'000'000u);
    EXPECT_EQ(q.runUntil(q.nextTick()), 1u);
    // Schedule behind the next deadline mid-flight.
    q.schedule(2'000'000, [&] { fired.push_back(2'000'000); });
    EXPECT_EQ(q.nextTick(), 2'000'000u);
    EXPECT_EQ(q.runUntil(q.nextTick()), 1u);
    EXPECT_EQ(q.runUntil(q.nextTick()), 1u);
    EXPECT_EQ(fired, (std::vector<Tick>{1, 1'000'000, 2'000'000,
                                        1'000'000'000}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PushDuringPopAtCurrentTickRunsThisSweep)
{
    // An event firing at tick t that schedules another event at t must
    // see it run within the same runUntil(t) sweep, after every event
    // scheduled before it (the two-phase engine relies on this).
    EventQueue q;
    std::vector<int> order;
    q.schedule(4, [&] {
        order.push_back(0);
        q.schedule(4, [&] { order.push_back(2); });
    });
    q.schedule(4, [&] { order.push_back(1); });
    EXPECT_EQ(q.runUntil(4), 3u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

/** Records the ticks at which it was clocked. */
class TickRecorder : public Clocked
{
  public:
    void tick(Tick now) override { ticks.push_back(now); }
    std::vector<Tick> ticks;
};

TEST(Engine, PeriodAndOffsetRespected)
{
    Engine engine;
    TickRecorder fast, slow, offset;
    engine.addClocked(&fast, 1);
    engine.addClocked(&slow, 2);
    engine.addClocked(&offset, 2, 1);
    engine.run(6);
    EXPECT_EQ(fast.ticks, (std::vector<Tick>{0, 1, 2, 3, 4, 5}));
    EXPECT_EQ(slow.ticks, (std::vector<Tick>{0, 2, 4}));
    EXPECT_EQ(offset.ticks, (std::vector<Tick>{1, 3, 5}));
    EXPECT_EQ(engine.now(), 6u);
}

TEST(Engine, RunUntilPredicate)
{
    Engine engine;
    TickRecorder counter;
    engine.addClocked(&counter, 1);
    const bool hit = engine.runUntil(
        [&] { return counter.ticks.size() >= 10; }, 100);
    EXPECT_TRUE(hit);
    EXPECT_EQ(engine.now(), 10u);
}

TEST(Engine, RunUntilTimesOut)
{
    Engine engine;
    const bool hit = engine.runUntil([] { return false; }, 50);
    EXPECT_FALSE(hit);
    EXPECT_EQ(engine.now(), 50u);
}

TEST(Engine, EventsFireBeforeComponents)
{
    Engine engine;
    std::vector<std::string> order;

    class Named : public Clocked
    {
      public:
        Named(std::vector<std::string> &log) : log_(log) {}
        void tick(Tick) override { log_.push_back("component"); }

      private:
        std::vector<std::string> &log_;
    };

    Named component(order);
    engine.addClocked(&component, 1);
    engine.events().schedule(0, [&] { order.push_back("event"); });
    engine.run(1);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "event");
    EXPECT_EQ(order[1], "component");
}

/**
 * Two components exchanging values through channels must behave
 * identically regardless of registration order — the channel latch
 * guarantees cycle t pushes are seen at cycle t+1.
 */
class PingPong : public Clocked
{
  public:
    PingPong(Channel<int> &in, Channel<int> &out) : in_(in), out_(out) {}

    void
    tick(Tick) override
    {
        while (!in_.empty())
            received.push_back(in_.pop());
        out_.push(static_cast<int>(sent++));
    }

    std::vector<int> received;
    std::size_t sent = 0;

  private:
    Channel<int> &in_;
    Channel<int> &out_;
};

TEST(Engine, ChannelLatchingMakesOrderIrrelevant)
{
    auto run = [](bool a_first) {
        Engine engine;
        Channel<int> ab, ba;
        engine.addChannel(&ab);
        engine.addChannel(&ba);
        PingPong a(ba, ab), b(ab, ba);
        if (a_first) {
            engine.addClocked(&a, 1);
            engine.addClocked(&b, 1);
        } else {
            engine.addClocked(&b, 1);
            engine.addClocked(&a, 1);
        }
        engine.run(10);
        return std::make_pair(a.received, b.received);
    };
    const auto forward = run(true);
    const auto backward = run(false);
    EXPECT_EQ(forward.first, backward.first);
    EXPECT_EQ(forward.second, backward.second);
    // Value sent at cycle t arrives at cycle t+1: 9 values seen.
    EXPECT_EQ(forward.first.size(), 9u);
    EXPECT_EQ(forward.first.front(), 0);
}

TEST(Channel, DirtyFlagTracksStagedValues)
{
    Channel<int> ch;
    EXPECT_FALSE(ch.dirty());
    ch.push(1);
    EXPECT_TRUE(ch.dirty());
    ch.push(2); // second push of the cycle keeps it dirty
    EXPECT_TRUE(ch.dirty());
    ch.rotate();
    EXPECT_FALSE(ch.dirty());
    ch.push(3);
    EXPECT_TRUE(ch.dirty());
    ch.clear();
    EXPECT_FALSE(ch.dirty());
}

TEST(Channel, DirtyListEnrolsOncePerCycle)
{
    std::vector<Rotatable *> dirty;
    Channel<int> ch;
    ch.bindDirtyList(&dirty);
    ch.push(1);
    ch.push(2);
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0], &ch);
    ch.rotate();
    dirty.clear();
    ch.push(3);
    EXPECT_EQ(dirty.size(), 1u);
}

TEST(Channel, SwapRotateKeepsFifoOrderThroughEmptyAndBusyPhases)
{
    // Exercise both rotate() paths: the O(1) swap (visible empty) and
    // the append loop (consumer left values behind), and verify the
    // global FIFO order is identical to an element-by-element move.
    Channel<int> ch;
    ch.push(1);
    ch.push(2);
    ch.rotate(); // swap path
    EXPECT_EQ(ch.pop(), 1);
    ch.push(3);
    ch.push(4);
    ch.rotate(); // append path: 2 still visible
    EXPECT_EQ(ch.pop(), 2);
    EXPECT_EQ(ch.pop(), 3);
    EXPECT_EQ(ch.pop(), 4);
    ch.push(5);
    ch.rotate(); // swap path again after full drain
    EXPECT_EQ(ch.pop(), 5);
    EXPECT_TRUE(ch.empty());
}

TEST(Engine, ReferenceModeMatchesActivityTickSchedule)
{
    auto run = [](Engine::StepMode mode) {
        Engine engine;
        engine.setStepMode(mode);
        TickRecorder fast, slow, offset, slower;
        engine.addClocked(&fast, 1);
        engine.addClocked(&slow, 2);
        engine.addClocked(&offset, 2, 1);
        engine.addClocked(&slower, 3, 2);
        engine.run(13);
        return std::vector<std::vector<Tick>>{
            fast.ticks, slow.ticks, offset.ticks, slower.ticks};
    };
    EXPECT_EQ(run(Engine::StepMode::Activity),
              run(Engine::StepMode::Reference));
}

/**
 * Does three ticks of work, sleeps via the event queue for a while,
 * then works again — the quiescence pattern the fast-forward path
 * must handle: idle ticks are credited, work ticks land on the same
 * cycles as in reference mode.
 */
class BurstWorker : public Clocked
{
  public:
    explicit BurstWorker(Engine &engine) : engine_(engine) {}

    void
    tick(Tick now) override
    {
        if (work_remaining == 0) {
            ++idle_ticks; // what an idle poll would have cost
            return;
        }
        work_ticks.push_back(now);
        if (--work_remaining == 0 && naps_left > 0) {
            --naps_left;
            engine_.events().schedule(
                now + 16, [this] { work_remaining = 3; });
        }
    }

    bool busy() const override { return work_remaining > 0; }

    void skipIdle(Tick ticks) override { idle_ticks += ticks; }

    std::vector<Tick> work_ticks;
    Tick idle_ticks = 0;
    int work_remaining = 3;
    int naps_left = 2;

  private:
    Engine &engine_;
};

TEST(Engine, FastForwardMatchesReferenceAndCreditsIdleTicks)
{
    auto run = [](Engine::StepMode mode) {
        Engine engine;
        engine.setStepMode(mode);
        BurstWorker worker(engine);
        engine.addClocked(&worker, 1);
        engine.run(64);
        EXPECT_EQ(engine.now(), 64u);
        return std::make_pair(worker.work_ticks, worker.idle_ticks);
    };
    const auto activity = run(Engine::StepMode::Activity);
    const auto reference = run(Engine::StepMode::Reference);
    EXPECT_EQ(activity.first, reference.first);
    EXPECT_EQ(activity.second, reference.second);
    // Sanity: work resumed exactly one tick after each 16-tick nap.
    EXPECT_EQ(activity.first,
              (std::vector<Tick>{0, 1, 2, 18, 19, 20, 36, 37, 38}));
}

TEST(Engine, FastForwardSkipsTicksWhileQuiescent)
{
    Engine engine;
    BurstWorker worker(engine);
    engine.addClocked(&worker, 1);
    engine.run(64);
    EXPECT_GT(engine.skippedTicks(), 0u);
    // Skipped plus stepped ticks account for the whole run.
    EXPECT_EQ(worker.work_ticks.size() + worker.idle_ticks, 64u);
}

TEST(Engine, FastForwardCreditsSlowClockCorrectly)
{
    // A period-4 offset-1 component sleeping through a skip must be
    // credited one skipIdle tick per *due* cycle, not per engine tick.
    auto run = [](Engine::StepMode mode) {
        Engine engine;
        engine.setStepMode(mode);
        BurstWorker worker(engine);
        engine.addClocked(&worker, 4, 1);
        engine.run(100);
        return std::make_pair(worker.work_ticks, worker.idle_ticks);
    };
    const auto activity = run(Engine::StepMode::Activity);
    const auto reference = run(Engine::StepMode::Reference);
    EXPECT_EQ(activity.first, reference.first);
    EXPECT_EQ(activity.second, reference.second);
}

TEST(Engine, ManualChannelPushRotatesBeforeAnySkip)
{
    // A test (or component outside the tick loop) staging a value by
    // hand must see it become visible after exactly one tick even if
    // the whole machine is otherwise quiescent.
    Engine engine;
    Channel<int> ch;
    engine.addChannel(&ch);
    BurstWorker worker(engine);
    worker.work_remaining = 0; // idle from the start
    worker.naps_left = 0;
    engine.addClocked(&worker, 1);
    ch.push(7);
    engine.run(5);
    EXPECT_EQ(engine.now(), 5u);
    ASSERT_FALSE(ch.empty());
    EXPECT_EQ(ch.front(), 7);
    EXPECT_EQ(worker.idle_ticks, 5u);
}

TEST(Engine, ChannelRegisteredDirtyRotatesOnFirstTick)
{
    // Registration after a manual push must still rotate on schedule.
    Engine engine;
    Channel<int> ch;
    ch.push(3);
    engine.addChannel(&ch);
    engine.run(1);
    ASSERT_FALSE(ch.empty());
    EXPECT_EQ(ch.front(), 3);
}

} // namespace
} // namespace sim
} // namespace locsim
