/**
 * @file
 * Tests for the parallel experiment runner: result ordering,
 * exception propagation, and — the property the harnesses rely on —
 * thread-count-independent, bit-identical simulation sweeps.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "net/network.hh"
#include "net/traffic.hh"
#include "runner/runner.hh"
#include "sim/engine.hh"
#include "util/random.hh"

namespace locsim {
namespace runner {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitRethrowsJobException)
{
    ThreadPool pool(2);
    for (int i = 0; i < 4; ++i)
        pool.submit([] {});
    pool.submit([] { throw std::runtime_error("job failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The pool stays usable after an error.
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ReusableAcrossWaves)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int wave = 0; wave < 3; ++wave) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
    }
    EXPECT_EQ(count.load(), 30);
}

TEST(ThreadPool, FailsFastAfterFirstException)
{
    // One worker makes execution order deterministic: job 0 throws,
    // so jobs 1..N must be drained without running.
    ThreadPool pool(1);
    std::atomic<int> executed{0};
    pool.submit([] { throw std::runtime_error("first job failed"); });
    for (int i = 0; i < 50; ++i)
        pool.submit([&executed] { ++executed; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(executed.load(), 0);
    // The pool recovers for the next wave.
    pool.submit([&executed] { ++executed; });
    pool.wait();
    EXPECT_EQ(executed.load(), 1);
}

TEST(ParallelRegion, EveryLaneRunsOnceAndCanSynchronize)
{
    ThreadPool pool(3);
    // Lanes wait on each other through an atomic rendezvous: this
    // deadlocks unless all four run concurrently (lane 0 on the
    // caller, lanes 1-3 on the pool's workers).
    std::atomic<int> arrived{0};
    std::vector<int> calls(4, 0);
    pool.parallelRegion(4, [&](int lane) {
        ++calls[static_cast<std::size_t>(lane)];
        ++arrived;
        while (arrived.load() < 4) {
            // spin: released once the last lane arrives
        }
    });
    EXPECT_EQ(calls, std::vector<int>({1, 1, 1, 1}));
    // The pool is reusable afterwards.
    pool.parallelRegion(2, [&](int lane) {
        ++calls[static_cast<std::size_t>(lane)];
    });
    EXPECT_EQ(calls, std::vector<int>({2, 2, 1, 1}));
}

TEST(ParallelRegion, RethrowsLaneExceptions)
{
    ThreadPool pool(2);
    // From a worker lane.
    EXPECT_THROW(pool.parallelRegion(
                     2,
                     [](int lane) {
                         if (lane == 1)
                             throw std::runtime_error("worker lane");
                     }),
                 std::runtime_error);
    // From the caller's lane.
    EXPECT_THROW(pool.parallelRegion(
                     2,
                     [](int lane) {
                         if (lane == 0)
                             throw std::runtime_error("caller lane");
                     }),
                 std::runtime_error);
}

TEST(ParallelRegion, RejectsMoreLanesThanWorkersCanCarry)
{
    ThreadPool pool(2);
    // 4 lanes need 3 workers (lane 0 rides the caller); only 2 exist,
    // and lanes that synchronize would deadlock — refuse up front.
    EXPECT_THROW(pool.parallelRegion(4, [](int) {}),
                 std::runtime_error);
    // 3 lanes fit exactly; 0 lanes is a no-op.
    pool.parallelRegion(3, [](int) {});
    pool.parallelRegion(0, [](int) { FAIL() << "no lanes to run"; });
}

TEST(ParallelMap, ResultsIndexedByInput)
{
    const auto results = parallelMap(
        64, [](std::size_t i) { return i * i; }, 4);
    ASSERT_EQ(results.size(), 64u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(ParallelMap, ZeroJobsIsFine)
{
    const auto results =
        parallelMap(0, [](std::size_t) { return 1; }, 2);
    EXPECT_TRUE(results.empty());
}

TEST(ParallelForEach, CoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(50);
    parallelForEach(
        hits.size(), [&](std::size_t i) { ++hits[i]; }, 4);
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

/**
 * The contract the harnesses depend on: a sweep of independent
 * simulations, each seeded from its index, produces bit-identical
 * results whatever the worker count (1 degenerates to the old
 * sequential loop).
 */
TEST(ParallelMap, SimulationSweepIdenticalForAnyThreadCount)
{
    auto sweep = [](int threads) {
        return parallelMap(
            6,
            [](std::size_t i) {
                sim::Engine engine;
                net::NetworkConfig config;
                config.radix = 4;
                config.dims = 2;
                net::Network network(engine, config);
                engine.addClocked(&network, 1);
                net::TrafficConfig tc;
                tc.injection_rate = 0.01 + 0.01 * static_cast<double>(i);
                tc.seed = 1000 + i; // per-run seed from the index
                net::TrafficGenerator gen(network, tc);
                engine.addClocked(&gen, 1);
                engine.run(2000);
                return std::make_tuple(
                    gen.generated(), gen.received(),
                    network.stats().messages_delivered,
                    network.stats().latency.sum(),
                    network.channelUtilization());
            },
            threads);
    };
    const auto sequential = sweep(1);
    EXPECT_EQ(sweep(2), sequential);
    EXPECT_EQ(sweep(8), sequential);
}

/**
 * batchMap chunking is size-agnostic: non-power-of-two batch sizes
 * split each key group into runs of at most `batch` in index order,
 * with one short remainder chunk — no padding, no dropped cells, and
 * results still land in their original index slots.
 */
TEST(BatchMap, NonPowerOfTwoBatchSizesChunkExactly)
{
    for (const int batch : {3, 5, 6}) {
        std::vector<std::vector<std::size_t>> chunks;
        const auto results = batchMap(
            17, [](std::size_t) { return 0; }, batch,
            [&](const std::vector<std::size_t> &chunk) {
                chunks.push_back(chunk);
                std::vector<std::size_t> out;
                for (const std::size_t i : chunk)
                    out.push_back(i * 10);
                return out;
            },
            1);
        ASSERT_EQ(results.size(), 17u) << "batch " << batch;
        for (std::size_t i = 0; i < results.size(); ++i)
            EXPECT_EQ(results[i], i * 10) << "batch " << batch;
        // Every chunk but the last is exactly `batch` wide; the last
        // carries the remainder (17 = 5*3+2 = 3*5+2 = 2*6+5).
        const std::size_t full = 17u / static_cast<std::size_t>(batch);
        const std::size_t rem = 17u % static_cast<std::size_t>(batch);
        ASSERT_EQ(chunks.size(), full + (rem != 0 ? 1 : 0))
            << "batch " << batch;
        std::size_t next = 0;
        for (std::size_t c = 0; c < chunks.size(); ++c) {
            const std::size_t want =
                c < full ? static_cast<std::size_t>(batch) : rem;
            ASSERT_EQ(chunks[c].size(), want)
                << "chunk " << c << " at batch " << batch;
            for (const std::size_t i : chunks[c])
                EXPECT_EQ(i, next++) << "batch " << batch;
        }
    }
}

/**
 * Mixed key groups with a non-power-of-two batch: each group chunks
 * independently (a chunk never mixes shapes), group order is
 * first-seen, and the result vector is identical to the per-cell map.
 */
TEST(BatchMap, MixedKeyGroupsNeverShareAChunk)
{
    const auto keyOf = [](std::size_t i) {
        return static_cast<int>(i % 3);
    };
    std::vector<std::vector<std::size_t>> chunks;
    const auto results = batchMap(
        20, keyOf, 3,
        [&](const std::vector<std::size_t> &chunk) {
            chunks.push_back(chunk);
            std::vector<std::size_t> out;
            for (const std::size_t i : chunk)
                out.push_back(i + 100);
            return out;
        },
        1);
    ASSERT_EQ(results.size(), 20u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i + 100);
    for (const auto &chunk : chunks) {
        ASSERT_FALSE(chunk.empty());
        ASSERT_LE(chunk.size(), 3u);
        for (const std::size_t i : chunk)
            EXPECT_EQ(keyOf(i), keyOf(chunk[0]));
    }
}

} // namespace
} // namespace runner
} // namespace locsim
