/**
 * @file
 * Processor model tests: single-context stalling (Figure 1), block
 * multithreading with context switches (Figure 2), and cycle
 * accounting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coher/controller.hh"
#include "net/network.hh"
#include "proc/processor.hh"
#include "sim/engine.hh"

namespace locsim {
namespace proc {
namespace {

/** A program issuing a fixed pattern of remote loads. */
class FixedLoadProgram : public ThreadProgram
{
  public:
    FixedLoadProgram(coher::Addr addr, std::uint32_t compute)
        : addr_(addr), compute_(compute)
    {
    }

    Op
    start() override
    {
        return makeOp();
    }

    Op
    next(std::uint64_t) override
    {
        ++completed;
        return makeOp();
    }

    std::uint64_t completed = 0;

  private:
    Op
    makeOp() const
    {
        Op op;
        op.kind = Op::Kind::Load;
        op.addr = addr_;
        op.compute_cycles = compute_;
        return op;
    }

    coher::Addr addr_;
    std::uint32_t compute_;
};

/** Alternating store to force repeated coherence transactions. */
class PingStoreProgram : public ThreadProgram
{
  public:
    PingStoreProgram(coher::Addr a, coher::Addr b,
                     std::uint32_t compute)
        : a_(a), b_(b), compute_(compute)
    {
    }

    Op
    start() override
    {
        return makeOp();
    }

    Op
    next(std::uint64_t) override
    {
        ++completed;
        flip_ = !flip_;
        return makeOp();
    }

    std::uint64_t completed = 0;

  private:
    Op
    makeOp() const
    {
        Op op;
        op.kind = Op::Kind::Store;
        op.addr = flip_ ? a_ : b_;
        op.store_value = completed;
        op.compute_cycles = compute_;
        return op;
    }

    coher::Addr a_, b_;
    std::uint32_t compute_;
    bool flip_ = false;
};

/** Standalone harness so tests can build several machines. */
struct Harness
{
    void
    build(int contexts, std::vector<ThreadProgram *> programs,
          std::uint32_t switch_cycles = 11)
    {
        net::NetworkConfig nc;
        nc.radix = 2;
        nc.dims = 2;
        network = std::make_unique<net::Network>(engine, nc);
        engine.addClocked(network.get(), 1);
        coher::ProtocolConfig pc;
        // Tiny cache (4 sets) so line indices 4 apart conflict; the
        // ping-store programs below exploit this to miss every time.
        pc.cache_bytes = 4 * coher::kLineBytes;
        for (sim::NodeId n = 0; n < 4; ++n) {
            controllers.push_back(
                std::make_unique<coher::CacheController>(
                    engine, *network, n, pc, 2));
            engine.addClocked(controllers.back().get(), 2);
        }
        ProcessorConfig config;
        config.contexts = contexts;
        config.switch_cycles = switch_cycles;
        processor = std::make_unique<Processor>(*controllers[0],
                                                config, programs);
        engine.addClocked(processor.get(), 2);
    }

    sim::Engine engine;
    std::unique_ptr<net::Network> network;
    std::vector<std::unique_ptr<coher::CacheController>> controllers;
    std::unique_ptr<Processor> processor;
};

class ProcessorFixture : public ::testing::Test
{
  protected:
    void
    build(int contexts, std::vector<ThreadProgram *> programs,
          std::uint32_t switch_cycles = 11)
    {
        h.build(contexts, std::move(programs), switch_cycles);
    }

    Harness h;
    sim::Engine &engine = h.engine;
};

TEST_F(ProcessorFixture, SingleContextMakesProgress)
{
    // Loads of a remote line that a remote writer keeps dirtying
    // would be ideal; simplest: load a remote line once (miss), then
    // hits. The program must advance and count work cycles.
    FixedLoadProgram program(coher::makeAddr(3, 0), 5);
    build(1, {&program});
    engine.run(2000);
    EXPECT_GT(program.completed, 10u);
    EXPECT_GT(h.processor->stats().work_cycles.value(), 0u);
    // After the first fill, everything hits: exactly one transaction.
    EXPECT_EQ(h.controllers[0]->stats().transactions.value(), 1u);
    EXPECT_EQ(h.processor->stats().switches.value(), 0u);
}

TEST_F(ProcessorFixture, SingleContextStallsWithoutSwitching)
{
    // Two nodes ping-ponging ownership: every store is a transaction.
    PingStoreProgram program(coher::makeAddr(1, 0),
                             coher::makeAddr(2, 4), 4);
    build(1, {&program});
    engine.run(4000);
    EXPECT_GT(program.completed, 5u);
    EXPECT_EQ(h.processor->stats().switches.value(), 0u);
    EXPECT_GT(h.processor->stats().idle_cycles.value(), 0u);
}

TEST_F(ProcessorFixture, MultithreadingOverlapsMisses)
{
    // Two contexts with always-missing stores: while one context
    // waits, the other should run; switches must be counted and
    // throughput should beat a single context.
    PingStoreProgram p0(coher::makeAddr(1, 0), coher::makeAddr(2, 4),
                        4);
    PingStoreProgram p1(coher::makeAddr(1, 1), coher::makeAddr(2, 5),
                        4);
    build(2, {&p0, &p1});
    engine.run(8000);
    const std::uint64_t both = p0.completed + p1.completed;
    EXPECT_GT(h.processor->stats().switches.value(), 10u);
    EXPECT_GT(h.processor->stats().switch_cycles.value(), 10u);

    // Baseline: one context alone over half the window.
    Harness solo;
    PingStoreProgram ps(coher::makeAddr(1, 0), coher::makeAddr(2, 4),
                        4);
    solo.build(1, {&ps});
    solo.engine.run(8000);
    // Two contexts share one controller and injection channel, so
    // the gain is well under 2x here, but must be clearly positive.
    EXPECT_GT(both, ps.completed * 5 / 4)
        << "two contexts should clearly outrun one";
}

TEST_F(ProcessorFixture, SwitchCostsConfiguredCycles)
{
    PingStoreProgram p0(coher::makeAddr(1, 0), coher::makeAddr(2, 4),
                        4);
    PingStoreProgram p1(coher::makeAddr(1, 1), coher::makeAddr(2, 5),
                        4);
    build(2, {&p0, &p1}, 11);
    engine.run(8000);
    const auto &stats = h.processor->stats();
    // A switch may be in progress when the window closes, so burned
    // cycles sit within one switch of switches * 11.
    EXPECT_LE(stats.switch_cycles.value(),
              stats.switches.value() * 11u);
    EXPECT_GE(stats.switch_cycles.value() + 11u,
              stats.switches.value() * 11u);
}

TEST_F(ProcessorFixture, ZeroSwitchTimeAllowed)
{
    PingStoreProgram p0(coher::makeAddr(1, 0), coher::makeAddr(2, 4),
                        4);
    PingStoreProgram p1(coher::makeAddr(1, 1), coher::makeAddr(2, 5),
                        4);
    build(2, {&p0, &p1}, 0);
    engine.run(4000);
    EXPECT_EQ(h.processor->stats().switch_cycles.value(), 0u);
    EXPECT_GT(h.processor->stats().switches.value(), 0u);
    EXPECT_GT(p0.completed + p1.completed, 10u);
}

TEST_F(ProcessorFixture, WorkCyclesMatchComputePerOp)
{
    FixedLoadProgram program(coher::makeAddr(3, 1), 7);
    build(1, {&program});
    engine.run(4000);
    // Every completed op burned exactly 7 compute cycles (hits after
    // the first fill; issue/resume cycles are not counted as work).
    const std::uint64_t work = h.processor->stats().work_cycles.value();
    EXPECT_NEAR(static_cast<double>(work) /
                    static_cast<double>(program.completed),
                7.0, 0.2);
}

TEST_F(ProcessorFixture, AllBlockedReportsCorrectly)
{
    PingStoreProgram program(coher::makeAddr(1, 0),
                             coher::makeAddr(2, 4), 1);
    build(1, {&program});
    // At time zero nothing is blocked.
    EXPECT_FALSE(h.processor->allBlocked());
    engine.run(20);
    // With a 1-cycle compute and long remote latency, the single
    // context is almost certainly waiting now.
    EXPECT_TRUE(h.processor->allBlocked());
}

} // namespace
} // namespace proc
} // namespace locsim
