/**
 * @file
 * Full-machine integration tests: the Section 3 validation platform
 * end to end. These check that the simulator reproduces the paper's
 * measured application parameters (g, c, d), that coherence is
 * correct under the real workload, and that measurements behave as
 * the model predicts (latency grows with mapping distance, rates
 * fall, multithreading raises throughput).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "machine/calibration.hh"
#include "machine/machine.hh"
#include "model/alewife.hh"
#include "model/combined_model.hh"
#include "net/topology.hh"
#include "util/serialize.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace machine {
namespace {

Measurement
runMachine(int contexts, const workload::Mapping &mapping,
           std::uint64_t warmup = 4000, std::uint64_t window = 12000)
{
    MachineConfig config;
    config.contexts = contexts;
    Machine machine(config, mapping);
    return machine.run(warmup, window);
}

TEST(Machine, CoherenceHoldsUnderIdentityMapping)
{
    const auto m = runMachine(1, workload::Mapping::identity(64));
    EXPECT_EQ(m.violations, 0u);
    EXPECT_GT(m.iterations, 100u);
    EXPECT_GT(m.transactions, 1000u);
}

TEST(Machine, CoherenceHoldsUnderRandomMappingAllContexts)
{
    for (int contexts : {1, 2, 4}) {
        const auto m =
            runMachine(contexts, workload::Mapping::random(64, 3));
        EXPECT_EQ(m.violations, 0u) << contexts << " contexts";
        EXPECT_GT(m.iterations, 50u);
    }
}

TEST(Machine, CoherenceHoldsWithTinyCache)
{
    // Force constant evictions/writebacks: protocol must stay correct.
    MachineConfig config;
    config.contexts = 2;
    config.protocol.cache_bytes = 8 * coher::kLineBytes;
    Machine machine(config, workload::Mapping::random(64, 11));
    const auto m = machine.run(2000, 8000);
    EXPECT_EQ(m.violations, 0u);
    EXPECT_GT(m.iterations, 20u);
}

TEST(Machine, MeasuredHopsMatchMappingDistance)
{
    net::TorusTopology topo(8, 2);
    for (const auto &named : workload::experimentMappings(topo)) {
        MachineConfig config;
        Machine machine(config, named.mapping);
        const auto m = machine.run(2000, 6000);
        // Message hops track the mapping's neighbour distance. The
        // mix includes request+reply (same distance both ways) but
        // hop averages can deviate slightly because message counts
        // per neighbour vary with sharing.
        EXPECT_NEAR(m.avg_hops, named.avg_distance,
                    0.15 * named.avg_distance + 0.1)
            << named.name;
    }
}

TEST(Machine, MessagesPerTransactionNearPaperValue)
{
    // Paper Section 3.2: g = 3.2 messages per transaction.
    const auto m = runMachine(1, workload::Mapping::identity(64));
    EXPECT_NEAR(m.messages_per_txn, 3.2, 0.35);
}

TEST(Machine, CriticalPathIsTwoMessages)
{
    // For this workload every transaction resolves in one
    // request/response exchange (reads hit the home's own modified
    // copy; writes invalidate from the home): c = 2, the paper's
    // value.
    const auto m = runMachine(1, workload::Mapping::identity(64));
    EXPECT_NEAR(m.critical_messages, 2.0, 0.05);
}

TEST(Machine, MessageSizeMatchesPaper)
{
    const auto m = runMachine(1, workload::Mapping::identity(64));
    EXPECT_DOUBLE_EQ(m.avg_flits, 12.0);
}

TEST(Machine, LatencyRisesAndRateFallsWithDistance)
{
    net::TorusTopology topo(8, 2);
    const auto family = workload::experimentMappings(topo);
    std::vector<double> latencies, rates, distances;
    for (std::size_t i = 0; i < family.size(); i += 2) {
        const auto m = runMachine(1, family[i].mapping);
        latencies.push_back(m.message_latency);
        rates.push_back(m.message_rate);
        distances.push_back(family[i].avg_distance);
    }
    // Strong overall trend (Figures 4/5): latency roughly triples and
    // rate drops substantially from one hop to the farthest mapping.
    EXPECT_GT(latencies.back(), 2.0 * latencies.front());
    EXPECT_LT(rates.back(), 0.75 * rates.front());
    // Local wiggles between same-distance mappings are physical
    // (different contention patterns); only clear regressions against
    // the distance ordering are bugs.
    for (std::size_t i = 1; i < latencies.size(); ++i) {
        EXPECT_GT(latencies[i],
                  latencies[i - 1] - 0.15 * latencies[i - 1])
            << "distance " << distances[i];
        EXPECT_LT(rates[i], rates[i - 1] * 1.15)
            << "distance " << distances[i];
    }
}

TEST(Machine, MultithreadingIncreasesMessageRate)
{
    const workload::Mapping mapping = workload::Mapping::random(64, 7);
    const auto m1 = runMachine(1, mapping);
    const auto m2 = runMachine(2, mapping);
    const auto m4 = runMachine(4, mapping);
    EXPECT_GT(m2.message_rate, m1.message_rate * 1.05);
    EXPECT_GE(m4.message_rate, m2.message_rate * 0.95);
    // And per-context slopes: latency tolerated grows with contexts
    // (message latency rises under the higher load).
    EXPECT_GT(m2.message_latency, m1.message_latency);
}

TEST(Machine, ZeroLoadIdentityLatencyNearModel)
{
    // Identity mapping, one context: traffic is light, so measured
    // T_m should sit near the zero-load model value d + B plus the
    // small node-channel overheads the paper describes (2-5 cycles).
    const auto m = runMachine(1, workload::Mapping::identity(64));
    const double zero_load = 1.0 + 12.0;
    EXPECT_GT(m.message_latency, zero_load);
    EXPECT_LT(m.message_latency, zero_load + 6.0);
}

TEST(Machine, CombinedModelPredictsMeasuredRates)
{
    // The headline validation (Figures 4/5): feed the measured
    // application parameters into the combined model; predictions
    // must track simulation within a modest tolerance.
    net::TorusTopology topo(8, 2);
    const auto family = workload::experimentMappings(topo);
    for (std::size_t i = 2; i < family.size(); i += 3) {
        const auto &named = family[i];
        const auto m = runMachine(1, named.mapping, 6000, 16000);
        const model::Prediction p = predictFromMeasurement(
            m, 1, m.avg_hops);

        EXPECT_NEAR(p.injection_rate, m.message_rate,
                    0.2 * m.message_rate)
            << named.name;
        EXPECT_NEAR(p.message_latency, m.message_latency,
                    0.25 * m.message_latency + 3.0)
            << named.name;
    }
}

TEST(Machine, UtilizationConsistentWithEquation10)
{
    // rho = r_m * B * k_d / 2 must hold for the *measured* rate,
    // size, and distance (it is flit conservation, not a model).
    const auto m = runMachine(1, workload::Mapping::random(64, 21));
    const double kd = m.avg_hops / 2.0;
    EXPECT_NEAR(m.utilization,
                m.message_rate * m.avg_flits * kd / 2.0,
                0.1 * m.utilization);
}

TEST(Machine, UniformWorkloadDistanceMatchesEquation17)
{
    // The no-locality workload communicates uniformly at random:
    // its measured average hop count must sit at Equation 17's value
    // under ANY bijective mapping.
    for (auto mapping : {workload::Mapping::identity(64),
                         workload::Mapping::random(64, 5)}) {
        MachineConfig config;
        config.workload = WorkloadKind::UniformRandom;
        Machine machine(config, mapping);
        const auto m = machine.run(2000, 8000);
        EXPECT_NEAR(m.avg_hops, net::randomMappingDistance(8, 2),
                    0.25);
        EXPECT_GT(m.transactions, 500u);
    }
}

TEST(Machine, UniformWorkloadGainsNothingFromMapping)
{
    // Physical locality cannot help an application with none
    // (Section 1.1): identity and random placements perform the
    // same for the uniform workload.
    auto rate = [](const workload::Mapping &mapping) {
        MachineConfig config;
        config.workload = WorkloadKind::UniformRandom;
        Machine machine(config, mapping);
        return machine.run(3000, 10000).txn_rate;
    };
    const double identity = rate(workload::Mapping::identity(64));
    const double random = rate(workload::Mapping::random(64, 9));
    EXPECT_NEAR(identity / random, 1.0, 0.06);
}

TEST(Machine, UniformWorkloadOverflowsLimitedDirectory)
{
    // Every word is eventually read by many nodes, so a limited
    // directory must trap (and stay correct) under this workload.
    MachineConfig config;
    config.workload = WorkloadKind::UniformRandom;
    config.protocol.dir_pointers = 4;
    Machine machine(config, workload::Mapping::identity(64));
    const auto m = machine.run(2000, 8000);
    std::uint64_t traps = 0;
    for (sim::NodeId node = 0; node < 64; ++node)
        traps += machine.controller(node)
                     .stats()
                     .limitless_traps.value();
    EXPECT_GT(traps, 100u);
    EXPECT_GT(m.transactions, 500u);

    // The full-map default never traps.
    MachineConfig fullmap = config;
    fullmap.protocol.dir_pointers = 0;
    Machine machine2(fullmap, workload::Mapping::identity(64));
    machine2.run(2000, 8000);
    traps = 0;
    for (sim::NodeId node = 0; node < 64; ++node)
        traps += machine2.controller(node)
                     .stats()
                     .limitless_traps.value();
    EXPECT_EQ(traps, 0u);
}

TEST(Machine, TorusWorkloadNeverOverflowsFourPointers)
{
    // The Section 3.2 application has at most four sharers per line
    // (its torus neighbours), so LimitLESS with >= 4 pointers
    // degenerates to the full-map directory -- the substitution
    // DESIGN.md records.
    MachineConfig config;
    config.protocol.dir_pointers = 4;
    Machine machine(config, workload::Mapping::random(64, 13));
    const auto m = machine.run(2000, 8000);
    std::uint64_t traps = 0;
    for (sim::NodeId node = 0; node < 64; ++node)
        traps += machine.controller(node)
                     .stats()
                     .limitless_traps.value();
    EXPECT_EQ(traps, 0u);
    EXPECT_EQ(m.violations, 0u);
}

TEST(Machine, PrefetchingRaisesThroughputLikeOutstandingTxns)
{
    // Section 2.1: mechanisms that keep k transactions outstanding
    // behave like multithreading in the model (slope ~ k). A single
    // context with software prefetch must beat the same machine
    // without it at a long mapping, without any correctness loss.
    auto run = [](std::uint32_t depth) {
        MachineConfig config;
        config.contexts = 1;
        config.app.prefetch_depth = depth;
        Machine machine(config, workload::Mapping::random(64, 3));
        return machine.run(4000, 12000);
    };
    const auto base = run(0);
    const auto prefetched = run(3);
    EXPECT_EQ(prefetched.violations, 0u);
    // Prefetched lines turn the subsequent loads into hits almost
    // perfectly (4 of 9 ops per iteration are prefetch-covered).
    EXPECT_GT(prefetched.hit_rate, base.hit_rate + 0.25);
    // Application progress (loop iterations) improves, but the gain
    // is bounded by node-side resources the prefetch cannot hide
    // (the store's invalidation round trip, controller occupancy,
    // and injection-channel serialization) -- the same fixed
    // overheads Figure 8 identifies as the small-grain limiter.
    EXPECT_GT(prefetched.iterations,
              base.iterations + base.iterations / 25)
        << "prefetching should overlap miss latency";
    // The machine carries more outstanding traffic, so utilization
    // rises with throughput.
    EXPECT_GT(prefetched.utilization, base.utilization);
}

TEST(Machine, PrefetchDepthZeroIsIdentical)
{
    auto run = [](std::uint32_t depth) {
        MachineConfig config;
        config.app.prefetch_depth = depth;
        Machine machine(config, workload::Mapping::identity(64));
        const auto m = machine.run(2000, 6000);
        return std::make_tuple(m.transactions, m.messages,
                               m.txn_latency);
    };
    EXPECT_EQ(run(0), run(0));
}

TEST(Machine, DeterministicAcrossIdenticalRuns)
{
    auto run = [] {
        MachineConfig config;
        config.contexts = 2;
        Machine machine(config, workload::Mapping::random(64, 17));
        const auto m = machine.run(2000, 6000);
        return std::make_tuple(m.transactions, m.messages,
                               m.message_latency, m.txn_latency);
    };
    EXPECT_EQ(run(), run());
}

/**
 * The whole machine — processors, controllers, coherence protocol,
 * network — must measure exactly the same under the activity-tracked
 * engine as under dumb-stepping reference mode. Every Measurement
 * field is derived from counters, so exact equality (including the
 * doubles) is the correct assertion: the two modes run the same
 * arithmetic on the same values or they have diverged.
 */
TEST(Machine, ActivityTrackingMatchesReferenceExactly)
{
    auto run = [](bool reference, int contexts) {
        MachineConfig config;
        config.contexts = contexts;
        config.reference_stepping = reference;
        Machine machine(config, workload::Mapping::random(64, 23));
        const Measurement m = machine.run(1500, 5000);
        return std::make_tuple(
            m.transactions, m.messages, m.iterations, m.violations,
            m.txn_latency, m.message_latency, m.inter_txn_time,
            m.inter_message_time, m.source_queue_wait, m.avg_hops,
            m.utilization, m.run_length, m.switch_overhead,
            m.hit_rate, m.messages_per_txn, m.critical_messages);
    };
    for (int contexts : {1, 4}) {
        EXPECT_EQ(run(false, contexts), run(true, contexts))
            << contexts << " contexts";
    }
}

TEST(Machine, DifferentClockRatiosRun)
{
    // The engine supports other network:processor ratios (used by the
    // Table 1 analysis); the machine must run correctly at ratio 1
    // and 4 as well.
    for (std::uint32_t ratio : {1u, 2u, 4u}) {
        MachineConfig config;
        config.net_clock_ratio = ratio;
        Machine machine(config, workload::Mapping::identity(64));
        const auto m = machine.run(1000, 4000);
        EXPECT_EQ(m.violations, 0u) << "ratio " << ratio;
        EXPECT_GT(m.transactions, 0u) << "ratio " << ratio;
        // Zero-load network latency is unchanged in network cycles.
        EXPECT_NEAR(m.message_latency, 14.0, 3.0) << "ratio " << ratio;
    }
}

TEST(Machine, FasterNetworkClockRatioLowersLatencyInProcCycles)
{
    // With the network twice as fast, a transaction costs fewer
    // processor cycles end to end, so the transaction rate (per
    // processor cycle) rises.
    auto txn_rate_per_proc_cycle = [](std::uint32_t ratio) {
        MachineConfig config;
        config.net_clock_ratio = ratio;
        Machine machine(config, workload::Mapping::random(64, 31));
        const auto m = machine.run(2000, 8000);
        // txn_rate is per network cycle; convert to per proc cycle.
        return m.txn_rate * static_cast<double>(ratio);
    };
    EXPECT_GT(txn_rate_per_proc_cycle(2),
              txn_rate_per_proc_cycle(1) * 1.05);
}

TEST(Machine, LatencyPercentilesAreOrdered)
{
    MachineConfig config;
    Machine machine(config, workload::Mapping::random(64, 23));
    const auto m = machine.run(3000, 10000);
    EXPECT_GT(m.message_latency_p50, 0.0);
    EXPECT_LE(m.message_latency_p50, m.message_latency * 1.05);
    EXPECT_GE(m.message_latency_p95, m.message_latency);
    // The tail is real under contention: p95 well above the median.
    EXPECT_GT(m.message_latency_p95, m.message_latency_p50 * 1.2);
}

TEST(Machine, ThreeDimensionalMachineRunsCoherently)
{
    // 4x4x4 torus: same node count as the validation platform but a
    // higher-dimensional fabric (six neighbours per thread).
    MachineConfig config;
    config.radix = 4;
    config.dims = 3;
    Machine machine(config, workload::Mapping::random(64, 29));
    const auto m = machine.run(2000, 8000);
    EXPECT_EQ(m.violations, 0u);
    EXPECT_GT(m.transactions, 500u);
    // Per-message distance shrinks in 3-D (Eq 17: 3*4/4 * 64/63 ~ 3.05
    // vs 4.06 in 2-D).
    net::TorusTopology topo(4, 3);
    EXPECT_NEAR(m.avg_hops, topo.averageRandomDistance(), 0.5);
}

TEST(Machine, LargerMachineRunsCoherently)
{
    // 16x16 = 256 nodes: four times the validation platform.
    MachineConfig config;
    config.radix = 16;
    Machine machine(config, workload::Mapping::random(256, 31));
    const auto m = machine.run(1500, 5000);
    EXPECT_EQ(m.violations, 0u);
    EXPECT_GT(m.transactions, 1000u);
    EXPECT_NEAR(m.avg_hops, net::randomMappingDistance(16, 2), 1.2);
}

TEST(Machine, MeshMachineRunsCoherently)
{
    // Physical-Alewife configuration: 8x8 mesh instead of torus.
    // Boundary threads have fewer neighbours; coherence must hold and
    // random mappings must show the mesh's longer average distance.
    MachineConfig config;
    config.wraparound = false;
    Machine machine(config, workload::Mapping::random(64, 19));
    const auto m = machine.run(3000, 10000);
    EXPECT_EQ(m.violations, 0u);
    EXPECT_GT(m.transactions, 500u);
    // Mesh random distance ~ 16/3 = 5.33 vs torus 4.06.
    EXPECT_GT(m.avg_hops, 4.3);
}

TEST(Machine, TorusOutperformsMeshUnderRandomMapping)
{
    auto rate = [](bool wraparound) {
        MachineConfig config;
        config.wraparound = wraparound;
        Machine machine(config, workload::Mapping::random(64, 19));
        return machine.run(3000, 10000).txn_rate;
    };
    // Shorter distances and twice the bisection: the torus wins.
    EXPECT_GT(rate(true), rate(false) * 1.05);
}

TEST(Machine, RunLengthTracksConfiguredCompute)
{
    // T_r per transaction: 5 ops/iteration at 8 cycles each, roughly
    // 5 transactions per iteration at identity mapping (every op is
    // a coherence miss) -> about 8-11 proc cycles = 16-22 net cycles
    // per transaction including issue overhead.
    const auto m = runMachine(1, workload::Mapping::identity(64));
    EXPECT_GT(m.run_length, 14.0);
    EXPECT_LT(m.run_length, 24.0);
}

/** Serialize a Measurement to its exact cache-payload bytes. */
std::vector<std::uint8_t>
measurementBytes(const Measurement &m)
{
    util::Serializer s;
    saveMeasurement(s, m);
    return s.takeBuffer();
}

/**
 * The tentpole contract of sharded execution: every Measurement field
 * — counters, exact-sum means, percentiles, attribution — is byte-
 * identical whatever the shard count, including a count that does not
 * divide the machine (ragged last shard) and reference stepping.
 * Latched channels give one cycle of conservative lookahead, so the
 * partitioned fabric observes exactly the sequential schedule; any
 * divergence here is a lost wakeup, a mis-owned channel, or a
 * stats-merge ordering bug.
 */
TEST(Sharded, MeasurementsBitIdenticalAtEveryShardCount)
{
    auto run = [](int shards, bool reference) {
        MachineConfig config;
        config.contexts = 2;
        config.shards = shards;
        config.reference_stepping = reference;
        Machine machine(config, workload::Mapping::random(64, 29));
        return measurementBytes(machine.run(1500, 4000));
    };
    const std::vector<std::uint8_t> sequential = run(1, false);
    for (int shards : {2, 3, 4})
        EXPECT_EQ(sequential, run(shards, false))
            << shards << " shards";
    EXPECT_EQ(sequential, run(2, true)) << "2 shards, reference";
}

/**
 * Same contract on a machine whose shape stresses the partition
 * differently: 3-D torus, ratio 1, single context.
 */
TEST(Sharded, ThreeDimensionalMachineBitIdentical)
{
    auto run = [](int shards) {
        MachineConfig config;
        config.radix = 4;
        config.dims = 3;
        config.net_clock_ratio = 1;
        config.shards = shards;
        Machine machine(config, workload::Mapping::random(64, 31));
        return measurementBytes(machine.run(1000, 3000));
    };
    const std::vector<std::uint8_t> sequential = run(1);
    for (int shards : {2, 4})
        EXPECT_EQ(sequential, run(shards)) << shards << " shards";
}

/**
 * The metrics sampler's series must match sample-for-sample: at
 * several shards the lockstep driver ticks the sampler itself (and
 * credits quiescence skips), and both the timestamps and every probe
 * value must equal the sequential engine-driven schedule exactly.
 */
TEST(Sharded, SamplerSeriesBitIdentical)
{
    auto run = [](int shards) {
        MachineConfig config;
        config.shards = shards;
        config.sample_period = 256;
        Machine machine(config, workload::Mapping::random(64, 37));
        machine.run(1500, 4000);
        const obs::MetricsSampler &sampler = *machine.sampler();
        std::ostringstream out;
        for (const sim::Tick t : sampler.times())
            out << t << "\n";
        for (std::size_t p = 0; p < sampler.probeCount(); ++p) {
            out << sampler.probeName(p) << "\n";
            util::Serializer s;
            for (const double v : sampler.series(p))
                s.putDouble(v);
            for (const std::uint8_t byte : s.buffer())
                out << static_cast<int>(byte) << " ";
            out << "\n";
        }
        return out.str();
    };
    const std::string sequential = run(1);
    for (int shards : {2, 4})
        EXPECT_EQ(sequential, run(shards)) << shards << " shards";
}

/**
 * Tracing at several shards writes one merged stream; it must be
 * deterministic run to run (emission is thread-local per shard, merge
 * order is fixed), and the machine must still measure identically
 * with tracing attached.
 */
TEST(Sharded, TracedRunsAreDeterministic)
{
    auto run = [] {
        MachineConfig config;
        config.shards = 4;
        config.trace.enabled = true;
        Machine machine(config, workload::Mapping::random(64, 41));
        const Measurement m = machine.run(500, 1500);
        std::ostringstream os;
        machine.writeTrace(os);
        return std::make_pair(measurementBytes(m), os.str());
    };
    const auto first = run();
    const auto second = run();
    EXPECT_EQ(first.first, second.first);
    EXPECT_EQ(first.second, second.second);
}

TEST(ShardedDeath, InvalidShardCountsAreFatal)
{
    const workload::Mapping mapping = workload::Mapping::identity(64);
    auto build = [&mapping](int shards) {
        MachineConfig config;
        config.shards = shards;
        Machine machine(config, mapping);
    };
    EXPECT_EXIT(build(-2), ::testing::ExitedWithCode(1),
                "shards must be positive");
    EXPECT_EXIT(build(65), ::testing::ExitedWithCode(1),
                "exceeds the node count");
}

} // namespace
} // namespace machine
} // namespace locsim
