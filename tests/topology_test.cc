/**
 * @file
 * Unit and property tests for the torus topology, including the
 * paper's Equation 17 anchors.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "net/topology.hh"

namespace locsim {
namespace net {
namespace {

TEST(Topology, NodeCountAndCoords)
{
    TorusTopology topo(8, 2);
    EXPECT_EQ(topo.nodeCount(), 64u);
    EXPECT_EQ(topo.coord(0, 0), 0);
    EXPECT_EQ(topo.coord(0, 1), 0);
    EXPECT_EQ(topo.coord(9, 0), 1);
    EXPECT_EQ(topo.coord(9, 1), 1);
    EXPECT_EQ(topo.nodeAt({1, 1}), 9u);
    EXPECT_EQ(topo.nodeAt(topo.coords(37)), 37u);
}

TEST(Topology, RingOffsetShortestWay)
{
    TorusTopology topo(8, 1);
    EXPECT_EQ(topo.ringOffset(0, 1), 1);
    EXPECT_EQ(topo.ringOffset(0, 7), -1);
    EXPECT_EQ(topo.ringOffset(0, 4), 4);  // tie -> positive
    EXPECT_EQ(topo.ringOffset(5, 1), 4);  // tie -> positive
    EXPECT_EQ(topo.ringOffset(6, 2), 4);
    EXPECT_EQ(topo.ringOffset(3, 3), 0);
}

TEST(Topology, DistanceMatchesManhattanOnTorus)
{
    TorusTopology topo(8, 2);
    // (0,0) to (1,1): 2 hops.
    EXPECT_EQ(topo.distance(topo.nodeAt({0, 0}), topo.nodeAt({1, 1})),
              2);
    // (0,0) to (7,7): wraps both dims, 2 hops.
    EXPECT_EQ(topo.distance(topo.nodeAt({0, 0}), topo.nodeAt({7, 7})),
              2);
    // (0,0) to (4,4): 8 hops (worst case).
    EXPECT_EQ(topo.distance(topo.nodeAt({0, 0}), topo.nodeAt({4, 4})),
              8);
    EXPECT_EQ(topo.distance(5, 5), 0);
}

TEST(Topology, NeighborWrapsCorrectly)
{
    TorusTopology topo(8, 2);
    const sim::NodeId origin = topo.nodeAt({0, 0});
    EXPECT_EQ(topo.neighbor(origin, 0, 1), topo.nodeAt({1, 0}));
    EXPECT_EQ(topo.neighbor(origin, 0, -1), topo.nodeAt({7, 0}));
    EXPECT_EQ(topo.neighbor(origin, 1, -1), topo.nodeAt({0, 7}));
}

TEST(Topology, NextHopReachesDestinationInDistanceSteps)
{
    TorusTopology topo(8, 2);
    for (sim::NodeId src : {0u, 9u, 17u, 63u}) {
        for (sim::NodeId dst = 0; dst < topo.nodeCount(); ++dst) {
            if (src == dst)
                continue;
            sim::NodeId at = src;
            int steps = 0;
            const int expected = topo.distance(src, dst);
            while (at != dst) {
                const HopStep step = topo.nextHop(at, dst);
                at = topo.neighbor(at, step.dim, step.dir);
                ++steps;
                ASSERT_LE(steps, expected) << "route overshoot";
            }
            EXPECT_EQ(steps, expected);
        }
    }
}

TEST(Topology, NextHopIsDimensionOrdered)
{
    TorusTopology topo(4, 3);
    const sim::NodeId src = topo.nodeAt({0, 0, 0});
    const sim::NodeId dst = topo.nodeAt({2, 1, 3});
    sim::NodeId at = src;
    int last_dim = 0;
    while (at != dst) {
        const HopStep step = topo.nextHop(at, dst);
        EXPECT_GE(step.dim, last_dim) << "e-cube order violated";
        last_dim = step.dim;
        at = topo.neighbor(at, step.dim, step.dir);
    }
}

TEST(Topology, WrapFlagMatchesCoordinateWrap)
{
    TorusTopology topo(8, 1);
    const HopStep wrap = topo.nextHop(7, 1); // 7 -> 0 -> 1 (positive)
    EXPECT_EQ(wrap.dir, 1);
    EXPECT_TRUE(wrap.wraps);
    const HopStep inner = topo.nextHop(2, 4);
    EXPECT_FALSE(inner.wraps);
}

/**
 * Paper anchor (footnote 2): random mappings on the 64-node radix-8
 * 2D torus give an expected distance just over four hops.
 */
TEST(Topology, Equation17PaperAnchor64Nodes)
{
    EXPECT_NEAR(randomMappingDistance(8, 2), 4.063, 0.001);
    TorusTopology topo(8, 2);
    EXPECT_NEAR(topo.averageRandomDistance(), 4.063, 0.001);
}

/** Closed form and enumeration must agree for all even radices. */
class Eq17Param
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(Eq17Param, ClosedFormMatchesEnumeration)
{
    const auto [radix, dims] = GetParam();
    TorusTopology topo(radix, dims);
    EXPECT_NEAR(topo.averageRandomDistance(),
                randomMappingDistance(radix, dims), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    EvenRadixSweeps, Eq17Param,
    ::testing::Combine(::testing::Values(2, 4, 8, 16, 32),
                       ::testing::Values(1, 2, 3)));

/** Brute-force expectation over all pairs must match Equation 17. */
TEST(Topology, Equation17MatchesBruteForce)
{
    TorusTopology topo(8, 2);
    double total = 0.0;
    std::uint64_t pairs = 0;
    for (sim::NodeId a = 0; a < topo.nodeCount(); ++a) {
        for (sim::NodeId b = 0; b < topo.nodeCount(); ++b) {
            if (a == b)
                continue;
            total += topo.distance(a, b);
            ++pairs;
        }
    }
    EXPECT_NEAR(total / static_cast<double>(pairs),
                randomMappingDistance(8, 2), 1e-9);
}

TEST(Topology, OddRadixEnumerationDiffersFromEvenClosedForm)
{
    // The paper's closed form assumes even k; our enumeration handles
    // odd radix exactly. For k=5, per-ring mean over deltas is
    // (0+1+2+2+1)/5 = 1.2, so 1D expectation is 1.2 * 25/24... for
    // n=2: 2*1.2*25/24 = 2.5.
    TorusTopology topo(5, 2);
    EXPECT_NEAR(topo.averageRandomDistance(), 2.5, 1e-9);
}

TEST(Topology, RandomMappingDistanceForSizeMatchesSquareTorus)
{
    // N = 1024, n = 2 -> k = 32.
    EXPECT_NEAR(randomMappingDistanceForSize(1024.0, 2),
                randomMappingDistance(32, 2), 1e-9);
    // Paper Section 4.2: ~16x larger than single hop at N = 1000.
    const double d1000 = randomMappingDistanceForSize(1000.0, 2);
    EXPECT_GT(d1000, 15.0);
    EXPECT_LT(d1000, 17.0);
}

TEST(Topology, HigherDimensionsShortenRandomDistance)
{
    const double d2 = randomMappingDistanceForSize(4096.0, 2);
    const double d3 = randomMappingDistanceForSize(4096.0, 3);
    const double d4 = randomMappingDistanceForSize(4096.0, 4);
    EXPECT_GT(d2, d3);
    EXPECT_GT(d3, d4);
}

TEST(MeshTopology, NoWraparoundNeighbors)
{
    TorusTopology mesh(8, 2, false);
    EXPECT_FALSE(mesh.wraparound());
    const sim::NodeId corner = mesh.nodeAt({0, 0});
    EXPECT_EQ(mesh.neighbor(corner, 0, -1), sim::kNodeNone);
    EXPECT_EQ(mesh.neighbor(corner, 1, -1), sim::kNodeNone);
    EXPECT_EQ(mesh.neighbor(corner, 0, 1), mesh.nodeAt({1, 0}));
    const sim::NodeId edge = mesh.nodeAt({7, 3});
    EXPECT_EQ(mesh.neighbor(edge, 0, 1), sim::kNodeNone);
    EXPECT_EQ(mesh.neighbor(edge, 1, 1), mesh.nodeAt({7, 4}));
}

TEST(MeshTopology, DistancesAreManhattan)
{
    TorusTopology mesh(8, 2, false);
    // No shortcuts across the edge: (0,0) to (7,7) is 14 hops.
    EXPECT_EQ(mesh.distance(mesh.nodeAt({0, 0}), mesh.nodeAt({7, 7})),
              14);
    EXPECT_EQ(mesh.distance(mesh.nodeAt({0, 0}), mesh.nodeAt({7, 0})),
              7);
}

TEST(MeshTopology, RoutesNeverWrap)
{
    TorusTopology mesh(8, 2, false);
    for (sim::NodeId src : {0u, 7u, 56u, 63u}) {
        for (sim::NodeId dst = 0; dst < 64; dst += 5) {
            if (src == dst)
                continue;
            sim::NodeId at = src;
            int steps = 0;
            while (at != dst) {
                const HopStep step = mesh.nextHop(at, dst);
                EXPECT_FALSE(step.wraps);
                const sim::NodeId next =
                    mesh.neighbor(at, step.dim, step.dir);
                ASSERT_NE(next, sim::kNodeNone)
                    << "route stepped off the mesh edge";
                at = next;
                ASSERT_LE(++steps, 14);
            }
            EXPECT_EQ(steps, mesh.distance(src, dst));
        }
    }
}

TEST(MeshTopology, RandomDistanceIsClosedForm)
{
    // Mesh per-dimension mean is (k^2-1)/(3k); 2-D radix-8 with
    // self-exclusion: 2 * 63/24 * 64/63 = 16/3.
    TorusTopology mesh(8, 2, false);
    EXPECT_NEAR(mesh.averageRandomDistance(), 16.0 / 3.0, 1e-9);

    // Cross-check by enumeration.
    double total = 0.0;
    std::uint64_t pairs = 0;
    for (sim::NodeId a = 0; a < 64; ++a) {
        for (sim::NodeId b = 0; b < 64; ++b) {
            if (a == b)
                continue;
            total += mesh.distance(a, b);
            ++pairs;
        }
    }
    EXPECT_NEAR(total / static_cast<double>(pairs),
                mesh.averageRandomDistance(), 1e-9);
}

TEST(MeshTopology, MeshRandomDistanceExceedsTorus)
{
    // Without wraparound the average random-pair distance grows
    // (k/3 vs k/4 per dimension asymptotically).
    for (int k : {4, 8, 16}) {
        TorusTopology torus(k, 2, true);
        TorusTopology mesh(k, 2, false);
        EXPECT_GT(mesh.averageRandomDistance(),
                  torus.averageRandomDistance());
    }
}

TEST(Topology, DistanceSymmetricAndTriangle)
{
    TorusTopology topo(6, 2);
    for (sim::NodeId a = 0; a < topo.nodeCount(); a += 5) {
        for (sim::NodeId b = 0; b < topo.nodeCount(); b += 3) {
            EXPECT_EQ(topo.distance(a, b), topo.distance(b, a));
            for (sim::NodeId c = 0; c < topo.nodeCount(); c += 7) {
                EXPECT_LE(topo.distance(a, c),
                          topo.distance(a, b) + topo.distance(b, c));
            }
        }
    }
}

} // namespace
} // namespace net
} // namespace locsim
