/**
 * @file
 * Steady-state zero-allocation tests.
 *
 * The hot simulation paths (network fabric, coherence controllers,
 * full machine) are built on pooled records, ring queues and flat
 * slabs that grow to a high-water mark and then recycle storage.
 * These tests pin that property: after a bounded warm-up, whole
 * simulation windows must not touch the allocator at all, for both
 * the sequential Activity engine and the sharded lockstep engine.
 *
 * Counting uses the same global operator-new hooks as the micro_perf
 * benchmarks (util/alloc_count.hh; this file is its one translation
 * unit in this binary). The simulations are seeded and deterministic,
 * so the assertions are exact, not statistical.
 */

#include "util/alloc_count.hh"

#include <gtest/gtest.h>

#include "machine/batch.hh"
#include "machine/machine.hh"
#include "net/network.hh"
#include "net/traffic.hh"
#include "sim/engine.hh"
#include "workload/mapping.hh"

namespace {

using locsim::util::heapAllocCount;

/**
 * Run @p step repeatedly until one full window completes without any
 * heap allocation (bounded at @p max_windows). Returns true if the
 * allocator went quiet.
 */
template <typename Step>
bool
warmUntilQuiet(Step step, int max_windows = 50)
{
    for (int i = 0; i < max_windows; ++i) {
        const std::uint64_t before = heapAllocCount();
        step();
        if (heapAllocCount() == before)
            return true;
    }
    return false;
}

TEST(AllocSteadyState, NetworkSimActivityEngine)
{
    locsim::sim::Engine engine;
    locsim::net::NetworkConfig config;
    config.radix = 8;
    config.dims = 2;
    locsim::net::Network network(engine, config);
    engine.addClocked(&network, 1);
    locsim::net::TrafficConfig traffic;
    traffic.injection_rate = 0.02;
    locsim::net::TrafficGenerator gen(network, traffic);
    engine.addClocked(&gen, 1);

    ASSERT_TRUE(warmUntilQuiet([&] { engine.run(2000); }));

    const std::uint64_t before = heapAllocCount();
    engine.run(10000);
    EXPECT_EQ(heapAllocCount() - before, 0u)
        << "network steady state touched the allocator";
}

TEST(AllocSteadyState, FullMachineActivityEngine)
{
    locsim::machine::MachineConfig config;
    config.radix = 8;
    config.contexts = 1;
    config.shards = 1;
    locsim::machine::Machine machine(
        config, locsim::workload::Mapping::random(64, 9));
    machine.advance(1000); // warm caches/directories

    ASSERT_TRUE(warmUntilQuiet([&] { machine.advance(1000); }));

    const std::uint64_t before = heapAllocCount();
    machine.advance(10000);
    EXPECT_EQ(heapAllocCount() - before, 0u)
        << "machine steady state touched the allocator";
}

TEST(AllocSteadyState, FullMachineShardedEngine)
{
    locsim::machine::MachineConfig config;
    config.radix = 8;
    config.contexts = 1;
    config.shards = 2;
    locsim::machine::Machine machine(
        config, locsim::workload::Mapping::random(64, 9));
    machine.advance(1000);

    ASSERT_TRUE(warmUntilQuiet([&] { machine.advance(1000); }));

    const std::uint64_t before = heapAllocCount();
    machine.advance(10000);
    EXPECT_EQ(heapAllocCount() - before, 0u)
        << "sharded steady state touched the allocator";
}

TEST(AllocSteadyState, BatchedMachines)
{
    // Four lanes over one engine and lane-striped stores: after the
    // shared fabric reaches its high-water mark, whole batch windows
    // must recycle storage exactly like a solo machine's.
    std::vector<locsim::machine::BatchLaneSpec> specs;
    for (int l = 0; l < 4; ++l) {
        locsim::machine::MachineConfig config;
        config.radix = 8;
        config.contexts = 1;
        config.shards = 1;
        specs.push_back({config, locsim::workload::Mapping::random(
                                     64, static_cast<std::uint64_t>(
                                             9 + l))});
    }
    locsim::machine::MachineBatch batch(specs);
    batch.advance(1000); // warm caches/directories

    ASSERT_TRUE(warmUntilQuiet([&] { batch.advance(1000); }));

    const std::uint64_t before = heapAllocCount();
    batch.advance(10000);
    EXPECT_EQ(heapAllocCount() - before, 0u)
        << "batched steady state touched the allocator";
}

} // namespace
