/**
 * @file
 * Simulation cache tests: key canonicalization (equal configs hash
 * equal, any behavioral field change rehashes), the content-addressed
 * store's lookup/store/remove cycle, hit/miss accounting, and the
 * within-process singleflight guarantee (concurrent requests for one
 * key run the computation once).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cache/key.hh"
#include "cache/store.hh"
#include "machine/machine.hh"
#include "util/serialize.hh"
#include "workload/mapping.hh"

namespace locsim {
namespace cache {
namespace {

namespace fs = std::filesystem;

machine::MachineConfig
baseConfig()
{
    machine::MachineConfig config;
    config.radix = 4;
    config.dims = 2;
    return config;
}

workload::Mapping
baseMapping()
{
    return workload::Mapping::identity(16);
}

std::string
baseKey()
{
    return simKey(baseConfig(), baseMapping(), 100, 200);
}

/** Unique fresh directory under the system temp dir. */
fs::path
freshDir(const std::string &tag)
{
    static std::atomic<int> serial{0};
    const fs::path dir = fs::temp_directory_path() /
                         ("locsim_cache_test_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(serial++));
    fs::remove_all(dir);
    return dir;
}

TEST(SimKey, IsDeterministic)
{
    EXPECT_EQ(baseKey(), baseKey());
    // SHA-256 hex: 64 lowercase hex digits, usable as a filename.
    const std::string key = baseKey();
    EXPECT_EQ(key.size(), 64u);
    EXPECT_EQ(key.find_first_not_of("0123456789abcdef"),
              std::string::npos);
}

/**
 * Pin the exact key bytes across refactors: data-layout work (pool
 * handles, SoA slabs, packed structs) must not leak into the
 * serialized identity of an experiment, or every cached result
 * silently invalidates. If this test fails, either the serialization
 * genuinely changed (bump kCacheSchemaVersion and re-pin) or an
 * internal representation leaked into simKey (fix that instead).
 */
TEST(SimKey, StableAcrossDataLayoutRefactors)
{
    EXPECT_EQ(baseKey(),
              "91155b522af60fa59e500a1d9a660832094b9b58"
              "024bcb4823a7bd43b2b7d173");
}

TEST(SimKey, ChangesWithEveryBehavioralField)
{
    const std::string base = baseKey();
    const auto mapping = baseMapping();

    auto keyOf = [&](const machine::MachineConfig &c) {
        return simKey(c, mapping, 100, 200);
    };

    std::vector<std::string> keys;
    {
        auto c = baseConfig();
        c.wraparound = false;
        keys.push_back(keyOf(c));
    }
    {
        auto c = baseConfig();
        c.contexts = 2;
        keys.push_back(keyOf(c));
    }
    {
        auto c = baseConfig();
        c.processor.switch_cycles = 7;
        keys.push_back(keyOf(c));
    }
    {
        auto c = baseConfig();
        c.protocol.mem_latency = 99;
        keys.push_back(keyOf(c));
    }
    {
        auto c = baseConfig();
        c.router.buffer_depth = 3;
        keys.push_back(keyOf(c));
    }
    {
        auto c = baseConfig();
        c.reference_stepping = !c.reference_stepping;
        keys.push_back(keyOf(c));
    }
    // Different mapping, warmup, and window.
    keys.push_back(simKey(baseConfig(),
                          workload::Mapping::random(16, 3), 100, 200));
    keys.push_back(simKey(baseConfig(), mapping, 101, 200));
    keys.push_back(simKey(baseConfig(), mapping, 100, 201));

    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_NE(keys[i], base) << "variant " << i;
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j])
                << "variants " << i << " and " << j;
    }
}

/**
 * Execution knobs must never enter the key: MachineConfig::shards
 * partitions execution without changing results (and the runner
 * thread count never reaches simKey at all), so sequential and
 * sharded runs of one experiment share a single cache entry.
 */
TEST(SimKey, IndependentOfShardCount)
{
    const std::string base = baseKey();
    for (int shards : {1, 2, 4}) {
        auto config = baseConfig();
        config.shards = shards;
        EXPECT_EQ(simKey(config, baseMapping(), 100, 200), base)
            << shards << " shards";
    }
}

/**
 * The warm-cache consequence, both ways: a payload computed
 * sequentially is a hit for a sharded run and vice versa, and either
 * payload equals what the other mode actually computes (sharded
 * execution is bit-identical, so serving either result for the other
 * is correct).
 */
TEST(SimCache, WarmAcrossShardCounts)
{
    auto compute = [](int shards) {
        auto config = baseConfig();
        config.shards = shards;
        machine::Machine machine(config, baseMapping());
        util::Serializer s;
        machine::saveMeasurement(s, machine.run(100, 200));
        return s.takeBuffer();
    };
    const std::string key = baseKey();

    {
        // Sequential warms; the 4-shard run must hit.
        const fs::path dir = freshDir("warm-seq-then-sharded");
        SimCache store(dir);
        const auto seq =
            store.getOrRun(key, [&] { return compute(1); });
        bool recomputed = false;
        const auto sharded = store.getOrRun(key, [&] {
            recomputed = true;
            return compute(4);
        });
        EXPECT_FALSE(recomputed) << "sharded run missed a warm cache";
        EXPECT_EQ(sharded, seq);
        EXPECT_EQ(compute(4), seq)
            << "sharded payload differs from the cached sequential one";
        fs::remove_all(dir);
    }
    {
        // Sharded warms; the sequential run must hit.
        const fs::path dir = freshDir("warm-sharded-then-seq");
        SimCache store(dir);
        const auto sharded =
            store.getOrRun(key, [&] { return compute(4); });
        bool recomputed = false;
        const auto seq = store.getOrRun(key, [&] {
            recomputed = true;
            return compute(1);
        });
        EXPECT_FALSE(recomputed)
            << "sequential run missed a shard-warmed cache";
        EXPECT_EQ(seq, sharded);
        fs::remove_all(dir);
    }
}

TEST(SimCache, StoreThenLookupRoundTrips)
{
    const fs::path dir = freshDir("roundtrip");
    SimCache store(dir);
    const std::string key = baseKey();

    EXPECT_FALSE(store.lookup(key).has_value());
    const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
    const auto got =
        store.getOrRun(key, [&] { return payload; });
    EXPECT_EQ(got, payload);

    // Now on disk: a second store instance sees it.
    SimCache reopened(dir);
    const auto found = reopened.lookup(key);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, payload);

    fs::remove_all(dir);
}

TEST(SimCache, CountsHitsAndMisses)
{
    const fs::path dir = freshDir("counters");
    SimCache store(dir);
    const std::string key = baseKey();
    int computations = 0;
    auto compute = [&] {
        ++computations;
        return std::vector<std::uint8_t>{42};
    };

    store.getOrRun(key, compute);
    store.getOrRun(key, compute);
    store.getOrRun(key, compute);

    EXPECT_EQ(computations, 1);
    const CacheStats s = store.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.hits, 2u);

    fs::remove_all(dir);
}

TEST(SimCache, RemoveDropsTheEntry)
{
    const fs::path dir = freshDir("remove");
    SimCache store(dir);
    const std::string key = baseKey();
    store.getOrRun(key, [] {
        return std::vector<std::uint8_t>{9};
    });
    ASSERT_TRUE(store.lookup(key).has_value());
    store.remove(key);
    EXPECT_FALSE(store.lookup(key).has_value());
    fs::remove_all(dir);
}

TEST(SimCache, SingleflightComputesOnce)
{
    const fs::path dir = freshDir("singleflight");
    SimCache store(dir);
    const std::string key = baseKey();

    constexpr int kThreads = 8;
    std::atomic<int> computations{0};
    std::vector<std::thread> threads;
    std::vector<std::vector<std::uint8_t>> results(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            results[t] = store.getOrRun(key, [&] {
                ++computations;
                // Let the other threads pile up on the in-flight
                // entry so the dedup path actually executes.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                return std::vector<std::uint8_t>{7, 7, 7};
            });
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(computations.load(), 1);
    for (const auto &r : results)
        EXPECT_EQ(r, (std::vector<std::uint8_t>{7, 7, 7}));
    const CacheStats s = store.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.hits + s.dedup_hits,
              static_cast<std::uint64_t>(kThreads - 1));

    fs::remove_all(dir);
}

TEST(SimCache, FailedComputationPropagatesAndRetries)
{
    const fs::path dir = freshDir("failure");
    SimCache store(dir);
    const std::string key = baseKey();

    EXPECT_THROW(
        store.getOrRun(
            key,
            []() -> std::vector<std::uint8_t> {
                throw std::runtime_error("compute failed");
            }),
        std::runtime_error);
    // The failure must not poison the key.
    const auto got = store.getOrRun(key, [] {
        return std::vector<std::uint8_t>{5};
    });
    EXPECT_EQ(got, (std::vector<std::uint8_t>{5}));

    fs::remove_all(dir);
}

TEST(SimCache, RejectsUnwritableDirectory)
{
    // A path *under a regular file* can never become a directory.
    const fs::path file = freshDir("blocker");
    {
        std::ofstream os(file);
        os << "not a directory";
    }
    EXPECT_THROW(SimCache(file / "sub"), std::runtime_error);
    fs::remove(file);
}

} // namespace
} // namespace cache
} // namespace locsim
